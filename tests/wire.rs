//! Wire-codec contract: every frame round-trips bit-exactly through
//! encode → decode over ragged payload shapes, and malformed input —
//! truncated prefixes, truncated payloads, oversized frames, unknown
//! opcodes, corrupt enum codes — produces a typed error instead of a
//! panic or a partial value.

use h3dfact::prelude::*;
use h3dfact::wire::{
    backend_code, decode_body, read_frame, Frame, ShedReason, WireError, WireRegistryStats,
    WireReport, WireResponse, WireShardStat, WireStats, WireTenantStat, MAX_FRAME_LEN,
};
use hdc::rng::rng_from_seed;
use proptest::prelude::*;

// ─── Strategies ─────────────────────────────────────────────────────────

/// Ragged hypervector dimensions: sub-word, word-boundary straddles, and
/// multi-word shapes.
fn arb_dim() -> impl Strategy<Value = usize> {
    prop_oneof![1usize..=4, 60usize..=68, 120usize..=130, Just(256)]
}

fn arb_vector() -> impl Strategy<Value = BipolarVector> {
    (arb_dim(), 0u64..1_000)
        .prop_map(|(dim, seed)| BipolarVector::random(dim, &mut rng_from_seed(seed)))
}

/// Tenant names incl. empty and non-ASCII.
fn arb_tenant() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just("tenant-a".to_string()),
        Just("λ-tenant-𝛼".to_string()),
        proptest::collection::vec(0u8..26, 1usize..24)
            .prop_map(|v| v.into_iter().map(|b| (b'a' + b) as char).collect()),
    ]
}

fn arb_backend() -> impl Strategy<Value = BackendKind> {
    (0usize..BackendKind::ALL.len()).prop_map(|i| BackendKind::ALL[i])
}

fn arb_opt_f64() -> impl Strategy<Value = Option<f64>> {
    prop_oneof![
        Just(None),
        (-1.0e12..1.0e12f64).prop_map(Some),
        Just(Some(0.0)),
        Just(Some(f64::MIN_POSITIVE)),
    ]
}

fn arb_opt_u64() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![Just(None), (0u64..u64::MAX / 2).prop_map(Some)]
}

fn arb_indices() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..10_000, 0usize..8)
}

fn arb_report() -> impl Strategy<Value = WireReport> {
    (
        0u64..100_000,
        0u64..64,
        arb_opt_u64(),
        arb_opt_f64(),
        arb_opt_f64(),
        (arb_opt_u64(), arb_opt_u64(), arb_opt_u64()),
    )
        .prop_map(
            |(iterations, degenerate_events, cycles, latency_s, energy_j, (t, a, b))| WireReport {
                iterations,
                degenerate_events,
                cycles,
                latency_s,
                energy_j,
                tier_switches: t,
                adc_conversions: a,
                buffer_peak_bits: b,
            },
        )
}

fn arb_request() -> impl Strategy<Value = Frame> {
    (
        0u64..u64::MAX / 2,
        arb_tenant(),
        arb_backend(),
        arb_vector(),
        prop_oneof![Just(None), arb_indices().prop_map(Some)],
        arb_opt_u64(),
    )
        .prop_map(
            |(tag, tenant, backend, query, truth, deadline_us)| Frame::Request {
                tag,
                tenant,
                backend,
                query,
                truth,
                deadline_us,
            },
        )
}

fn arb_response() -> impl Strategy<Value = Frame> {
    (
        (0u64..1 << 40, 0u64..1 << 40, arb_backend(), 0u32..64),
        (0u64..1 << 40, 0usize..2, 0usize..2, 0u64..100_000),
        arb_opt_u64(),
        arb_indices(),
        arb_opt_f64(),
        prop_oneof![Just(None), arb_report().prop_map(Some)],
    )
        .prop_map(
            |(
                (tag, id, backend, shard),
                (cursor, solved, converged, iterations),
                solved_at,
                decoded,
                wall_latency_s,
                report,
            )| {
                Frame::Response(WireResponse {
                    tag,
                    id,
                    backend,
                    shard,
                    cursor,
                    solved: solved == 1,
                    converged: converged == 1,
                    iterations,
                    solved_at,
                    decoded,
                    wall_latency_s,
                    report,
                })
            },
        )
}

fn arb_stats() -> impl Strategy<Value = Frame> {
    (
        (0u64..1 << 40, 0.0..1e4f64, 0.0..1e4f64, 0.0..1e4f64),
        (0.0..1e4f64, 0u64..1 << 40, 0u64..1 << 40),
        (
            0u32..1 << 16,
            0u64..1 << 40,
            0u64..1 << 40,
            0u64..1 << 40,
            0u64..1 << 40,
        ),
        proptest::collection::vec(0u64..1 << 40, 5),
        proptest::collection::vec(0u64..1 << 40, 9),
        proptest::collection::vec((arb_backend(), 0u32..64, 0u64..1 << 40), 0usize..5),
        proptest::collection::vec(0u64..1 << 40, 9),
        proptest::collection::vec(
            (
                arb_tenant(),
                (0u64..1 << 30, 0u64..1 << 30, 0u32..100, 0u64..1 << 30),
                arb_opt_f64(),
                arb_opt_f64(),
            ),
            0usize..4,
        ),
    )
        .prop_map(
            |(
                (latency_samples, p50_ms, p95_ms, p99_ms),
                (p999_ms, accepted, completed),
                (
                    open_connections,
                    reaped_timeout,
                    version_rejected,
                    conn_rejected,
                    accounting_anomalies,
                ),
                shed,
                service,
                shards,
                registry,
                tenants,
            )| {
                Frame::StatsResponse(WireStats {
                    latency_samples,
                    p50_ms,
                    p95_ms,
                    p99_ms,
                    p999_ms,
                    accepted,
                    completed,
                    open_connections,
                    reaped_timeout,
                    version_rejected,
                    conn_rejected,
                    accounting_anomalies,
                    shed: shed.try_into().expect("5 shed counters"),
                    service: service.try_into().expect("9 service counters"),
                    shards: shards
                        .into_iter()
                        .map(|(kind, queue_depth, next_cursor)| WireShardStat {
                            kind,
                            queue_depth,
                            next_cursor,
                        })
                        .collect(),
                    registry: WireRegistryStats {
                        interned_sets: registry[0],
                        dedup_hits: registry[1],
                        resolves: registry[2],
                        hot_hits: registry[3],
                        promotions: registry[4],
                        materializations: registry[5],
                        demotions: registry[6],
                        hot_bytes: registry[7],
                        cold_bytes: registry[8],
                    },
                    tenants: tenants
                        .into_iter()
                        .map(
                            |(tenant, (requests, solved, in_flight, iterations), e, l)| {
                                WireTenantStat {
                                    tenant,
                                    requests,
                                    solved,
                                    in_flight,
                                    iterations,
                                    energy_j: e,
                                    latency_s: l,
                                }
                            },
                        )
                        .collect(),
                })
            },
        )
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        arb_request(),
        arb_response(),
        (0u64..1 << 40, 0usize..ShedReason::ALL.len()).prop_map(|(tag, r)| Frame::Shed {
            tag,
            reason: ShedReason::ALL[r],
        }),
        Just(Frame::StatsRequest),
        arb_stats(),
        arb_tenant().prop_map(|message| Frame::Error { message }),
        (0u8..=255).prop_map(|version| Frame::Hello { version }),
        (0u8..=255).prop_map(|version| Frame::HelloAck { version }),
    ]
}

fn round_trip(frame: &Frame) -> Frame {
    let bytes = frame.encode();
    let mut cursor = std::io::Cursor::new(&bytes);
    let back = read_frame(&mut cursor)
        .expect("decodes")
        .expect("one frame");
    assert!(
        read_frame(&mut cursor).expect("clean tail").is_none(),
        "exactly one frame per encode"
    );
    back
}

proptest! {
    #[test]
    fn every_frame_round_trips_bit_exactly(frame in arb_frame()) {
        prop_assert_eq!(round_trip(&frame), frame);
    }

    #[test]
    fn back_to_back_frames_parse_independently(a in arb_frame(), b in arb_frame()) {
        let mut bytes = a.encode();
        bytes.extend_from_slice(&b.encode());
        let mut cursor = std::io::Cursor::new(&bytes);
        prop_assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), a);
        prop_assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b);
        prop_assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncating_any_frame_errors_cleanly(frame in arb_frame(), cut in 0usize..64) {
        let bytes = frame.encode();
        // Cut strictly inside the frame (any prefix, including inside the
        // 4-byte length header).
        let cut = 1 + cut % (bytes.len() - 1);
        let mut cursor = std::io::Cursor::new(&bytes[..cut]);
        match read_frame(&mut cursor) {
            Err(WireError::Truncated) => {}
            // Cutting inside a variable-length field can also leave a
            // structurally invalid (but complete-looking) prefix; either
            // typed error is acceptable, a panic or Ok is not.
            Err(WireError::Malformed(_)) => {}
            other => prop_assert!(false, "truncated frame must error, got {:?}", other),
        }
    }

    #[test]
    fn flipping_the_opcode_never_panics(frame in arb_frame(), opcode in 0u8..=255) {
        let bytes = frame.encode();
        let mut body = bytes[4..].to_vec();
        body[0] = opcode;
        // Any result is fine except a panic; unknown opcodes must say so.
        if let Err(WireError::UnknownOpcode(op)) = decode_body(&body) {
            prop_assert!(!(0x01..=0x08).contains(&op));
        }
    }
}

// ─── Directed malformed-input cases ─────────────────────────────────────

#[test]
fn truncated_length_prefix_is_truncated_error() {
    let mut cursor = std::io::Cursor::new(&[0x05u8, 0x00][..]);
    match read_frame(&mut cursor) {
        Err(WireError::Truncated) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }
}

#[test]
fn empty_stream_is_clean_eof() {
    let mut cursor = std::io::Cursor::new(&[][..]);
    assert!(read_frame(&mut cursor).unwrap().is_none());
}

#[test]
fn zero_length_frame_is_malformed() {
    let zero_len = 0u32.to_le_bytes();
    let mut cursor = std::io::Cursor::new(&zero_len[..]);
    match read_frame(&mut cursor) {
        Err(WireError::Malformed(_)) => {}
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn oversized_frame_is_refused_before_reading_the_payload() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&(MAX_FRAME_LEN + 7).to_le_bytes());
    // No payload follows — the length alone must trigger the refusal.
    let mut cursor = std::io::Cursor::new(&bytes);
    match read_frame(&mut cursor) {
        Err(WireError::Oversized { len }) => assert_eq!(len, MAX_FRAME_LEN + 7),
        other => panic!("expected Oversized, got {other:?}"),
    }
}

#[test]
fn unknown_opcode_is_reported_by_value() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.push(0x7F);
    let mut cursor = std::io::Cursor::new(&bytes);
    match read_frame(&mut cursor) {
        Err(WireError::UnknownOpcode(0x7F)) => {}
        other => panic!("expected UnknownOpcode(0x7F), got {other:?}"),
    }
}

#[test]
fn trailing_bytes_after_a_valid_payload_are_malformed() {
    let mut body = Frame::StatsRequest.encode()[4..].to_vec();
    body.push(0xEE);
    match decode_body(&body) {
        Err(WireError::Malformed(m)) => assert!(m.contains("trailing")),
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn corrupt_backend_and_shed_codes_are_malformed() {
    let shed = Frame::Shed {
        tag: 9,
        reason: ShedReason::QueueFull,
    };
    let mut body = shed.encode()[4..].to_vec();
    *body.last_mut().unwrap() = 200; // shed-reason code out of range
    assert!(matches!(decode_body(&body), Err(WireError::Malformed(_))));

    let req = Frame::Request {
        tag: 1,
        tenant: "t".to_string(),
        backend: BackendKind::Baseline,
        query: BipolarVector::ones(8),
        truth: None,
        deadline_us: None,
    };
    let mut body = req.encode()[4..].to_vec();
    // The backend code sits right after the 2-byte... locate it: opcode
    // (1) + tag (8) + tenant len (4) + "t" (1) = offset 14.
    assert_eq!(body[14], backend_code(BackendKind::Baseline));
    body[14] = 99;
    assert!(matches!(decode_body(&body), Err(WireError::Malformed(_))));
}

#[test]
fn hello_frames_round_trip_and_mismatch_is_typed() {
    use h3dfact::wire::PROTOCOL_VERSION;
    let hello = Frame::Hello {
        version: PROTOCOL_VERSION,
    };
    assert_eq!(round_trip(&hello), hello);
    let ack = Frame::HelloAck { version: 7 };
    assert_eq!(round_trip(&ack), ack);

    // The typed mismatch error names both versions so operators can see
    // which side is stale.
    let err = WireError::VersionMismatch {
        got: 1,
        expected: PROTOCOL_VERSION,
    };
    let msg = err.to_string();
    assert!(msg.contains("v1"), "{msg}");
    assert!(msg.contains(&format!("v{PROTOCOL_VERSION}")), "{msg}");
}

#[test]
fn declared_element_counts_beyond_the_payload_are_truncation() {
    // A truth list claiming u32::MAX entries inside a tiny frame must
    // fail fast (no allocation of u32::MAX elements).
    let req = Frame::Request {
        tag: 1,
        tenant: String::new(),
        backend: BackendKind::Baseline,
        query: BipolarVector::ones(8),
        truth: Some(vec![1, 2, 3]),
        deadline_us: None,
    };
    let mut body = req.encode()[4..].to_vec();
    // truth count sits 17 bytes from the end (4 count + 3×4 entries +
    // the trailing deadline presence byte).
    let count_at = body.len() - 17;
    body[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    match decode_body(&body) {
        Err(WireError::Truncated) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }
}
