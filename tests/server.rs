//! Integration tests for the network serving front-end: loopback
//! bit-identity against in-process replay, backpressure (queue-full
//! sheds), per-tenant quotas, the wire `STATS` endpoint, and malformed
//! frames that must not take down the accept loop.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use h3dfact::prelude::*;
use h3dfact::server::{self, ServeClient, ServerConfig, TenantQuota};
use h3dfact::wire::{self, Frame, ShedReason, WireResponse, PROTOCOL_VERSION};

/// The shared service shape: two stochastic shards plus one simulated
/// H3DFact shard, deterministic seed, zero flush deadline (every pump
/// sweep flushes whatever is queued).
fn service(threads: usize, batch: usize, capacity: usize) -> FactorizationService {
    FactorizationService::builder()
        .spec(ProblemSpec::new(3, 8, 256))
        .backends(&[(BackendKind::Stochastic, 2), (BackendKind::H3dFact, 1)])
        .seed(23)
        .max_iters(600)
        .batch_size(batch)
        .queue_capacity(capacity)
        .threads(threads)
        .flush_deadline(Duration::ZERO)
        .build()
}

fn recv_response(client: &mut ServeClient) -> WireResponse {
    match client.recv().expect("frame") {
        Some(Frame::Response(r)) => r,
        other => panic!("expected a response frame, got {other:?}"),
    }
}

fn recv_shed(client: &mut ServeClient) -> (u64, ShedReason) {
    match client.recv().expect("frame") {
        Some(Frame::Shed { tag, reason }) => (tag, reason),
        other => panic!("expected a shed frame, got {other:?}"),
    }
}

/// Tentpole acceptance: N concurrent clients over loopback receive
/// responses bit-identical to an in-process replay of the trace the live
/// server accumulated.
#[test]
fn loopback_responses_match_in_process_replay() {
    let svc = service(2, 4, 64);
    // Request streams are detached (they own the codebooks), so they stay
    // usable after the service moves into the server.
    let streams = vec![
        (
            "tenant-a",
            svc.request_stream("tenant-a", BackendKind::Stochastic, 0),
        ),
        (
            "tenant-b",
            svc.request_stream("tenant-b", BackendKind::Stochastic, 1),
        ),
        (
            "tenant-c",
            svc.request_stream("tenant-c", BackendKind::H3dFact, 2),
        ),
    ];
    let handle = server::spawn(svc, ServerConfig::default()).expect("spawn server");
    let addr = handle.local_addr();

    const PER_CLIENT: usize = 8;
    let workers: Vec<_> = streams
        .into_iter()
        .map(|(tenant, mut stream)| {
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                for tag in 0..PER_CLIENT as u64 {
                    let request = stream.next_request();
                    assert_eq!(request.tenant, tenant);
                    client.send_request(tag, &request).expect("send");
                }
                let mut responses: Vec<WireResponse> = (0..PER_CLIENT)
                    .map(|_| recv_response(&mut client))
                    .collect();
                // Tags must round-trip: each of this client's requests is
                // answered exactly once (order may differ).
                let mut tags: Vec<u64> = responses.iter().map(|r| r.tag).collect();
                tags.sort_unstable();
                assert_eq!(tags, (0..PER_CLIENT as u64).collect::<Vec<_>>());
                responses.sort_by_key(|r| r.id);
                responses
            })
        })
        .collect();
    let live: Vec<WireResponse> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("client thread"))
        .collect();

    let svc = handle.shutdown();
    assert_eq!(svc.trace().len(), 3 * PER_CLIENT, "every request admitted");
    let replayed = svc.replay(svc.trace());
    let by_id: BTreeMap<u64, &FactorizeResponse> = replayed.iter().map(|r| (r.id.0, r)).collect();

    assert_eq!(live.len(), replayed.len());
    for l in &live {
        let r = by_id.get(&l.id).expect("live id present in replay");
        assert_eq!(l.backend, r.backend, "{}: backend", l.id);
        assert_eq!(l.shard as usize, r.shard, "{}: shard", l.id);
        assert_eq!(l.cursor, r.cursor, "{}: cursor", l.id);
        assert_eq!(l.solved, r.outcome.solved, "{}: solved", l.id);
        assert_eq!(l.converged, r.outcome.converged, "{}: converged", l.id);
        assert_eq!(
            l.iterations as usize, r.outcome.iterations,
            "{}: iterations",
            l.id
        );
        assert_eq!(
            l.solved_at,
            r.outcome.solved_at.map(|v| v as u64),
            "{}: solved_at",
            l.id
        );
        let decoded: Vec<u32> = r.outcome.decoded.iter().map(|&i| i as u32).collect();
        assert_eq!(l.decoded, decoded, "{}: decode", l.id);
        let report = l.report.as_ref().expect("wire report");
        let replay_report = r.report.as_ref().expect("replay report");
        assert_eq!(report.iterations as usize, replay_report.iterations);
        assert_eq!(
            report.energy_j.map(f64::to_bits),
            replay_report.energy_j().map(f64::to_bits),
            "{}: energy must be bit-identical across the wire",
            l.id
        );
        assert_eq!(
            report.latency_s.map(f64::to_bits),
            replay_report.latency_s.map(f64::to_bits),
            "{}: modeled latency must be bit-identical across the wire",
            l.id
        );
    }
}

/// Queue-full backpressure: with micro-batches larger than the queue and
/// the deadline pump effectively disabled, the bounded shard queue fills
/// and further requests shed `QueueFull` — but the accepted ones still
/// complete at shutdown.
#[test]
fn full_queues_shed_with_explicit_backpressure_frames() {
    // A single stochastic shard: admission round-robin would otherwise
    // spread the load across shards and never fill one queue.
    let svc = FactorizationService::builder()
        .spec(ProblemSpec::new(3, 8, 256))
        .backends(&[(BackendKind::Stochastic, 1)])
        .seed(23)
        .max_iters(600)
        .batch_size(16)
        .queue_capacity(4)
        .threads(1)
        .flush_deadline(Duration::ZERO)
        .build();
    let mut stream = svc.request_stream("tenant-a", BackendKind::Stochastic, 0);
    let config = ServerConfig::default().pump_interval(Duration::from_secs(3600));
    let handle = server::spawn(svc, config).expect("spawn server");

    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    for tag in 0..6u64 {
        client
            .send_request(tag, &stream.next_request())
            .expect("send");
    }
    // Capacity is 4: requests 4 and 5 shed immediately.
    for expected_tag in 4..6u64 {
        let (tag, reason) = recv_shed(&mut client);
        assert_eq!(tag, expected_tag);
        assert_eq!(reason, ShedReason::QueueFull);
    }

    let stats = handle.stats();
    assert_eq!(stats.accepted, 4);
    assert_eq!(stats.shed_for(ShedReason::QueueFull), 2);
    assert_eq!(stats.shed_total(), 2);
    assert_eq!(stats.completed, 0, "nothing flushed yet");
    let depths: Vec<u32> = stats.shards.iter().map(|s| s.queue_depth).collect();
    assert_eq!(depths.iter().sum::<u32>(), 4, "admitted requests queued");

    // Shutdown drains the queue and delivers the four completions before
    // closing the socket.
    let svc = handle.shutdown();
    let mut tags: Vec<u64> = (0..4).map(|_| recv_response(&mut client).tag).collect();
    tags.sort_unstable();
    assert_eq!(tags, vec![0, 1, 2, 3]);
    assert!(matches!(client.recv(), Ok(None)), "clean close after drain");
    assert_eq!(svc.trace().len(), 4, "shed requests never reach the trace");
    assert_eq!(svc.stats().rejected, 2, "service-level shed counter");
}

/// Token-bucket quota: rate 0 with burst 2 admits exactly two requests
/// and sheds the rest as `RateLimited`, deterministically (no timing).
#[test]
fn token_bucket_quota_sheds_rate_limited() {
    let svc = service(1, 1, 16);
    let mut stream = svc.request_stream("metered", BackendKind::Stochastic, 0);
    let config = ServerConfig::default()
        .pump_interval(Duration::from_secs(3600))
        .quota("metered", TenantQuota::rate_limited(0.0, 2.0));
    let handle = server::spawn(svc, config).expect("spawn server");

    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    for tag in 0..4u64 {
        client
            .send_request(tag, &stream.next_request())
            .expect("send");
    }
    // Batch size 1: the two admitted requests complete and the other two
    // shed. Sheds are sent from the reader thread while responses come
    // off the solver thread, so only the per-kind tag sets are
    // deterministic, not the interleaving.
    let mut answered = Vec::new();
    let mut shed = Vec::new();
    for _ in 0..4 {
        match client.recv().expect("frame") {
            Some(Frame::Response(r)) => answered.push(r.tag),
            Some(Frame::Shed { tag, reason }) => {
                assert_eq!(reason, ShedReason::RateLimited);
                shed.push(tag);
            }
            other => panic!("expected response or shed, got {other:?}"),
        }
    }
    answered.sort_unstable();
    shed.sort_unstable();
    assert_eq!(answered, vec![0, 1]);
    assert_eq!(shed, vec![2, 3]);

    let stats = handle.stats();
    assert_eq!(stats.accepted, 2);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.shed_for(ShedReason::RateLimited), 2);
    handle.shutdown();
}

/// In-flight cap: with `max_in_flight = 1` and completions held back, the
/// second request sheds `InFlightLimit`; once the first completes the
/// slot frees up again.
#[test]
fn in_flight_cap_sheds_until_completion_frees_the_slot() {
    let svc = service(1, 16, 16);
    let mut stream = svc.request_stream("capped", BackendKind::Stochastic, 0);
    let config = ServerConfig::default()
        .pump_interval(Duration::from_secs(3600))
        .default_quota(TenantQuota::open().with_max_in_flight(1));
    let handle = server::spawn(svc, config).expect("spawn server");

    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    client
        .send_request(0, &stream.next_request())
        .expect("send");
    client
        .send_request(1, &stream.next_request())
        .expect("send");
    let (tag, reason) = recv_shed(&mut client);
    assert_eq!(tag, 1);
    assert_eq!(reason, ShedReason::InFlightLimit);

    let stats = handle.stats();
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.shed_for(ShedReason::InFlightLimit), 1);
    let capped = stats
        .tenants
        .iter()
        .find(|t| t.tenant == "capped")
        .expect("tenant roll-up");
    assert_eq!(capped.in_flight, 1);

    handle.shutdown();
    assert_eq!(recv_response(&mut client).tag, 0);
    assert!(matches!(client.recv(), Ok(None)));
}

/// The `STATS` endpoint over the wire: percentiles, counters, per-shard
/// queue depths, and per-tenant roll-ups all arrive in one frame.
#[test]
fn stats_endpoint_reports_latency_and_rollups_over_the_wire() {
    let svc = service(1, 1, 16);
    let mut stream = svc.request_stream("tenant-a", BackendKind::H3dFact, 7);
    let handle = server::spawn(svc, ServerConfig::default()).expect("spawn server");

    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    const N: u64 = 5;
    for tag in 0..N {
        client
            .send_request(tag, &stream.next_request())
            .expect("send");
        recv_response(&mut client);
    }
    let stats = client.stats().expect("stats round-trip");
    assert_eq!(stats.accepted, N);
    assert_eq!(stats.completed, N);
    assert_eq!(stats.latency_samples, N);
    assert!(stats.p50_ms > 0.0);
    assert!(stats.p50_ms <= stats.p95_ms);
    assert!(stats.p95_ms <= stats.p99_ms);
    assert!(stats.p99_ms <= stats.p999_ms);
    assert_eq!(stats.shed_total(), 0);
    assert_eq!(stats.shards.len(), 3);
    assert!(stats.shards.iter().all(|s| s.queue_depth == 0));
    // The H3DFact shard advanced its cursor by N runs.
    assert_eq!(stats.shards.iter().map(|s| s.next_cursor).sum::<u64>(), N);
    let tenant = stats
        .tenants
        .iter()
        .find(|t| t.tenant == "tenant-a")
        .expect("tenant roll-up");
    assert_eq!(tenant.requests, N);
    assert_eq!(tenant.in_flight, 0);
    assert!(
        tenant.energy_j.unwrap_or(0.0) > 0.0,
        "hardware shard reports energy"
    );
    // The service-level counter block mirrors ServiceStats field order.
    assert_eq!(stats.service[0], N, "service accepted");
    assert_eq!(stats.service[2], N, "service completed");
    // The v4 registry block is live: the service's codebook set is
    // interned and every solve pass resolved (touched) it. (The global
    // registry is shared across this binary's tests, so counts are
    // lower bounds.)
    assert!(stats.registry.interned_sets >= 1);
    assert!(stats.registry.resolves > 0, "solver loops touch the handle");
    assert!(stats.registry.cold_bytes > 0);
    assert_eq!(
        stats.registry.resident_bytes(),
        stats.registry.cold_bytes + stats.registry.hot_bytes
    );
    handle.shutdown();
}

/// Protocol faults are per-connection: garbage frames get an `Error`
/// frame and a closed connection, while the accept loop keeps serving
/// fresh clients.
#[test]
fn malformed_frames_kill_the_connection_but_not_the_server() {
    let svc = service(1, 1, 16);
    let mut stream = svc.request_stream("tenant-a", BackendKind::Stochastic, 0);
    let handle = server::spawn(svc, ServerConfig::default()).expect("spawn server");
    let addr = handle.local_addr();

    // Case 1: oversized length prefix.
    let mut raw = TcpStream::connect(addr).expect("connect raw");
    raw.write_all(&u32::MAX.to_le_bytes()).expect("write");
    expect_error_then_close(&mut raw);

    // Case 2: unknown opcode inside a well-formed frame.
    let mut raw = TcpStream::connect(addr).expect("connect raw");
    raw.write_all(&2u32.to_le_bytes()).expect("write");
    raw.write_all(&[0xEE, 0x00]).expect("write");
    expect_error_then_close(&mut raw);

    // Case 3: truncated frame — length prefix promises more than is sent.
    let mut raw = TcpStream::connect(addr).expect("connect raw");
    raw.write_all(&64u32.to_le_bytes()).expect("write");
    raw.write_all(&[0x01]).expect("write");
    raw.shutdown(std::net::Shutdown::Write).expect("shutdown");
    expect_error_then_close(&mut raw);

    // Case 4: a client sending a server-to-client frame is a violation.
    let mut bad_client = ServeClient::connect(addr).expect("connect");
    bad_client
        .send(&Frame::Shed {
            tag: 9,
            reason: ShedReason::QueueFull,
        })
        .expect("send");
    match bad_client.recv() {
        Ok(Some(Frame::Error { message })) => {
            assert!(message.contains("unexpected"), "got: {message}")
        }
        other => panic!("expected error frame, got {other:?}"),
    }

    // The server is still alive: a well-behaved client completes a full
    // round-trip afterwards.
    let mut client = ServeClient::connect(addr).expect("connect");
    client
        .send_request(42, &stream.next_request())
        .expect("send");
    let response = recv_response(&mut client);
    assert_eq!(response.tag, 42);
    let svc = handle.shutdown();
    assert_eq!(svc.trace().len(), 1, "only the valid request was admitted");
}

/// Reads one `Error` frame off a raw socket, then expects the server to
/// close it.
fn expect_error_then_close(raw: &mut TcpStream) {
    match wire::read_frame(raw).expect("error frame") {
        Some(Frame::Error { message }) => assert!(message.contains("protocol error")),
        other => panic!("expected error frame, got {other:?}"),
    }
    let mut rest = Vec::new();
    raw.read_to_end(&mut rest).expect("read to close");
    assert!(rest.is_empty(), "no frames after the error");
}

/// Slow-loris regression: a connection that sends a frame header and then
/// stalls is reaped within the configured read timeout — with an explicit
/// error frame — while a concurrent well-behaved tenant keeps completing
/// round-trips on the same server.
#[test]
fn slow_loris_connections_are_reaped_within_the_read_timeout() {
    let svc = service(1, 1, 16);
    let mut stream = svc.request_stream("tenant-a", BackendKind::Stochastic, 0);
    let timeout = Duration::from_millis(250);
    let config = ServerConfig::default().read_timeout(timeout);
    let handle = server::spawn(svc, config).expect("spawn server");
    let addr = handle.local_addr();

    // The attacker: a length prefix promising 64 bytes, then silence.
    let mut loris = TcpStream::connect(addr).expect("connect raw");
    loris.write_all(&64u32.to_le_bytes()).expect("write");
    let t0 = Instant::now();

    // Meanwhile a well-behaved tenant completes several round-trips.
    let mut client = ServeClient::connect(addr).expect("connect");
    for tag in 0..3u64 {
        client
            .send_request(tag, &stream.next_request())
            .expect("send");
        assert_eq!(recv_response(&mut client).tag, tag);
    }
    // Close cleanly before idling through the reap window — a clean
    // close is EOF, not a timeout, so only the loris can be reaped.
    drop(client);

    // The stalled connection gets reaped: an explicit error, then close.
    match wire::read_frame(&mut loris).expect("reap frame") {
        Some(Frame::Error { message }) => {
            assert!(message.contains("timed out"), "got: {message}")
        }
        other => panic!("expected reap error, got {other:?}"),
    }
    let reaped_after = t0.elapsed();
    assert!(
        reaped_after >= timeout / 2 && reaped_after < timeout * 20,
        "reaped in {reaped_after:?}, configured timeout {timeout:?}"
    );
    let mut rest = Vec::new();
    loris.read_to_end(&mut rest).expect("read to close");
    assert!(rest.is_empty(), "closed after the reap error");

    let stats = handle.stats();
    assert_eq!(stats.reaped_timeout, 1);
    assert_eq!(stats.accepted, 3, "the honest tenant was never disturbed");
    handle.shutdown();
}

/// Version negotiation: a client announcing a stale protocol version gets
/// the server's version in the ack, a loud error naming the mismatch, and
/// a closed connection — before any request frame can decode against the
/// wrong layout. Matching versions proceed normally.
#[test]
fn version_mismatch_is_rejected_at_the_handshake() {
    let svc = service(1, 1, 16);
    let mut stream = svc.request_stream("tenant-a", BackendKind::Stochastic, 0);
    let handle = server::spawn(svc, ServerConfig::default()).expect("spawn server");
    let addr = handle.local_addr();

    let mut stale = TcpStream::connect(addr).expect("connect raw");
    wire::write_frame(&mut stale, &Frame::Hello { version: 1 }).expect("hello");
    match wire::read_frame(&mut stale).expect("ack frame") {
        Some(Frame::HelloAck { version }) => assert_eq!(version, PROTOCOL_VERSION),
        other => panic!("expected hello ack, got {other:?}"),
    }
    match wire::read_frame(&mut stale).expect("error frame") {
        Some(Frame::Error { message }) => assert!(message.contains("version"), "got: {message}"),
        other => panic!("expected version error, got {other:?}"),
    }
    let mut rest = Vec::new();
    stale.read_to_end(&mut rest).expect("read to close");
    assert!(rest.is_empty());

    // A current client on the same server completes the handshake and a
    // round-trip; the stats frame carries the rejection counter.
    let mut client = ServeClient::connect(addr).expect("connect");
    client
        .send_request(0, &stream.next_request())
        .expect("send");
    recv_response(&mut client);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.version_rejected, 1);
    assert_eq!(stats.accepted, 1);
    handle.shutdown();
}

/// The connection cap: connection attempts past `max_connections` are
/// refused with an explicit error, counted, and closed — and a slot
/// freed by a disconnect is usable again.
#[test]
fn connections_past_the_cap_are_refused_until_a_slot_frees() {
    let svc = service(1, 1, 16);
    let mut stream = svc.request_stream("tenant-a", BackendKind::Stochastic, 0);
    let config = ServerConfig::default().max_connections(1);
    let handle = server::spawn(svc, config).expect("spawn server");
    let addr = handle.local_addr();

    let first = ServeClient::connect(addr).expect("first connection");
    assert_eq!(handle.stats().open_connections, 1);

    // The second attempt is refused before the handshake.
    let mut second = TcpStream::connect(addr).expect("tcp connect");
    match wire::read_frame(&mut second).expect("refusal frame") {
        Some(Frame::Error { message }) => {
            assert!(message.contains("capacity"), "got: {message}")
        }
        other => panic!("expected capacity error, got {other:?}"),
    }
    let mut rest = Vec::new();
    second.read_to_end(&mut rest).expect("read to close");
    assert!(rest.is_empty());
    assert_eq!(handle.stats().conn_rejected, 1);

    // Dropping the first connection frees the slot (the reader thread
    // notices the close asynchronously — poll briefly).
    first.finish_sending().expect("close write half");
    drop(first);
    let t0 = Instant::now();
    let mut reconnected = loop {
        if let Ok(client) = ServeClient::connect(addr) {
            break client;
        }
        assert!(t0.elapsed() < Duration::from_secs(10), "slot never freed");
        std::thread::sleep(Duration::from_millis(10));
    };
    reconnected
        .send_request(7, &stream.next_request())
        .expect("send");
    assert_eq!(recv_response(&mut reconnected).tag, 7);
    handle.shutdown();
}

/// Worker handoff: a dispatched micro-batch solves on the solver thread,
/// not the submitting connection's reader thread — so admission and stats
/// stay responsive mid-solve. With the old inline design the stats
/// round-trip could not be answered until the whole batch finished.
#[test]
fn admission_and_stats_stay_responsive_while_a_batch_solves() {
    const BATCH: usize = 32;
    let svc = FactorizationService::builder()
        .spec(ProblemSpec::new(3, 8, 256))
        .backends(&[(BackendKind::Stochastic, 1)])
        .seed(23)
        .max_iters(600)
        .batch_size(BATCH)
        .queue_capacity(2 * BATCH)
        .threads(1)
        .flush_deadline(Duration::ZERO)
        .build();
    let mut stream = svc.request_stream("tenant-a", BackendKind::Stochastic, 0);
    let config = ServerConfig::default()
        .solver_threads(1)
        .pump_interval(Duration::from_secs(3600));
    let handle = server::spawn(svc, config).expect("spawn server");

    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    // Fill exactly one batch: admission BATCH dispatches it to the
    // solver thread and returns immediately.
    for tag in 0..BATCH as u64 {
        client
            .send_request(tag, &stream.next_request())
            .expect("send");
    }
    // One more admission plus a stats round-trip, both raced against the
    // in-flight solve. Admission must succeed and stats must arrive
    // before the batch completes — impossible if the flush ran inline on
    // this connection's reader thread.
    client
        .send_request(BATCH as u64, &stream.next_request())
        .expect("send");
    let stats = client.stats().expect("stats mid-solve");
    assert_eq!(
        stats.accepted,
        BATCH as u64 + 1,
        "admission off the solve path"
    );
    assert!(
        (stats.service[3] as usize) >= 1,
        "batch was dispatched (flushes counter)"
    );
    assert!(
        stats.completed < BATCH as u64,
        "stats answered before the dispatched batch finished"
    );

    // All work still completes and delivers.
    let mut tags: Vec<u64> = (0..BATCH).map(|_| recv_response(&mut client).tag).collect();
    let svc = handle.shutdown();
    tags.push(recv_response(&mut client).tag);
    tags.sort_unstable();
    assert_eq!(tags, (0..=BATCH as u64).collect::<Vec<_>>());
    assert_eq!(svc.stats().completed, BATCH as u64 + 1);
}

/// Request deadlines on the wire: an expired queued request is shed as
/// `DeadlineExceeded` at the next admission sweep, consumes no cursor,
/// and never enters the trace — the replay contract is preserved.
#[test]
fn expired_deadlines_shed_without_consuming_cursors() {
    let svc = FactorizationService::builder()
        .spec(ProblemSpec::new(3, 8, 256))
        .backends(&[(BackendKind::Stochastic, 1)])
        .seed(23)
        .max_iters(600)
        .batch_size(16)
        .queue_capacity(16)
        .threads(1)
        .flush_deadline(Duration::ZERO)
        .build();
    let mut stream = svc.request_stream("tenant-a", BackendKind::Stochastic, 0);
    let config = ServerConfig::default().pump_interval(Duration::from_secs(3600));
    let handle = server::spawn(svc, config).expect("spawn server");

    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    let mut doomed = stream.next_request();
    doomed.deadline = Some(Duration::from_micros(1));
    client.send_request(0, &doomed).expect("send");
    std::thread::sleep(Duration::from_millis(5));
    // The next admission to the shard sweeps the expired entry first.
    client
        .send_request(1, &stream.next_request())
        .expect("send");

    let (tag, reason) = recv_shed(&mut client);
    assert_eq!(tag, 0);
    assert_eq!(reason, ShedReason::DeadlineExceeded);

    let stats = handle.stats();
    assert_eq!(stats.shed_for(ShedReason::DeadlineExceeded), 1);
    assert_eq!(stats.accepted, 2, "the doomed request was admitted");
    assert_eq!(stats.service[8], 1, "service expired counter");

    let svc = handle.shutdown();
    assert_eq!(recv_response(&mut client).tag, 1);
    assert_eq!(
        svc.trace().len(),
        1,
        "expired request never enters the trace"
    );
    assert_eq!(svc.trace()[0].cursor, 0, "no cursor consumed by the expiry");
    let replayed = svc.replay(svc.trace());
    assert_eq!(replayed.len(), 1);
}

/// An unknown backend wire code is caught by the codec (`Malformed`), but
/// a *known* code whose shard pool is absent sheds `UnknownBackend` — the
/// service-level rejection surfaced on the wire.
#[test]
fn requests_for_unpooled_backends_shed_unknown_backend() {
    // The pool has no PCM shard.
    let svc = service(1, 1, 16);
    let mut stream = svc.request_stream("tenant-a", BackendKind::Stochastic, 0);
    let handle = server::spawn(svc, ServerConfig::default()).expect("spawn server");

    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    let mut request = stream.next_request();
    request.backend = BackendKind::Pcm;
    client.send_request(3, &request).expect("send");
    let (tag, reason) = recv_shed(&mut client);
    assert_eq!(tag, 3);
    assert_eq!(reason, ShedReason::UnknownBackend);
    assert_eq!(handle.stats().shed_for(ShedReason::UnknownBackend), 1);
    handle.shutdown();
}
