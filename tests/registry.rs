//! Registry integration contracts: content-addressed interning across
//! sessions and threads, hot/cold tier transitions under byte-budget
//! pressure, and bit-identity of every result in any tier state.

use std::sync::Arc;

use h3dfact::prelude::*;
use h3dfact::registry::DEFAULT_HOT_BUDGET_BYTES;

fn session_on(registry: &Arc<CodebookRegistry>, seed: u64, threads: usize) -> Session {
    Session::builder()
        .spec(ProblemSpec::new(3, 8, 256))
        .backend(BackendKind::Stochastic)
        .seed(seed)
        .max_iters(400)
        .threads(threads)
        .registry(Arc::clone(registry))
        .build()
}

/// A problem shape whose codebooks stream in the bit-GEMM (512×2048 rows
/// are 128 KiB, past the 96 KiB threshold), so promotion actually
/// materializes lane mirrors and demotion actually reclaims bytes.
fn streaming_session_on(registry: &Arc<CodebookRegistry>, seed: u64) -> Session {
    Session::builder()
        .spec(ProblemSpec::new(2, 512, 2048))
        .backend(BackendKind::Baseline)
        .seed(seed)
        .max_iters(30)
        .registry(Arc::clone(registry))
        .build()
}

#[test]
fn same_seed_sessions_share_one_interned_allocation() {
    let reg = Arc::new(CodebookRegistry::new());
    let a = session_on(&reg, 7, 1);
    let b = session_on(&reg, 7, 1);
    // Content-identical codebooks resolve to pointer-equal Arcs: two
    // tenants, one allocation.
    assert!(Arc::ptr_eq(
        &a.codebook_handle().resolve(),
        &b.codebook_handle().resolve()
    ));
    let stats = reg.stats();
    assert_eq!(stats.interned_sets, 1);
    assert_eq!(stats.dedup_hits, 1);
    // And a different seed interns a second, distinct set.
    let c = session_on(&reg, 8, 1);
    assert!(!Arc::ptr_eq(
        &a.codebook_handle().resolve(),
        &c.codebook_handle().resolve()
    ));
    assert_eq!(reg.stats().interned_sets, 2);
}

#[test]
fn tenant_footprint_is_flat_in_shared_tenant_count() {
    let reg = Arc::new(CodebookRegistry::new());
    let _first = session_on(&reg, 42, 1);
    let single_tenant_bytes = reg.stats().resident_bytes();
    assert!(single_tenant_bytes > 0);
    let _rest: Vec<Session> = (0..63).map(|_| session_on(&reg, 42, 1)).collect();
    // 64 tenants over one codebook set cost exactly one set — well
    // inside the ≤1.1× acceptance bound, since interning dedups to the
    // same entry.
    assert_eq!(reg.stats().resident_bytes(), single_tenant_bytes);
    assert_eq!(reg.stats().interned_sets, 1);
    assert_eq!(reg.stats().dedup_hits, 63);
}

#[test]
fn interning_from_two_threads_resolves_pointer_equal() {
    let reg = Arc::new(CodebookRegistry::new());
    let resolved: Vec<_> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let reg = Arc::clone(&reg);
                scope.spawn(move || session_on(&reg, 11, 1).codebook_handle().resolve())
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    assert!(Arc::ptr_eq(&resolved[0], &resolved[1]));
    assert_eq!(reg.stats().interned_sets, 1);
}

#[test]
fn results_are_bit_identical_across_registry_instances_and_threads() {
    // One session on a private registry, one on another, one parallel:
    // registry choice and tier state must never leak into outcomes.
    let reg_a = Arc::new(CodebookRegistry::new());
    let reg_b = Arc::new(CodebookRegistry::with_hot_budget(0));
    let mut a = session_on(&reg_a, 19, 1);
    let mut b = session_on(&reg_b, 19, 1);
    let mut c = session_on(&reg_a, 19, 4);
    let (ra, rb, rc) = (a.run(12), b.run(12), c.run(12));
    for (x, y) in ra.outcomes.iter().zip(&rb.outcomes) {
        assert_eq!(x.decoded, y.decoded);
        assert_eq!(x.iterations, y.iterations);
        assert_eq!(x.solved, y.solved);
    }
    for (x, y) in ra.outcomes.iter().zip(&rc.outcomes) {
        assert_eq!(x.decoded, y.decoded);
        assert_eq!(x.iterations, y.iterations);
    }
    assert_eq!(ra.total_iterations, rb.total_iterations);
    assert_eq!(ra.total_iterations, rc.total_iterations);
}

#[test]
fn lru_demotion_and_rematerialization_round_trip_bit_identically() {
    // Budget fits one set's lane mirrors (2 × 128 KiB per set), so two
    // streaming sessions evict each other's hot entries on every pass.
    let one_set_mirrors = 2 * 512 * 2048 / 8;
    let pressured = Arc::new(CodebookRegistry::with_hot_budget(one_set_mirrors));
    let mut p1 = streaming_session_on(&pressured, 1);
    let mut p2 = streaming_session_on(&pressured, 2);
    let mut thrash = Vec::new();
    for _ in 0..3 {
        thrash.push(p1.run(1));
        thrash.push(p2.run(1));
    }
    let stats = pressured.stats();
    assert!(
        stats.demotions >= 4,
        "alternating passes must thrash the hot tier (saw {} demotions)",
        stats.demotions
    );
    // Demotion is member-granular: evicting one of these 2-member sets
    // counts 2 demotions, while the rebuild that follows is a single
    // materialization pass covering both mirrors.
    assert!(stats.demotions <= 2 * stats.materializations);
    assert!(stats.materializations > 0);
    assert!(stats.hot_bytes as usize <= one_set_mirrors);

    // The same passes under no pressure (everything stays hot).
    let roomy = Arc::new(CodebookRegistry::with_hot_budget(DEFAULT_HOT_BUDGET_BYTES));
    let mut r1 = streaming_session_on(&roomy, 1);
    let mut r2 = streaming_session_on(&roomy, 2);
    let mut calm = Vec::new();
    for _ in 0..3 {
        calm.push(r1.run(1));
        calm.push(r2.run(1));
    }
    assert_eq!(roomy.stats().demotions, 0);

    // Demote → rebuild → solve is bit-identical to always-hot.
    for (t, c) in thrash.iter().zip(&calm) {
        assert_eq!(t.outcomes.len(), c.outcomes.len());
        for (x, y) in t.outcomes.iter().zip(&c.outcomes) {
            assert_eq!(x.decoded, y.decoded);
            assert_eq!(x.iterations, y.iterations);
            assert_eq!(x.solved, y.solved);
        }
    }
}

#[test]
fn streaming_sets_promote_hot_and_small_sets_alias_cold() {
    let reg = Arc::new(CodebookRegistry::new());
    let small = session_on(&reg, 5, 1);
    let streaming = streaming_session_on(&reg, 5);
    let small_books = small.codebook_handle().resolve();
    let streaming_books = streaming.codebook_handle().resolve();
    // 8×256 rows (256 B) never stream: no lane mirror, no hot bytes.
    assert!(small_books.iter().all(|b| !b.has_lane_mirror()));
    // 512×2048 rows stream: promotion materialized the mirrors.
    assert!(streaming_books.iter().all(|b| b.has_lane_mirror()));
    assert!(reg.stats().hot_bytes > 0);
}

#[test]
fn service_replays_bit_identically_on_a_private_registry() {
    let reg = Arc::new(CodebookRegistry::new());
    let mut svc = FactorizationService::builder()
        .spec(ProblemSpec::new(3, 8, 256))
        .backends(&[(BackendKind::Stochastic, 2)])
        .seed(50)
        .max_iters(300)
        .batch_size(4)
        .registry(Arc::clone(&reg))
        .build();
    let mut stream = svc.request_stream("tenant", BackendKind::Stochastic, 0);
    for _ in 0..10 {
        let req = stream.next_request();
        svc.submit(req);
    }
    let mut live = svc.drain();
    live.sort_by_key(|r| r.id);
    let mut replayed = svc.replay(svc.trace());
    replayed.sort_by_key(|r| r.id);
    assert_eq!(live.len(), replayed.len());
    for (l, r) in live.iter().zip(&replayed) {
        assert_eq!(l.outcome.decoded, r.outcome.decoded);
        assert_eq!(l.outcome.iterations, r.outcome.iterations);
        assert_eq!(l.cursor, r.cursor);
    }
    // The serving path resolves once per micro-batch + once per replay:
    // the registry observed the traffic.
    let stats = reg.stats();
    assert!(stats.resolves > 0);
    assert_eq!(stats.interned_sets, 1);
}
