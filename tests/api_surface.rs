//! The unified API surface: `Session` builder round-trips, `Box<dyn
//! Backend>` dispatch over all six engines, and batch-vs-sequential
//! equivalence at fixed seeds.

use h3dfact::prelude::*;
use resonator::batch::random_batch;

#[test]
fn session_builder_round_trip() {
    let spec = ProblemSpec::new(3, 8, 256);
    let session = Session::builder()
        .spec(spec)
        .backend(BackendKind::Stochastic)
        .seed(7)
        .max_iters(321)
        .build();
    assert_eq!(session.spec(), spec);
    assert_eq!(session.backend_kind(), BackendKind::Stochastic);
    assert_eq!(session.backend_name(), "stochastic-sw");
    assert_eq!(session.seed(), 7);
    assert_eq!(session.max_iters(), 321);
    assert_eq!(session.codebooks().len(), spec.factors);
    assert_eq!(session.codebooks()[0].len(), spec.codebook_size);
    assert_eq!(session.codebooks()[0].dim(), spec.dim);
    assert!(session.last_run_stats().is_none(), "no runs yet");
}

#[test]
fn builder_missing_spec_is_reported() {
    let err = Session::builder().try_build().unwrap_err();
    assert_eq!(err, SessionBuildError::MissingSpec);
    let err = Session::builder()
        .spec(ProblemSpec::new(2, 4, 128))
        .max_iters(0)
        .try_build()
        .unwrap_err();
    assert_eq!(err, SessionBuildError::ZeroIterationBudget);
}

#[test]
fn all_six_engines_dispatch_through_dyn_backend() {
    // One problem, six engines, one trait object type — the acceptance
    // bar of the API redesign.
    let spec = ProblemSpec::new(3, 8, 256);
    let problem = FactorizationProblem::random(spec, &mut rng_from_seed(42));
    let mut names = Vec::new();
    for kind in BackendKind::ALL {
        let mut backend: Box<dyn Backend> = kind.instantiate(spec, 800, 5, None, None);
        let outcome = backend.factorize(&problem);
        assert!(outcome.iterations >= 1, "{} ran no iterations", kind);
        // Every backend must report in the common format after a run.
        let report = backend
            .last_run_stats()
            .unwrap_or_else(|| panic!("{} produced no run report", kind));
        assert_eq!(report.backend, kind.name());
        assert_eq!(report.iterations, outcome.iterations);
        let caps = backend.capabilities();
        assert_eq!(
            report.energy.is_some(),
            caps.energy_model,
            "{}: energy report disagrees with capabilities",
            kind
        );
        assert_eq!(
            report.latency_s.is_some(),
            caps.latency_model,
            "{}: latency report disagrees with capabilities",
            kind
        );
        if let Some(e) = report.energy_j() {
            assert!(e > 0.0, "{}: non-positive energy", kind);
        }
        names.push(backend.name());
    }
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), 6, "backend names must be distinct: {names:?}");
}

#[test]
fn stochastic_backends_solve_through_dyn_dispatch() {
    let spec = ProblemSpec::new(3, 8, 256);
    let problem = FactorizationProblem::random(spec, &mut rng_from_seed(43));
    for kind in [
        BackendKind::H3dFact,
        BackendKind::Hybrid2d,
        BackendKind::Pcm,
        BackendKind::Stochastic,
    ] {
        let mut backend = kind.instantiate(spec, 2_000, 6, None, None);
        assert!(
            backend.factorize(&problem).solved,
            "{} failed a small problem",
            kind
        );
    }
}

#[test]
fn batch_equals_sequential_at_fixed_seeds() {
    // The default `factorize_batch` must be bitwise identical to looping
    // `factorize_query`, and the native H3DFact batch schedule must not
    // change functional outcomes either — only the cost model.
    let spec = ProblemSpec::new(3, 8, 256);
    for kind in BackendKind::ALL {
        let mut rng = rng_from_seed(77);
        let books: Vec<Codebook> = (0..spec.factors)
            .map(|_| Codebook::random(spec.codebook_size, spec.dim, &mut rng))
            .collect();
        let (items, _) = random_batch(&books, 4, 55);

        let mut seq = kind.instantiate(spec, 600, 11, None, None);
        let sequential: Vec<_> = items
            .iter()
            .map(|i| seq.factorize_query(&books, &i.query, i.truth.as_deref()))
            .collect();

        let mut bat = kind.instantiate(spec, 600, 11, None, None);
        let batch = bat.factorize_batch(&books, &items);

        assert_eq!(batch.len(), sequential.len());
        for (a, b) in batch.outcomes.iter().zip(&sequential) {
            assert_eq!(a.solved, b.solved, "{kind}: solved mismatch");
            assert_eq!(a.iterations, b.iterations, "{kind}: iteration mismatch");
            assert_eq!(a.decoded, b.decoded, "{kind}: decode mismatch");
        }
    }
}

#[test]
fn session_run_and_run_batched_agree_functionally() {
    let spec = ProblemSpec::new(3, 8, 256);
    let build = || {
        Session::builder()
            .spec(spec)
            .backend(BackendKind::H3dFact)
            .seed(31)
            .max_iters(800)
            .build()
    };
    let seq = build().run(3);
    let bat = build().run_batched(3);
    assert_eq!(seq.problems, bat.problems);
    assert_eq!(seq.solved, bat.solved);
    assert_eq!(seq.total_iterations, bat.total_iterations);
    for (a, b) in seq.outcomes.iter().zip(&bat.outcomes) {
        assert_eq!(a.decoded, b.decoded);
    }
    // Both paths carry hardware cost for the native-batch backend, and
    // batch energy is the exact sum of the per-item ledgers (same floats,
    // possibly different addition order).
    let (e_seq, e_bat) = (seq.total_energy_j.unwrap(), bat.total_energy_j.unwrap());
    assert!(e_seq > 0.0);
    assert!(
        (e_seq - e_bat).abs() <= 1e-9 * e_seq,
        "batch energy {e_bat} != sequential sum {e_seq}"
    );
    assert!(seq.total_latency_s.unwrap() > 0.0);
    // The SRAM-buffered batch schedule amortizes cycles: batched modeled
    // latency must not exceed the sequential sum.
    assert!(bat.total_latency_s.unwrap() <= seq.total_latency_s.unwrap() + 1e-12);
}

#[test]
fn sessions_with_same_seed_reproduce() {
    let spec = ProblemSpec::new(3, 8, 256);
    let mk = || {
        Session::builder()
            .spec(spec)
            .backend(BackendKind::H3dFact)
            .seed(13)
            .max_iters(500)
            .build()
    };
    let a = mk().run(3);
    let b = mk().run(3);
    assert_eq!(a.solved, b.solved);
    assert_eq!(a.total_iterations, b.total_iterations);
    assert_eq!(a.total_energy_j, b.total_energy_j);
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.decoded, y.decoded);
    }
}

#[test]
fn session_epochs_generate_fresh_problems() {
    let spec = ProblemSpec::new(3, 8, 256);
    let mut session = Session::builder()
        .spec(spec)
        .backend(BackendKind::Baseline)
        .seed(3)
        .max_iters(100)
        .build();
    let first = session.generate(5);
    let second = session.generate(5);
    assert!(
        first.iter().zip(&second).any(|(a, b)| a.query != b.query),
        "consecutive generations must differ"
    );
}

#[test]
fn session_accepts_custom_problems_and_queries() {
    let spec = ProblemSpec::new(2, 8, 256);
    let mut session = Session::builder()
        .spec(spec)
        .backend(BackendKind::Stochastic)
        .seed(21)
        .max_iters(500)
        .build();
    let problem = FactorizationProblem::random(spec, &mut rng_from_seed(9));
    let out = session.solve(&problem);
    assert!(out.solved);
    let noisy = problem.noisy_product(0.05, &mut rng_from_seed(10));
    let out = session.solve_query(problem.codebooks(), &noisy, Some(problem.true_indices()));
    assert!(out.iterations >= 1);
    assert_eq!(session.last_run_stats().unwrap().iterations, out.iterations);
}

#[test]
fn adc_bits_override_reaches_hardware_backends() {
    let spec = ProblemSpec::new(3, 8, 256);
    let mut session = Session::builder()
        .spec(spec)
        .backend(BackendKind::H3dFact)
        .seed(17)
        .max_iters(800)
        .adc_bits(8)
        .build();
    let report = session.run(2);
    assert!(report.accuracy() > 0.0);
    // 8-bit conversions still happen — the knob must not break the path.
    assert!(session.last_run_stats().unwrap().adc_conversions.unwrap() > 0);
}

#[test]
fn adc_bits_override_changes_stochastic_model_behavior() {
    // The algorithm-level backends honor the ADC knob too: at identical
    // seeds, a 2-bit activation quantizes far more coarsely than the
    // 4-bit default, so the (deterministic given seed) trajectories
    // differ.
    let spec = ProblemSpec::new(3, 16, 256);
    let run = |bits: Option<u8>| {
        let mut builder = Session::builder()
            .spec(spec)
            .backend(BackendKind::Stochastic)
            .seed(23)
            .max_iters(1_000);
        if let Some(b) = bits {
            builder = builder.adc_bits(b);
        }
        builder.build().run(4)
    };
    let default_bits = run(None);
    let coarse = run(Some(2));
    assert!(
        default_bits.total_iterations != coarse.total_iterations
            || default_bits
                .outcomes
                .iter()
                .zip(&coarse.outcomes)
                .any(|(a, b)| a.decoded != b.decoded),
        "adc_bits override had no effect on the stochastic model"
    );
}

#[test]
fn threaded_batch_report_is_identical_to_sequential() {
    // The deterministic parallel executor's whole contract: a threads(4)
    // batch run must produce a SessionReport identical to threads(1) at
    // the same seed — per-item factors, aggregate stats, and the exact
    // energy/latency floats — across software and hardware backends.
    let spec = ProblemSpec::new(3, 8, 256);
    for kind in [BackendKind::Stochastic, BackendKind::H3dFact] {
        let mk = |threads: usize| {
            Session::builder()
                .spec(spec)
                .backend(kind)
                .seed(41)
                .max_iters(600)
                .threads(threads)
                .build()
        };
        for batched in [false, true] {
            let run = |mut s: Session| if batched { s.run_batched(8) } else { s.run(8) };
            let seq = run(mk(1));
            let par = run(mk(4));
            assert_eq!(seq.backend, par.backend);
            assert_eq!(seq.problems, par.problems, "{kind}/batched={batched}");
            assert_eq!(seq.solved, par.solved, "{kind}/batched={batched}");
            assert_eq!(
                seq.total_iterations, par.total_iterations,
                "{kind}/batched={batched}"
            );
            assert_eq!(
                seq.total_energy_j, par.total_energy_j,
                "{kind}/batched={batched}: energy must be bit-identical"
            );
            assert_eq!(
                seq.total_latency_s, par.total_latency_s,
                "{kind}/batched={batched}: latency must be bit-identical"
            );
            for (a, b) in seq.outcomes.iter().zip(&par.outcomes) {
                assert_eq!(a.solved, b.solved, "{kind}/batched={batched}");
                assert_eq!(a.iterations, b.iterations, "{kind}/batched={batched}");
                assert_eq!(a.decoded, b.decoded, "{kind}/batched={batched}");
                assert_eq!(a.solved_at, b.solved_at, "{kind}/batched={batched}");
                assert_eq!(
                    a.degenerate_events, b.degenerate_events,
                    "{kind}/batched={batched}"
                );
            }
        }
    }
}

#[test]
fn threaded_session_cursor_survives_mixed_calls() {
    // A parallel run must leave the session where a sequential run would
    // have: a subsequent run() sees the same seed stream either way.
    let spec = ProblemSpec::new(3, 8, 256);
    let mk = |threads: usize| {
        Session::builder()
            .spec(spec)
            .backend(BackendKind::Stochastic)
            .seed(59)
            .max_iters(500)
            .threads(threads)
            .build()
    };
    let mut seq = mk(1);
    let _ = seq.run(3);
    let seq_second = seq.run(3);
    let mut par = mk(2);
    let _ = par.run(3);
    let par_second = par.run(3);
    assert_eq!(seq_second.solved, par_second.solved);
    assert_eq!(seq_second.total_iterations, par_second.total_iterations);
    for (a, b) in seq_second.outcomes.iter().zip(&par_second.outcomes) {
        assert_eq!(a.decoded, b.decoded);
    }
}

#[test]
fn deprecated_factorizer_surface_still_works() {
    // Kernel-level code written against `Factorizer` keeps compiling and
    // running against every backend (Backend is a strict superset).
    fn drive(engine: &mut dyn Factorizer, problem: &FactorizationProblem) -> bool {
        engine.factorize(problem).solved
    }
    let spec = ProblemSpec::new(3, 8, 256);
    let problem = FactorizationProblem::random(spec, &mut rng_from_seed(12));
    let mut backend = BackendKind::Stochastic.instantiate(spec, 800, 2, None, None);
    assert!(drive(backend.as_mut(), &problem));
}
