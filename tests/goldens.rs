//! Golden-report snapshot tests: pinned `WorkloadReport` unit scores and
//! key metrics for every built-in workload × (Baseline, Stochastic,
//! H3dFact) backend at fixed seeds.
//!
//! These exist to make accuracy regressions **loud**: a change to the
//! packed kernels, the resonator loop, the noise model, or the seed
//! plumbing that shifts any decode now fails here with the exact
//! before/after numbers, instead of silently drifting a benchmark. If a
//! change is *supposed* to shift results (e.g. a deliberate noise-model
//! fix), regenerate the table with
//! `cargo run --release -p h3dfact_bench --example probe_goldens` and
//! update the constants in the same commit, explaining why.

use h3dfact::perception::{AttributeSchema, NeuralFrontend};
use h3dfact::prelude::*;
use h3dfact::workload::Workload;

/// One pinned cell: workload, backend, units, headline score, solved
/// queries, total iterations, and auxiliary metrics.
type Golden = (
    &'static str,
    BackendKind,
    usize,
    f64,
    usize,
    usize,
    &'static [(&'static str, f64)],
);

/// Regenerate with `cargo run --release -p h3dfact_bench --example
/// probe_goldens` (session seed 101, max_iters 600, workload seeds
/// 201–204).
#[rustfmt::skip]
#[allow(clippy::excessive_precision)] // literals are verbatim probe output
const GOLDENS: &[Golden] = &[
    ("random",     BackendKind::Baseline,   6, 1.00000000000000000, 6,   19, &[]),
    ("perception", BackendKind::Baseline,   4, 1.00000000000000000, 4,  177, &[("attribute_accuracy", 1.00000000000000000), ("scene_accuracy", 1.00000000000000000)]),
    ("integer",    BackendKind::Baseline,   4, 1.00000000000000000, 4,    4, &[("factored_rate", 1.00000000000000000), ("exact_index_rate", 1.00000000000000000)]),
    ("capacity",   BackendKind::Baseline,   4, 1.00000000000000000, 4,    8, &[("mean_iterations_solved", 2.00000000000000000)]),
    ("random",     BackendKind::Stochastic, 6, 0.83333333333333337, 5,  631, &[]),
    ("perception", BackendKind::Stochastic, 4, 1.00000000000000000, 4,  283, &[("attribute_accuracy", 1.00000000000000000), ("scene_accuracy", 1.00000000000000000)]),
    ("integer",    BackendKind::Stochastic, 4, 1.00000000000000000, 4,    4, &[("factored_rate", 1.00000000000000000), ("exact_index_rate", 1.00000000000000000)]),
    ("capacity",   BackendKind::Stochastic, 4, 0.50000000000000000, 2, 1239, &[("mean_iterations_solved", 19.50000000000000000)]),
    ("random",     BackendKind::H3dFact,    6, 0.83333333333333337, 5,  630, &[]),
    ("perception", BackendKind::H3dFact,    4, 1.00000000000000000, 4,  142, &[("attribute_accuracy", 1.00000000000000000), ("scene_accuracy", 1.00000000000000000)]),
    ("integer",    BackendKind::H3dFact,    4, 1.00000000000000000, 4,    5, &[("factored_rate", 1.00000000000000000), ("exact_index_rate", 1.00000000000000000)]),
    ("capacity",   BackendKind::H3dFact,    4, 0.75000000000000000, 3,  629, &[("mean_iterations_solved", 9.66666666666666607)]),
];

fn workload_named(name: &str) -> (Box<dyn Workload>, usize) {
    match name {
        "random" => (
            Box::new(RandomFactorization::new(ProblemSpec::new(3, 8, 256), 201)),
            6,
        ),
        "perception" => (
            Box::new(Perception::attributes(
                AttributeSchema::raven(),
                256,
                NeuralFrontend::paper_quality(5),
                202,
            )),
            4,
        ),
        "integer" => (Box::new(IntegerFactorization::new(30, 256, 203)), 4),
        "capacity" => (
            Box::new(CapacitySweep::new(ProblemSpec::new(3, 8, 256), 204)),
            4,
        ),
        other => panic!("unknown golden workload {other}"),
    }
}

fn run_cell(name: &str, kind: BackendKind) -> WorkloadReport {
    let (mut workload, n) = workload_named(name);
    let mut session = Session::builder()
        .spec(workload.spec())
        .backend(kind)
        .seed(101)
        .max_iters(600)
        .build();
    session.run_workload(&mut *workload, n)
}

/// Deterministic results pin exactly; the epsilon only forgives decimal
/// printing of the golden literals, never behavioral drift.
const EPS: f64 = 1e-12;

fn check(golden: &Golden) {
    let &(name, kind, units, score, solved, total_iterations, metrics) = golden;
    let report = run_cell(name, kind);
    let cell = format!("{name} × {kind}");
    assert_eq!(report.units, units, "{cell}: units");
    assert!(
        (report.score - score).abs() < EPS,
        "{cell}: score drifted {score:.17} -> {:.17}",
        report.score
    );
    assert_eq!(
        report.session.solved, solved,
        "{cell}: solved count drifted"
    );
    assert_eq!(
        report.session.total_iterations, total_iterations,
        "{cell}: total iterations drifted"
    );
    assert_eq!(report.metrics.len(), metrics.len(), "{cell}: metric set");
    for &(mname, mval) in metrics {
        let got = report
            .metric(mname)
            .unwrap_or_else(|| panic!("{cell}: metric {mname} missing"));
        assert!(
            (got - mval).abs() < EPS,
            "{cell}: {mname} drifted {mval:.17} -> {got:.17}"
        );
    }
}

#[test]
fn golden_reports_baseline() {
    for g in GOLDENS.iter().filter(|g| g.1 == BackendKind::Baseline) {
        check(g);
    }
}

#[test]
fn golden_reports_stochastic() {
    for g in GOLDENS.iter().filter(|g| g.1 == BackendKind::Stochastic) {
        check(g);
    }
}

#[test]
fn golden_reports_h3dfact() {
    for g in GOLDENS.iter().filter(|g| g.1 == BackendKind::H3dFact) {
        check(g);
    }
}

#[test]
fn golden_table_covers_every_cell() {
    assert_eq!(GOLDENS.len(), 12, "4 workloads × 3 backends");
    for name in ["random", "perception", "integer", "capacity"] {
        for kind in [
            BackendKind::Baseline,
            BackendKind::Stochastic,
            BackendKind::H3dFact,
        ] {
            assert!(
                GOLDENS.iter().any(|g| g.0 == name && g.1 == kind),
                "missing golden cell {name} × {kind}"
            );
        }
    }
}
