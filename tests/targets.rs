//! Cross-target contract tests for the target abstraction:
//!
//! 1. **Golden reproduction** — every golden cell of `tests/goldens.rs`
//!    (4 workloads × 3 backends) run through
//!    `SessionBuilder::target(TargetKind::Functional)` is bit-identical to
//!    the engines' direct path, and every backend kind produces identical
//!    outcomes *and* identical `RunReport`s (energy ledgers included)
//!    through the functional target.
//! 2. **Functional ↔ DMA equivalence** — a service trace captured on the
//!    functional target replays bit-for-bit on the DMA-queue target (and
//!    vice versa), across multiple backend kinds: the trace/replay
//!    contract is the cross-target equivalence harness.
//! 3. **Approximate tiled co-simulation** — cost reports (energy, cycles,
//!    per-iteration temperature trajectory) are deterministic per seed
//!    and physically sane.

use h3dfact::perception::{AttributeSchema, NeuralFrontend};
use h3dfact::prelude::*;
use h3dfact::workload::Workload;

fn golden_workload(name: &str) -> (Box<dyn Workload>, usize) {
    match name {
        "random" => (
            Box::new(RandomFactorization::new(ProblemSpec::new(3, 8, 256), 201)),
            6,
        ),
        "perception" => (
            Box::new(Perception::attributes(
                AttributeSchema::raven(),
                256,
                NeuralFrontend::paper_quality(5),
                202,
            )),
            4,
        ),
        "integer" => (Box::new(IntegerFactorization::new(30, 256, 203)), 4),
        "capacity" => (
            Box::new(CapacitySweep::new(ProblemSpec::new(3, 8, 256), 204)),
            4,
        ),
        other => panic!("unknown golden workload {other}"),
    }
}

/// Runs one golden cell (same seeds as `tests/goldens.rs`), optionally
/// routed through an execution target.
fn run_cell(name: &str, kind: BackendKind, target: Option<TargetKind>) -> WorkloadReport {
    let (mut workload, n) = golden_workload(name);
    let mut builder = Session::builder()
        .spec(workload.spec())
        .backend(kind)
        .seed(101)
        .max_iters(600);
    if let Some(t) = target {
        builder = builder.target(t);
    }
    let mut session = builder.build();
    session.run_workload(&mut *workload, n)
}

/// Field-by-field outcome equality, excluding wall-clock phase times.
fn assert_outcomes_identical(a: &FactorizationOutcome, b: &FactorizationOutcome, cell: &str) {
    assert_eq!(a.solved, b.solved, "{cell}: solved");
    assert_eq!(a.iterations, b.iterations, "{cell}: iterations");
    assert_eq!(a.decoded, b.decoded, "{cell}: decoded indices");
    assert_eq!(a.converged, b.converged, "{cell}: converged");
    assert_eq!(
        a.degenerate_events, b.degenerate_events,
        "{cell}: degenerate events"
    );
}

/// The functional target reproduces every golden cell bit-for-bit:
/// `tests/goldens.rs` pins the direct-engine values, and this test pins
/// target-routed == direct, so the goldens transitively hold on the
/// target path.
#[test]
fn functional_target_reproduces_every_golden_cell() {
    for name in ["random", "perception", "integer", "capacity"] {
        for kind in [
            BackendKind::Baseline,
            BackendKind::Stochastic,
            BackendKind::H3dFact,
        ] {
            let cell = format!("{name} × {kind}");
            let direct = run_cell(name, kind, None);
            let routed = run_cell(name, kind, Some(TargetKind::Functional));
            assert_eq!(direct.units, routed.units, "{cell}: units");
            assert_eq!(direct.score, routed.score, "{cell}: score (bitwise)");
            assert_eq!(direct.metrics, routed.metrics, "{cell}: metrics");
            assert_eq!(
                direct.session.solved, routed.session.solved,
                "{cell}: solved"
            );
            assert_eq!(
                direct.session.total_iterations, routed.session.total_iterations,
                "{cell}: total iterations"
            );
            assert_eq!(
                direct.session.total_energy_j, routed.session.total_energy_j,
                "{cell}: energy (bitwise)"
            );
            assert_eq!(
                direct.session.total_latency_s, routed.session.total_latency_s,
                "{cell}: latency (bitwise)"
            );
            for (a, b) in direct.session.outcomes.iter().zip(&routed.session.outcomes) {
                assert_outcomes_identical(a, b, &cell);
            }
        }
    }
}

/// Every backend kind — not just the golden trio — produces identical
/// outcomes and identical `RunReport`s (energy ledgers included) through
/// the functional target, across several runs so per-run seed derivation
/// is exercised past cursor 0.
#[test]
fn functional_target_matches_direct_engines_for_all_kinds() {
    let spec = ProblemSpec::new(3, 8, 256);
    for kind in BackendKind::ALL {
        let build = |target: Option<TargetKind>| {
            let mut b = Session::builder()
                .spec(spec)
                .backend(kind)
                .seed(77)
                .max_iters(500);
            if let Some(t) = target {
                b = b.target(t);
            }
            b.build()
        };
        let mut direct = build(None);
        let mut routed = build(Some(TargetKind::Functional));
        assert_eq!(direct.backend_name(), routed.backend_name(), "{kind}");
        let a = direct.run(3);
        let b = routed.run(3);
        let cell = format!("{kind} run(3)");
        assert_eq!(a.solved, b.solved, "{cell}: solved");
        assert_eq!(a.total_iterations, b.total_iterations, "{cell}: iters");
        assert_eq!(a.total_energy_j, b.total_energy_j, "{cell}: energy");
        assert_eq!(a.total_latency_s, b.total_latency_s, "{cell}: latency");
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_outcomes_identical(x, y, &cell);
        }
        assert_eq!(
            direct.last_run_stats(),
            routed.last_run_stats(),
            "{cell}: run report (ledger included)"
        );
        // The target path additionally surfaces the cost report.
        assert!(direct.last_cost_report().is_none(), "{kind}: direct path");
        let cost = routed
            .last_cost_report()
            .unwrap_or_else(|| panic!("{kind}: functional target must report cost"));
        assert_eq!(cost.target, "functional");
    }
}

/// Builds the two-backend service used by the cross-target equivalence
/// tests, routed through `target`.
fn service_on(target: TargetKind) -> FactorizationService {
    ServiceBuilder::default()
        .spec(ProblemSpec::new(3, 8, 256))
        .seed(909)
        .max_iters(500)
        .backends(&[(BackendKind::H3dFact, 1), (BackendKind::Pcm, 1)])
        .batch_size(4)
        .target(target)
        .build()
}

/// The tentpole equivalence contract: a trace captured live on the
/// functional target replays bit-for-bit on the DMA-queue target, for
/// two different backend kinds in one pool — same decoded factors, same
/// iteration counts, same run cursors.
#[test]
fn functional_and_dma_targets_agree_on_the_same_trace() {
    let mut live = service_on(TargetKind::Functional);
    let mut streams = [
        live.request_stream("tenant-a", BackendKind::H3dFact, 1),
        live.request_stream("tenant-b", BackendKind::Pcm, 2),
    ];
    for _ in 0..3 {
        for stream in &mut streams {
            live.submit(stream.next_request());
        }
    }
    let mut live_responses = live.drain();
    live_responses.sort_by_key(|r| r.id);
    let trace = live.trace().to_vec();
    assert_eq!(trace.len(), 6, "every admitted request is traced");

    let dma = service_on(TargetKind::DmaQueue);
    let mut replayed = dma.replay(&trace);
    replayed.sort_by_key(|r| r.id);
    assert_eq!(replayed.len(), live_responses.len());
    for (live_r, dma_r) in live_responses.iter().zip(&replayed) {
        let cell = format!("request {} on {}", live_r.id, live_r.backend);
        assert_eq!(live_r.id, dma_r.id, "{cell}: id");
        assert_eq!(live_r.cursor, dma_r.cursor, "{cell}: run cursor");
        assert_outcomes_identical(&live_r.outcome, &dma_r.outcome, &cell);
    }

    // And the reverse direction: a trace captured on the DMA target
    // replays identically on the functional service.
    let mut dma_live = service_on(TargetKind::DmaQueue);
    let mut streams = [
        dma_live.request_stream("tenant-a", BackendKind::H3dFact, 1),
        dma_live.request_stream("tenant-b", BackendKind::Pcm, 2),
    ];
    for _ in 0..3 {
        for stream in &mut streams {
            dma_live.submit(stream.next_request());
        }
    }
    let mut dma_responses = dma_live.drain();
    dma_responses.sort_by_key(|r| r.id);
    let functional = service_on(TargetKind::Functional);
    let mut back = functional.replay(dma_live.trace());
    back.sort_by_key(|r| r.id);
    for (a, b) in dma_responses.iter().zip(&back) {
        assert_outcomes_identical(&a.outcome, &b.outcome, &format!("reverse {}", a.id));
    }
}

/// DMA offload is bit-identical to functional at the session layer too,
/// and its cost report carries queue-occupancy statistics.
#[test]
fn dma_queue_sessions_match_functional_and_report_queue_stats() {
    let spec = ProblemSpec::new(3, 8, 256);
    for kind in [BackendKind::Sram2d, BackendKind::Stochastic] {
        let run = |target: TargetKind| {
            let mut s = Session::builder()
                .spec(spec)
                .backend(kind)
                .seed(33)
                .max_iters(500)
                .target(target)
                .build();
            let report = s.run(2);
            (report, s.last_cost_report().expect("target cost report"))
        };
        let (fr, fc) = run(TargetKind::Functional);
        let (dr, dc) = run(TargetKind::DmaQueue);
        assert_eq!(fr.solved, dr.solved, "{kind}: solved");
        assert_eq!(fr.total_iterations, dr.total_iterations, "{kind}: iters");
        assert_eq!(fr.total_energy_j, dr.total_energy_j, "{kind}: energy");
        assert_eq!(fc.queue, None, "{kind}: functional has no queue");
        let q = dc.queue.unwrap_or_else(|| panic!("{kind}: queue stats"));
        assert!(q.commands > 0, "{kind}: commands flowed");
        assert!(q.bytes > q.commands, "{kind}: multi-byte commands");
        assert!(
            q.max_depth > 0 && q.max_depth <= q.capacity,
            "{kind}: occupancy within capacity"
        );
        // Same kernels behind the queue: the cost fields agree.
        assert_eq!(fc.energy, dc.energy, "{kind}: energy ledger through DMA");
        assert_eq!(fc.cycles, dc.cycles, "{kind}: cycles through DMA");
    }
}

/// The approximate tiled target is deterministic per seed: two fresh
/// sessions produce bitwise-identical outcomes and cost reports —
/// temperature trajectory, energy ledger, ADC counts and all.
#[test]
fn approx_tiled_cost_reports_are_deterministic_per_seed() {
    let spec = ProblemSpec::new(3, 8, 256);
    let run = |seed: u64| {
        let mut s = Session::builder()
            .spec(spec)
            .backend(BackendKind::H3dFact)
            .seed(seed)
            .max_iters(500)
            .target(TargetKind::ApproxTiled)
            .build();
        let report = s.run(2);
        (report, s.last_cost_report().expect("cost report"))
    };
    let (ra, ca) = run(5);
    let (rb, cb) = run(5);
    assert_eq!(ra.solved, rb.solved);
    assert_eq!(ra.total_iterations, rb.total_iterations);
    for (a, b) in ra.outcomes.iter().zip(&rb.outcomes) {
        assert_outcomes_identical(a, b, "approx-tiled same-seed");
    }
    assert_eq!(ca, cb, "cost reports must be bitwise identical per seed");
    // A different seed draws different device noise.
    let (_, cc) = run(6);
    assert_ne!(ca, cc, "different seeds must differ somewhere");
}

/// The co-simulated thermal trajectory is physically sane: one sample per
/// iteration, monotone heating from ambient under sustained load, peak at
/// least the die mean, and energy/cycle accounting present.
#[test]
fn approx_tiled_thermal_trajectory_is_sane() {
    let spec = ProblemSpec::new(3, 8, 256);
    let mut s = Session::builder()
        .spec(spec)
        .backend(BackendKind::Hybrid2d)
        .seed(11)
        .max_iters(500)
        .target(TargetKind::ApproxTiled)
        .build();
    let report = s.run(1);
    let cost = s.last_cost_report().expect("cost report");
    assert_eq!(cost.target, "approx-tiled");
    let iters = report.outcomes[0].iterations;
    assert_eq!(cost.iterations, iters);
    assert_eq!(
        cost.mean_die_temp_c.len(),
        iters,
        "one sample per iteration"
    );
    let ambient = 25.0;
    let mut last = ambient;
    for &t in &cost.mean_die_temp_c {
        assert!(t >= last - 1e-9, "sustained load must not cool the dies");
        assert!(t < 200.0, "lumped model must stay stable");
        last = t;
    }
    assert!(last > ambient, "dies heat above ambient under load");
    assert!(cost.peak_temp_c.unwrap() >= last - 1e-9);
    assert!(cost.energy.as_ref().unwrap().total() > 0.0);
    assert!(cost.cycles.unwrap() > 0);
    assert!(cost.latency_s.unwrap() > 0.0);
    assert!(cost.adc_conversions.unwrap() > 0);
    // The session-level RunReport mirrors the cost report.
    let stats = s.last_run_stats().expect("run report");
    assert_eq!(stats.backend, "hybrid-2d+approx");
    assert_eq!(stats.cycles, cost.cycles);
    assert_eq!(stats.energy, cost.energy);
}

/// Targets compose with the session's parallel executor: a multi-threaded
/// target-routed run is bit-identical to the sequential one.
#[test]
fn target_sessions_are_thread_invariant() {
    let spec = ProblemSpec::new(3, 8, 256);
    for target in [TargetKind::Functional, TargetKind::DmaQueue] {
        let run = |threads: usize| {
            Session::builder()
                .spec(spec)
                .backend(BackendKind::Stochastic)
                .seed(21)
                .max_iters(500)
                .threads(threads)
                .target(target)
                .build()
                .run(6)
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.solved, par.solved, "{target}: solved");
        assert_eq!(
            seq.total_iterations, par.total_iterations,
            "{target}: iterations"
        );
        assert_eq!(seq.total_energy_j, par.total_energy_j, "{target}: energy");
        for (a, b) in seq.outcomes.iter().zip(&par.outcomes) {
            assert_outcomes_identical(a, b, &format!("{target} threads"));
        }
    }
}
