//! Chaos suite: the serving stack driven through the seeded
//! fault-injection proxy. The fault schedule is a pure function of
//! `(seed, connection index, frame index)`, so every run sees the same
//! corruptions, cuts, and delays — the assertions below are exact, not
//! statistical: the server never panics, every response the client
//! receives is bit-identical to in-process replay, and the resilient
//! client finishes 100% of its retry-eligible work within budget.

use std::collections::BTreeMap;
use std::time::Duration;

use h3dfact::chaos::{ChaosConfig, ChaosProxy};
use h3dfact::client::{ClientConfig, ClientError, ResilientClient, RetryPolicy};
use h3dfact::prelude::*;
use h3dfact::server::{self, ServerConfig, TenantQuota};
use h3dfact::wire::WireResponse;

fn service(batch: usize, capacity: usize) -> FactorizationService {
    FactorizationService::builder()
        .spec(ProblemSpec::new(2, 8, 256))
        .backends(&[(BackendKind::Stochastic, 1)])
        .seed(41)
        .max_iters(400)
        .batch_size(batch)
        .queue_capacity(capacity)
        .threads(1)
        .flush_deadline(Duration::ZERO)
        .build()
}

fn assert_matches_replay(live: &WireResponse, replay: &FactorizeResponse) {
    assert_eq!(live.backend, replay.backend, "{}: backend", live.id);
    assert_eq!(live.shard as usize, replay.shard, "{}: shard", live.id);
    assert_eq!(live.cursor, replay.cursor, "{}: cursor", live.id);
    assert_eq!(live.solved, replay.outcome.solved, "{}: solved", live.id);
    assert_eq!(
        live.iterations as usize, replay.outcome.iterations,
        "{}: iterations",
        live.id
    );
    let decoded: Vec<u32> = replay.outcome.decoded.iter().map(|&i| i as u32).collect();
    assert_eq!(live.decoded, decoded, "{}: decode", live.id);
}

/// A transparent (fault-free) proxy is invisible: every request
/// completes first try and the fault counters stay zero.
#[test]
fn quiet_proxy_is_transparent() {
    let svc = service(1, 16);
    let mut stream = svc.request_stream("t", BackendKind::Stochastic, 0);
    let handle = server::spawn(svc, ServerConfig::default().solver_threads(1)).expect("spawn");
    let proxy = ChaosProxy::spawn(handle.local_addr(), ChaosConfig::quiet(1)).expect("proxy");

    let mut client =
        ResilientClient::connect(proxy.local_addr(), ClientConfig::new(7)).expect("connect");
    for _ in 0..6 {
        client.call(&stream.next_request()).expect("completes");
    }
    let cstats = client.stats();
    assert_eq!(cstats.completed, 6);
    assert_eq!(cstats.resends, 0);
    assert_eq!(cstats.connects, 1);

    drop(client);
    let stats = proxy.shutdown();
    assert_eq!(stats.connections, 1);
    assert_eq!(stats.corrupted + stats.severed + stats.truncated, 0);
    assert_eq!(stats.frames, 7, "hello + six requests");
    handle.shutdown();
}

/// The tentpole acceptance test: seeded corruption, truncation, severing,
/// and delays between client and server. The server survives, the client
/// completes every request within its budgets, and each received
/// response is bit-identical to replaying the server's trace in process.
#[test]
fn chaos_schedule_preserves_bit_identity_and_completes_all_work() {
    const N: usize = 30;
    let svc = service(1, 16);
    let mut stream = svc.request_stream("t", BackendKind::Stochastic, 0);
    let config = ServerConfig::default()
        .solver_threads(1)
        // Reap connections the proxy truncated mid-frame instead of
        // pinning their reader threads until shutdown.
        .read_timeout(Duration::from_millis(300));
    let handle = server::spawn(svc, config).expect("spawn");

    let chaos = ChaosConfig::quiet(0xC4A0_5EED)
        .corrupt(0.10)
        .sever(0.05)
        .truncate(0.05)
        .delay(0.15, Duration::from_millis(2));
    let proxy = ChaosProxy::spawn(handle.local_addr(), chaos).expect("proxy");

    let client_config = ClientConfig::new(0xD00D)
        .reconnect(RetryPolicy::backoff(8, Duration::from_millis(1)))
        .resend(RetryPolicy::backoff(12, Duration::from_millis(1)));
    let mut client = ResilientClient::connect(proxy.local_addr(), client_config).expect("connect");

    let mut received: Vec<WireResponse> = Vec::new();
    for _ in 0..N {
        received.push(client.call(&stream.next_request()).expect("within budget"));
    }
    assert_eq!(client.stats().completed as usize, N, "all work completed");

    drop(client);
    let proxy_stats = proxy.shutdown();
    assert!(
        proxy_stats.corrupted + proxy_stats.severed + proxy_stats.truncated > 0,
        "the schedule must actually inject faults: {proxy_stats:?}"
    );

    // The server is still healthy enough to shut down cleanly and hand
    // back its trace. A request resent after a mid-flight cut may have
    // been admitted twice (distinct ids); the trace records every
    // admission and replay must cover them all.
    let svc = handle.shutdown();
    assert!(
        svc.trace().len() >= N,
        "every request admitted at least once"
    );
    let replayed = svc.replay(svc.trace());
    assert_eq!(replayed.len(), svc.trace().len());
    let by_id: BTreeMap<u64, &FactorizeResponse> = replayed.iter().map(|r| (r.id.0, r)).collect();
    for live in &received {
        let replay = by_id.get(&live.id).expect("received id present in replay");
        assert_matches_replay(live, replay);
    }
}

/// Per-shed-reason budgets: `QueueFull` retries up to its budget and
/// surfaces the attempt count; `UnknownBackend` fails on the first try.
#[test]
fn shed_budgets_retry_transient_and_fail_fast_on_structural() {
    // Queue capacity 2 with no pump and batch 16: the queue fills and
    // stays full, so every retry re-sheds deterministically.
    let svc = service(16, 2);
    let mut stream = svc.request_stream("t", BackendKind::Stochastic, 0);
    let config = ServerConfig::default()
        .solver_threads(1)
        .pump_interval(Duration::from_secs(3600));
    let handle = server::spawn(svc, config).expect("spawn");

    // Fill the queue over a plain connection (fire-and-forget: these two
    // won't complete until shutdown, and `call` would block on them).
    let mut filler = h3dfact::server::ServeClient::connect(handle.local_addr()).expect("connect");
    for tag in 0..2 {
        filler
            .send_request(tag, &stream.next_request())
            .expect("send");
    }
    // The stats round-trip on the same connection serializes behind the
    // two requests: both are admitted before we probe the full queue.
    assert_eq!(filler.stats().expect("stats").accepted, 2);

    let client_config = ClientConfig::new(5).shed_policy(
        ShedReason::QueueFull,
        RetryPolicy::backoff(3, Duration::from_millis(1)),
    );
    let mut client = ResilientClient::connect(handle.local_addr(), client_config).expect("connect");
    let full = client.call(&stream.next_request());
    match full {
        Err(ClientError::Shed { reason, attempts }) => {
            assert_eq!(reason, ShedReason::QueueFull);
            assert_eq!(attempts, 3, "budget consumed in full");
        }
        other => panic!("expected QueueFull shed, got {other:?}"),
    }
    assert_eq!(client.stats().shed_retries, 2);

    // Pcm is not in the pool: structural, one attempt only.
    let mut bad = stream.next_request();
    bad.backend = BackendKind::Pcm;
    match client.call(&bad) {
        Err(ClientError::Shed { reason, attempts }) => {
            assert_eq!(reason, ShedReason::UnknownBackend);
            assert_eq!(attempts, 1, "fail fast");
        }
        other => panic!("expected UnknownBackend shed, got {other:?}"),
    }
    handle.shutdown();
}

/// Rate limiting with a zero refill rate is a hard budget: once the
/// burst is spent every retry re-sheds, and the client gives up with the
/// configured attempt count rather than spinning.
#[test]
fn rate_limited_retries_exhaust_against_a_zero_refill_bucket() {
    let svc = service(1, 16);
    let mut stream = svc.request_stream("metered", BackendKind::Stochastic, 0);
    let config = ServerConfig::default()
        .solver_threads(1)
        .quota("metered", TenantQuota::rate_limited(0.0, 1.0));
    let handle = server::spawn(svc, config).expect("spawn");

    let client_config = ClientConfig::new(11).shed_policy(
        ShedReason::RateLimited,
        RetryPolicy::backoff(2, Duration::from_millis(1)),
    );
    let mut client = ResilientClient::connect(handle.local_addr(), client_config).expect("connect");
    client.call(&stream.next_request()).expect("burst token");
    match client.call(&stream.next_request()) {
        Err(ClientError::Shed { reason, attempts }) => {
            assert_eq!(reason, ShedReason::RateLimited);
            assert_eq!(attempts, 2);
        }
        other => panic!("expected RateLimited shed, got {other:?}"),
    }
    handle.shutdown();
}
