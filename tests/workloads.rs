//! The Workload layer's contract: every workload runs through
//! `Session::run_workload` on any backend, parallel execution is
//! bit-identical to sequential, and reports are deterministic.

use h3dfact::prelude::*;

fn perception_session(kind: BackendKind, threads: usize) -> (Session, Perception) {
    let schema = h3dfact::perception::AttributeSchema::raven();
    let dim = 256;
    let spec = schema.problem_spec(dim);
    let workload = Perception::attributes(
        schema,
        dim,
        h3dfact::perception::NeuralFrontend::paper_quality(5),
        77,
    );
    let session = Session::builder()
        .spec(spec)
        .backend(kind)
        .seed(19)
        .max_iters(800)
        .threads(threads)
        .build();
    (session, workload)
}

fn assert_reports_identical(a: &WorkloadReport, b: &WorkloadReport, label: &str) {
    assert_eq!(a.workload, b.workload, "{label}: workload name");
    assert_eq!(a.units, b.units, "{label}: units");
    assert_eq!(a.score.to_bits(), b.score.to_bits(), "{label}: score");
    assert_eq!(a.metrics, b.metrics, "{label}: metrics");
    assert_eq!(a.session.problems, b.session.problems, "{label}: problems");
    assert_eq!(a.session.solved, b.session.solved, "{label}: solved");
    assert_eq!(
        a.session.total_iterations, b.session.total_iterations,
        "{label}: iterations"
    );
    assert_eq!(
        a.session.total_energy_j.map(f64::to_bits),
        b.session.total_energy_j.map(f64::to_bits),
        "{label}: energy must be bit-identical"
    );
    assert_eq!(
        a.session.total_latency_s.map(f64::to_bits),
        b.session.total_latency_s.map(f64::to_bits),
        "{label}: latency must be bit-identical"
    );
    for (x, y) in a.session.outcomes.iter().zip(&b.session.outcomes) {
        assert_eq!(x.solved, y.solved, "{label}: per-item solved");
        assert_eq!(x.iterations, y.iterations, "{label}: per-item iterations");
        assert_eq!(x.decoded, y.decoded, "{label}: per-item decode");
    }
}

#[test]
fn perception_workload_threads4_is_bit_identical_to_threads1() {
    // The acceptance bar of the Workload refactor: perception scenes
    // parallelize across the worker pool with reports bit-identical to
    // the sequential run, on a software and a hardware backend alike.
    for kind in [BackendKind::Stochastic, BackendKind::H3dFact] {
        let (mut seq_session, mut seq_workload) = perception_session(kind, 1);
        let seq = seq_session.run_workload(&mut seq_workload, 10);
        let (mut par_session, mut par_workload) = perception_session(kind, 4);
        let par = par_session.run_workload(&mut par_workload, 10);
        assert_reports_identical(&seq, &par, kind.name());
        assert_eq!(seq.units, 10);
        assert!(
            seq.score > 0.5,
            "{kind}: implausibly low attribute accuracy {}",
            seq.score
        );
        assert!(seq.metric("scene_accuracy").is_some());
    }
}

#[test]
fn workload_report_aggregation_is_item_order_deterministic() {
    // Same seeds, same calls → identical reports, run after run, however
    // the pool interleaves item completion: energy/latency are folded in
    // item order from per-item reports, never in completion order.
    let run = || {
        let (mut session, mut workload) = perception_session(BackendKind::H3dFact, 3);
        let first = session.run_workload(&mut workload, 6);
        let second = session.run_workload(&mut workload, 6);
        (first, second)
    };
    let (a1, a2) = run();
    let (b1, b2) = run();
    assert_reports_identical(&a1, &b1, "epoch 0");
    assert_reports_identical(&a2, &b2, "epoch 1");
    // Epochs advance: the second call scores fresh scenes.
    assert!(
        a1.session
            .outcomes
            .iter()
            .zip(&a2.session.outcomes)
            .any(|(x, y)| x.decoded != y.decoded || x.iterations != y.iterations),
        "consecutive epochs replayed identical scenes"
    );
}

#[test]
fn puzzle_workload_parallelizes_panels() {
    let schema = h3dfact::perception::AttributeSchema::raven();
    let dim = 512;
    let spec = schema.problem_spec(dim);
    let mk = |threads: usize| {
        let workload = Perception::puzzles(
            schema.clone(),
            dim,
            h3dfact::perception::NeuralFrontend::ideal(3),
            55,
        );
        let session = Session::builder()
            .spec(spec)
            .backend(BackendKind::Stochastic)
            .seed(23)
            .max_iters(1_500)
            .threads(threads)
            .build();
        (session, workload)
    };
    let (mut s1, mut w1) = mk(1);
    let seq = s1.run_workload(&mut w1, 4);
    let (mut s4, mut w4) = mk(4);
    let par = s4.run_workload(&mut w4, 4);
    assert_reports_identical(&seq, &par, "puzzles");
    // 4 puzzles × 16 panels.
    assert_eq!(seq.units, 4);
    assert_eq!(seq.session.problems, 64);
    assert!(
        seq.score >= 0.5,
        "puzzle accuracy {} under an ideal frontend",
        seq.score
    );
}

#[test]
fn capacity_sweep_runs_fresh_codebooks_through_the_pool() {
    // The grouped executor path: every trial addresses its own codebook
    // group; parallel and sequential runs agree exactly.
    let spec = ProblemSpec::new(3, 8, 256);
    let mk = |threads: usize| {
        Session::builder()
            .spec(spec)
            .backend(BackendKind::Stochastic)
            .seed(31)
            .max_iters(700)
            .threads(threads)
            .build()
    };
    let mut w1 = CapacitySweep::new(spec, 9);
    let seq = mk(1).run_workload(&mut w1, 8);
    let mut w4 = CapacitySweep::new(spec, 9);
    let par = mk(4).run_workload(&mut w4, 8);
    assert_reports_identical(&seq, &par, "capacity");
    assert!(seq.score > 0.5, "sweep accuracy {}", seq.score);
}

#[test]
fn integer_factorization_recovers_semiprimes() {
    let mut workload = IntegerFactorization::new(100, 512, 2);
    let mut session = Session::builder()
        .spec(workload.spec())
        .backend(BackendKind::Stochastic)
        .seed(4)
        .max_iters(2_000)
        .build();
    let report = session.run_workload(&mut workload, 8);
    assert_eq!(report.units, 8);
    assert!(
        report.score >= 0.75,
        "factored only {:.0} % of semiprimes",
        100.0 * report.score
    );
    assert!(report.metric("factored_rate").unwrap() >= report.metric("exact_index_rate").unwrap());
}

#[test]
fn random_factorization_matches_session_accuracy_regime() {
    let spec = ProblemSpec::new(3, 8, 256);
    let mut workload = RandomFactorization::new(spec, 11);
    let mut session = Session::builder()
        .spec(spec)
        .backend(BackendKind::Stochastic)
        .seed(12)
        .max_iters(800)
        .build();
    let report = session.run_workload(&mut workload, 10);
    assert_eq!(report.units, 10);
    assert_eq!(report.session.problems, 10);
    assert!(report.score > 0.7, "accuracy {}", report.score);
    // The session-level report rides along: solved counts agree with the
    // workload score for this one-query-per-unit workload.
    assert_eq!(
        report.session.solved as f64 / report.session.problems as f64,
        report.score
    );
}

#[test]
fn empty_workload_run_is_well_formed() {
    let spec = ProblemSpec::new(2, 8, 256);
    let mut workload = RandomFactorization::new(spec, 1);
    let mut session = Session::builder()
        .spec(spec)
        .backend(BackendKind::Baseline)
        .seed(1)
        .max_iters(100)
        .build();
    let report = session.run_workload(&mut workload, 0);
    assert_eq!(report.units, 0);
    assert_eq!(report.session.problems, 0);
    assert_eq!(report.score, 0.0);
}

#[test]
fn mismatched_workload_spec_is_rejected() {
    let spec = ProblemSpec::new(2, 8, 256);
    let mut workload = RandomFactorization::new(ProblemSpec::new(3, 8, 256), 1);
    let mut session = Session::builder()
        .spec(spec)
        .backend(BackendKind::Baseline)
        .seed(1)
        .max_iters(100)
        .build();
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        session.run_workload(&mut workload, 1)
    }));
    assert!(err.is_err(), "shape mismatch must be rejected");
}
