//! Cross-crate integration: the full pipeline from problem generation
//! through the device-accurate engine, and consistency between the
//! algorithm-level and hardware-level stochastic models.

use h3dfact::prelude::*;
use rand::Rng;

#[test]
fn noise_constants_stay_in_sync() {
    // The software stochastic model's cell sigma must track the cim chip
    // noise model; they live in different crates on purpose (resonator
    // does not depend on cim), so this test is the tripwire.
    let chip = NoiseSpec::chip_40nm().sigma_total();
    let sw = StochasticResonator::CHIP_CELL_SIGMA;
    assert!(
        (chip - sw).abs() < 0.005,
        "cim chip sigma {chip} vs resonator constant {sw}"
    );
}

#[test]
fn noise_override_means_the_same_physics_on_every_analog_backend() {
    // One `.noise(...)` spec must mean one effective per-dot-product
    // sigma everywhere: every analog backend takes the *relative
    // per-cell* sigma (`NoiseSpec::sigma_total()` units) and owns the
    // `sqrt(D)` column scaling itself. A backend scaling at a different
    // layer would silently run different physics under the same override.
    let spec = ProblemSpec::new(3, 8, 1024);
    let sqrt_d = (spec.dim as f64).sqrt();

    for scale in [0.25, 1.0, 2.0] {
        let n = NoiseSpec::chip_40nm_scaled(scale);
        let expected = n.sigma_total() * sqrt_d;
        let pcm = PcmEngine::paper_default(spec, 100, 1).with_cell_sigma(n.sigma_total());
        let stoch = StochasticResonator::with_cell_noise(spec, 100, n.sigma_total(), 4, 1);
        assert!(
            (pcm.noise_sigma() - expected).abs() < 1e-12,
            "pcm sigma {} != expected {expected} at scale {scale}",
            pcm.noise_sigma()
        );
        assert!(
            (stoch.noise_sigma() - expected).abs() < 1e-12,
            "stochastic sigma {} != expected {expected} at scale {scale}",
            stoch.noise_sigma()
        );
        // The device-accurate crossbar backends apply the identical
        // column statistics: sigma_total·sqrt(rows) per column, which in
        // quadrature across a D-row fold is exactly the same number.
        assert!((n.column_sigma(spec.dim) - expected).abs() < 1e-12);
    }

    // The defaults agree too: without an override, PCM and the
    // algorithm-level model sit at the same chip-calibrated sigma.
    let pcm = PcmEngine::paper_default(spec, 100, 1);
    let stoch = StochasticResonator::paper_default(spec, 100, 1);
    assert!(
        (pcm.noise_sigma() - stoch.noise_sigma()).abs() < 1e-12,
        "default sigmas diverge: pcm {} vs stochastic {}",
        pcm.noise_sigma(),
        stoch.noise_sigma()
    );
}

#[test]
fn hardware_and_software_agree_on_medium_problems() {
    // The same workload through two sessions that differ only in backend
    // kind: the device-accurate engine and its algorithm-level model must
    // have comparable solve rates.
    let spec = ProblemSpec::new(3, 24, 512);
    let budget = 1_500;
    let trials = 8;
    let run = |kind: BackendKind| {
        Session::builder()
            .spec(spec)
            .backend(kind)
            .seed(10_000)
            .max_iters(budget)
            .build()
            .run(trials)
    };
    let hw = run(BackendKind::H3dFact);
    let sw = run(BackendKind::Stochastic);
    assert!(
        hw.solved >= 6,
        "hardware engine solved {}/{trials}",
        hw.solved
    );
    assert!(
        (hw.solved as i64 - sw.solved as i64).abs() <= 2,
        "hw {} vs sw {}",
        hw.solved,
        sw.solved
    );
    // Only the hardware session carries a cost model.
    assert!(hw.total_energy_j.unwrap() > 0.0);
    assert!(sw.total_energy_j.is_none());
}

#[test]
fn noisy_queries_from_perception_solve_on_hardware() {
    use h3dfact::perception::{AttributeSchema, NeuralFrontend};

    let schema = AttributeSchema::raven();
    let dim = 512;
    let spec = schema.problem_spec(dim);
    let mut rng = rng_from_seed(11_000);
    let books = schema.codebooks(dim, &mut rng);
    let mut frontend = NeuralFrontend::paper_quality(4);
    let mut session = Session::builder()
        .spec(spec)
        .backend(BackendKind::H3dFact)
        .seed(9)
        .max_iters(3_000)
        .build();
    let mut solved = 0;
    let n = 5;
    for _ in 0..n {
        let scene = schema.sample(&mut rng);
        let query = frontend.embed(&scene, &schema, &books);
        let out = session.solve_query(&books, &query, Some(&scene.attributes));
        if out.solved {
            solved += 1;
        }
    }
    assert!(
        solved >= 4,
        "hardware solved only {solved}/{n} noisy scenes"
    );
}

#[test]
fn facade_prelude_covers_the_basic_flow() {
    // Everything a downstream user needs for the quickstart is reachable
    // through `h3dfact::prelude`: the Session surface first, the layered
    // APIs beneath it.
    let spec = ProblemSpec::new(2, 8, 256);
    let mut session = Session::builder()
        .spec(spec)
        .backend(BackendKind::Stochastic)
        .seed(2)
        .max_iters(500)
        .build();
    let report: SessionReport = session.run(2);
    assert_eq!(report.problems, 2);
    assert!(report.accuracy() > 0.0);

    let mut rng = rng_from_seed(1);
    let problem = FactorizationProblem::random(spec, &mut rng);
    let mut engine = StochasticResonator::paper_default(spec, 500, 2);
    let outcome: FactorizationOutcome = engine.factorize(&problem);
    assert!(outcome.solved);

    let report: DesignReport = h3dfact::arch3d::design::build_report(DesignVariant::H3dThreeTier);
    assert!(report.total_area_mm2 > 0.0);

    let xbar_book = Codebook::random(8, 256, &mut rng);
    let mut xbar = Crossbar::program(
        &xbar_book,
        NoiseSpec::ideal(),
        h3dfact::cim::crossbar::Fidelity::Column,
        3,
    );
    let q = BipolarVector::random(256, &mut rng);
    assert_eq!(xbar.mvm_bipolar(&q).len(), 8);

    let cfgd: AdcConfig = AdcConfig::paper_4bit(256.0);
    assert_eq!(cfgd.conversion_cycles(), 4);
}

#[test]
fn seeded_runs_are_reproducible_across_engines() {
    let spec = ProblemSpec::new(3, 12, 256);
    let problem = FactorizationProblem::random(spec, &mut rng_from_seed(123));
    for mk in [0u64, 1, 2] {
        let mut a = H3dFact::new(H3dFactConfig::default_for(spec), mk);
        let mut b = H3dFact::new(H3dFactConfig::default_for(spec), mk);
        let oa = a.factorize(&problem);
        let ob = b.factorize(&problem);
        assert_eq!(oa.solved, ob.solved);
        assert_eq!(oa.iterations, ob.iterations);
        assert_eq!(oa.decoded, ob.decoded);
        assert_eq!(
            a.last_run_stats().unwrap().energy.total(),
            b.last_run_stats().unwrap().energy.total()
        );
    }
}

#[test]
fn random_problem_stream_has_no_degenerate_duplicates() {
    // Sanity on the experiment plumbing: distinct trial streams produce
    // distinct problems.
    let spec = ProblemSpec::new(3, 16, 256);
    let mut seen = std::collections::HashSet::new();
    for t in 0..50u64 {
        let mut rng = h3dfact::hdc::rng::stream_rng(42, t);
        let p = FactorizationProblem::random(spec, &mut rng);
        let key = (p.true_indices().to_vec(), rng.gen::<u64>());
        seen.insert(key);
    }
    assert!(seen.len() >= 49, "trial streams collide");
}
