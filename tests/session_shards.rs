//! Regression tests for the session's problem-stream cursor semantics
//! and shard carving: request streams seeded mid-cursor never re-derive
//! an already-issued problem seed, and shards carved from one session
//! draw disjoint problem and noise streams.

use h3dfact::prelude::*;

fn session(seed: u64) -> Session {
    Session::builder()
        .spec(ProblemSpec::new(3, 8, 256))
        .backend(BackendKind::Stochastic)
        .seed(seed)
        .max_iters(300)
        .build()
}

#[test]
fn generation_is_chunk_invariant() {
    // The serving-shard property: a problem stream is addressed by
    // cursor, not by generation-call boundaries. generate(2) + generate(3)
    // must equal one generate(5) — the old epoch-based scheme failed
    // this, making results depend on how a stream was micro-batched.
    let mut chunked = session(17);
    let mut whole = session(17);
    let mut items = chunked.generate(2);
    items.extend(chunked.generate(3));
    let expected = whole.generate(5);
    assert_eq!(items.len(), 5);
    for (a, b) in items.iter().zip(&expected) {
        assert_eq!(a.query, b.query, "chunked stream diverged");
        assert_eq!(a.truth, b.truth);
    }
    assert_eq!(chunked.problem_cursor(), 5);
    assert_eq!(whole.problem_cursor(), 5);
}

#[test]
fn mid_cursor_seeding_never_reissues_a_problem_seed() {
    let mut s = session(18);
    let first = s.generate(6);
    // Continuing from the live cursor extends the stream without overlap.
    let next = s.generate(6);
    for (i, a) in first.iter().enumerate() {
        for (j, b) in next.iter().enumerate() {
            assert_ne!(
                a.query, b.query,
                "problem {i} re-issued as continuation problem {j}"
            );
        }
    }
    // Random access agrees with the walked stream.
    let replayed = s.generate_at(0, 12);
    for (walked, ra) in first.iter().chain(&next).zip(&replayed) {
        assert_eq!(walked.query, ra.query);
    }
    // Seeking backwards replays exactly; seeking forward skips cleanly.
    s.seek_problems(3);
    let again = s.generate(3);
    for (a, b) in again.iter().zip(&replayed[3..6]) {
        assert_eq!(a.query, b.query);
    }
}

#[test]
fn carved_shards_draw_disjoint_problem_streams() {
    let mut parent = session(19);
    let mut shard_a = parent.carve_shard();
    let mut shard_b = parent.carve_shard();

    // Shards share the parent's codebooks (generated once)...
    assert_eq!(parent.codebooks(), shard_a.codebooks());
    assert_eq!(parent.codebooks(), shard_b.codebooks());

    // ...but their problem streams are pairwise disjoint with the parent
    // and each other, even at identical cursors.
    let p = parent.generate(8);
    let a = shard_a.generate(8);
    let b = shard_b.generate(8);
    for (name, xs, ys) in [("parent/a", &p, &a), ("parent/b", &p, &b), ("a/b", &a, &b)] {
        for (i, x) in xs.iter().enumerate() {
            for (j, y) in ys.iter().enumerate() {
                assert_ne!(x.query, y.query, "{name}: problem {i} equals problem {j}");
            }
        }
    }
}

#[test]
fn carved_shards_have_disjoint_engine_stochasticity() {
    // Two shards solving the *same* query at the *same* run cursor must
    // draw different stochastic exploration streams — otherwise a shard
    // pool is N copies of one engine, not N independent servers.
    let mut parent = session(20);
    let mut shard_a = parent.carve_shard();
    let mut shard_b = parent.carve_shard();
    let items = parent.generate(6);
    let mut diverged = 0;
    for item in &items {
        let oa = shard_a.solve_query(parent.codebooks(), &item.query, item.truth.as_deref());
        let ob = shard_b.solve_query(parent.codebooks(), &item.query, item.truth.as_deref());
        if oa.iterations != ob.iterations || oa.cosines != ob.cosines {
            diverged += 1;
        }
    }
    assert!(
        diverged > 0,
        "shards reproduced identical stochastic trajectories on all {} queries",
        items.len()
    );
}

#[test]
fn carving_is_deterministic_and_ordered() {
    // Carving the same session twice (fresh parents) yields the same
    // shard lineages; the i-th carve is a pure function of (seed, i).
    let mut p1 = session(21);
    let mut p2 = session(21);
    let mut a1 = p1.carve_shard();
    let mut b1 = p1.carve_shard();
    let mut a2 = p2.carve_shard();
    let mut b2 = p2.carve_shard();
    assert_eq!(a1.generate(4), a2.generate(4));
    assert_eq!(b1.generate(4), b2.generate(4));
    assert_eq!(a1.seed(), a2.seed());
    assert_ne!(a1.seed(), b1.seed());
}

#[test]
fn heterogeneous_carve_preserves_codebooks_across_kinds() {
    let mut parent = session(22);
    let hw = parent.carve_shard_as(BackendKind::H3dFact);
    assert_eq!(hw.backend_kind(), BackendKind::H3dFact);
    assert_eq!(hw.codebooks(), parent.codebooks());
}
