//! The service layer's contract: live micro-batched multi-threaded
//! serving is bit-identical to serial trace replay, backpressure never
//! corrupts shard state, and per-tenant stats are admission-order
//! deterministic.

use std::time::Duration;

use h3dfact::prelude::*;

/// A two-backend, multi-shard service at the test shape.
fn service(threads: usize, batch: usize, capacity: usize) -> FactorizationService {
    FactorizationService::builder()
        .spec(ProblemSpec::new(3, 8, 256))
        .backends(&[(BackendKind::Stochastic, 2), (BackendKind::H3dFact, 1)])
        .seed(23)
        .max_iters(600)
        .batch_size(batch)
        .queue_capacity(capacity)
        .threads(threads)
        .flush_deadline(Duration::ZERO)
        .build()
}

/// Interleaves three tenants across both backend kinds: tenant-a and
/// tenant-b stream the stochastic shards, tenant-c the hardware shard.
fn run_mixed_traffic(svc: &mut FactorizationService, n_rounds: usize) -> Vec<FactorizeResponse> {
    let mut a = svc.request_stream("tenant-a", BackendKind::Stochastic, 0);
    let mut b = svc.request_stream("tenant-b", BackendKind::Stochastic, 1);
    let mut c = svc.request_stream("tenant-c", BackendKind::H3dFact, 2);
    let mut responses = Vec::new();
    for round in 0..n_rounds {
        svc.submit(a.next_request());
        svc.submit(c.next_request());
        svc.submit(b.next_request());
        if round % 3 == 2 {
            // Deadline sweep mid-stream (ZERO deadline: flushes whatever
            // is pending) — exercises ragged micro-batch boundaries.
            svc.pump();
            responses.extend(svc.take_responses());
        }
    }
    responses.extend(svc.drain());
    responses.sort_by_key(|r| r.id);
    responses
}

fn assert_responses_identical(live: &[FactorizeResponse], replay: &[FactorizeResponse]) {
    assert_eq!(live.len(), replay.len(), "response counts differ");
    for (l, r) in live.iter().zip(replay) {
        assert_eq!(l.id, r.id, "admission order");
        assert_eq!(l.tenant, r.tenant);
        assert_eq!(l.shard, r.shard);
        assert_eq!(l.cursor, r.cursor);
        assert_eq!(l.outcome.solved, r.outcome.solved, "{}: solved", l.id);
        assert_eq!(l.outcome.decoded, r.outcome.decoded, "{}: decode", l.id);
        assert_eq!(
            l.outcome.iterations, r.outcome.iterations,
            "{}: iterations",
            l.id
        );
        let (lr, rr) = (l.report.as_ref(), r.report.as_ref());
        assert_eq!(lr.is_some(), rr.is_some(), "{}: report presence", l.id);
        if let (Some(lr), Some(rr)) = (lr, rr) {
            assert_eq!(lr.iterations, rr.iterations, "{}: report iterations", l.id);
            assert_eq!(
                lr.energy_j().map(f64::to_bits),
                rr.energy_j().map(f64::to_bits),
                "{}: energy must be bit-identical",
                l.id
            );
            assert_eq!(
                lr.latency_s.map(f64::to_bits),
                rr.latency_s.map(f64::to_bits),
                "{}: latency must be bit-identical",
                l.id
            );
        }
    }
}

#[test]
fn live_microbatched_service_equals_serial_replay() {
    // The acceptance bar: threads(4), two backend kinds, three tenants,
    // ragged micro-batches — and the serial replay of the admission trace
    // reproduces every outcome and report bit for bit.
    let mut svc = service(4, 4, 16);
    let live = run_mixed_traffic(&mut svc, 8);
    assert_eq!(live.len(), 24);
    assert!(
        live.iter().filter(|r| r.outcome.solved).count() > 12,
        "implausibly low service accuracy"
    );
    // Replay yields trace (flush) order; live is sorted by admission id.
    let mut replayed = svc.replay(svc.trace());
    replayed.sort_by_key(|r| r.id);
    assert_responses_identical(&live, &replayed);
    // Wall latency is a live-only measurement.
    assert!(live.iter().all(|r| r.wall_latency_s.is_some()));
    assert!(replayed.iter().all(|r| r.wall_latency_s.is_none()));
}

#[test]
fn thread_count_never_changes_outcomes() {
    let mut seq = service(1, 4, 16);
    let mut par = service(4, 4, 16);
    let seq_responses = run_mixed_traffic(&mut seq, 5);
    let par_responses = run_mixed_traffic(&mut par, 5);
    assert_responses_identical(&seq_responses, &par_responses);
}

#[test]
fn microbatch_boundaries_never_change_outcomes() {
    // Same admissions, radically different flush shapes: batch-of-2
    // auto-flushes vs one big drain. Outcomes must agree bit for bit.
    let mut eager = service(2, 2, 16);
    let mut lazy = service(2, 16, 16);
    let eager_responses = run_mixed_traffic(&mut eager, 5);
    let lazy_responses = run_mixed_traffic(&mut lazy, 5);
    assert!(eager.stats().flushed_by_size > 0);
    assert_responses_identical(&eager_responses, &lazy_responses);
}

#[test]
fn try_submit_rejects_at_capacity_without_corrupting_shard_state() {
    // capacity 4 = batch size 8: no auto-flush, the queue genuinely fills.
    let mut svc = FactorizationService::builder()
        .spec(ProblemSpec::new(3, 8, 256))
        .backends(&[(BackendKind::Stochastic, 1)])
        .seed(29)
        .max_iters(400)
        .batch_size(4)
        .queue_capacity(4)
        .threads(2)
        .build();
    let mut stream = svc.request_stream("t", BackendKind::Stochastic, 0);

    // Fill to capacity - 1 (the 4th submission would auto-flush at
    // batch_size 4, so stop at 3 first).
    for _ in 0..3 {
        svc.try_submit(stream.next_request()).expect("has room");
    }
    assert_eq!(svc.pending(), 3);

    // One more fills the queue AND triggers the size flush...
    svc.try_submit(stream.next_request()).expect("fills batch");
    assert_eq!(svc.pending(), 0, "batch-size flush drained the queue");

    // ...now refill past the flush and overfill: the 5th try_submit on a
    // full queue must reject, hand the request back, and leave cursors
    // and queue untouched.
    let mut svc2 = FactorizationService::builder()
        .spec(ProblemSpec::new(3, 8, 256))
        .backends(&[(BackendKind::Stochastic, 1)])
        .seed(29)
        .max_iters(400)
        .batch_size(8)
        .queue_capacity(4)
        .threads(2)
        .build();
    let mut stream2 = svc2.request_stream("t", BackendKind::Stochastic, 0);
    for _ in 0..4 {
        svc2.try_submit(stream2.next_request()).expect("has room");
    }
    let accepted_trace = svc2.trace().to_vec();
    let rejected = stream2.next_request();
    for _ in 0..3 {
        let err = svc2.try_submit(rejected.clone()).unwrap_err();
        match err {
            SubmitError::AtCapacity { request, .. } => assert_eq!(request, rejected),
            other => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!(svc2.pending(), 4, "rejections must not consume queue slots");
    assert_eq!(
        svc2.trace(),
        &accepted_trace[..],
        "rejections must not append to the trace"
    );
    assert_eq!(svc2.stats().rejected, 3);

    // The queued work is intact: drain and replay agree, and the next
    // accepted request picks up the cursor after the accepted four.
    let live = svc2.drain();
    assert_eq!(live.len(), 4);
    let id = svc2.submit(rejected);
    assert_eq!(id, RequestId(4), "rejections must not consume ids");
    let live_after: Vec<FactorizeResponse> = svc2.drain();
    assert_eq!(live_after.len(), 1);
    // Cursors are assigned at flush, so the fifth entry lands after the
    // drain and stays dense despite the three rejections in between.
    assert_eq!(svc2.trace()[4].cursor, 4, "cursors stay dense");
    let replayed = svc2.replay(svc2.trace());
    assert_eq!(replayed.len(), 5);
    for (l, r) in live.iter().chain(&live_after).zip(&replayed) {
        assert_eq!(l.outcome.decoded, r.outcome.decoded);
        assert_eq!(l.outcome.iterations, r.outcome.iterations);
    }
}

#[test]
fn blocking_submit_applies_backpressure_by_flushing() {
    let mut svc = FactorizationService::builder()
        .spec(ProblemSpec::new(2, 8, 256))
        .backends(&[(BackendKind::Stochastic, 1)])
        .seed(31)
        .max_iters(300)
        .batch_size(3)
        .queue_capacity(3)
        .threads(1)
        .build();
    let mut stream = svc.request_stream("t", BackendKind::Stochastic, 0);
    // batch_size == capacity: every third submit flushes, so blocking
    // submits always find room without rejecting.
    for _ in 0..10 {
        svc.submit(stream.next_request());
    }
    assert_eq!(svc.stats().accepted, 10);
    assert_eq!(svc.stats().rejected, 0);
    let responses = svc.drain();
    assert_eq!(responses.len(), 10);
}

#[test]
fn tenant_stats_roll_up_in_admission_order() {
    let mut svc = service(4, 4, 16);
    let _ = run_mixed_traffic(&mut svc, 6);
    let stats = svc.tenant_stats();
    let names: Vec<&str> = stats.iter().map(|s| s.tenant.as_str()).collect();
    assert_eq!(names, ["tenant-a", "tenant-b", "tenant-c"]);
    for s in &stats {
        assert_eq!(s.requests, 6);
        assert!(s.solved > 0, "{}: no solves", s.tenant);
        assert_eq!(s.totals.runs, 6);
        assert!(s.totals.iterations > 0);
    }
    // Only the hardware tenant has a cost model.
    assert!(stats[0].totals.energy_j.is_none());
    assert!(stats[2].totals.energy_j.unwrap() > 0.0);
    assert!(stats[2].totals.latency_per_run_s().unwrap() > 0.0);

    // Identical traffic on an identically configured service yields
    // bit-identical roll-ups, regardless of flush timing.
    let mut svc2 = service(1, 4, 16);
    let _ = run_mixed_traffic(&mut svc2, 6);
    let stats2 = svc2.tenant_stats();
    assert_eq!(stats, stats2);
}

#[test]
fn shards_of_one_kind_serve_disjoint_noise_streams() {
    // Round-robin splits a tenant's stream across the two stochastic
    // shards; the same query solved on different shards may legitimately
    // differ (disjoint engine seeds), but the assignment itself must be
    // deterministic: two identically configured services agree on every
    // shard choice.
    let mut svc1 = service(2, 4, 16);
    let mut svc2 = service(2, 4, 16);
    let _ = run_mixed_traffic(&mut svc1, 4);
    let _ = run_mixed_traffic(&mut svc2, 4);
    let shards1: Vec<usize> = svc1.trace().iter().map(|e| e.shard).collect();
    let shards2: Vec<usize> = svc2.trace().iter().map(|e| e.shard).collect();
    assert_eq!(shards1, shards2);
    // Both stochastic shards actually served traffic.
    let stoch_shards: std::collections::HashSet<usize> = svc1
        .trace()
        .iter()
        .filter(|e| e.backend == BackendKind::Stochastic)
        .map(|e| e.shard)
        .collect();
    assert_eq!(stoch_shards.len(), 2);
}

#[test]
fn snapshot_tracks_queue_depths_and_shed_counts() {
    // Single shard, batch larger than capacity: the queue fills without
    // flushing, so depths and sheds are exactly predictable.
    let mut svc = FactorizationService::builder()
        .spec(ProblemSpec::new(3, 8, 256))
        .backends(&[(BackendKind::Stochastic, 1)])
        .seed(23)
        .max_iters(600)
        .batch_size(16)
        .queue_capacity(2)
        .threads(1)
        .flush_deadline(Duration::from_secs(3600))
        .build();
    let mut stream = svc.request_stream("tenant-a", BackendKind::Stochastic, 0);

    let before = svc.snapshot();
    assert_eq!(before.pending(), 0);
    assert_eq!(before.shed(), 0);
    assert_eq!(before.shards.len(), 1);
    assert_eq!(before.shards[0].kind, BackendKind::Stochastic);
    assert_eq!(before.shards[0].queue_depth, 0);
    assert_eq!(before.shards[0].next_cursor, 0);

    svc.try_submit(stream.next_request()).expect("first fits");
    svc.try_submit(stream.next_request()).expect("second fits");
    let full = svc.snapshot();
    assert_eq!(full.pending(), 2);
    assert_eq!(full.shards[0].queue_depth, 2);
    // Cursors are consumed at batch formation, not admission: queued
    // work holds no cursor yet.
    assert_eq!(full.shards[0].next_cursor, 0);

    // Over capacity: rejected, and the snapshot's shed counter moves
    // while depths and cursors stay put (no trace of the attempt).
    let rejected = svc.try_submit(stream.next_request());
    assert!(matches!(rejected, Err(SubmitError::AtCapacity { .. })));
    let after_shed = svc.snapshot();
    assert_eq!(after_shed.shed(), 1);
    assert_eq!(svc.shed_count(), 1);
    assert_eq!(after_shed.pending(), 2);
    assert_eq!(after_shed.shards[0].next_cursor, 0);

    // Draining empties the queue and assigns the cursors; the shed count
    // is cumulative.
    let responses = svc.drain();
    assert_eq!(responses.len(), 2);
    let drained = svc.snapshot();
    assert_eq!(drained.pending(), 0);
    assert_eq!(drained.shards[0].queue_depth, 0);
    assert_eq!(drained.shards[0].next_cursor, 2);
    assert_eq!(drained.shed(), 1);
    assert_eq!(drained.stats.completed, 2);
}

#[test]
fn expired_requests_shed_at_formation_without_cursors_or_trace() {
    // Batch 4 with a huge flush deadline: nothing flushes until we ask,
    // so queued requests with a ZERO deadline are guaranteed to expire
    // before formation.
    let mut svc = FactorizationService::builder()
        .spec(ProblemSpec::new(3, 8, 256))
        .backends(&[(BackendKind::Stochastic, 1)])
        .seed(23)
        .max_iters(600)
        .batch_size(4)
        .queue_capacity(8)
        .threads(1)
        .flush_deadline(Duration::from_secs(3600))
        .build();
    let mut stream = svc.request_stream("tenant-a", BackendKind::Stochastic, 0);

    // Interleave doomed (ZERO deadline) and live requests.
    let mut doomed = stream.next_request();
    doomed.deadline = Some(Duration::ZERO);
    let dead_id = svc.try_submit(doomed).expect("admitted");
    let live_a = svc.try_submit(stream.next_request()).expect("admitted");
    let mut doomed = stream.next_request();
    doomed.deadline = Some(Duration::ZERO);
    let dead_id2 = svc.try_submit(doomed).expect("admitted");
    let live_b = svc.try_submit(stream.next_request()).expect("admitted");

    // Expiry happens at the next sweep (any admission or pump sweeps);
    // pump with an hour-long flush deadline sheds without flushing.
    assert_eq!(svc.pump(), 0, "flush deadline not reached");
    let expired = svc.take_expired();
    assert_eq!(
        expired.iter().map(|e| e.id).collect::<Vec<_>>(),
        vec![dead_id, dead_id2],
        "expired in queue order"
    );
    assert!(expired.iter().all(|e| e.tenant == "tenant-a"));
    assert_eq!(svc.stats().expired, 2);
    assert_eq!(svc.stats().accepted, 4, "expired requests were admitted");

    // The survivors drain normally and the expired requests left no
    // trace: cursors 0..2, trace length 2, replay reproduces exactly.
    let responses = svc.drain();
    assert_eq!(
        responses.iter().map(|r| r.id).collect::<Vec<_>>(),
        vec![live_a, live_b]
    );
    assert_eq!(
        responses.iter().map(|r| r.cursor).collect::<Vec<_>>(),
        vec![0, 1],
        "expired requests consumed no cursor"
    );
    assert_eq!(svc.trace().len(), 2);
    let replayed = svc.replay(svc.trace());
    assert_responses_identical(&responses, &replayed);
    assert_eq!(svc.take_expired(), vec![], "take_expired drains");
}
