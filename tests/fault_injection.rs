//! Failure-injection and robustness: what breaks the factorizer, and does
//! it fail loudly rather than silently.

use h3dfact::cim::crossbar::Fidelity;
use h3dfact::prelude::*;

#[test]
fn extreme_stuck_at_rate_degrades_gracefully() {
    // With most devices stuck, accuracy collapses but nothing panics and
    // the outcome reports failure honestly.
    let spec = ProblemSpec::new(3, 16, 512);
    let problem = FactorizationProblem::random(spec, &mut rng_from_seed(30_000));
    let mut noise = NoiseSpec::chip_40nm();
    noise.stuck_at_rate = 0.9;
    let mut engine = H3dFact::new(
        H3dFactConfig::default_for(spec)
            .with_noise(noise)
            .with_max_iters(200),
        1,
    );
    let out = engine.factorize(&problem);
    // 90 % dead devices: the dot products lose 90 % of signal, but sign
    // information often survives; either way the report must be coherent.
    assert!(out.iterations <= 200);
    if !out.solved {
        assert!(out.solved_at.is_none());
    }
}

#[test]
fn moderate_stuck_at_is_tolerated() {
    // A few percent of dead devices is within the holographic redundancy.
    let spec = ProblemSpec::new(3, 8, 512);
    let problem = FactorizationProblem::random(spec, &mut rng_from_seed(30_100));
    let mut noise = NoiseSpec::chip_40nm();
    noise.stuck_at_rate = 0.05;
    let mut engine = H3dFact::new(
        H3dFactConfig::default_for(spec)
            .with_noise(noise)
            .with_max_iters(2_000),
        2,
    );
    assert!(engine.factorize(&problem).solved);
}

#[test]
fn cell_fidelity_also_solves() {
    let spec = ProblemSpec::new(3, 8, 256);
    let problem = FactorizationProblem::random(spec, &mut rng_from_seed(30_200));
    let mut cfg = H3dFactConfig::default_for(spec).with_max_iters(2_000);
    cfg.fidelity = Fidelity::Cell;
    let mut engine = H3dFact::new(cfg, 3);
    assert!(engine.factorize(&problem).solved);
}

#[test]
fn heavy_query_noise_fails_loudly_not_wrongly() {
    // A 30 %-flipped query (cosine ≈ 0.4) is near the information floor
    // for F=3; whether or not it solves, a reported success must be a real
    // decode of the truth.
    let spec = ProblemSpec::new(3, 16, 512);
    let problem = FactorizationProblem::random(spec, &mut rng_from_seed(30_300));
    let mut rng = rng_from_seed(30_301);
    let noisy = problem.noisy_product(0.30, &mut rng);
    let mut engine = H3dFact::new(H3dFactConfig::default_for(spec).with_max_iters(1_000), 4);
    let out = engine.factorize_query(problem.codebooks(), &noisy, Some(problem.true_indices()));
    if out.solved {
        assert_eq!(out.decoded, problem.true_indices());
    }
}

#[test]
fn zero_noise_quantized_engine_still_explores() {
    // Quantization alone (no analog noise) keeps the degenerate-activation
    // exploration path alive — the ablation boundary of Fig. 2b.
    let spec = ProblemSpec::new(3, 24, 256);
    let problem = FactorizationProblem::random(spec, &mut rng_from_seed(30_400));
    let mut engine = H3dFact::new(
        H3dFactConfig::default_for(spec)
            .with_noise(NoiseSpec::ideal())
            .with_max_iters(4_000),
        5,
    );
    let out = engine.factorize(&problem);
    // Exploration may be slower, but the run must terminate cleanly and
    // count its degenerate events.
    assert!(out.iterations <= 4_000);
    if !out.solved {
        assert!(out.degenerate_events > 0 || out.revisits > 0);
    }
}

#[test]
fn uncompensated_ir_drop_is_survivable() {
    // Disable the macro's drop mitigation entirely: the factorizer should
    // still solve (holographic argmax robustness), just as reference [22]'s
    // compensation makes it a non-issue in silicon.
    use h3dfact::cim::irdrop::IrDropModel;
    let spec = ProblemSpec::new(3, 12, 512);
    let problem = FactorizationProblem::random(spec, &mut rng_from_seed(30_600));
    let mut cfg = H3dFactConfig::default_for(spec).with_max_iters(3_000);
    cfg.ir_drop = IrDropModel::macro_40nm_raw();
    let mut engine = H3dFact::new(cfg, 6);
    assert!(engine.factorize(&problem).solved);
}

#[test]
fn retention_hot_cell_loses_window() {
    use h3dfact::cim::rram::{RramCell, RramDeviceParams, RramState};
    let params = RramDeviceParams::hfox_40nm();
    let mut rng = rng_from_seed(30_500);
    let cell = RramCell::program(RramState::Lrs, &params, &NoiseSpec::ideal(), &mut rng);
    // At the paper's operating point (~48 C) nothing happens even after a
    // year; at 130 C the window visibly decays within days.
    let year_hours = 24.0 * 365.0;
    assert_eq!(
        cell.after_retention(&params, 48.0, year_hours),
        params.g_lrs
    );
    let g_hot = cell.after_retention(&params, 130.0, 72.0);
    assert!(g_hot < 0.9 * params.g_lrs);
}
