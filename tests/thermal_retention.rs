//! Cross-domain integration: the thermal operating point feeds the RRAM
//! retention model — closing the loop the paper draws in Sec. V-C
//! ("the 3D stacking approach does not compromise the reliability of
//! RRAM, as RRAM retention is adversely affected at temperatures
//! exceeding 100 °C").

use h3dfact::arch3d::design::{build_report, DesignVariant};
use h3dfact::arch3d::floorplan::rram_tier_floorplan;
use h3dfact::cim::rram::{RramCell, RramDeviceParams, RramState};
use h3dfact::prelude::*;
use h3dfact::thermal::{embed_die_power, solve, Stack};

/// Solves the stack thermals at the measured engine power and returns the
/// hottest RRAM-tier cell temperature.
fn hottest_rram_cell_c(power_scale: f64) -> f64 {
    let report = build_report(DesignVariant::H3dThreeTier);
    let iter_rate = report.frequency_mhz * 1e6 / report.cycles_per_iter as f64;
    let power = report.energy_per_iter_j * iter_rate * power_scale;
    let die_side = report.footprint_mm2.sqrt() * 1e-3;
    let extent_mm = 0.78;
    let stack = Stack::paper_h3dfact(extent_mm);
    let dies = stack.die_layers();
    let die_n = 8;
    let (nx, ny) = (16, 16);
    let mut powers = vec![vec![]; stack.layers().len()];
    for &z in &dies[1..] {
        let fp = rram_tier_floorplan("rram", die_side * 1e3, power / 2.0);
        powers[z] = embed_die_power(
            &fp.power_grid(die_n, die_n),
            die_n,
            die_side,
            nx,
            extent_mm * 1e-3,
        );
    }
    let field = solve(&stack, nx, ny, &powers, 25.0, 1e-6, 300_000);
    dies[1..]
        .iter()
        .map(|&z| field.layer_stats(z).max_c)
        .fold(f64::NEG_INFINITY, f64::max)
}

#[test]
fn operating_point_preserves_retention() {
    let t_hot = hottest_rram_cell_c(1.0);
    assert!(
        t_hot < 60.0,
        "operating point unexpectedly hot: {t_hot:.1} C"
    );
    // The accelerated line-SOR solver must land on the same operating
    // point the original point-relaxation solver produced (47.4436 °C at
    // this grid), not merely stay under the retention knee.
    assert!(
        (t_hot - 47.4436).abs() < 0.1,
        "operating point moved: {t_hot:.4} C vs pinned 47.4436 C"
    );

    // A programmed cell at that temperature keeps its window for a year.
    let params = RramDeviceParams::hfox_40nm();
    let mut rng = rng_from_seed(40_000);
    let cell = RramCell::program(RramState::Lrs, &params, &NoiseSpec::ideal(), &mut rng);
    let g_after = cell.after_retention(&params, t_hot, 24.0 * 365.0);
    assert_eq!(g_after, params.g_lrs, "no drift below the retention knee");
}

#[test]
fn pathological_power_would_violate_retention() {
    // The guard is meaningful: ~40x the measured power pushes the stack
    // past the 100 C knee and the window decays — the failure mode the
    // paper's thermal analysis exists to rule out.
    let t_hot = hottest_rram_cell_c(40.0);
    assert!(
        t_hot > 100.0,
        "stress case should exceed the knee: {t_hot:.1} C"
    );
    assert!(
        (t_hot - 923.1197).abs() < 0.1,
        "stress point moved: {t_hot:.4} C vs pinned 923.1197 C"
    );
    let params = RramDeviceParams::hfox_40nm();
    let mut rng = rng_from_seed(40_001);
    let cell = RramCell::program(RramState::Lrs, &params, &NoiseSpec::ideal(), &mut rng);
    let g_after = cell.after_retention(&params, t_hot, 24.0 * 30.0);
    assert!(g_after < params.g_lrs, "window must decay past the knee");
}
