//! Consistency between the analytical PPA model (`arch3d`) and the
//! measured behavior of the simulated engines (`h3dfact-core`): the same
//! physics should fall out of both paths.

use h3dfact::arch3d::design::{build_report, DesignVariant};
use h3dfact::arch3d::ppa::ArchParams;
use h3dfact::arch3d::schedule::{IterationSchedule, ScheduleConfig};
use h3dfact::cim::energy::EnergyComponent;
use h3dfact::prelude::*;

/// Runs the H3D engine for a fixed number of iterations (the paper-shape
/// problem is far beyond any small budget — only the energy accounting is
/// under test) and returns per-iteration energy without the one-time
/// programming cost.
fn engine_iteration_energy(spec: ProblemSpec, seed: u64) -> (f64, usize) {
    let problem = FactorizationProblem::random(spec, &mut rng_from_seed(20_000 + seed));
    let mut engine = H3dFact::new(H3dFactConfig::default_for(spec).with_max_iters(50), seed);
    let out = engine.factorize(&problem);
    let stats = engine.last_run_stats().unwrap();
    let programming = stats.energy.get(EnergyComponent::RramProgram);
    (
        (stats.energy.total() - programming) / out.iterations as f64,
        out.iterations,
    )
}

#[test]
fn engine_energy_tracks_analytical_model() {
    // The analytical model is built for the paper's shape (F=4, M=256,
    // D=256); run the engine at the same shape and compare per-iteration
    // energies. They share constants but follow completely different code
    // paths (per-op accounting vs closed-form roll-up), so agreement within
    // 2x is a real check of the plumbing.
    let spec = ProblemSpec::new(4, 256, 256);
    let report = build_report(DesignVariant::H3dThreeTier);
    let model = report.energy_per_iter_j;
    let (measured, _) = engine_iteration_energy(spec, 3);
    let ratio = measured / model;
    assert!(
        (0.5..2.0).contains(&ratio),
        "measured {measured:.3e} J vs model {model:.3e} J (ratio {ratio:.2})"
    );
}

#[test]
fn engine_latency_matches_schedule() {
    let spec = ProblemSpec::new(3, 16, 256);
    let problem = FactorizationProblem::random(spec, &mut rng_from_seed(21_000));
    let mut engine = H3dFact::new(H3dFactConfig::default_for(spec), 1);
    let out = engine.factorize(&problem);
    let stats = engine.last_run_stats().unwrap();
    let schedule = IterationSchedule::compute(&ScheduleConfig::paper(spec.factors, 1));
    assert_eq!(stats.cycles, schedule.cycles * out.iterations as u64);
    let freq_hz = engine.frequency_mhz() * 1e6;
    assert!((stats.latency_s - stats.cycles as f64 / freq_hz).abs() < 1e-12);
}

#[test]
fn design_reports_are_internally_consistent() {
    for variant in [
        DesignVariant::Sram2d,
        DesignVariant::Hybrid2d,
        DesignVariant::H3dThreeTier,
    ] {
        let r = build_report(variant);
        // Density = throughput / area.
        assert!((r.compute_density_tops_mm2 - r.throughput_tops / r.total_area_mm2).abs() < 1e-9);
        // Efficiency = ops / energy.
        let eff = r.ops_per_iter as f64 / r.energy_per_iter_j / 1e12;
        assert!((r.energy_eff_tops_w - eff).abs() < 1e-9);
        // Footprint never exceeds total silicon.
        assert!(r.footprint_mm2 <= r.total_area_mm2 + 1e-12);
        // Ledger total matches the scalar.
        assert!((r.energy_ledger.total() - r.energy_per_iter_j).abs() < 1e-18);
    }
}

#[test]
fn ops_counting_matches_spec_shape() {
    for (f, m) in [(3usize, 64usize), (4, 256), (2, 16)] {
        let arch = ArchParams {
            rows: 256,
            cols: m,
            factors: f,
            adc_bits: 4,
        };
        let expect = (f * (4 * 256 * m + (f - 1) * 256)) as u64;
        assert_eq!(arch.ops_per_iteration(), expect);
    }
}

#[test]
fn batching_reduces_engine_relevant_switching() {
    // The schedule's buffered switching count must match what the engine's
    // scheduler would do per factor pair, scaled by batch.
    let s1 = IterationSchedule::compute(&ScheduleConfig::paper(4, 1));
    let s64 = IterationSchedule::compute(&ScheduleConfig::paper(4, 64));
    assert_eq!(s1.tier_switches, 8);
    assert_eq!(
        s64.tier_switches, 8,
        "64-batch amortizes to the same switches"
    );
    assert!(s64.cycles < s64.cycles_unbuffered);
}

#[test]
fn thermal_power_path_is_consistent() {
    // Power from the report, spatialized through floorplans, conserved
    // into the package grid.
    use h3dfact::arch3d::floorplan::rram_tier_floorplan;
    use h3dfact::thermal::embed_die_power;

    let r = build_report(DesignVariant::H3dThreeTier);
    let iter_rate = r.frequency_mhz * 1e6 / r.cycles_per_iter as f64;
    let power = r.energy_per_iter_j * iter_rate;
    assert!(power > 1e-3 && power < 1.0, "implausible power {power} W");

    let die_side_mm = r.footprint_mm2.sqrt();
    let fp = rram_tier_floorplan("t", die_side_mm, power);
    fp.validate().unwrap();
    let grid = fp.power_grid(8, 8);
    let embedded = embed_die_power(&grid, 8, die_side_mm * 1e-3, 16, 1e-3);
    let total: f64 = embedded.iter().sum();
    assert!((total - power).abs() / power < 1e-9);
}
