//! Global, content-addressed, immutable codebook registry with a
//! hot/cold memory hierarchy — ROADMAP item 5.
//!
//! Every [`crate::session::Session`] used to own its codebooks outright,
//! so many-tenant serving duplicated packed mirrors bigger than cache and
//! paid full materialization even for codebooks whose bit-GEMM never
//! streams. The registry interns codebook *sets* by a content hash of
//! their sign words: sessions, carved shards, and service pools hold
//! [`CodebookHandle`]s and resolve them to one shared allocation, so 64
//! tenants over one codebook set cost one set's bytes, not 64.
//!
//! # The two tiers
//!
//! The GEM3D-CIM SRAM/eDRAM hybrid hierarchy (PAPERS.md) is the explicit
//! blueprint — hot packed mirrors as the "SRAM" tier, dense cold
//! codebooks as a rebuild-on-demand "eDRAM" tier:
//!
//! - **Cold tier** (always resident): the interned set with row-major
//!   sign words only
//!   ([`hdc::packed::PackedCodebook::drop_lane_mirror`]). Every kernel
//!   stays available and value-identical on this representation.
//! - **Hot tier** (LRU, byte-budgeted): a promoted mirror of the set in
//!   which the lane-major half is materialized **only for members whose
//!   bit-GEMM would actually stream the codebook** (the 96 KiB
//!   [`hdc::packed::PackedCodebook::batch_streams_codebook`] threshold) —
//!   exactly where the lane-major tiling pays for its footprint. When no
//!   member streams, the hot representation *is* the cold `Arc` (zero
//!   duplication): cache-resident codebooks run the row-walk either way
//!   at parity.
//!
//! [`CodebookHandle::resolve`] touches the entry (a logical access
//! counter, never wall time), promotes cold→hot on a miss, and returns
//! the hot `Arc`. When the hot tier exceeds its byte budget, the
//! least-recently-touched entries are demoted — the registry drops its
//! hot `Arc` (in-flight solves holding the `Arc` are unaffected; the
//! memory is reclaimed when the last borrower finishes) and the next
//! touch rebuilds the mirrors bit-identically.
//!
//! # Determinism
//!
//! Registry decisions (dedup, promotion, demotion order) are pure
//! functions of the interning/access sequence — no clocks, no
//! randomness. More importantly, the determinism contracts do not *rest*
//! on tier state at all: every kernel output is the same exact integer
//! whether a codebook is hot or cold, so `threads(N) ≡ threads(1)`,
//! live ≡ replay, and the golden cells hold in any tier state. Each
//! solve pass resolves its handle **once** and runs against that one
//! `Arc` (the executor's lockstep chunking relies on slice identity
//! within a pass).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use hdc::Codebook;

/// Default hot-tier byte budget of the [global](CodebookRegistry::global)
/// registry: generous enough that single-process workloads never thrash,
/// small enough to bound mirror duplication under thousands of tenants.
pub const DEFAULT_HOT_BUDGET_BYTES: usize = 64 * 1024 * 1024;

/// Point-in-time counters of one [`CodebookRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegistryStats {
    /// Distinct codebook sets interned.
    pub interned_sets: u64,
    /// Intern calls answered by an existing entry (content match).
    pub dedup_hits: u64,
    /// Handle resolutions (touches).
    pub resolves: u64,
    /// Resolutions that found the entry already hot.
    pub hot_hits: u64,
    /// Cold→hot promotions (including zero-cost ones where no member
    /// streams and hot aliases cold).
    pub promotions: u64,
    /// Promotions that actually materialized lane mirrors.
    pub materializations: u64,
    /// Hot→cold demotions (lane mirrors dropped under budget pressure).
    pub demotions: u64,
    /// Lane-mirror bytes currently held by the hot tier over cold.
    pub hot_bytes: u64,
    /// Packed row-major bytes held by the interned cold tier.
    pub cold_bytes: u64,
}

impl RegistryStats {
    /// Total packed bytes resident in the registry (cold rows + hot
    /// lane mirrors).
    pub fn resident_bytes(&self) -> u64 {
        self.cold_bytes + self.hot_bytes
    }

    /// Fraction of resolves served without a promotion, in `[0, 1]`
    /// (1.0 when nothing was resolved).
    pub fn hot_hit_rate(&self) -> f64 {
        if self.resolves == 0 {
            1.0
        } else {
            self.hot_hits as f64 / self.resolves as f64
        }
    }
}

/// One interned codebook set.
struct SetEntry {
    /// Content hash the set was interned under.
    hash: u64,
    /// The cold representation: row-major sign words only. Never
    /// dropped; identity-stable for the registry's lifetime.
    cold: Arc<[Codebook]>,
    /// The hot representation when promoted. Aliases `cold` when no
    /// member streams; otherwise a mirror-materialized copy (possibly
    /// *partial* after member-granular demotion — see
    /// [`CodebookRegistry::enforce_budget`]).
    hot: Option<Arc<[Codebook]>>,
    /// Lane-mirror bytes the hot representation adds over cold (the sum
    /// of `hot_member_bytes`).
    hot_extra_bytes: usize,
    /// Per-member lane-mirror bytes currently materialized in `hot`
    /// (0 for members that do not stream or whose mirror was demoted).
    hot_member_bytes: Vec<usize>,
    /// Per-member: true when that member's bit-GEMM would stream it
    /// (content-derived, fixed at intern).
    member_streams: Vec<bool>,
    /// True when at least one member streams (so promotion materializes
    /// mirrors and demotion reclaims bytes).
    any_streams: bool,
    /// Logical clock of the last touch (the LRU key).
    last_touch: u64,
}

impl SetEntry {
    /// True when the hot representation carries every mirror a full
    /// promotion would build — i.e. every streaming member is currently
    /// materialized. Partially-demoted entries fail this and re-promote
    /// on the next touch.
    fn hot_is_complete(&self) -> bool {
        self.member_streams
            .iter()
            .zip(&self.hot_member_bytes)
            .all(|(&streams, &bytes)| !streams || bytes > 0)
    }
}

struct RegistryInner {
    /// Interned sets in interning order; [`CodebookHandle::slot`]
    /// indexes this table.
    sets: Vec<SetEntry>,
    /// Content hash → slots carrying it (collision chain).
    by_hash: HashMap<u64, Vec<usize>>,
    /// Logical access counter; advanced by every resolve.
    clock: u64,
    stats: RegistryStats,
}

/// The content-addressed codebook store. See the [module docs](self).
///
/// Construct one per test/bench for isolation, or share the process-wide
/// [`CodebookRegistry::global`] (the session builder's default).
pub struct CodebookRegistry {
    hot_budget_bytes: usize,
    inner: Mutex<RegistryInner>,
}

impl Default for CodebookRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl CodebookRegistry {
    /// A registry with the [default](DEFAULT_HOT_BUDGET_BYTES) hot-tier
    /// budget.
    pub fn new() -> Self {
        Self::with_hot_budget(DEFAULT_HOT_BUDGET_BYTES)
    }

    /// A registry whose hot tier demotes past `budget_bytes` of
    /// materialized lane mirrors. A budget of 0 keeps every streaming
    /// set cold (mirrors are built per promotion and immediately
    /// reclaimable; non-streaming sets alias cold and cost nothing).
    pub fn with_hot_budget(budget_bytes: usize) -> Self {
        Self {
            hot_budget_bytes: budget_bytes,
            inner: Mutex::new(RegistryInner {
                sets: Vec::new(),
                by_hash: HashMap::new(),
                clock: 0,
                stats: RegistryStats::default(),
            }),
        }
    }

    /// The process-wide registry every session uses unless
    /// [`crate::session::SessionBuilder::registry`] overrides it.
    pub fn global() -> Arc<CodebookRegistry> {
        static GLOBAL: OnceLock<Arc<CodebookRegistry>> = OnceLock::new();
        GLOBAL
            .get_or_init(|| Arc::new(CodebookRegistry::new()))
            .clone()
    }

    /// The configured hot-tier byte budget.
    pub fn hot_budget_bytes(&self) -> usize {
        self.hot_budget_bytes
    }

    /// Interns `books` as one immutable set and returns its handle.
    /// A set whose content (dimensions and sign words) matches an
    /// existing entry shares that entry — the new allocation is dropped
    /// and both handles resolve to pointer-equal `Arc`s.
    ///
    /// # Panics
    ///
    /// Panics if `books` is empty (a factorization needs at least one
    /// codebook) or the registry mutex is poisoned.
    pub fn intern(registry: &Arc<CodebookRegistry>, mut books: Vec<Codebook>) -> CodebookHandle {
        assert!(!books.is_empty(), "cannot intern an empty codebook set");
        let hash = content_hash(&books);
        let mut inner = registry.inner.lock().expect("registry poisoned");
        if let Some(slots) = inner.by_hash.get(&hash) {
            for &slot in slots {
                if same_content(&inner.sets[slot].cold, &books) {
                    inner.stats.dedup_hits += 1;
                    return CodebookHandle {
                        registry: Arc::clone(registry),
                        slot,
                    };
                }
            }
        }
        // New content: store the cold (row-major-only) representation.
        let mut member_streams = Vec::with_capacity(books.len());
        let mut cold_bytes = 0usize;
        for b in &mut books {
            b.drop_lane_mirror();
            member_streams.push(b.packed().batch_streams_codebook());
            cold_bytes += b.packed().row_bytes();
        }
        let any_streams = member_streams.iter().any(|&s| s);
        let slot = inner.sets.len();
        let clock = inner.clock;
        inner.sets.push(SetEntry {
            hash,
            cold: books.into(),
            hot: None,
            hot_extra_bytes: 0,
            hot_member_bytes: vec![0; member_streams.len()],
            member_streams,
            any_streams,
            last_touch: clock,
        });
        inner.by_hash.entry(hash).or_default().push(slot);
        inner.stats.interned_sets += 1;
        inner.stats.cold_bytes += cold_bytes as u64;
        CodebookHandle {
            registry: Arc::clone(registry),
            slot,
        }
    }

    /// Current counters.
    ///
    /// # Panics
    ///
    /// Panics if the registry mutex is poisoned.
    pub fn stats(&self) -> RegistryStats {
        self.inner.lock().expect("registry poisoned").stats
    }

    /// Touches `slot`, promoting it hot if needed, and returns the hot
    /// `Arc`.
    fn resolve_slot(&self, slot: usize) -> Arc<[Codebook]> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        inner.stats.resolves += 1;
        let entry = &mut inner.sets[slot];
        entry.last_touch = clock;
        if let Some(hot) = entry.hot.as_ref().map(Arc::clone) {
            if entry.hot_is_complete() {
                inner.stats.hot_hits += 1;
                return hot;
            }
            // Partially demoted: fall through and re-materialize the
            // missing member mirrors below (counted as a promotion +
            // materialization, not a hot hit).
        }
        // Promotion. Non-streaming sets alias the cold Arc — their
        // kernels run the row walk at parity and duplicating bytes buys
        // nothing. Streaming sets get a mirror-materialized copy; a
        // partially-demoted set starts from its current hot copy so
        // surviving mirrors are reused rather than rebuilt.
        let hot = if entry.any_streams {
            let base = entry.hot.as_ref().unwrap_or(&entry.cold);
            let mut copy: Vec<Codebook> = base.to_vec();
            let mut added = 0usize;
            for (i, b) in copy.iter_mut().enumerate() {
                if entry.member_streams[i] && entry.hot_member_bytes[i] == 0 {
                    b.materialize_lane_mirror();
                    let bytes = b.packed().lane_mirror_bytes();
                    entry.hot_member_bytes[i] = bytes;
                    added += bytes;
                }
            }
            entry.hot_extra_bytes += added;
            inner.stats.materializations += 1;
            inner.stats.hot_bytes += added as u64;
            Arc::from(copy)
        } else {
            Arc::clone(&entry.cold)
        };
        inner.sets[slot].hot = Some(Arc::clone(&hot));
        inner.stats.promotions += 1;
        self.enforce_budget(&mut inner, slot);
        hot
    }

    /// Demotes materialized lane mirrors until the hot tier fits its
    /// budget. Granularity is one *member* mirror per step — the
    /// least-recently-touched hot set (other than `protected`, the entry
    /// just touched) gives up its largest remaining mirror (ties break
    /// toward the higher member index), so a set with one streaming
    /// member under pressure no longer pins its siblings' mirrors. A set
    /// whose last mirror is demoted drops its hot `Arc` entirely and
    /// re-promotes on the next touch; a partially-demoted set stays hot
    /// and re-materializes only the missing members.
    fn enforce_budget(&self, inner: &mut RegistryInner, protected: usize) {
        while inner.stats.hot_bytes > self.hot_budget_bytes as u64 {
            let victim = inner
                .sets
                .iter()
                .enumerate()
                .filter(|(slot, e)| *slot != protected && e.hot.is_some() && e.hot_extra_bytes > 0)
                .min_by_key(|(_, e)| e.last_touch)
                .map(|(slot, _)| slot);
            let Some(slot) = victim else { break };
            let entry = &mut inner.sets[slot];
            let (member, freed) = entry
                .hot_member_bytes
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b > 0)
                .max_by_key(|&(i, &b)| (b, i))
                .map(|(i, &b)| (i, b))
                .expect("hot_extra_bytes > 0 implies a materialized member");
            entry.hot_member_bytes[member] = 0;
            entry.hot_extra_bytes -= freed;
            if entry.hot_extra_bytes == 0 {
                // Last mirror gone: nothing distinguishes hot from cold
                // any more, so release the copy wholesale.
                entry.hot = None;
            } else {
                let mut copy: Vec<Codebook> = entry
                    .hot
                    .as_ref()
                    .expect("victim filter requires hot")
                    .to_vec();
                copy[member].drop_lane_mirror();
                entry.hot = Some(Arc::from(copy));
            }
            inner.stats.hot_bytes -= freed as u64;
            inner.stats.demotions += 1;
        }
    }
}

impl std::fmt::Debug for CodebookRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CodebookRegistry")
            .field("hot_budget_bytes", &self.hot_budget_bytes)
            .field("stats", &self.stats())
            .finish()
    }
}

/// A reference to one interned codebook set. Cheap to clone; two handles
/// compare equal exactly when they address the same entry of the same
/// registry (and therefore resolve to pointer-equal `Arc`s).
#[derive(Clone)]
pub struct CodebookHandle {
    registry: Arc<CodebookRegistry>,
    slot: usize,
}

impl CodebookHandle {
    /// Touches the entry (LRU), promotes it hot if demoted, and returns
    /// the current hot `Arc`. Callers run one whole solve pass against
    /// one resolved `Arc` — never re-resolve mid-pass (the executor's
    /// lockstep chunking groups by slice identity).
    pub fn resolve(&self) -> Arc<[Codebook]> {
        self.registry.resolve_slot(self.slot)
    }

    /// The registry this handle addresses.
    pub fn registry(&self) -> &Arc<CodebookRegistry> {
        &self.registry
    }
}

impl PartialEq for CodebookHandle {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.registry, &other.registry) && self.slot == other.slot
    }
}

impl Eq for CodebookHandle {}

impl std::fmt::Debug for CodebookHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.registry.inner.lock().expect("registry poisoned");
        f.debug_struct("CodebookHandle")
            .field("slot", &self.slot)
            .field("hash", &format_args!("{:016x}", inner.sets[self.slot].hash))
            .finish()
    }
}

/// FNV-1a over the full content of a codebook set: member count, then
/// each member's `(M, D)` shape and every vector's packed sign words.
/// Collisions are disambiguated by [`same_content`], so the hash only
/// has to be well-distributed, not cryptographic.
fn content_hash(books: &[Codebook]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(books.len() as u64);
    for b in books {
        mix(b.len() as u64);
        mix(b.dim() as u64);
        for v in b.vectors() {
            for &w in v.words() {
                mix(w);
            }
        }
    }
    h
}

/// Full content comparison (shape + sign words), used to disambiguate
/// hash collisions and to dedup re-interned sets.
fn same_content(a: &[Codebook], b: &[Codebook]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.len() == y.len()
                && x.dim() == y.dim()
                && x.vectors()
                    .iter()
                    .zip(y.vectors())
                    .all(|(u, v)| u.words() == v.words())
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng::rng_from_seed;

    fn books(m: usize, d: usize, n: usize, seed: u64) -> Vec<Codebook> {
        let mut rng = rng_from_seed(seed);
        (0..n).map(|_| Codebook::random(m, d, &mut rng)).collect()
    }

    #[test]
    fn identical_content_interns_once() {
        let reg = Arc::new(CodebookRegistry::new());
        let h1 = CodebookRegistry::intern(&reg, books(8, 256, 3, 11));
        let h2 = CodebookRegistry::intern(&reg, books(8, 256, 3, 11));
        assert_eq!(h1, h2);
        assert!(Arc::ptr_eq(&h1.resolve(), &h2.resolve()));
        let stats = reg.stats();
        assert_eq!(stats.interned_sets, 1);
        assert_eq!(stats.dedup_hits, 1);
    }

    #[test]
    fn distinct_content_gets_distinct_entries() {
        let reg = Arc::new(CodebookRegistry::new());
        let h1 = CodebookRegistry::intern(&reg, books(8, 256, 3, 11));
        let h2 = CodebookRegistry::intern(&reg, books(8, 256, 3, 12));
        assert_ne!(h1, h2);
        assert!(!Arc::ptr_eq(&h1.resolve(), &h2.resolve()));
        assert_eq!(reg.stats().interned_sets, 2);
    }

    #[test]
    fn non_streaming_sets_alias_cold_with_zero_hot_bytes() {
        let reg = Arc::new(CodebookRegistry::new());
        let h = CodebookRegistry::intern(&reg, books(8, 256, 3, 13));
        let resolved = h.resolve();
        assert!(resolved.iter().all(|b| !b.has_lane_mirror()));
        let stats = reg.stats();
        assert_eq!(stats.hot_bytes, 0, "cache-resident sets duplicate nothing");
        assert!(stats.cold_bytes > 0);
        // Second resolve is a hot hit on the aliased Arc.
        let again = h.resolve();
        assert!(Arc::ptr_eq(&resolved, &again));
        assert_eq!(reg.stats().hot_hits, 1);
    }

    #[test]
    fn streaming_sets_materialize_mirrors_on_promotion() {
        let reg = Arc::new(CodebookRegistry::new());
        // 512×2048 rows: 128 KiB row-major, past GEMM_STREAM_BYTES.
        let h = CodebookRegistry::intern(&reg, books(512, 2048, 1, 14));
        assert_eq!(reg.stats().hot_bytes, 0, "intern does not promote");
        let resolved = h.resolve();
        assert!(resolved[0].has_lane_mirror());
        let stats = reg.stats();
        assert_eq!(stats.materializations, 1);
        assert_eq!(stats.hot_bytes, stats.cold_bytes, "mirror == row bytes");
    }

    #[test]
    fn lru_demotion_reclaims_and_rebuilds_bit_identically() {
        // Budget fits exactly one 512×2048 mirror (512 KiB); two
        // streaming sets must evict each other in LRU order.
        let one_mirror = 512 * 2048 / 8; // bytes of one lane mirror
        let reg = Arc::new(CodebookRegistry::with_hot_budget(one_mirror));
        let h1 = CodebookRegistry::intern(&reg, books(512, 2048, 1, 15));
        let h2 = CodebookRegistry::intern(&reg, books(512, 2048, 1, 16));
        let first = h1.resolve();
        assert_eq!(reg.stats().demotions, 0);
        let _second = h2.resolve();
        let stats = reg.stats();
        assert_eq!(stats.demotions, 1, "h1 demoted to admit h2");
        assert!(stats.hot_bytes <= one_mirror as u64);
        // The demoted entry rebuilds on next touch, bit-identical.
        let rebuilt = h1.resolve();
        assert!(!Arc::ptr_eq(&first, &rebuilt), "rebuild is a fresh Arc");
        assert_eq!(&first[..], &rebuilt[..], "rebuild is content-identical");
        assert_eq!(reg.stats().demotions, 2, "h2 demoted in turn");
    }

    #[test]
    fn demotion_is_member_granular_not_set_granular() {
        // One set with two streaming members (two 128 KiB mirrors) plus
        // one single-member streaming set, under a budget that fits 2.5
        // mirrors. Pressure must shave ONE mirror off the LRU set, not
        // evict the whole set.
        let one_mirror = 512 * 2048 / 8;
        let reg = Arc::new(CodebookRegistry::with_hot_budget(one_mirror * 5 / 2));
        let pair = CodebookRegistry::intern(&reg, books(512, 2048, 2, 18));
        let single = CodebookRegistry::intern(&reg, books(512, 2048, 1, 19));
        let pair_hot = pair.resolve();
        assert!(pair_hot.iter().all(|b| b.has_lane_mirror()));
        assert_eq!(reg.stats().hot_bytes, 2 * one_mirror as u64);
        let _single_hot = single.resolve();
        let stats = reg.stats();
        assert_eq!(
            stats.demotions, 1,
            "exactly one member mirror demoted (equal sizes tie toward the higher index)"
        );
        assert_eq!(
            stats.hot_bytes,
            2 * one_mirror as u64,
            "pair keeps one mirror resident; set-granular eviction would leave only one total"
        );
        // In-flight borrowers of the pre-demotion Arc are untouched.
        assert!(pair_hot.iter().all(|b| b.has_lane_mirror()));
        // Re-touching the partially-demoted set re-materializes only the
        // missing member (promotion + materialization, not a hot hit).
        let hits_before = stats.hot_hits;
        let repromoted = pair.resolve();
        assert!(repromoted.iter().all(|b| b.has_lane_mirror()));
        assert_eq!(
            &pair_hot[..],
            &repromoted[..],
            "rebuild is content-identical"
        );
        let stats = reg.stats();
        assert_eq!(stats.hot_hits, hits_before, "partial hot set is not a hit");
        assert_eq!(
            stats.demotions, 2,
            "re-promotion pushed the single-member set's mirror out in turn"
        );
        assert!(stats.hot_bytes <= (one_mirror * 5 / 2) as u64);
    }

    #[test]
    fn interning_from_two_threads_yields_one_allocation() {
        let reg = Arc::new(CodebookRegistry::new());
        let handles: Vec<CodebookHandle> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let reg = Arc::clone(&reg);
                    scope.spawn(move || CodebookRegistry::intern(&reg, books(8, 256, 3, 17)))
                })
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).collect()
        });
        assert_eq!(handles[0], handles[1]);
        assert!(Arc::ptr_eq(&handles[0].resolve(), &handles[1].resolve()));
        assert_eq!(reg.stats().interned_sets, 1);
    }

    #[test]
    #[should_panic(expected = "empty codebook set")]
    fn empty_set_rejected() {
        let reg = Arc::new(CodebookRegistry::new());
        let _ = CodebookRegistry::intern(&reg, Vec::new());
    }
}
