//! A fault-tolerant client for the serving wire protocol.
//!
//! [`ResilientClient`] wraps the bare [`ServeClient`](crate::server::ServeClient)
//! socket handling with the three behaviors a real deployment needs:
//!
//! - **Reconnect**: a dropped, reaped, or mid-frame-severed connection is
//!   re-established transparently (with its own attempt budget) and the
//!   in-flight request is resent. A request the server admitted before
//!   the cut may therefore be solved twice under a new id — the trace
//!   records both, replay covers both, and the caller sees exactly one
//!   response.
//! - **Exponential backoff with deterministic jitter**: waits double per
//!   attempt up to a cap and are jittered by a seeded splitmix64 stream,
//!   so a fleet of clients configured with distinct seeds desynchronizes
//!   while every individual run stays reproducible.
//! - **Per-shed-reason retry budgets**: the server's
//!   [`ShedReason`](crate::wire::ShedReason) taxonomy drives the retry
//!   decision — transient pressure (`QueueFull`, `RateLimited`) retries
//!   with backoff, structural rejections (`UnknownBackend`) and missed
//!   deadlines (`DeadlineExceeded`) fail fast by default. See the
//!   README's "Failure modes and retry semantics" table.
//!
//! The client is strictly one-request-in-flight: [`ResilientClient::call`]
//! blocks until the request resolves (response, terminal shed, or
//! exhausted budget). That keeps resend-after-reconnect unambiguous.

use std::net::SocketAddr;
use std::time::Duration;

use crate::server::{request_frame, ServeClient};
use crate::service::FactorizeRequest;
use crate::wire::{Frame, ShedReason, WireError, WireResponse};

/// How many times to retry one class of failure, and how to pace it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` means fail fast.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per further attempt.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff wait.
    pub max_backoff: Duration,
}

impl RetryPolicy {
    /// No retries: the first failure is final.
    pub fn fail_fast() -> Self {
        Self {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// `attempts` tries paced by exponential backoff from `base`.
    pub fn backoff(attempts: u32, base: Duration) -> Self {
        Self {
            max_attempts: attempts.max(1),
            base_backoff: base,
            max_backoff: base.saturating_mul(16),
        }
    }

    /// The pre-jitter wait before attempt `attempt` (0-based; attempt 0
    /// is the first try and never waits).
    fn delay(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let factor = 1u32 << (attempt - 1).min(16);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

/// Client behavior knobs: seeds, budgets, and per-reason retry policies.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Seed of the jitter stream (give each client its own).
    pub seed: u64,
    /// Budget for establishing (and re-establishing) the connection.
    pub reconnect: RetryPolicy,
    /// Budget for resending one request across connection failures.
    pub resend: RetryPolicy,
    /// Per-shed-reason budgets, indexed by [`ShedReason::ALL`] order.
    pub shed: [RetryPolicy; ShedReason::ALL.len()],
}

impl ClientConfig {
    /// The default posture for `seed`: 4 reconnect attempts from 10 ms,
    /// 4 resends, retry `QueueFull`/`RateLimited` 4 times from 5 ms,
    /// fail fast on everything structural.
    pub fn new(seed: u64) -> Self {
        let transient = RetryPolicy::backoff(4, Duration::from_millis(5));
        let mut shed = [RetryPolicy::fail_fast(); ShedReason::ALL.len()];
        shed[shed_index(ShedReason::QueueFull)] = transient;
        shed[shed_index(ShedReason::RateLimited)] = transient;
        Self {
            seed,
            reconnect: RetryPolicy::backoff(4, Duration::from_millis(10)),
            resend: RetryPolicy::backoff(4, Duration::from_millis(5)),
            shed,
        }
    }

    /// Overrides the budget for one shed reason.
    pub fn shed_policy(mut self, reason: ShedReason, policy: RetryPolicy) -> Self {
        self.shed[shed_index(reason)] = policy;
        self
    }

    /// Overrides the reconnect budget.
    pub fn reconnect(mut self, policy: RetryPolicy) -> Self {
        self.reconnect = policy;
        self
    }

    /// Overrides the resend-after-disconnect budget.
    pub fn resend(mut self, policy: RetryPolicy) -> Self {
        self.resend = policy;
        self
    }
}

fn shed_index(reason: ShedReason) -> usize {
    ShedReason::ALL
        .iter()
        .position(|&r| r == reason)
        .expect("reason in ALL")
}

/// Why a [`ResilientClient::call`] ultimately failed.
#[derive(Debug)]
pub enum ClientError {
    /// The shed reason's budget ran out (or it fails fast).
    Shed {
        /// The final shed reason the server answered with.
        reason: ShedReason,
        /// Attempts made (1 for a fail-fast reason).
        attempts: u32,
    },
    /// The connection could not be (re)established within budget; the
    /// last wire error is attached.
    ConnectFailed(WireError),
    /// The resend budget ran out; the last wire error is attached.
    RetriesExhausted(WireError),
    /// The server speaks a different protocol version — never retried.
    VersionMismatch {
        /// Version the server answered with.
        got: u8,
        /// Version this build speaks.
        expected: u8,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Shed { reason, attempts } => {
                write!(f, "shed ({reason}) after {attempts} attempt(s)")
            }
            ClientError::ConnectFailed(e) => write!(f, "connect failed: {e}"),
            ClientError::RetriesExhausted(e) => write!(f, "retries exhausted: {e}"),
            ClientError::VersionMismatch { got, expected } => {
                write!(f, "server speaks v{got}, this client v{expected}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// Liveness counters for one client's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Requests that resolved with a response.
    pub completed: u64,
    /// Requests that ended in a terminal shed or exhausted budget.
    pub failed: u64,
    /// Successful connection establishments (the first one included).
    pub connects: u64,
    /// Resends triggered by a connection failure mid-request.
    pub resends: u64,
    /// Retries triggered by a retryable shed.
    pub shed_retries: u64,
}

/// A reconnecting, backoff-paced, shed-aware wire client. See the
/// [module docs](self) for semantics.
#[derive(Debug)]
pub struct ResilientClient {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Option<ServeClient>,
    rng_state: u64,
    next_tag: u64,
    stats: ClientStats,
}

impl ResilientClient {
    /// Creates the client and eagerly establishes the first connection
    /// (within the reconnect budget, so a briefly unavailable server is
    /// tolerated at startup too).
    pub fn connect(addr: SocketAddr, config: ClientConfig) -> Result<Self, ClientError> {
        let mut client = Self {
            addr,
            rng_state: config.seed ^ 0x9E37_79B9_7F4A_7C15,
            config,
            conn: None,
            next_tag: 0,
            stats: ClientStats::default(),
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Submits `request` and blocks until it resolves. Retries per the
    /// configured budgets; returns the server's response on success.
    pub fn call(&mut self, request: &FactorizeRequest) -> Result<WireResponse, ClientError> {
        let mut send_attempt = 0u32;
        let mut shed_attempts = [0u32; ShedReason::ALL.len()];
        loop {
            self.ensure_connected()?;
            let tag = self.next_tag;
            self.next_tag += 1;
            match self.round_trip(tag, request) {
                Ok(Frame::Response(r)) => {
                    self.stats.completed += 1;
                    return Ok(r);
                }
                Ok(Frame::Shed { reason, .. }) => {
                    let idx = shed_index(reason);
                    shed_attempts[idx] += 1;
                    let policy = self.config.shed[idx];
                    if shed_attempts[idx] >= policy.max_attempts {
                        self.stats.failed += 1;
                        return Err(ClientError::Shed {
                            reason,
                            attempts: shed_attempts[idx],
                        });
                    }
                    self.stats.shed_retries += 1;
                    self.sleep_jittered(policy.delay(shed_attempts[idx]));
                }
                Ok(_) => {
                    // An Error frame (or any unexpected frame) poisons
                    // the connection; drop it and resend.
                    self.conn = None;
                    send_attempt += 1;
                    if send_attempt >= self.config.resend.max_attempts {
                        self.stats.failed += 1;
                        return Err(ClientError::RetriesExhausted(WireError::Malformed(
                            "unexpected frame",
                        )));
                    }
                    self.stats.resends += 1;
                    self.sleep_jittered(self.config.resend.delay(send_attempt));
                }
                Err(e) => {
                    self.conn = None;
                    send_attempt += 1;
                    if send_attempt >= self.config.resend.max_attempts {
                        self.stats.failed += 1;
                        return Err(ClientError::RetriesExhausted(e));
                    }
                    self.stats.resends += 1;
                    self.sleep_jittered(self.config.resend.delay(send_attempt));
                }
            }
        }
    }

    /// One send + receive on the current connection. Any frame other
    /// than a Response/Shed tagged for us bubbles up for the caller to
    /// classify.
    fn round_trip(&mut self, tag: u64, request: &FactorizeRequest) -> Result<Frame, WireError> {
        let conn = self.conn.as_mut().expect("connected");
        conn.send(&request_frame(tag, request))?;
        loop {
            match conn.recv()? {
                Some(Frame::Response(r)) if r.tag == tag => return Ok(Frame::Response(r)),
                Some(Frame::Shed { tag: t, reason }) if t == tag => {
                    return Ok(Frame::Shed { tag: t, reason })
                }
                // A response to an earlier incarnation of a resent
                // request: the caller already gave up on that tag.
                Some(Frame::Response(_)) | Some(Frame::Shed { .. }) => continue,
                Some(other) => return Ok(other),
                None => return Err(WireError::Truncated),
            }
        }
    }

    fn ensure_connected(&mut self) -> Result<(), ClientError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let policy = self.config.reconnect;
        let mut last = WireError::Truncated;
        for attempt in 0..policy.max_attempts {
            self.sleep_jittered(policy.delay(attempt));
            match ServeClient::connect(self.addr) {
                Ok(conn) => {
                    self.conn = Some(conn);
                    self.stats.connects += 1;
                    return Ok(());
                }
                Err(WireError::VersionMismatch { got, expected }) => {
                    // Retrying cannot change the server's version.
                    return Err(ClientError::VersionMismatch { got, expected });
                }
                Err(e) => last = e,
            }
        }
        Err(ClientError::ConnectFailed(last))
    }

    /// Sleeps `delay` scaled by a seeded jitter factor in `[0.5, 1.0)`,
    /// the classic decorrelation trick without a shared rng dependency.
    fn sleep_jittered(&mut self, delay: Duration) {
        if delay.is_zero() {
            return;
        }
        let jitter = 0.5 + 0.5 * (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        std::thread::sleep(delay.mul_f64(jitter));
    }

    /// splitmix64 over the client's private state.
    fn next_u64(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::backoff(5, Duration::from_millis(10));
        assert_eq!(p.delay(0), Duration::ZERO);
        assert_eq!(p.delay(1), Duration::from_millis(10));
        assert_eq!(p.delay(2), Duration::from_millis(20));
        assert_eq!(p.delay(3), Duration::from_millis(40));
        assert_eq!(p.delay(20), p.max_backoff, "capped");
    }

    #[test]
    fn default_config_retries_transient_sheds_only() {
        let c = ClientConfig::new(1);
        assert!(c.shed[shed_index(ShedReason::QueueFull)].max_attempts > 1);
        assert!(c.shed[shed_index(ShedReason::RateLimited)].max_attempts > 1);
        assert_eq!(
            c.shed[shed_index(ShedReason::UnknownBackend)].max_attempts,
            1
        );
        assert_eq!(
            c.shed[shed_index(ShedReason::DeadlineExceeded)].max_attempts,
            1
        );
    }

    #[test]
    fn jitter_stream_is_deterministic_per_seed() {
        let mut a = ResilientClient {
            addr: "127.0.0.1:1".parse().unwrap(),
            config: ClientConfig::new(42),
            conn: None,
            rng_state: 42 ^ 0x9E37_79B9_7F4A_7C15,
            next_tag: 0,
            stats: ClientStats::default(),
        };
        let mut b = ResilientClient {
            addr: "127.0.0.1:1".parse().unwrap(),
            config: ClientConfig::new(42),
            conn: None,
            rng_state: 42 ^ 0x9E37_79B9_7F4A_7C15,
            next_tag: 0,
            stats: ClientStats::default(),
        };
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }
}
