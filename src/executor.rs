//! Deterministic parallel batch execution.
//!
//! Every engine derives the seed of its `k`-th solve purely from
//! `(engine seed, k)` — the run *cursor* exposed through
//! [`Backend::run_cursor`] / [`Backend::seek_run`]. That makes batch items
//! embarrassingly parallel without sacrificing reproducibility: a worker
//! pool of independently constructed engines (same constructor seed)
//! claims items dynamically, seeks each engine to the cursor the item
//! would have had sequentially, and solves. Per-item outcomes and reports
//! are therefore **bit-identical** to a sequential pass, and any
//! order-sensitive aggregation (floating-point energy sums) is done
//! afterwards in item order.
//!
//! The pool uses [`std::thread::scope`], so worker lifetimes are tied to
//! the call and the shared codebooks are borrowed, not cloned.
//!
//! # Lockstep batching
//!
//! On top of per-item parallelism, every pass groups contiguous runs of
//! same-shape items (same codebook set, consecutive run cursors) into
//! **lockstep chunks** and offers each chunk to the engine's
//! [`Backend::factorize_lockstep`] batch stepper, which advances all
//! problems of the chunk one iteration at a time through the batched
//! matrix–matrix kernels. Engines without a lockstep path (the simulated
//! hardware), and stragglers that break a chunk's shape, fall back to the
//! per-item solve. Chunking never changes outcomes: lockstep solves are
//! bit-identical to the sequential per-item stream, so the determinism
//! contracts (threads(N) ≡ threads(1), live ≡ replay) are preserved by
//! construction.
//!
//! # Work stealing
//!
//! Chunk *scheduling* is work-stealing over per-worker deques
//! ([`StealPool`]): each worker starts with a contiguous span of chunks
//! and, when its own deque drains, steals the back half of the first
//! non-empty victim's deque. Lockstep chunks retire raggedly — a chunk
//! whose problems all converge in a few iterations finishes long before
//! one that runs to the iteration budget — and under the previous fixed
//! claim order a worker that drew only easy chunks went idle while
//! another serialized the hard ones. Stealing rebalances those tails.
//! Scheduling is invisible to results by construction: *which worker*
//! solves a chunk affects nothing, because every chunk seeks its engine
//! to the chunk's own cursor before solving — so `threads(N) ≡
//! threads(1)` holds under any steal interleaving, and
//! [`steal_events`] only feeds observability (bench scaling tables),
//! never control flow.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hdc::{BipolarVector, Codebook};
use resonator::batch::BatchItem;
use resonator::engine::FactorizationOutcome;

use crate::backend::{Backend, LockstepQuery, RunReport};
use crate::workload::WorkloadItem;

/// Upper bound on a lockstep chunk. Eight problems per batch already
/// amortize each codebook tile across the whole chunk (the per-B bench
/// table in `BENCH_kernels.json` shows diminishing returns past 8–16)
/// while keeping the batch scratch (`B × D` sums, `B` estimate sets)
/// comfortably in cache; work is additionally split so one chunk never
/// serializes a pass that has more workers than chunks.
pub(crate) const LOCKSTEP_CHUNK: usize = 8;

/// Chunk cap for a pass of `n_items` on `workers` threads: the lockstep
/// bound, shrunk so every worker has at least one chunk to claim.
fn chunk_cap(n_items: usize, workers: usize) -> usize {
    LOCKSTEP_CHUNK.min(n_items.div_ceil(workers.max(1))).max(1)
}

/// Steal events since process start, across every pass (monotone,
/// process-global). Observability only — exposed to the bench harness
/// through [`crate::session::executor_steal_events`]; nothing reads it on
/// a decision path.
static STEAL_EVENTS: AtomicU64 = AtomicU64::new(0);

/// See [`STEAL_EVENTS`].
pub(crate) fn steal_events() -> u64 {
    STEAL_EVENTS.load(Ordering::Relaxed)
}

/// Work-stealing chunk scheduler: one `Mutex<VecDeque>` of chunk indices
/// per worker, seeded with contiguous spans (so initial claims preserve
/// the cache-friendly front-to-back sweep), drained own-front-first with
/// back-half stealing on empty.
///
/// Chunks leave the pool exactly once (a pop under the owner's lock or a
/// `split_off` under the victim's), so a worker observing every deque
/// empty can safely exit: any chunk it did not see is already in some
/// worker's hands and will be solved there. Which worker runs a chunk is
/// irrelevant to results — every chunk re-seeds its engine from the
/// chunk's own cursor — so steal timing never reaches outcomes.
struct StealPool {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl StealPool {
    /// Distributes `n_chunks` chunk indices over `workers` deques as
    /// contiguous spans (worker `w` owns `[w·n/W, (w+1)·n/W)`).
    fn new(n_chunks: usize, workers: usize) -> Self {
        let deques = (0..workers.max(1))
            .map(|w| {
                let lo = w * n_chunks / workers.max(1);
                let hi = (w + 1) * n_chunks / workers.max(1);
                Mutex::new((lo..hi).collect::<VecDeque<usize>>())
            })
            .collect();
        Self { deques }
    }

    /// Next chunk for worker `w`: own deque front, else sweep victims
    /// cyclically from `w + 1`, stealing the back half (at least one
    /// chunk) of the first non-empty deque — the remainder of the loot
    /// refills `w`'s own deque. Returns `None` when every deque was
    /// empty at inspection (remaining chunks, if any, are in-flight in
    /// other workers' hands).
    fn next(&self, w: usize) -> Option<usize> {
        if let Some(c) = self.deques[w]
            .lock()
            .expect("steal deque poisoned")
            .pop_front()
        {
            return Some(c);
        }
        let n = self.deques.len();
        for off in 1..n {
            let v = (w + off) % n;
            let mut victim = self.deques[v].lock().expect("steal deque poisoned");
            let vn = victim.len();
            if vn == 0 {
                continue;
            }
            // Back half (ceil), leaving the front — the span the victim
            // is working toward — in place.
            let mut loot = victim.split_off(vn / 2);
            drop(victim);
            STEAL_EVENTS.fetch_add(1, Ordering::Relaxed);
            let first = loot.pop_front().expect("stolen loot is non-empty");
            if !loot.is_empty() {
                self.deques[w]
                    .lock()
                    .expect("steal deque poisoned")
                    .extend(loot);
            }
            return Some(first);
        }
        None
    }
}

/// One item's result from a parallel pass: the functional outcome plus the
/// engine's per-run report (for cost aggregation in item order).
pub(crate) struct IndexedSolve {
    /// The factorization outcome of this item.
    pub outcome: FactorizationOutcome,
    /// The engine's report for this item, when the engine produces one.
    pub report: Option<RunReport>,
}

/// Solves `n_items` queries across a scoped worker pool and returns
/// results in item order. `factory` constructs one engine per worker (all
/// with the same constructor seed); `fetch(i)` yields item `i`'s codebooks,
/// query, and optional ground truth; item `i` is solved at run cursor
/// `base_cursor + i`, exactly as a single sequential engine would have.
///
/// # Panics
///
/// Panics if `threads == 0`, `n_items == 0`, or a worker panics.
fn solve_each<'a, F>(
    factory: &(dyn Fn() -> Box<dyn Backend> + Sync),
    n_items: usize,
    fetch: F,
    base_cursor: u64,
    threads: usize,
) -> Vec<IndexedSolve>
where
    F: Fn(usize) -> (&'a [Codebook], &'a BipolarVector, Option<&'a [usize]>) + Sync,
{
    assert!(threads > 0, "worker pool needs at least one thread");
    assert!(n_items > 0, "batch must be non-empty");
    let workers = threads.min(n_items);
    // Lockstep chunks: contiguous items sharing one codebook set (their
    // cursors are consecutive by construction of `base_cursor + i`).
    // Identity (`ptr::eq`), not content, defines "one set" — which is
    // why every caller resolves its registry handle ONCE per pass and
    // feeds the whole pass a single `Arc` slice: a mid-pass re-resolve
    // could observe a rebuilt hot-tier allocation and split a chunk.
    // (Splitting is only a throughput loss, never a correctness one, but
    // the one-resolve-per-pass rule keeps chunking deterministic.)
    let cap = chunk_cap(n_items, workers);
    let mut chunks: Vec<Range<usize>> = Vec::new();
    let mut start = 0usize;
    for i in 1..n_items {
        if i - start >= cap || !std::ptr::eq(fetch(i).0, fetch(start).0) {
            chunks.push(start..i);
            start = i;
        }
    }
    chunks.push(start..n_items);
    let pool = StealPool::new(chunks.len(), workers);
    // One slot per item: workers write disjoint slots, so per-slot locks
    // never contend beyond their own writer.
    let slots: Vec<Mutex<Option<IndexedSolve>>> = (0..n_items).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let pool = &pool;
            let chunks = &chunks;
            let slots = &slots;
            let fetch = &fetch;
            scope.spawn(move || {
                let mut engine = factory();
                while let Some(c) = pool.next(w) {
                    let chunk = chunks[c].clone();
                    let codebooks = fetch(chunk.start).0;
                    engine.seek_run(base_cursor + chunk.start as u64);
                    let queries: Vec<LockstepQuery<'_>> = chunk
                        .clone()
                        .map(|i| {
                            let (_, query, truth) = fetch(i);
                            (query, truth)
                        })
                        .collect();
                    if let Some(solves) = engine.factorize_lockstep(codebooks, &queries) {
                        for (i, solve) in chunk.clone().zip(solves) {
                            *slots[i].lock().expect("result slot poisoned") = Some(IndexedSolve {
                                outcome: solve.outcome,
                                report: solve.report,
                            });
                        }
                    } else {
                        // Per-item fallback for engines without a
                        // lockstep stepper.
                        for i in chunk.clone() {
                            let (codebooks, query, truth) = fetch(i);
                            engine.seek_run(base_cursor + i as u64);
                            let outcome = engine.factorize_query(codebooks, query, truth);
                            let report = engine.last_run_stats();
                            *slots[i].lock().expect("result slot poisoned") =
                                Some(IndexedSolve { outcome, report });
                        }
                    }
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every item solved by the pool")
        })
        .collect()
}

/// Solves a batch of items sharing one set of codebooks (the
/// [`crate::session::Session::run`] shape). See [`solve_each`].
///
/// # Panics
///
/// Panics if `threads == 0`, `items` is empty, or a worker panics.
pub(crate) fn solve_indexed(
    factory: &(dyn Fn() -> Box<dyn Backend> + Sync),
    codebooks: &[Codebook],
    items: &[BatchItem],
    base_cursor: u64,
    threads: usize,
) -> Vec<IndexedSolve> {
    solve_each(
        factory,
        items.len(),
        |i| (codebooks, &items[i].query, items[i].truth.as_deref()),
        base_cursor,
        threads,
    )
}

/// Solves workload items, each addressing one of several codebook groups
/// (fresh-codebook workloads like capacity sweeps need a group per trial;
/// most workloads have exactly one). See [`solve_each`].
///
/// # Panics
///
/// Panics if `threads == 0`, `items` is empty, a group index is out of
/// range, or a worker panics.
pub(crate) fn solve_grouped(
    factory: &(dyn Fn() -> Box<dyn Backend> + Sync),
    groups: &[Vec<Codebook>],
    items: &[WorkloadItem],
    base_cursor: u64,
    threads: usize,
) -> Vec<IndexedSolve> {
    solve_each(
        factory,
        items.len(),
        |i| {
            let item = &items[i];
            (
                groups[item.group].as_slice(),
                &item.query,
                item.truth.as_deref(),
            )
        },
        base_cursor,
        threads,
    )
}

/// One service request ready to solve: which shard's engine solves it, at
/// which run cursor, against which codebooks. Unlike the session batch
/// shapes above, a single pass may span several shards (and therefore
/// several engine constructions), which is how the service flushes a
/// heterogeneous micro-batch through one worker pool.
pub(crate) struct RequestSolve<'a> {
    /// Index into the factory table of the engine that owns this request.
    pub shard: usize,
    /// Run cursor the request was assigned at admission.
    pub cursor: u64,
    /// Codebooks the query is defined over.
    pub codebooks: &'a [Codebook],
    /// The product vector to factorize.
    pub query: &'a BipolarVector,
    /// Ground truth, when the caller knows it.
    pub truth: Option<&'a [usize]>,
}

/// Solves a heterogeneous micro-batch across a scoped worker pool and
/// returns results in item order. `factories[s]` constructs the engine of
/// shard `s`; each worker instantiates a shard's engine lazily on first
/// use and keeps it warm for the rest of the pass. Every request is solved
/// at its admission-time cursor, so results are **bit-identical** to a
/// serial replay of the same requests in any order — the property the
/// service's trace/replay contract rests on.
///
/// # Panics
///
/// Panics if `threads == 0`, `requests` is empty, a shard index is out of
/// range, or a worker panics.
pub(crate) fn solve_requests(
    factories: &[Box<dyn Fn() -> Box<dyn Backend> + Send + Sync>],
    requests: &[RequestSolve<'_>],
    threads: usize,
) -> Vec<IndexedSolve> {
    assert!(threads > 0, "worker pool needs at least one thread");
    assert!(!requests.is_empty(), "micro-batch must be non-empty");
    let n_items = requests.len();
    let workers = threads.min(n_items);
    // Lockstep chunks: maximal runs of requests on one shard with
    // consecutive cursors over one codebook set (stragglers — shard
    // switches, cursor gaps — start a new chunk and may end up solving
    // per-item).
    let cap = chunk_cap(n_items, workers);
    let mut chunks: Vec<Range<usize>> = Vec::new();
    let mut start = 0usize;
    for i in 1..n_items {
        let (prev, cur) = (&requests[i - 1], &requests[i]);
        if i - start >= cap
            || cur.shard != prev.shard
            || cur.cursor != prev.cursor + 1
            || !std::ptr::eq(cur.codebooks, prev.codebooks)
        {
            chunks.push(start..i);
            start = i;
        }
    }
    chunks.push(start..n_items);
    let pool = StealPool::new(chunks.len(), workers);
    let slots: Vec<Mutex<Option<IndexedSolve>>> = (0..n_items).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let pool = &pool;
            let chunks = &chunks;
            let slots = &slots;
            scope.spawn(move || {
                let mut engines: Vec<Option<Box<dyn Backend>>> =
                    (0..factories.len()).map(|_| None).collect();
                while let Some(c) = pool.next(w) {
                    let chunk = chunks[c].clone();
                    let head = &requests[chunk.start];
                    let engine = engines[head.shard].get_or_insert_with(|| factories[head.shard]());
                    engine.seek_run(head.cursor);
                    let queries: Vec<LockstepQuery<'_>> = requests[chunk.clone()]
                        .iter()
                        .map(|r| (r.query, r.truth))
                        .collect();
                    if let Some(solves) = engine.factorize_lockstep(head.codebooks, &queries) {
                        for (i, solve) in chunk.clone().zip(solves) {
                            *slots[i].lock().expect("result slot poisoned") = Some(IndexedSolve {
                                outcome: solve.outcome,
                                report: solve.report,
                            });
                        }
                    } else {
                        for i in chunk.clone() {
                            let req = &requests[i];
                            engine.seek_run(req.cursor);
                            let outcome =
                                engine.factorize_query(req.codebooks, req.query, req.truth);
                            let report = engine.last_run_stats();
                            *slots[i].lock().expect("result slot poisoned") =
                                Some(IndexedSolve { outcome, report });
                        }
                    }
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every request solved by the pool")
        })
        .collect()
}

/// Resolves a configured thread count: `0` means "all available cores".
pub(crate) fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        configured
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::BackendKind;
    use hdc::rng::rng_from_seed;
    use hdc::ProblemSpec;
    use resonator::batch::random_batch;

    /// Strips the wall-clock profile (the only non-deterministic field)
    /// before comparing outcomes bit-for-bit.
    fn functional(outcome: &FactorizationOutcome) -> FactorizationOutcome {
        let mut o = outcome.clone();
        o.times = Default::default();
        o
    }

    #[test]
    fn parallel_items_match_sequential_items() {
        let spec = ProblemSpec::new(3, 8, 256);
        let mut rng = rng_from_seed(500);
        let books: Vec<Codebook> = (0..spec.factors)
            .map(|_| Codebook::random(spec.codebook_size, spec.dim, &mut rng))
            .collect();
        let (items, _) = random_batch(&books, 6, 501);

        let factory = || BackendKind::Stochastic.instantiate(spec, 400, 9, None, None);
        let mut sequential = factory();
        let expected: Vec<FactorizationOutcome> = items
            .iter()
            .map(|i| sequential.factorize_query(&books, &i.query, i.truth.as_deref()))
            .collect();

        let parallel = solve_indexed(&factory, &books, &items, 0, 3);
        assert_eq!(parallel.len(), expected.len());
        for (p, e) in parallel.iter().zip(&expected) {
            assert_eq!(
                functional(&p.outcome),
                functional(e),
                "parallel item diverged from sequential"
            );
        }
    }

    #[test]
    fn base_cursor_offsets_the_seed_stream() {
        let spec = ProblemSpec::new(2, 8, 256);
        let mut rng = rng_from_seed(502);
        let books: Vec<Codebook> = (0..spec.factors)
            .map(|_| Codebook::random(spec.codebook_size, spec.dim, &mut rng))
            .collect();
        let (items, _) = random_batch(&books, 3, 503);
        let factory = || BackendKind::Stochastic.instantiate(spec, 400, 10, None, None);

        // Sequential engine that has already issued 5 runs.
        let mut warmed = factory();
        warmed.seek_run(5);
        let expected: Vec<FactorizationOutcome> = items
            .iter()
            .map(|i| warmed.factorize_query(&books, &i.query, i.truth.as_deref()))
            .collect();

        let parallel = solve_indexed(&factory, &books, &items, 5, 2);
        for (p, e) in parallel.iter().zip(&expected) {
            assert_eq!(functional(&p.outcome), functional(e));
        }
    }

    #[test]
    fn zero_threads_resolve_to_available_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn steal_pool_claims_every_chunk_exactly_once() {
        // Deterministic single-threaded drive of the scheduler itself:
        // 3 workers, 8 chunks → contiguous spans [0,2), [2,5), [5,8).
        let pool = StealPool::new(8, 3);
        // Own-deque claims are FIFO within the span.
        assert_eq!(pool.next(0), Some(0));
        assert_eq!(pool.next(0), Some(1));
        // Worker 0's deque is now empty: it must steal the back half of
        // the first non-empty victim (worker 1 holds [2, 3, 4] → keeps
        // [2], loot [3, 4]) and run the loot front-first.
        assert_eq!(pool.next(0), Some(3));
        assert_eq!(pool.next(0), Some(4));
        // Victim kept the front of its span.
        assert_eq!(pool.next(1), Some(2));
        // Worker 2 drains its own span untouched.
        assert_eq!(pool.next(2), Some(5));
        assert_eq!(pool.next(2), Some(6));
        assert_eq!(pool.next(2), Some(7));
        // All deques empty: every worker observes exhaustion.
        assert_eq!(pool.next(0), None);
        assert_eq!(pool.next(1), None);
        assert_eq!(pool.next(2), None);
    }

    #[test]
    fn steal_pool_steals_a_single_remaining_chunk() {
        // A one-chunk victim deque must be stolen whole (back "half"
        // rounds up), or tiny tail passes could strand work behind one
        // busy worker.
        let pool = StealPool::new(1, 4);
        assert_eq!(pool.next(3), Some(0), "sole chunk stolen from worker 0");
        for w in 0..4 {
            assert_eq!(pool.next(w), None);
        }
    }

    #[test]
    fn steal_events_counter_is_monotone() {
        let before = steal_events();
        let pool = StealPool::new(2, 2);
        assert_eq!(pool.next(1), Some(1));
        assert_eq!(pool.next(1), Some(0), "second claim steals from worker 0");
        // Other tests run in parallel and also bump the global counter,
        // so assert monotone growth rather than an exact delta.
        assert!(steal_events() > before);
    }

    #[test]
    fn adversarial_early_retirement_is_thread_count_invariant() {
        // The work-stealing determinism contract under the worst chunk
        // mix: items alternate between easy (true product vectors, the
        // resonator converges in a handful of iterations) and hard
        // (random noise queries that run the full iteration budget), so
        // lockstep chunks retire maximally raggedly and threads(4)
        // workers steal the stragglers. Outcomes must stay bit-identical
        // to threads(1) regardless.
        let spec = ProblemSpec::new(3, 8, 256);
        let mut rng = rng_from_seed(520);
        let books: Vec<Codebook> = (0..spec.factors)
            .map(|_| Codebook::random(spec.codebook_size, spec.dim, &mut rng))
            .collect();
        let (easy, _) = random_batch(&books, 24, 521);
        let items: Vec<BatchItem> = easy
            .into_iter()
            .enumerate()
            .map(|(i, mut item)| {
                if i % 2 == 1 {
                    // Overwrite odd slots with unsolvable noise (and no
                    // truth): these run to the iteration budget.
                    item.query = BipolarVector::random(spec.dim, &mut rng);
                    item.truth = None;
                }
                item
            })
            .collect();
        let factory = || BackendKind::Stochastic.instantiate(spec, 300, 11, None, None);
        let sequential = solve_indexed(&factory, &books, &items, 0, 1);
        let parallel = solve_indexed(&factory, &books, &items, 0, 4);
        assert_eq!(sequential.len(), parallel.len());
        for (i, (p, e)) in parallel.iter().zip(&sequential).enumerate() {
            assert_eq!(
                functional(&p.outcome),
                functional(&e.outcome),
                "item {i} diverged between threads(4) and threads(1)"
            );
        }
    }
}
