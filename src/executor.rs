//! Deterministic parallel batch execution.
//!
//! Every engine derives the seed of its `k`-th solve purely from
//! `(engine seed, k)` — the run *cursor* exposed through
//! [`Backend::run_cursor`] / [`Backend::seek_run`]. That makes batch items
//! embarrassingly parallel without sacrificing reproducibility: a worker
//! pool of independently constructed engines (same constructor seed)
//! claims items dynamically, seeks each engine to the cursor the item
//! would have had sequentially, and solves. Per-item outcomes and reports
//! are therefore **bit-identical** to a sequential pass, and any
//! order-sensitive aggregation (floating-point energy sums) is done
//! afterwards in item order.
//!
//! The pool uses [`std::thread::scope`], so worker lifetimes are tied to
//! the call and the shared codebooks are borrowed, not cloned.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use hdc::Codebook;
use resonator::batch::BatchItem;
use resonator::engine::FactorizationOutcome;

use crate::backend::{Backend, RunReport};

/// One item's result from a parallel pass: the functional outcome plus the
/// engine's per-run report (for cost aggregation in item order).
pub(crate) struct IndexedSolve {
    /// The factorization outcome of this item.
    pub outcome: FactorizationOutcome,
    /// The engine's report for this item, when the engine produces one.
    pub report: Option<RunReport>,
}

/// Solves `items` across a scoped worker pool and returns results in item
/// order. `factory` constructs one engine per worker (all with the same
/// constructor seed); item `i` is solved at run cursor `base_cursor + i`,
/// exactly as a single sequential engine would have.
///
/// # Panics
///
/// Panics if `threads == 0`, `items` is empty, or a worker panics.
pub(crate) fn solve_indexed(
    factory: &(dyn Fn() -> Box<dyn Backend> + Sync),
    codebooks: &[Codebook],
    items: &[BatchItem],
    base_cursor: u64,
    threads: usize,
) -> Vec<IndexedSolve> {
    assert!(threads > 0, "worker pool needs at least one thread");
    assert!(!items.is_empty(), "batch must be non-empty");
    let workers = threads.min(items.len());
    let next = AtomicUsize::new(0);
    // One slot per item: workers write disjoint slots, so per-slot locks
    // never contend beyond their own writer.
    let slots: Vec<Mutex<Option<IndexedSolve>>> =
        (0..items.len()).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut engine = factory();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    engine.seek_run(base_cursor + i as u64);
                    let outcome = engine.factorize_query(
                        codebooks,
                        &items[i].query,
                        items[i].truth.as_deref(),
                    );
                    let report = engine.last_run_stats();
                    *slots[i].lock().expect("result slot poisoned") =
                        Some(IndexedSolve { outcome, report });
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every item solved by the pool")
        })
        .collect()
}

/// Resolves a configured thread count: `0` means "all available cores".
pub(crate) fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        configured
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::BackendKind;
    use hdc::rng::rng_from_seed;
    use hdc::ProblemSpec;
    use resonator::batch::random_batch;

    /// Strips the wall-clock profile (the only non-deterministic field)
    /// before comparing outcomes bit-for-bit.
    fn functional(outcome: &FactorizationOutcome) -> FactorizationOutcome {
        let mut o = outcome.clone();
        o.times = Default::default();
        o
    }

    #[test]
    fn parallel_items_match_sequential_items() {
        let spec = ProblemSpec::new(3, 8, 256);
        let mut rng = rng_from_seed(500);
        let books: Vec<Codebook> = (0..spec.factors)
            .map(|_| Codebook::random(spec.codebook_size, spec.dim, &mut rng))
            .collect();
        let (items, _) = random_batch(&books, 6, 501);

        let factory = || BackendKind::Stochastic.instantiate(spec, 400, 9, None, None);
        let mut sequential = factory();
        let expected: Vec<FactorizationOutcome> = items
            .iter()
            .map(|i| sequential.factorize_query(&books, &i.query, i.truth.as_deref()))
            .collect();

        let parallel = solve_indexed(&factory, &books, &items, 0, 3);
        assert_eq!(parallel.len(), expected.len());
        for (p, e) in parallel.iter().zip(&expected) {
            assert_eq!(
                functional(&p.outcome),
                functional(e),
                "parallel item diverged from sequential"
            );
        }
    }

    #[test]
    fn base_cursor_offsets_the_seed_stream() {
        let spec = ProblemSpec::new(2, 8, 256);
        let mut rng = rng_from_seed(502);
        let books: Vec<Codebook> = (0..spec.factors)
            .map(|_| Codebook::random(spec.codebook_size, spec.dim, &mut rng))
            .collect();
        let (items, _) = random_batch(&books, 3, 503);
        let factory = || BackendKind::Stochastic.instantiate(spec, 400, 10, None, None);

        // Sequential engine that has already issued 5 runs.
        let mut warmed = factory();
        warmed.seek_run(5);
        let expected: Vec<FactorizationOutcome> = items
            .iter()
            .map(|i| warmed.factorize_query(&books, &i.query, i.truth.as_deref()))
            .collect();

        let parallel = solve_indexed(&factory, &books, &items, 5, 2);
        for (p, e) in parallel.iter().zip(&expected) {
            assert_eq!(functional(&p.outcome), functional(e));
        }
    }

    #[test]
    fn zero_threads_resolve_to_available_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
