//! Deterministic parallel batch execution.
//!
//! Every engine derives the seed of its `k`-th solve purely from
//! `(engine seed, k)` — the run *cursor* exposed through
//! [`Backend::run_cursor`] / [`Backend::seek_run`]. That makes batch items
//! embarrassingly parallel without sacrificing reproducibility: a worker
//! pool of independently constructed engines (same constructor seed)
//! claims items dynamically, seeks each engine to the cursor the item
//! would have had sequentially, and solves. Per-item outcomes and reports
//! are therefore **bit-identical** to a sequential pass, and any
//! order-sensitive aggregation (floating-point energy sums) is done
//! afterwards in item order.
//!
//! The pool uses [`std::thread::scope`], so worker lifetimes are tied to
//! the call and the shared codebooks are borrowed, not cloned.
//!
//! # Lockstep batching
//!
//! On top of per-item parallelism, every pass groups contiguous runs of
//! same-shape items (same codebook set, consecutive run cursors) into
//! **lockstep chunks** and offers each chunk to the engine's
//! [`Backend::factorize_lockstep`] batch stepper, which advances all
//! problems of the chunk one iteration at a time through the batched
//! matrix–matrix kernels. Engines without a lockstep path (the simulated
//! hardware), and stragglers that break a chunk's shape, fall back to the
//! per-item solve. Chunking never changes outcomes: lockstep solves are
//! bit-identical to the sequential per-item stream, so the determinism
//! contracts (threads(N) ≡ threads(1), live ≡ replay) are preserved by
//! construction.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use hdc::{BipolarVector, Codebook};
use resonator::batch::BatchItem;
use resonator::engine::FactorizationOutcome;

use crate::backend::{Backend, LockstepQuery, RunReport};
use crate::workload::WorkloadItem;

/// Upper bound on a lockstep chunk. Eight problems per batch already
/// amortize each codebook tile across the whole chunk (the per-B bench
/// table in `BENCH_kernels.json` shows diminishing returns past 8–16)
/// while keeping the batch scratch (`B × D` sums, `B` estimate sets)
/// comfortably in cache; work is additionally split so one chunk never
/// serializes a pass that has more workers than chunks.
pub(crate) const LOCKSTEP_CHUNK: usize = 8;

/// Chunk cap for a pass of `n_items` on `workers` threads: the lockstep
/// bound, shrunk so every worker has at least one chunk to claim.
fn chunk_cap(n_items: usize, workers: usize) -> usize {
    LOCKSTEP_CHUNK.min(n_items.div_ceil(workers.max(1))).max(1)
}

/// One item's result from a parallel pass: the functional outcome plus the
/// engine's per-run report (for cost aggregation in item order).
pub(crate) struct IndexedSolve {
    /// The factorization outcome of this item.
    pub outcome: FactorizationOutcome,
    /// The engine's report for this item, when the engine produces one.
    pub report: Option<RunReport>,
}

/// Solves `n_items` queries across a scoped worker pool and returns
/// results in item order. `factory` constructs one engine per worker (all
/// with the same constructor seed); `fetch(i)` yields item `i`'s codebooks,
/// query, and optional ground truth; item `i` is solved at run cursor
/// `base_cursor + i`, exactly as a single sequential engine would have.
///
/// # Panics
///
/// Panics if `threads == 0`, `n_items == 0`, or a worker panics.
fn solve_each<'a, F>(
    factory: &(dyn Fn() -> Box<dyn Backend> + Sync),
    n_items: usize,
    fetch: F,
    base_cursor: u64,
    threads: usize,
) -> Vec<IndexedSolve>
where
    F: Fn(usize) -> (&'a [Codebook], &'a BipolarVector, Option<&'a [usize]>) + Sync,
{
    assert!(threads > 0, "worker pool needs at least one thread");
    assert!(n_items > 0, "batch must be non-empty");
    let workers = threads.min(n_items);
    // Lockstep chunks: contiguous items sharing one codebook set (their
    // cursors are consecutive by construction of `base_cursor + i`).
    // Identity (`ptr::eq`), not content, defines "one set" — which is
    // why every caller resolves its registry handle ONCE per pass and
    // feeds the whole pass a single `Arc` slice: a mid-pass re-resolve
    // could observe a rebuilt hot-tier allocation and split a chunk.
    // (Splitting is only a throughput loss, never a correctness one, but
    // the one-resolve-per-pass rule keeps chunking deterministic.)
    let cap = chunk_cap(n_items, workers);
    let mut chunks: Vec<Range<usize>> = Vec::new();
    let mut start = 0usize;
    for i in 1..n_items {
        if i - start >= cap || !std::ptr::eq(fetch(i).0, fetch(start).0) {
            chunks.push(start..i);
            start = i;
        }
    }
    chunks.push(start..n_items);
    let next = AtomicUsize::new(0);
    // One slot per item: workers write disjoint slots, so per-slot locks
    // never contend beyond their own writer.
    let slots: Vec<Mutex<Option<IndexedSolve>>> = (0..n_items).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut engine = factory();
                loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= chunks.len() {
                        break;
                    }
                    let chunk = chunks[c].clone();
                    let codebooks = fetch(chunk.start).0;
                    engine.seek_run(base_cursor + chunk.start as u64);
                    let queries: Vec<LockstepQuery<'_>> = chunk
                        .clone()
                        .map(|i| {
                            let (_, query, truth) = fetch(i);
                            (query, truth)
                        })
                        .collect();
                    if let Some(solves) = engine.factorize_lockstep(codebooks, &queries) {
                        for (i, solve) in chunk.clone().zip(solves) {
                            *slots[i].lock().expect("result slot poisoned") = Some(IndexedSolve {
                                outcome: solve.outcome,
                                report: solve.report,
                            });
                        }
                    } else {
                        // Per-item fallback for engines without a
                        // lockstep stepper.
                        for i in chunk.clone() {
                            let (codebooks, query, truth) = fetch(i);
                            engine.seek_run(base_cursor + i as u64);
                            let outcome = engine.factorize_query(codebooks, query, truth);
                            let report = engine.last_run_stats();
                            *slots[i].lock().expect("result slot poisoned") =
                                Some(IndexedSolve { outcome, report });
                        }
                    }
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every item solved by the pool")
        })
        .collect()
}

/// Solves a batch of items sharing one set of codebooks (the
/// [`crate::session::Session::run`] shape). See [`solve_each`].
///
/// # Panics
///
/// Panics if `threads == 0`, `items` is empty, or a worker panics.
pub(crate) fn solve_indexed(
    factory: &(dyn Fn() -> Box<dyn Backend> + Sync),
    codebooks: &[Codebook],
    items: &[BatchItem],
    base_cursor: u64,
    threads: usize,
) -> Vec<IndexedSolve> {
    solve_each(
        factory,
        items.len(),
        |i| (codebooks, &items[i].query, items[i].truth.as_deref()),
        base_cursor,
        threads,
    )
}

/// Solves workload items, each addressing one of several codebook groups
/// (fresh-codebook workloads like capacity sweeps need a group per trial;
/// most workloads have exactly one). See [`solve_each`].
///
/// # Panics
///
/// Panics if `threads == 0`, `items` is empty, a group index is out of
/// range, or a worker panics.
pub(crate) fn solve_grouped(
    factory: &(dyn Fn() -> Box<dyn Backend> + Sync),
    groups: &[Vec<Codebook>],
    items: &[WorkloadItem],
    base_cursor: u64,
    threads: usize,
) -> Vec<IndexedSolve> {
    solve_each(
        factory,
        items.len(),
        |i| {
            let item = &items[i];
            (
                groups[item.group].as_slice(),
                &item.query,
                item.truth.as_deref(),
            )
        },
        base_cursor,
        threads,
    )
}

/// One service request ready to solve: which shard's engine solves it, at
/// which run cursor, against which codebooks. Unlike the session batch
/// shapes above, a single pass may span several shards (and therefore
/// several engine constructions), which is how the service flushes a
/// heterogeneous micro-batch through one worker pool.
pub(crate) struct RequestSolve<'a> {
    /// Index into the factory table of the engine that owns this request.
    pub shard: usize,
    /// Run cursor the request was assigned at admission.
    pub cursor: u64,
    /// Codebooks the query is defined over.
    pub codebooks: &'a [Codebook],
    /// The product vector to factorize.
    pub query: &'a BipolarVector,
    /// Ground truth, when the caller knows it.
    pub truth: Option<&'a [usize]>,
}

/// Solves a heterogeneous micro-batch across a scoped worker pool and
/// returns results in item order. `factories[s]` constructs the engine of
/// shard `s`; each worker instantiates a shard's engine lazily on first
/// use and keeps it warm for the rest of the pass. Every request is solved
/// at its admission-time cursor, so results are **bit-identical** to a
/// serial replay of the same requests in any order — the property the
/// service's trace/replay contract rests on.
///
/// # Panics
///
/// Panics if `threads == 0`, `requests` is empty, a shard index is out of
/// range, or a worker panics.
pub(crate) fn solve_requests(
    factories: &[Box<dyn Fn() -> Box<dyn Backend> + Send + Sync>],
    requests: &[RequestSolve<'_>],
    threads: usize,
) -> Vec<IndexedSolve> {
    assert!(threads > 0, "worker pool needs at least one thread");
    assert!(!requests.is_empty(), "micro-batch must be non-empty");
    let n_items = requests.len();
    let workers = threads.min(n_items);
    // Lockstep chunks: maximal runs of requests on one shard with
    // consecutive cursors over one codebook set (stragglers — shard
    // switches, cursor gaps — start a new chunk and may end up solving
    // per-item).
    let cap = chunk_cap(n_items, workers);
    let mut chunks: Vec<Range<usize>> = Vec::new();
    let mut start = 0usize;
    for i in 1..n_items {
        let (prev, cur) = (&requests[i - 1], &requests[i]);
        if i - start >= cap
            || cur.shard != prev.shard
            || cur.cursor != prev.cursor + 1
            || !std::ptr::eq(cur.codebooks, prev.codebooks)
        {
            chunks.push(start..i);
            start = i;
        }
    }
    chunks.push(start..n_items);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<IndexedSolve>>> = (0..n_items).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut engines: Vec<Option<Box<dyn Backend>>> =
                    (0..factories.len()).map(|_| None).collect();
                loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= chunks.len() {
                        break;
                    }
                    let chunk = chunks[c].clone();
                    let head = &requests[chunk.start];
                    let engine = engines[head.shard].get_or_insert_with(|| factories[head.shard]());
                    engine.seek_run(head.cursor);
                    let queries: Vec<LockstepQuery<'_>> = requests[chunk.clone()]
                        .iter()
                        .map(|r| (r.query, r.truth))
                        .collect();
                    if let Some(solves) = engine.factorize_lockstep(head.codebooks, &queries) {
                        for (i, solve) in chunk.clone().zip(solves) {
                            *slots[i].lock().expect("result slot poisoned") = Some(IndexedSolve {
                                outcome: solve.outcome,
                                report: solve.report,
                            });
                        }
                    } else {
                        for i in chunk.clone() {
                            let req = &requests[i];
                            engine.seek_run(req.cursor);
                            let outcome =
                                engine.factorize_query(req.codebooks, req.query, req.truth);
                            let report = engine.last_run_stats();
                            *slots[i].lock().expect("result slot poisoned") =
                                Some(IndexedSolve { outcome, report });
                        }
                    }
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every request solved by the pool")
        })
        .collect()
}

/// Resolves a configured thread count: `0` means "all available cores".
pub(crate) fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        configured
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::BackendKind;
    use hdc::rng::rng_from_seed;
    use hdc::ProblemSpec;
    use resonator::batch::random_batch;

    /// Strips the wall-clock profile (the only non-deterministic field)
    /// before comparing outcomes bit-for-bit.
    fn functional(outcome: &FactorizationOutcome) -> FactorizationOutcome {
        let mut o = outcome.clone();
        o.times = Default::default();
        o
    }

    #[test]
    fn parallel_items_match_sequential_items() {
        let spec = ProblemSpec::new(3, 8, 256);
        let mut rng = rng_from_seed(500);
        let books: Vec<Codebook> = (0..spec.factors)
            .map(|_| Codebook::random(spec.codebook_size, spec.dim, &mut rng))
            .collect();
        let (items, _) = random_batch(&books, 6, 501);

        let factory = || BackendKind::Stochastic.instantiate(spec, 400, 9, None, None);
        let mut sequential = factory();
        let expected: Vec<FactorizationOutcome> = items
            .iter()
            .map(|i| sequential.factorize_query(&books, &i.query, i.truth.as_deref()))
            .collect();

        let parallel = solve_indexed(&factory, &books, &items, 0, 3);
        assert_eq!(parallel.len(), expected.len());
        for (p, e) in parallel.iter().zip(&expected) {
            assert_eq!(
                functional(&p.outcome),
                functional(e),
                "parallel item diverged from sequential"
            );
        }
    }

    #[test]
    fn base_cursor_offsets_the_seed_stream() {
        let spec = ProblemSpec::new(2, 8, 256);
        let mut rng = rng_from_seed(502);
        let books: Vec<Codebook> = (0..spec.factors)
            .map(|_| Codebook::random(spec.codebook_size, spec.dim, &mut rng))
            .collect();
        let (items, _) = random_batch(&books, 3, 503);
        let factory = || BackendKind::Stochastic.instantiate(spec, 400, 10, None, None);

        // Sequential engine that has already issued 5 runs.
        let mut warmed = factory();
        warmed.seek_run(5);
        let expected: Vec<FactorizationOutcome> = items
            .iter()
            .map(|i| warmed.factorize_query(&books, &i.query, i.truth.as_deref()))
            .collect();

        let parallel = solve_indexed(&factory, &books, &items, 5, 2);
        for (p, e) in parallel.iter().zip(&expected) {
            assert_eq!(functional(&p.outcome), functional(e));
        }
    }

    #[test]
    fn zero_threads_resolve_to_available_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
