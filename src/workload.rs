//! The unified experiment surface: a [`Workload`] turns any scenario —
//! random holographic factorization, perceptual scene understanding, RPM
//! puzzles, integer factorization, capacity sweeps, or anything a user
//! invents — into a deterministic stream of factorization queries that
//! [`Session::run_workload`](crate::session::Session::run_workload) can
//! batch, thread, and report on uniformly.
//!
//! # The contract
//!
//! A workload does exactly two things:
//!
//! 1. **Generate**: [`Workload::generate`] deterministically produces the
//!    epoch's [`WorkloadSet`] — per-item queries with optional ground
//!    truth, addressing one or more codebook *groups* (most workloads
//!    share one group; fresh-codebook studies like capacity sweeps use a
//!    group per trial). Every call advances an internal epoch so repeated
//!    runs see fresh data, and item `i`'s content depends only on
//!    `(workload seed, epoch, i)` — never on the order or thread items
//!    are later solved on.
//! 2. **Score**: [`Workload::score`] maps the per-item
//!    [`FactorizationOutcome`]s (in generation order) back to the
//!    workload's own notion of success — solved fraction, attribute
//!    accuracy, puzzles correct, semiprimes factored — as a
//!    [`WorkloadScore`].
//!
//! The session does the rest: it solves every item through its backend on
//! the deterministic parallel executor, so a `threads(4)` run reports
//! **bit-identically** to `threads(1)`, and wraps the outcome statistics
//! plus the workload's score into a [`WorkloadReport`].
//!
//! # Writing a custom workload
//!
//! ```
//! use h3dfact::prelude::*;
//! use h3dfact::workload::{Workload, WorkloadItem, WorkloadScore, WorkloadSet};
//! use h3dfact::hdc::rng::{derive_seed, stream_rng};
//! use h3dfact::resonator::engine::FactorizationOutcome;
//!
//! /// Clean products of the session shape, one per unit.
//! struct CleanProducts {
//!     spec: ProblemSpec,
//!     seed: u64,
//!     epoch: u64,
//! }
//!
//! impl Workload for CleanProducts {
//!     fn name(&self) -> &str {
//!         "clean-products"
//!     }
//!     fn spec(&self) -> ProblemSpec {
//!         self.spec
//!     }
//!     fn generate(&mut self, n: usize) -> WorkloadSet {
//!         let master = derive_seed(derive_seed(self.seed, 0xC1EA), self.epoch);
//!         self.epoch += 1;
//!         let mut rng = stream_rng(master, 0);
//!         let books: Vec<Codebook> = (0..self.spec.factors)
//!             .map(|_| Codebook::random(self.spec.codebook_size, self.spec.dim, &mut rng))
//!             .collect();
//!         let items = (0..n)
//!             .map(|i| {
//!                 let mut rng = stream_rng(master, 1 + i as u64);
//!                 let p = FactorizationProblem::with_codebooks(&books, &mut rng);
//!                 WorkloadItem {
//!                     group: 0,
//!                     unit: i,
//!                     query: p.product().clone(),
//!                     truth: Some(p.true_indices().to_vec()),
//!                 }
//!             })
//!             .collect();
//!         WorkloadSet {
//!             units: n,
//!             groups: vec![books],
//!             items,
//!         }
//!     }
//!     fn score(&mut self, _set: &WorkloadSet, outcomes: &[FactorizationOutcome]) -> WorkloadScore {
//!         WorkloadScore::solved_fraction(outcomes)
//!     }
//! }
//!
//! let spec = ProblemSpec::new(2, 8, 256);
//! let mut session = Session::builder()
//!     .spec(spec)
//!     .backend(BackendKind::Stochastic)
//!     .seed(3)
//!     .max_iters(500)
//!     .build();
//! let mut workload = CleanProducts { spec, seed: 9, epoch: 0 };
//! let report = session.run_workload(&mut workload, 3);
//! assert_eq!(report.units, 3);
//! assert!(report.score > 0.0);
//! ```

use cim::noise::NoiseSpec;
use hdc::rng::{derive_seed, stream_rng};
use hdc::{BipolarVector, Codebook, FactorizationProblem, ProblemSpec};
use perception::{AttributeSchema, NeuralFrontend, RavenPuzzle, RavenSolver};
use resonator::engine::FactorizationOutcome;

use crate::session::SessionReport;

/// Stream namespaces, one per built-in workload, mixed into the workload
/// seed through `derive_seed` so no two workloads (or epochs) can ever
/// draw overlapping streams.
mod ns {
    pub const RANDOM: u64 = 0x3D0A_0001;
    pub const ATTRIBUTES: u64 = 0x3D0A_0002;
    pub const PUZZLES: u64 = 0x3D0A_0003;
    pub const INTEGER: u64 = 0x3D0A_0004;
    pub const CAPACITY: u64 = 0x3D0A_0005;
    pub const ROBUSTNESS: u64 = 0x3D0A_0006;
}

/// One factorization query of a workload epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadItem {
    /// Index into [`WorkloadSet::groups`] of the codebooks this query is
    /// defined over.
    pub group: usize,
    /// The logical unit (scene, puzzle, trial, …) this query belongs to.
    pub unit: usize,
    /// The product vector to factorize.
    pub query: BipolarVector,
    /// Ground-truth indices, when known.
    pub truth: Option<Vec<usize>>,
}

/// One epoch's worth of queries: codebook groups plus the items over them.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSet {
    /// Logical units this set covers (items may outnumber units — an RPM
    /// puzzle is one unit but sixteen panel queries).
    pub units: usize,
    /// The codebook groups items address. Most workloads have exactly one.
    pub groups: Vec<Vec<Codebook>>,
    /// The queries, in generation order (scoring relies on this order).
    pub items: Vec<WorkloadItem>,
}

impl WorkloadSet {
    /// An empty set (zero units, zero items).
    pub fn empty() -> Self {
        Self {
            units: 0,
            groups: Vec::new(),
            items: Vec::new(),
        }
    }

    /// Checks internal consistency and that every group matches `spec`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range group index or a group whose shape
    /// disagrees with `spec`.
    pub fn validate(&self, spec: ProblemSpec) {
        for (g, books) in self.groups.iter().enumerate() {
            assert_eq!(books.len(), spec.factors, "group {g}: factor count");
            for (f, b) in books.iter().enumerate() {
                assert_eq!(b.len(), spec.codebook_size, "group {g} book {f}: size");
                assert_eq!(b.dim(), spec.dim, "group {g} book {f}: dimension");
            }
        }
        for (i, item) in self.items.iter().enumerate() {
            assert!(
                item.group < self.groups.len(),
                "item {i} addresses missing group {}",
                item.group
            );
            assert!(
                item.unit < self.units.max(1),
                "item {i} addresses missing unit {}",
                item.unit
            );
        }
    }
}

/// A workload's own verdict on an epoch: a headline unit-level score in
/// `[0, 1]` plus named auxiliary metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadScore {
    /// The workload's headline success fraction over its units.
    pub score: f64,
    /// Auxiliary named metrics (accuracies, rates, mean iterations, …).
    pub metrics: Vec<(String, f64)>,
}

impl WorkloadScore {
    /// The standard score for one-query-per-unit workloads: the fraction
    /// of outcomes flagged solved.
    pub fn solved_fraction(outcomes: &[FactorizationOutcome]) -> Self {
        let solved = outcomes.iter().filter(|o| o.solved).count();
        let score = if outcomes.is_empty() {
            0.0
        } else {
            solved as f64 / outcomes.len() as f64
        };
        Self {
            score,
            metrics: Vec::new(),
        }
    }
}

/// A deterministic, scoreable experiment over factorization queries.
///
/// See the [module docs](self) for the contract and a worked custom
/// implementation.
pub trait Workload {
    /// Stable workload name (used in reports and benchmark JSON).
    fn name(&self) -> &str;

    /// The problem shape every query has — must match the session's spec.
    fn spec(&self) -> ProblemSpec;

    /// Deterministically generates the next epoch's set of `n` units.
    /// Item content may depend only on the workload's seed, the epoch,
    /// and the item's position — never on solve order.
    fn generate(&mut self, n: usize) -> WorkloadSet;

    /// Scores the outcomes of `set` (in item order) for this workload.
    ///
    /// `set` must be the set of this workload's **most recent**
    /// [`Workload::generate`] call — workloads may keep per-epoch scoring
    /// state (e.g. puzzle answer keys) that only matches the latest set,
    /// and must reject a stale one loudly rather than mis-score it.
    fn score(&mut self, set: &WorkloadSet, outcomes: &[FactorizationOutcome]) -> WorkloadScore;
}

/// Aggregate result of a [`Session::run_workload`] pass: the workload's
/// own score on top of the standard session statistics — a strict
/// superset of [`SessionReport`].
///
/// [`Session::run_workload`]: crate::session::Session::run_workload
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// The workload that ran.
    pub workload: String,
    /// Logical units evaluated.
    pub units: usize,
    /// The workload's headline unit-level score in `[0, 1]`.
    pub score: f64,
    /// The workload's auxiliary metrics.
    pub metrics: Vec<(String, f64)>,
    /// Query-level statistics in the standard session format (accuracy
    /// over queries, iteration stats, energy/latency totals, outcomes).
    pub session: SessionReport,
}

impl WorkloadReport {
    /// Looks up an auxiliary metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

/// Today's `Session::run` workload as a first-class [`Workload`]: `n`
/// fresh random problems per epoch over shared random codebooks.
#[derive(Debug, Clone)]
pub struct RandomFactorization {
    spec: ProblemSpec,
    seed: u64,
    epoch: u64,
    codebooks: Vec<Codebook>,
}

impl RandomFactorization {
    /// Creates the workload at shape `spec` with its own codebooks drawn
    /// from `seed`.
    pub fn new(spec: ProblemSpec, seed: u64) -> Self {
        let mut rng = stream_rng(derive_seed(seed, ns::RANDOM), 0);
        let codebooks = (0..spec.factors)
            .map(|_| Codebook::random(spec.codebook_size, spec.dim, &mut rng))
            .collect();
        Self {
            spec,
            seed,
            epoch: 0,
            codebooks,
        }
    }
}

impl Workload for RandomFactorization {
    fn name(&self) -> &str {
        "random-factorization"
    }

    fn spec(&self) -> ProblemSpec {
        self.spec
    }

    fn generate(&mut self, n: usize) -> WorkloadSet {
        let master = derive_seed(derive_seed(self.seed, ns::RANDOM), 1 + self.epoch);
        self.epoch += 1;
        let items = (0..n)
            .map(|i| {
                let mut rng = stream_rng(master, i as u64);
                let p = FactorizationProblem::with_codebooks(&self.codebooks, &mut rng);
                WorkloadItem {
                    group: 0,
                    unit: i,
                    query: p.product().clone(),
                    truth: Some(p.true_indices().to_vec()),
                }
            })
            .collect();
        WorkloadSet {
            units: n,
            groups: vec![self.codebooks.clone()],
            items,
        }
    }

    fn score(&mut self, _set: &WorkloadSet, outcomes: &[FactorizationOutcome]) -> WorkloadScore {
        WorkloadScore::solved_fraction(outcomes)
    }
}

/// What a [`Perception`] workload evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PerceptionTask {
    /// Attribute estimation over single scenes (the paper's 99.4 % Fig. 7
    /// metric): one query per scene, scored per attribute.
    Attributes,
    /// Full RAVEN-style RPM puzzles: sixteen panel queries per puzzle
    /// (eight context, eight candidates), solved neuro-symbolically.
    Puzzles,
}

/// The Fig. 7 perceptual pipeline as a [`Workload`]: scenes pass through
/// the simulated neural frontend into product-vector queries; outcomes
/// are scored as attribute estimates (and, in puzzle mode, fed to the
/// symbolic RPM solver).
///
/// Unlike the legacy `PerceptionPipeline` (which walks a bare
/// `Factorizer` scene by scene), all embedding happens at generation
/// time from per-scene rng streams, so panel queries parallelize across
/// the session's worker pool with bit-identical reports.
pub struct Perception {
    schema: AttributeSchema,
    codebooks: Vec<Codebook>,
    frontend: NeuralFrontend,
    task: PerceptionTask,
    dim: usize,
    seed: u64,
    epoch: u64,
    /// Correct-answer index per puzzle of the last generated epoch.
    answers: Vec<usize>,
    /// First query of the last generated set — the fingerprint `score()`
    /// uses to reject a stale set (epoch streams never repeat a query).
    last_first_query: Option<BipolarVector>,
}

impl Perception {
    /// Panel queries per RPM puzzle (8 context + 8 candidates).
    const PANELS_PER_PUZZLE: usize = 16;

    fn new(
        schema: AttributeSchema,
        dim: usize,
        frontend: NeuralFrontend,
        seed: u64,
        task: PerceptionTask,
    ) -> Self {
        let mut rng = stream_rng(derive_seed(seed, ns::ATTRIBUTES), 0);
        let codebooks = schema.codebooks(dim, &mut rng);
        Self {
            schema,
            codebooks,
            frontend,
            task,
            dim,
            seed,
            epoch: 0,
            answers: Vec::new(),
            last_first_query: None,
        }
    }

    /// Attribute-estimation workload: one scene per unit.
    pub fn attributes(
        schema: AttributeSchema,
        dim: usize,
        frontend: NeuralFrontend,
        seed: u64,
    ) -> Self {
        Self::new(schema, dim, frontend, seed, PerceptionTask::Attributes)
    }

    /// RPM-puzzle workload: one puzzle (sixteen panel queries) per unit.
    pub fn puzzles(
        schema: AttributeSchema,
        dim: usize,
        frontend: NeuralFrontend,
        seed: u64,
    ) -> Self {
        Self::new(schema, dim, frontend, seed, PerceptionTask::Puzzles)
    }

    /// The attribute schema.
    pub fn schema(&self) -> &AttributeSchema {
        &self.schema
    }

    /// The shared attribute codebooks all scenes are composed over.
    pub fn codebooks(&self) -> &[Codebook] {
        &self.codebooks
    }
}

impl Workload for Perception {
    fn name(&self) -> &str {
        match self.task {
            PerceptionTask::Attributes => "perception-attributes",
            PerceptionTask::Puzzles => "perception-puzzles",
        }
    }

    fn spec(&self) -> ProblemSpec {
        self.schema.problem_spec(self.dim)
    }

    fn generate(&mut self, n: usize) -> WorkloadSet {
        let namespace = match self.task {
            PerceptionTask::Attributes => ns::ATTRIBUTES,
            PerceptionTask::Puzzles => ns::PUZZLES,
        };
        let master = derive_seed(derive_seed(self.seed, namespace), 1 + self.epoch);
        self.epoch += 1;
        self.answers.clear();
        let mut items = Vec::new();
        for unit in 0..n {
            let mut rng = stream_rng(master, unit as u64);
            match self.task {
                PerceptionTask::Attributes => {
                    let scene = self.schema.sample(&mut rng);
                    let query =
                        self.frontend
                            .embed_with(&scene, &self.schema, &self.codebooks, &mut rng);
                    items.push(WorkloadItem {
                        group: 0,
                        unit,
                        query,
                        truth: Some(scene.attributes),
                    });
                }
                PerceptionTask::Puzzles => {
                    let puzzle = RavenPuzzle::generate(&self.schema, &mut rng);
                    self.answers.push(puzzle.answer);
                    for scene in puzzle.context.iter().chain(puzzle.candidates.iter()) {
                        let query = self.frontend.embed_with(
                            scene,
                            &self.schema,
                            &self.codebooks,
                            &mut rng,
                        );
                        items.push(WorkloadItem {
                            group: 0,
                            unit,
                            // No ground truth: candidate estimates must not
                            // be steered by the answer key.
                            truth: None,
                            query,
                        });
                    }
                }
            }
        }
        self.last_first_query = items.first().map(|i: &WorkloadItem| i.query.clone());
        WorkloadSet {
            units: n,
            groups: vec![self.codebooks.clone()],
            items,
        }
    }

    fn score(&mut self, set: &WorkloadSet, outcomes: &[FactorizationOutcome]) -> WorkloadScore {
        assert_eq!(
            set.items.first().map(|i| &i.query),
            self.last_first_query.as_ref(),
            "score() must be given the most recently generated set \
             (per-epoch scoring state only matches the latest epoch)"
        );
        match self.task {
            PerceptionTask::Attributes => {
                let f = self.schema.len();
                let mut attr_correct = 0usize;
                let mut scene_correct = 0usize;
                for (item, out) in set.items.iter().zip(outcomes) {
                    let truth = item.truth.as_deref().expect("scenes carry ground truth");
                    let correct = out
                        .decoded
                        .iter()
                        .zip(truth)
                        .filter(|(a, b)| a == b)
                        .count();
                    attr_correct += correct;
                    if correct == f {
                        scene_correct += 1;
                    }
                }
                let scenes = set.units.max(1) as f64;
                let attribute_accuracy = attr_correct as f64 / (scenes * f as f64);
                let scene_accuracy = scene_correct as f64 / scenes;
                WorkloadScore {
                    score: attribute_accuracy,
                    metrics: vec![
                        ("attribute_accuracy".into(), attribute_accuracy),
                        ("scene_accuracy".into(), scene_accuracy),
                    ],
                }
            }
            PerceptionTask::Puzzles => {
                assert_eq!(
                    self.answers.len(),
                    set.units,
                    "answer key covers {} puzzles, set has {}",
                    self.answers.len(),
                    set.units
                );
                assert_eq!(
                    outcomes.len(),
                    set.units * Self::PANELS_PER_PUZZLE,
                    "puzzle outcomes must cover every panel"
                );
                let solver = RavenSolver;
                let mut correct = 0usize;
                for (unit, answer) in self.answers.iter().enumerate() {
                    let base = unit * Self::PANELS_PER_PUZZLE;
                    let decode = |i: usize| outcomes[base + i].decoded.clone();
                    let context: Vec<Vec<usize>> = (0..8).map(decode).collect();
                    let candidates: Vec<Vec<usize>> = (8..16).map(decode).collect();
                    let pred = solver.predict(&self.schema, &context);
                    if solver.choose(&pred, &candidates) == *answer {
                        correct += 1;
                    }
                }
                let score = correct as f64 / set.units.max(1) as f64;
                WorkloadScore {
                    score,
                    metrics: vec![("puzzle_accuracy".into(), score)],
                }
            }
        }
    }
}

/// Integer factorization as holographic factorization (paper Sec. V-E):
/// semiprimes `n = p·q` over a fixed prime-table codebook pair; the
/// resonator searches the factor table in superposition.
#[derive(Debug, Clone)]
pub struct IntegerFactorization {
    primes: Vec<u64>,
    books: Vec<Codebook>,
    dim: usize,
    seed: u64,
    epoch: u64,
}

impl IntegerFactorization {
    /// Builds the workload over the primes below `limit` at dimension
    /// `dim`.
    ///
    /// # Panics
    ///
    /// Panics if there are no primes below `limit`.
    pub fn new(limit: u64, dim: usize, seed: u64) -> Self {
        let primes: Vec<u64> = (2..limit)
            .filter(|&n| (2..n).take_while(|d| d * d <= n).all(|d| n % d != 0))
            .collect();
        assert!(!primes.is_empty(), "need at least one candidate factor");
        let mut rng = stream_rng(derive_seed(seed, ns::INTEGER), 0);
        // Independent codebooks for the factor and cofactor tables.
        let books = vec![
            Codebook::random(primes.len(), dim, &mut rng),
            Codebook::random(primes.len(), dim, &mut rng),
        ];
        Self {
            primes,
            books,
            dim,
            seed,
            epoch: 0,
        }
    }

    /// The prime table the codebooks index.
    pub fn primes(&self) -> &[u64] {
        &self.primes
    }
}

impl Workload for IntegerFactorization {
    fn name(&self) -> &str {
        "integer-factorization"
    }

    fn spec(&self) -> ProblemSpec {
        ProblemSpec::new(2, self.primes.len(), self.dim)
    }

    fn generate(&mut self, n: usize) -> WorkloadSet {
        let master = derive_seed(derive_seed(self.seed, ns::INTEGER), 1 + self.epoch);
        self.epoch += 1;
        let m = self.primes.len();
        let items = (0..n)
            .map(|unit| {
                let mut rng = stream_rng(master, unit as u64);
                let pi = rand::Rng::gen_range(&mut rng, 0..m);
                let qi = rand::Rng::gen_range(&mut rng, 0..m);
                WorkloadItem {
                    group: 0,
                    unit,
                    query: self.books[0].vector(pi).bind(self.books[1].vector(qi)),
                    truth: Some(vec![pi, qi]),
                }
            })
            .collect();
        WorkloadSet {
            units: n,
            groups: vec![self.books.clone()],
            items,
        }
    }

    fn score(&mut self, set: &WorkloadSet, outcomes: &[FactorizationOutcome]) -> WorkloadScore {
        // A decode counts when the recovered primes multiply back to n —
        // the arithmetic success criterion, looser than exact index match
        // (duplicate table values would be interchangeable).
        let mut factored = 0usize;
        let mut exact = 0usize;
        for (item, out) in set.items.iter().zip(outcomes) {
            let truth = item.truth.as_deref().expect("semiprimes carry truth");
            let n = self.primes[truth[0]] * self.primes[truth[1]];
            if out.decoded.len() == 2
                && self.primes[out.decoded[0]] * self.primes[out.decoded[1]] == n
            {
                factored += 1;
            }
            if out.decoded == truth {
                exact += 1;
            }
        }
        let units = set.units.max(1) as f64;
        WorkloadScore {
            score: factored as f64 / units,
            metrics: vec![
                ("factored_rate".into(), factored as f64 / units),
                ("exact_index_rate".into(), exact as f64 / units),
            ],
        }
    }
}

/// One cell of the paper's Table II capacity study as a [`Workload`]:
/// every trial draws **fresh random codebooks** and a fresh ground-truth
/// problem (each trial is its own codebook group), measuring operational
/// accuracy at the session's shape and iteration budget.
#[derive(Debug, Clone)]
pub struct CapacitySweep {
    spec: ProblemSpec,
    seed: u64,
    epoch: u64,
}

impl CapacitySweep {
    /// Creates the sweep cell at shape `spec`.
    pub fn new(spec: ProblemSpec, seed: u64) -> Self {
        Self {
            spec,
            seed,
            epoch: 0,
        }
    }
}

impl Workload for CapacitySweep {
    fn name(&self) -> &str {
        "capacity-sweep"
    }

    fn spec(&self) -> ProblemSpec {
        self.spec
    }

    fn generate(&mut self, n: usize) -> WorkloadSet {
        let master = derive_seed(derive_seed(self.seed, ns::CAPACITY), 1 + self.epoch);
        self.epoch += 1;
        let mut groups = Vec::with_capacity(n);
        let items = (0..n)
            .map(|unit| {
                let mut rng = stream_rng(master, unit as u64);
                let books: Vec<Codebook> = (0..self.spec.factors)
                    .map(|_| Codebook::random(self.spec.codebook_size, self.spec.dim, &mut rng))
                    .collect();
                let p = FactorizationProblem::with_codebooks(&books, &mut rng);
                let item = WorkloadItem {
                    group: unit,
                    unit,
                    query: p.product().clone(),
                    truth: Some(p.true_indices().to_vec()),
                };
                groups.push(books);
                item
            })
            .collect();
        WorkloadSet {
            units: n,
            groups,
            items,
        }
    }

    fn score(&mut self, _set: &WorkloadSet, outcomes: &[FactorizationOutcome]) -> WorkloadScore {
        let mut score = WorkloadScore::solved_fraction(outcomes);
        let solved: Vec<usize> = outcomes
            .iter()
            .filter(|o| o.solved)
            .map(|o| o.solved_at.unwrap_or(o.iterations))
            .collect();
        if !solved.is_empty() {
            let mean = solved.iter().sum::<usize>() as f64 / solved.len() as f64;
            score.metrics.push(("mean_iterations_solved".into(), mean));
        }
        score
    }
}

/// One cell of a device-fault severity grid: a stuck-at rate and a PCM
/// drift scale, convertible to the [`NoiseSpec`] a session injects into
/// the analog backends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeverityPoint {
    /// Probability that a device is stuck at the high-resistance state.
    pub stuck_at_rate: f64,
    /// Multiplier on the chip-calibrated programming sigma, standing in
    /// for conductance drift (see [`SeverityPoint::pcm_drift_scale`]).
    pub drift_scale: f64,
    /// Fractional conductance-window compression from the nonlinear G–V
    /// write curve (see [`NoiseSpec::write_nonlinearity`]).
    pub write_nonlinearity: f64,
}

impl SeverityPoint {
    /// The drift-induced sigma multiplier after `t` seconds for drift
    /// coefficient `nu`: `1 + nu·ln(1 + t/t0)` with `t0 = 1 s`, the
    /// standard log-time conductance decay of PCM cells (Langenegger et
    /// al.). Feed the result into [`SeverityPoint::drift_scale`].
    pub fn pcm_drift_scale(nu: f64, t_s: f64) -> f64 {
        1.0 + nu * (1.0 + t_s).ln()
    }

    /// The chip-calibrated noise model with this cell's faults applied:
    /// programming sigma scaled by `drift_scale`, stuck-at rate and write
    /// nonlinearity replaced outright.
    pub fn noise(&self) -> NoiseSpec {
        let base = NoiseSpec::chip_40nm();
        NoiseSpec {
            programming_sigma: base.programming_sigma * self.drift_scale,
            stuck_at_rate: self.stuck_at_rate,
            write_nonlinearity: self.write_nonlinearity,
            ..base
        }
    }

    /// This severity cell with a nonlinear write curve compressing the
    /// conductance window by `write_nonlinearity` (in `[0, 1)`).
    pub fn with_write_nonlinearity(mut self, write_nonlinearity: f64) -> Self {
        self.write_nonlinearity = write_nonlinearity;
        self
    }

    /// The full cross product of stuck-at rates and drift scales, in
    /// row-major order (all drift scales for the first rate, then the
    /// next rate), with an ideal linear write curve.
    pub fn grid(stuck_at_rates: &[f64], drift_scales: &[f64]) -> Vec<SeverityPoint> {
        stuck_at_rates
            .iter()
            .flat_map(|&stuck_at_rate| {
                drift_scales.iter().map(move |&drift_scale| SeverityPoint {
                    stuck_at_rate,
                    drift_scale,
                    write_nonlinearity: 0.0,
                })
            })
            .collect()
    }
}

/// One row of a [`RobustnessSweep`] frontier: the severity cell plus the
/// accuracy the backend achieved there.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// The fault severity this row measured.
    pub severity: SeverityPoint,
    /// Fraction of problems solved at this severity.
    pub accuracy: f64,
    /// Mean iterations over solved problems (`None` if nothing solved).
    pub mean_iterations_solved: Option<f64>,
}

/// The ROADMAP 4c robustness study as a [`Workload`]: identical problems
/// (same seed, same codebooks) solved under a grid of injected device
/// faults — stuck-at rates and PCM-drift-scaled programming noise — so
/// the accuracy-vs-severity frontier isolates the faults, not codebook
/// luck.
///
/// The workload itself generates the (severity-independent) query
/// stream; [`RobustnessSweep::frontier`] drives one freshly built
/// session per severity cell, all sharing the workload seed.
#[derive(Debug, Clone)]
pub struct RobustnessSweep {
    spec: ProblemSpec,
    seed: u64,
    epoch: u64,
    codebooks: Vec<Codebook>,
}

impl RobustnessSweep {
    /// Creates the sweep at shape `spec`; every severity cell sees the
    /// same codebooks and problem stream drawn from `seed`.
    pub fn new(spec: ProblemSpec, seed: u64) -> Self {
        let mut rng = stream_rng(derive_seed(seed, ns::ROBUSTNESS), 0);
        let codebooks = (0..spec.factors)
            .map(|_| Codebook::random(spec.codebook_size, spec.dim, &mut rng))
            .collect();
        Self {
            spec,
            seed,
            epoch: 0,
            codebooks,
        }
    }

    /// Maps the accuracy-vs-severity frontier for `kind` (one of the
    /// analog backends): one session per severity cell, identical
    /// problems everywhere, `trials` problems per cell.
    pub fn frontier(
        &self,
        kind: crate::session::BackendKind,
        points: &[SeverityPoint],
        trials: usize,
        max_iters: usize,
    ) -> Vec<FrontierPoint> {
        points
            .iter()
            .map(|&severity| {
                // A fresh workload per cell so every cell sees epoch 0:
                // identical queries, only the injected faults differ.
                let mut cell = Self::new(self.spec, self.seed);
                let mut session = crate::session::Session::builder()
                    .spec(self.spec)
                    .backend(kind)
                    .seed(self.seed)
                    .max_iters(max_iters)
                    .noise(severity.noise())
                    .build();
                let report = session.run_workload(&mut cell, trials);
                FrontierPoint {
                    severity,
                    accuracy: report.score,
                    mean_iterations_solved: report.metric("mean_iterations_solved"),
                }
            })
            .collect()
    }
}

impl Workload for RobustnessSweep {
    fn name(&self) -> &str {
        "robustness-sweep"
    }

    fn spec(&self) -> ProblemSpec {
        self.spec
    }

    fn generate(&mut self, n: usize) -> WorkloadSet {
        let master = derive_seed(derive_seed(self.seed, ns::ROBUSTNESS), 1 + self.epoch);
        self.epoch += 1;
        let items = (0..n)
            .map(|i| {
                let mut rng = stream_rng(master, i as u64);
                let p = FactorizationProblem::with_codebooks(&self.codebooks, &mut rng);
                WorkloadItem {
                    group: 0,
                    unit: i,
                    query: p.product().clone(),
                    truth: Some(p.true_indices().to_vec()),
                }
            })
            .collect();
        WorkloadSet {
            units: n,
            groups: vec![self.codebooks.clone()],
            items,
        }
    }

    fn score(&mut self, _set: &WorkloadSet, outcomes: &[FactorizationOutcome]) -> WorkloadScore {
        let mut score = WorkloadScore::solved_fraction(outcomes);
        let solved: Vec<usize> = outcomes
            .iter()
            .filter(|o| o.solved)
            .map(|o| o.solved_at.unwrap_or(o.iterations))
            .collect();
        if !solved.is_empty() {
            let mean = solved.iter().sum::<usize>() as f64 / solved.len() as f64;
            score.metrics.push(("mean_iterations_solved".into(), mean));
        }
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_factorization_generates_fresh_epochs() {
        let spec = ProblemSpec::new(3, 8, 256);
        let mut w = RandomFactorization::new(spec, 7);
        let a = w.generate(4);
        let b = w.generate(4);
        a.validate(spec);
        b.validate(spec);
        assert_eq!(a.items.len(), 4);
        assert!(
            a.items
                .iter()
                .zip(&b.items)
                .any(|(x, y)| x.query != y.query),
            "epochs must differ"
        );
        // Same seed, fresh instance: epoch 0 replays exactly.
        let mut w2 = RandomFactorization::new(spec, 7);
        assert_eq!(w2.generate(4), a);
    }

    #[test]
    fn perception_puzzles_have_sixteen_panels_per_unit() {
        let schema = AttributeSchema::raven();
        let mut w = Perception::puzzles(schema, 256, NeuralFrontend::ideal(1), 11);
        let set = w.generate(3);
        set.validate(w.spec());
        assert_eq!(set.units, 3);
        assert_eq!(set.items.len(), 48);
        assert!(set.items.iter().all(|i| i.truth.is_none()));
        assert_eq!(set.items[17].unit, 1);
    }

    #[test]
    fn perception_score_rejects_a_stale_set() {
        let schema = AttributeSchema::raven();
        let mut w = Perception::attributes(schema, 256, NeuralFrontend::ideal(1), 13);
        let stale = w.generate(2);
        let _fresh = w.generate(2);
        let outcomes: Vec<FactorizationOutcome> = Vec::new();
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| w.score(&stale, &outcomes)));
        assert!(err.is_err(), "scoring a stale set must fail loudly");
    }

    #[test]
    fn capacity_sweep_uses_fresh_books_per_trial() {
        let spec = ProblemSpec::new(2, 8, 256);
        let mut w = CapacitySweep::new(spec, 3);
        let set = w.generate(5);
        set.validate(spec);
        assert_eq!(set.groups.len(), 5);
        assert!(set.groups[0] != set.groups[1], "trials share codebooks");
    }

    #[test]
    fn robustness_grid_and_noise_mapping() {
        let points = SeverityPoint::grid(&[0.0, 0.05], &[1.0, 4.0]);
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].stuck_at_rate, 0.0);
        assert_eq!(points[3], {
            SeverityPoint {
                stuck_at_rate: 0.05,
                drift_scale: 4.0,
                write_nonlinearity: 0.0,
            }
        });
        let base = NoiseSpec::chip_40nm();
        let n = points[3].noise();
        assert_eq!(n.stuck_at_rate, 0.05);
        assert!((n.programming_sigma - base.programming_sigma * 4.0).abs() < 1e-12);
        assert_eq!(n.read_sigma, base.read_sigma, "read noise untouched");
        let nl = points[3].with_write_nonlinearity(0.15).noise();
        assert!((nl.write_gain() - 0.85).abs() < 1e-15);
        // Drift scale is 1 at t = 0 and grows with log time.
        assert_eq!(SeverityPoint::pcm_drift_scale(0.05, 0.0), 1.0);
        assert!(
            SeverityPoint::pcm_drift_scale(0.05, 1e4) > SeverityPoint::pcm_drift_scale(0.05, 1.0)
        );
    }

    #[test]
    fn robustness_cells_share_identical_queries() {
        let spec = ProblemSpec::new(2, 8, 256);
        let a = RobustnessSweep::new(spec, 17).generate(4);
        let b = RobustnessSweep::new(spec, 17).generate(4);
        a.validate(spec);
        assert_eq!(a, b, "same seed ⇒ same epoch-0 stream for every cell");
    }

    #[test]
    fn integer_factorization_scores_products_not_indices() {
        let mut w = IntegerFactorization::new(30, 256, 5);
        let set = w.generate(2);
        set.validate(w.spec());
        // Synthetic outcomes: item 0 decodes its exact truth, item 1 a
        // wrong factor pair (different prime product).
        let truth0 = set.items[0].truth.clone().unwrap();
        let t1 = set.items[1].truth.clone().unwrap();
        let wrong1 = vec![(t1[0] + 1) % w.primes().len(), t1[1]];
        let mk = |decoded: Vec<usize>| FactorizationOutcome {
            solved: false,
            iterations: 1,
            solved_at: None,
            converged: true,
            decoded,
            cycle: None,
            revisits: 0,
            degenerate_events: 0,
            correct_at: Vec::new(),
            cosines: Vec::new(),
            times: Default::default(),
        };
        let outcomes = vec![mk(truth0), mk(wrong1)];
        let score = w.score(&set, &outcomes);
        assert_eq!(score.score, 0.5);
        assert_eq!(score.metrics[1], ("exact_index_rate".to_string(), 0.5));
    }
}
