//! The top-level entry point: a [`Session`] owns one problem shape, one
//! [`Backend`], problem generation, batched solving with per-problem
//! seeds, and aggregate accuracy/energy/latency reporting.
//!
//! ```
//! use h3dfact::prelude::*;
//!
//! let spec = ProblemSpec::new(3, 8, 256);
//! let mut session = Session::builder()
//!     .spec(spec)
//!     .backend(BackendKind::Stochastic)
//!     .seed(7)
//!     .max_iters(500)
//!     .build();
//! let report = session.run(4);
//! assert_eq!(report.problems, 4);
//! assert!(report.accuracy() > 0.5);
//! ```

use std::fmt;
use std::sync::Arc;

use cim::noise::NoiseSpec;
use h3dfact_core::{H3dFact, H3dFactConfig, Hybrid2dEngine, PcmEngine, Sram2dEngine};
use hdc::rng::{derive_seed, stream_rng};
use hdc::{BipolarVector, Codebook, FactorizationProblem, ProblemSpec};
use resonator::batch::{BatchItem, BatchOutcome};
use resonator::engine::FactorizationOutcome;
use resonator::metrics::IterationStats;
use resonator::{BaselineResonator, StochasticResonator};

use crate::backend::{Backend, LockstepQuery, RunReport};
use crate::executor;
use crate::registry::{CodebookHandle, CodebookRegistry};
use crate::target::{CostReport, TargetBackend, TargetKind};
use crate::workload::{Workload, WorkloadReport, WorkloadSet};

/// Stream namespaces for the session's seed-derivation tree. Every family
/// of streams a session draws is namespaced through a **nested**
/// [`derive_seed`] (`derive_seed(derive_seed(seed, NS), k)`) rather than a
/// flat offset (`derive_seed(seed, NS + k)`): flat offsets alias once `k`
/// crosses a namespace boundary, which is exactly the failure mode a
/// long-lived serving shard (billions of issued problems) would hit.
mod ns {
    /// Backend constructor seeds.
    pub const BACKEND: u64 = 0xB4C;
    /// Codebook generation.
    pub const CODEBOOKS: u64 = 0xC0DE;
    /// Per-problem seed streams ([`super::Session::generate`]).
    pub const PROBLEMS: u64 = 0xE90C;
    /// Carved-shard seed lineage ([`super::Session::carve_shard`]).
    pub const SHARDS: u64 = 0x5AAD;
}

/// The six engines a [`Session`] can drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The simulated three-tier H3DFact accelerator (device-accurate).
    H3dFact,
    /// The fully digital SRAM-CIM 2D baseline of Table III.
    Sram2d,
    /// The monolithic hybrid (RRAM+SRAM, 40 nm) 2D baseline of Table III.
    Hybrid2d,
    /// The two-die PCM in-memory factorizer comparator of Sec. V-B.
    Pcm,
    /// The deterministic software baseline resonator (Frady et al.).
    Baseline,
    /// The algorithm-level stochastic software model of H3DFact.
    Stochastic,
}

impl BackendKind {
    /// Every backend, in presentation order.
    pub const ALL: [BackendKind; 6] = [
        BackendKind::H3dFact,
        BackendKind::Sram2d,
        BackendKind::Hybrid2d,
        BackendKind::Pcm,
        BackendKind::Baseline,
        BackendKind::Stochastic,
    ];

    /// The backend's stable name (matches `Backend::name`).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::H3dFact => "h3dfact-3d",
            BackendKind::Sram2d => "sram-2d",
            BackendKind::Hybrid2d => "hybrid-2d",
            BackendKind::Pcm => "pcm-2die",
            BackendKind::Baseline => "baseline-sw",
            BackendKind::Stochastic => "stochastic-sw",
        }
    }

    /// Instantiates the engine behind this kind.
    pub fn instantiate(
        self,
        spec: ProblemSpec,
        max_iters: usize,
        seed: u64,
        adc_bits: Option<u8>,
        noise: Option<NoiseSpec>,
    ) -> Box<dyn Backend> {
        let hw_config = || {
            let mut cfg = H3dFactConfig::default_for(spec).with_max_iters(max_iters);
            if let Some(bits) = adc_bits {
                cfg = cfg.with_adc_bits(bits);
            }
            if let Some(n) = noise {
                cfg = cfg.with_noise(n);
            }
            cfg
        };
        match self {
            BackendKind::H3dFact => Box::new(H3dFact::new(hw_config(), seed)),
            BackendKind::Sram2d => Box::new(Sram2dEngine::new(spec, max_iters, seed)),
            BackendKind::Hybrid2d => Box::new(Hybrid2dEngine::new(hw_config(), seed)),
            BackendKind::Pcm => {
                let mut engine = PcmEngine::paper_default(spec, max_iters, seed);
                if let Some(bits) = adc_bits {
                    engine = engine.with_adc_bits(bits);
                }
                if let Some(n) = noise {
                    // Workspace noise convention: the session hands every
                    // analog backend the same *relative per-cell* sigma
                    // (`NoiseSpec::sigma_total()` units) and the engine
                    // owns the `sqrt(D)` column scaling. Fault and write
                    // nonidealities map onto the comparator's survival
                    // model.
                    engine = engine
                        .with_cell_sigma(n.sigma_total())
                        .with_faults(n.stuck_at_rate, n.write_gain());
                }
                Box::new(engine)
            }
            BackendKind::Baseline => Box::new(BaselineResonator::new(max_iters, seed)),
            BackendKind::Stochastic => {
                // The algorithm-level model parameterizes the same knobs
                // as the analog hardware: honor the overrides rather than
                // silently running paper defaults. Same per-cell sigma
                // convention as the PCM arm above.
                let cell_sigma = noise
                    .map(|n| n.sigma_total())
                    .unwrap_or(StochasticResonator::CHIP_CELL_SIGMA);
                let bits = adc_bits.unwrap_or(4);
                Box::new(StochasticResonator::with_cell_noise(
                    spec, max_iters, cell_sigma, bits, seed,
                ))
            }
        }
    }

    /// [`BackendKind::instantiate`] on an execution target: `None` drives
    /// the engine's own direct path (the legacy default); `Some(target)`
    /// routes the kernels through a
    /// [`TargetBackend`](crate::target::TargetBackend) —
    /// [`TargetKind::Functional`] is bit-identical to the direct engine
    /// and additionally surfaces per-run
    /// [`CostReport`](crate::target::CostReport)s.
    pub fn instantiate_on(
        self,
        target: Option<TargetKind>,
        spec: ProblemSpec,
        max_iters: usize,
        seed: u64,
        adc_bits: Option<u8>,
        noise: Option<NoiseSpec>,
    ) -> Box<dyn Backend> {
        match target {
            None => self.instantiate(spec, max_iters, seed, adc_bits, noise),
            Some(t) => Box::new(TargetBackend::new(
                self, t, spec, max_iters, seed, adc_bits, noise,
            )),
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why [`SessionBuilder::try_build`] refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionBuildError {
    /// No problem shape was supplied.
    MissingSpec,
    /// The iteration budget was zero.
    ZeroIterationBudget,
}

impl fmt::Display for SessionBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionBuildError::MissingSpec => {
                write!(f, "Session::builder() needs .spec(ProblemSpec::new(..))")
            }
            SessionBuildError::ZeroIterationBudget => {
                write!(f, "max_iters must be at least 1")
            }
        }
    }
}

impl std::error::Error for SessionBuildError {}

/// Fluent construction of a [`Session`].
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    spec: Option<ProblemSpec>,
    backend: BackendKind,
    seed: u64,
    max_iters: usize,
    adc_bits: Option<u8>,
    noise: Option<NoiseSpec>,
    threads: usize,
    target: Option<TargetKind>,
    registry: Option<Arc<CodebookRegistry>>,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        Self {
            spec: None,
            backend: BackendKind::H3dFact,
            seed: 0,
            max_iters: 2_000,
            adc_bits: None,
            noise: None,
            threads: 1,
            target: None,
            registry: None,
        }
    }
}

impl SessionBuilder {
    /// The problem shape the session is provisioned for (required).
    pub fn spec(mut self, spec: ProblemSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Which engine to drive (default: [`BackendKind::H3dFact`]).
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.backend = kind;
        self
    }

    /// Master seed for codebooks, problems, and engine stochasticity
    /// (default: 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Iteration budget per problem (default: 2000, the paper's budget).
    pub fn max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// ADC resolution override for the analog hardware backends (Fig. 6a
    /// studies). Ignored by software backends.
    pub fn adc_bits(mut self, bits: u8) -> Self {
        self.adc_bits = Some(bits);
        self
    }

    /// Device-noise override for the analog hardware backends. Ignored by
    /// software backends.
    pub fn noise(mut self, noise: NoiseSpec) -> Self {
        self.noise = Some(noise);
        self
    }

    /// Worker threads for batch solving (default: 1, fully sequential).
    /// `0` means "all available cores". With `n > 1`, [`Session::run`] and
    /// [`Session::run_batched`] solve batch items on a deterministic
    /// worker pool whose [`SessionReport`]s are **bit-identical** to the
    /// sequential run at the same seed: each item is solved at the run
    /// cursor it would have had sequentially, and order-sensitive
    /// aggregation (energy sums) happens in item order afterwards.
    ///
    /// Pick `n` up to the physical core count for throughput sweeps;
    /// oversubscribing buys nothing because items are CPU-bound. Single
    /// `solve`/`solve_query` calls are unaffected.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Execution target for the backend's kernels (default: the engine's
    /// own direct path). [`TargetKind::Functional`] is bit-identical to
    /// the direct engine at every seed — same outcomes, same reports —
    /// and additionally surfaces per-run
    /// [`CostReport`](crate::target::CostReport)s through
    /// [`Session::last_cost_report`]; the other targets trade fidelity for
    /// richer hardware co-simulation or offload modeling.
    pub fn target(mut self, target: TargetKind) -> Self {
        self.target = Some(target);
        self
    }

    /// Codebook registry to intern this session's codebooks in (default:
    /// the process-wide [`CodebookRegistry::global`]). Sessions with
    /// content-identical codebooks — e.g. many tenants at one seed —
    /// resolve to **one** shared allocation through the registry, and the
    /// registry's hot/cold hierarchy decides lazily whether the packed
    /// lane-major mirrors are materialized (only for codebooks whose
    /// bit-GEMM streams). Results are bit-identical in every tier state;
    /// pass a private registry in tests/benches that measure footprint.
    pub fn registry(mut self, registry: Arc<CodebookRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Builds the session.
    pub fn try_build(self) -> Result<Session, SessionBuildError> {
        let spec = self.spec.ok_or(SessionBuildError::MissingSpec)?;
        if self.max_iters == 0 {
            return Err(SessionBuildError::ZeroIterationBudget);
        }
        let backend = self.backend.instantiate_on(
            self.target,
            spec,
            self.max_iters,
            derive_seed(self.seed, ns::BACKEND),
            self.adc_bits,
            self.noise,
        );
        let registry = self.registry.unwrap_or_else(CodebookRegistry::global);
        let mut rng = stream_rng(self.seed, ns::CODEBOOKS);
        let generated: Vec<Codebook> = (0..spec.factors)
            .map(|_| Codebook::random(spec.codebook_size, spec.dim, &mut rng))
            .collect();
        let codebook_handle = CodebookRegistry::intern(&registry, generated);
        let codebooks = codebook_handle.resolve();
        Ok(Session {
            spec,
            kind: self.backend,
            seed: self.seed,
            max_iters: self.max_iters,
            adc_bits: self.adc_bits,
            noise: self.noise,
            threads: self.threads,
            target: self.target,
            codebook_handle,
            codebooks,
            backend,
            problem_cursor: 0,
            shards_carved: 0,
            last_report: None,
        })
    }

    /// Builds the session.
    ///
    /// # Panics
    ///
    /// Panics when required parameters are missing; use
    /// [`SessionBuilder::try_build`] to handle that as a `Result`.
    pub fn build(self) -> Session {
        match self.try_build() {
            Ok(session) => session,
            Err(e) => panic!("invalid session: {e}"),
        }
    }
}

/// Aggregate result of a [`Session`] solve pass.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Name of the backend that ran.
    pub backend: &'static str,
    /// Problems attempted.
    pub problems: usize,
    /// Problems solved within budget.
    pub solved: usize,
    /// Iterations across all problems (the pass's work measure).
    pub total_iterations: usize,
    /// Iteration statistics over the solved problems.
    pub iterations: IterationStats,
    /// Total energy, joules — `None` for backends without an energy model.
    pub total_energy_j: Option<f64>,
    /// Total modeled latency, seconds — `None` without a latency model.
    pub total_latency_s: Option<f64>,
    /// Per-problem outcomes, in generation order.
    pub outcomes: Vec<FactorizationOutcome>,
}

impl SessionReport {
    /// Fraction of problems solved.
    pub fn accuracy(&self) -> f64 {
        if self.problems == 0 {
            0.0
        } else {
            self.solved as f64 / self.problems as f64
        }
    }

    /// Mean energy per problem, joules.
    pub fn energy_per_problem_j(&self) -> Option<f64> {
        self.total_energy_j
            .filter(|_| self.problems > 0)
            .map(|e| e / self.problems as f64)
    }

    /// Mean modeled latency per problem, seconds.
    pub fn latency_per_problem_s(&self) -> Option<f64> {
        self.total_latency_s
            .filter(|_| self.problems > 0)
            .map(|l| l / self.problems as f64)
    }

    /// Mean iterations among solved problems.
    pub fn mean_iterations_solved(&self) -> Option<f64> {
        (self.iterations.count() > 0).then(|| self.iterations.mean())
    }
}

/// A configured solving session: one problem shape, one backend, owned
/// codebooks, deterministic per-problem seed streams, and aggregate
/// reporting.
///
/// Construct with [`Session::builder`]. See the module docs for a
/// round-trip example.
pub struct Session {
    spec: ProblemSpec,
    kind: BackendKind,
    seed: u64,
    max_iters: usize,
    adc_bits: Option<u8>,
    noise: Option<NoiseSpec>,
    /// Worker threads for batch solving (`0` = all cores, `1` = sequential).
    threads: usize,
    /// Execution target routing (`None` = the engines' direct path).
    target: Option<TargetKind>,
    /// The registry entry this session's codebooks are interned under.
    /// Content-identical sessions (same seed/spec, or any other route to
    /// the same sign words) share one entry — and one allocation —
    /// process-wide.
    codebook_handle: CodebookHandle,
    /// The shared codebooks, as last resolved from the registry: carved
    /// shards and request streams hold the same allocation (`Arc`), so a
    /// pool of N shards stores the codebooks once, not N times. Solve
    /// passes refresh this once per pass ([`Session::refresh_codebooks`])
    /// and run entirely against one `Arc` — the executor's lockstep
    /// chunking groups by slice identity.
    codebooks: Arc<[Codebook]>,
    backend: Box<dyn Backend>,
    /// Next problem-stream cursor: problem `k` of this session draws the
    /// seed stream `(seed, PROBLEMS, k)` regardless of how generation
    /// calls are chunked, so an already-issued problem seed is never
    /// re-derived — the property serving shards rely on when they seed
    /// request streams mid-cursor.
    problem_cursor: u64,
    /// Shards carved from this session so far (each gets its own seed
    /// lineage, so carved shards draw disjoint problem streams).
    shards_carved: u64,
    /// Report of the most recent solve through this session (parallel
    /// passes produce it from the final item's worker, so sequential and
    /// parallel sessions observe the same report stream).
    last_report: Option<RunReport>,
}

impl Session {
    /// Starts building a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The problem shape.
    pub fn spec(&self) -> ProblemSpec {
        self.spec
    }

    /// Which backend kind is driving.
    pub fn backend_kind(&self) -> BackendKind {
        self.kind
    }

    /// The backend's stable name.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The iteration budget per problem.
    pub fn max_iters(&self) -> usize {
        self.max_iters
    }

    /// The session's shared codebooks (derived from the master seed).
    pub fn codebooks(&self) -> &[Codebook] {
        &self.codebooks
    }

    /// The shared codebook allocation itself, for layers (the service's
    /// request streams) that need an owning handle without copying.
    pub(crate) fn codebooks_shared(&self) -> Arc<[Codebook]> {
        Arc::clone(&self.codebooks)
    }

    /// The registry handle this session's codebooks are interned under.
    /// Resolving it touches the registry's LRU and returns the current
    /// hot-tier `Arc` (value-identical in any tier state).
    pub fn codebook_handle(&self) -> &CodebookHandle {
        &self.codebook_handle
    }

    /// Re-resolves the codebooks through the registry — one LRU touch,
    /// promoting the entry hot if it was demoted — and caches the result
    /// for the coming pass. Called once per solve pass so the whole pass
    /// runs against a single `Arc`.
    pub(crate) fn refresh_codebooks(&mut self) {
        self.codebooks = self.codebook_handle.resolve();
    }

    /// Direct access to the backend for specialized flows (explain-away,
    /// capacity sweeps, custom codebooks).
    pub fn backend_mut(&mut self) -> &mut dyn Backend {
        &mut *self.backend
    }

    /// Configured worker threads (`0` = all cores, `1` = sequential).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Statistics of the most recent solve through this session, in the
    /// common format.
    pub fn last_run_stats(&self) -> Option<RunReport> {
        self.last_report.clone()
    }

    /// The configured execution target, when the session routes its
    /// kernels through the target abstraction.
    pub fn target_kind(&self) -> Option<TargetKind> {
        self.target
    }

    /// The target-level cost report of the most recent solve, for
    /// target-routed sessions (`None` on the engines' direct path, and
    /// after parallel passes, whose per-item reports live in the worker
    /// engines).
    pub fn last_cost_report(&self) -> Option<CostReport> {
        self.backend.last_cost_report()
    }

    /// Generates `n` problems over the session codebooks, each from its
    /// own deterministic seed stream, and advances the problem cursor past
    /// them. `n == 0` yields an empty workload.
    ///
    /// Problem `k` of a session's lifetime is a pure function of
    /// `(session seed, k)` — **not** of how the stream was chunked into
    /// `generate` calls: `generate(2)` followed by `generate(3)` yields
    /// exactly the five problems of one `generate(5)`. This is what lets a
    /// serving shard pick its request stream up mid-cursor without ever
    /// re-deriving an already-issued problem seed.
    pub fn generate(&mut self, n: usize) -> Vec<BatchItem> {
        let items = self.generate_at(self.problem_cursor, n);
        self.problem_cursor += n as u64;
        items
    }

    /// Generates the `n` problems at cursors `[cursor, cursor + n)` of
    /// this session's problem stream without moving the session's own
    /// cursor — the random-access view of the stream [`Session::generate`]
    /// walks.
    pub fn generate_at(&self, cursor: u64, n: usize) -> Vec<BatchItem> {
        let master = derive_seed(self.seed, ns::PROBLEMS);
        (0..n)
            .map(|i| {
                let mut rng = stream_rng(master, cursor + i as u64);
                let p = FactorizationProblem::with_codebooks(&self.codebooks, &mut rng);
                BatchItem {
                    query: p.product().clone(),
                    truth: Some(p.true_indices().to_vec()),
                }
            })
            .collect()
    }

    /// The next problem-stream cursor [`Session::generate`] will issue.
    pub fn problem_cursor(&self) -> u64 {
        self.problem_cursor
    }

    /// Repositions the problem stream: the next [`Session::generate`]
    /// call starts at problem `cursor`. Seeking backwards replays the
    /// exact problems already issued at those cursors.
    pub fn seek_problems(&mut self, cursor: u64) {
        self.problem_cursor = cursor;
    }

    /// Carves a warmed shard off this session: a new [`Session`] with the
    /// same shape, knobs, and **shared codebooks** (the same `Arc`
    /// allocation, not a copy) but its own seed lineage — the shard's backend
    /// stochasticity and problem stream are disjoint from the parent's and
    /// from every other shard's, no matter how far any of their cursors
    /// advance. The service layer builds its pre-warmed shard pool this
    /// way; codebook generation is paid once, on the parent.
    pub fn carve_shard(&mut self) -> Session {
        self.carve_shard_as(self.kind)
    }

    /// [`Session::carve_shard`] with a different backend kind: the shard
    /// shares the parent's codebooks and seed lineage discipline but
    /// drives `kind`. Lets one parent warm a heterogeneous shard pool over
    /// identical codebooks.
    pub fn carve_shard_as(&mut self, kind: BackendKind) -> Session {
        let shard_seed = derive_seed(derive_seed(self.seed, ns::SHARDS), self.shards_carved);
        self.shards_carved += 1;
        let backend = kind.instantiate_on(
            self.target,
            self.spec,
            self.max_iters,
            derive_seed(shard_seed, ns::BACKEND),
            self.adc_bits,
            self.noise,
        );
        Session {
            spec: self.spec,
            kind,
            seed: shard_seed,
            max_iters: self.max_iters,
            adc_bits: self.adc_bits,
            noise: self.noise,
            threads: self.threads,
            target: self.target,
            codebook_handle: self.codebook_handle.clone(),
            codebooks: Arc::clone(&self.codebooks),
            backend,
            problem_cursor: 0,
            shards_carved: 0,
            last_report: None,
        }
    }

    /// Solves one caller-supplied problem (any codebooks of the right
    /// shape), recording stats on the backend.
    pub fn solve(&mut self, problem: &FactorizationProblem) -> FactorizationOutcome {
        let out = self.backend.factorize(problem);
        self.last_report = self.backend.last_run_stats();
        out
    }

    /// Solves an arbitrary (possibly noisy) query over caller-supplied
    /// codebooks.
    pub fn solve_query(
        &mut self,
        codebooks: &[Codebook],
        query: &BipolarVector,
        truth: Option<&[usize]>,
    ) -> FactorizationOutcome {
        let out = self.backend.factorize_query(codebooks, query, truth);
        self.last_report = self.backend.last_run_stats();
        out
    }

    /// Worker threads a batch of `n_items` will actually use.
    fn effective_threads(&self, n_items: usize) -> usize {
        executor::resolve_threads(self.threads).min(n_items.max(1))
    }

    /// A thread-safe constructor of engines identical to this session's
    /// backend (same constructor seed), for the parallel executor's
    /// per-worker engines. The service layer uses the same factories to
    /// give its micro-batch pool engines bit-identical to each shard's
    /// warmed backend.
    pub(crate) fn backend_factory(&self) -> impl Fn() -> Box<dyn Backend> + Send + Sync + 'static {
        let (kind, target, spec, max_iters, seed, adc_bits, noise) = (
            self.kind,
            self.target,
            self.spec,
            self.max_iters,
            derive_seed(self.seed, ns::BACKEND),
            self.adc_bits,
            self.noise,
        );
        move || kind.instantiate_on(target, spec, max_iters, seed, adc_bits, noise)
    }

    /// Solves `items` on the deterministic worker pool at the backend's
    /// current run cursor, advances the cursor past the batch, and records
    /// the final item's report — leaving the session in exactly the state
    /// a sequential pass over the same items would have left it in.
    fn solve_items_parallel(
        &mut self,
        items: &[BatchItem],
        threads: usize,
    ) -> Vec<executor::IndexedSolve> {
        let base = self.backend.run_cursor();
        let factory = self.backend_factory();
        let solves = executor::solve_indexed(&factory, &self.codebooks, items, base, threads);
        self.backend.seek_run(base + items.len() as u64);
        self.last_report = solves.last().and_then(|s| s.report.clone());
        solves
    }

    /// The workload counterpart of [`Session::solve_items_parallel`]:
    /// same cursor and report bookkeeping, but each item addresses one of
    /// the set's codebook groups.
    fn solve_groups_parallel(
        &mut self,
        groups: &[Vec<Codebook>],
        items: &[crate::workload::WorkloadItem],
        threads: usize,
    ) -> Vec<executor::IndexedSolve> {
        let base = self.backend.run_cursor();
        let factory = self.backend_factory();
        let solves = executor::solve_grouped(&factory, groups, items, base, threads);
        self.backend.seek_run(base + items.len() as u64);
        self.last_report = solves.last().and_then(|s| s.report.clone());
        solves
    }

    /// Sequential solve of `items` at the backend's current run cursor:
    /// contiguous chunks route through the backend's lockstep batch
    /// stepper when it has one (bit-identical to per-item calls, but
    /// matrix–matrix in the kernels), with a per-item fallback otherwise.
    /// Leaves the cursor and `last_report` exactly as a per-item pass
    /// would.
    fn solve_items_sequential(&mut self, items: &[BatchItem]) -> Vec<executor::IndexedSolve> {
        let mut solves = Vec::with_capacity(items.len());
        for chunk in items.chunks(executor::LOCKSTEP_CHUNK) {
            let queries: Vec<LockstepQuery<'_>> = chunk
                .iter()
                .map(|item| (&item.query, item.truth.as_deref()))
                .collect();
            match self.backend.factorize_lockstep(&self.codebooks, &queries) {
                Some(batch) => solves.extend(batch.into_iter().map(|s| executor::IndexedSolve {
                    outcome: s.outcome,
                    report: s.report,
                })),
                None => {
                    for item in chunk {
                        let outcome = self.backend.factorize_query(
                            &self.codebooks,
                            &item.query,
                            item.truth.as_deref(),
                        );
                        let report = self.backend.last_run_stats();
                        solves.push(executor::IndexedSolve { outcome, report });
                    }
                }
            }
        }
        self.last_report = match solves.last() {
            Some(solve) => solve.report.clone(),
            None => self.backend.last_run_stats(),
        };
        solves
    }

    /// The workload counterpart of [`Session::solve_items_sequential`]:
    /// lockstep chunks additionally break where the codebook group
    /// changes (fresh-codebook workloads interleave groups), falling back
    /// to per-item solves for engines without a stepper.
    fn solve_workload_sequential(&mut self, set: &WorkloadSet) -> Vec<executor::IndexedSolve> {
        let mut solves = Vec::with_capacity(set.items.len());
        let mut start = 0usize;
        while start < set.items.len() {
            let group = set.items[start].group;
            let mut end = start + 1;
            while end < set.items.len()
                && end - start < executor::LOCKSTEP_CHUNK
                && set.items[end].group == group
            {
                end += 1;
            }
            let chunk = &set.items[start..end];
            let queries: Vec<LockstepQuery<'_>> = chunk
                .iter()
                .map(|item| (&item.query, item.truth.as_deref()))
                .collect();
            match self
                .backend
                .factorize_lockstep(&set.groups[group], &queries)
            {
                Some(batch) => solves.extend(batch.into_iter().map(|s| executor::IndexedSolve {
                    outcome: s.outcome,
                    report: s.report,
                })),
                None => {
                    for item in chunk {
                        let outcome = self.backend.factorize_query(
                            &set.groups[group],
                            &item.query,
                            item.truth.as_deref(),
                        );
                        let report = self.backend.last_run_stats();
                        solves.push(executor::IndexedSolve { outcome, report });
                    }
                }
            }
            start = end;
        }
        self.last_report = match solves.last() {
            Some(solve) => solve.report.clone(),
            None => self.backend.last_run_stats(),
        };
        solves
    }

    /// Accumulates one per-item report's cost into the pass totals — the
    /// single definition of cost folding, shared by every item-order
    /// aggregation path.
    fn fold_cost(report: Option<RunReport>, energy: &mut Option<f64>, latency: &mut Option<f64>) {
        if let Some(report) = report {
            if let Some(e) = report.energy_j() {
                *energy.get_or_insert(0.0) += e;
            }
            if let Some(l) = report.latency_s {
                *latency.get_or_insert(0.0) += l;
            }
        }
    }

    /// Generates `n` fresh problems and solves them one by one,
    /// accumulating per-run cost into the report. The workload is
    /// identical to [`Session::run_batched`] at the same epoch.
    ///
    /// With [`SessionBuilder::threads`] above 1, items are solved on the
    /// deterministic worker pool; the report is bit-identical to the
    /// sequential run (energy/latency are accumulated in item order from
    /// the same per-item reports).
    pub fn run(&mut self, n: usize) -> SessionReport {
        self.refresh_codebooks();
        let items = self.generate(n);
        let threads = self.effective_threads(items.len());
        let mut outcomes = Vec::with_capacity(items.len());
        let mut energy = None;
        let mut latency = None;
        if threads > 1 && !items.is_empty() {
            for solve in self.solve_items_parallel(&items, threads) {
                Self::fold_cost(solve.report, &mut energy, &mut latency);
                outcomes.push(solve.outcome);
            }
        } else {
            for solve in self.solve_items_sequential(&items) {
                Self::fold_cost(solve.report, &mut energy, &mut latency);
                outcomes.push(solve.outcome);
            }
        }
        self.report_from(outcomes, energy, latency)
    }

    /// Generates `n` fresh problems and solves them through the backend's
    /// batch path (natively scheduled where supported). Cost totals come
    /// from the backend's post-batch report when it covers the batch
    /// (`native_batch` capability), otherwise they are omitted.
    ///
    /// With [`SessionBuilder::threads`] above 1, items are solved on the
    /// deterministic worker pool and the per-item reports are folded back
    /// into the backend's native batch roll-up
    /// ([`Backend::fold_batch_reports`]), so the report is bit-identical
    /// to the sequential batched run.
    pub fn run_batched(&mut self, n: usize) -> SessionReport {
        self.refresh_codebooks();
        let items = self.generate(n);
        if items.is_empty() {
            return self.report_from(Vec::new(), None, None);
        }
        let threads = self.effective_threads(items.len());
        let native = self.backend.capabilities().native_batch;
        // Cost totals may only come from a report that covers the WHOLE
        // batch: the sequential native roll-up, or a successful fold of
        // every per-item report. A native backend that cannot fold (no
        // `fold_batch_reports` override, or a worker without a report)
        // must omit cost rather than silently report one item's.
        let (outcomes, batch_report_valid) = if threads > 1 {
            let solves = self.solve_items_parallel(&items, threads);
            let reports: Vec<RunReport> = solves.iter().filter_map(|s| s.report.clone()).collect();
            let outcomes: Vec<FactorizationOutcome> =
                solves.into_iter().map(|s| s.outcome).collect();
            let folded =
                native && reports.len() == items.len() && self.backend.fold_batch_reports(&reports);
            if folded {
                self.last_report = self.backend.last_run_stats();
            }
            (outcomes, folded)
        } else {
            let batch = self.backend.factorize_batch(&self.codebooks, &items);
            self.last_report = self.backend.last_run_stats();
            (batch.outcomes, native)
        };
        let (mut energy, mut latency) = (None, None);
        if batch_report_valid {
            if let Some(report) = &self.last_report {
                energy = report.energy_j();
                latency = report.latency_s;
            }
        }
        self.report_from(outcomes, energy, latency)
    }

    /// Runs `n` units of `workload` through this session's backend and
    /// worker pool: queries are generated up front (deterministically, per
    /// item), solved exactly like a [`Session::run`] batch — bit-identical
    /// between `threads(1)` and `threads(N)` — and handed back to the
    /// workload for scoring. Returns the workload's score on top of the
    /// standard session statistics.
    ///
    /// # Panics
    ///
    /// Panics if the workload's [`Workload::spec`] differs from the
    /// session's, or the generated set is inconsistent.
    pub fn run_workload(&mut self, workload: &mut dyn Workload, n: usize) -> WorkloadReport {
        assert_eq!(
            workload.spec(),
            self.spec,
            "workload shape must match the session spec"
        );
        let set = workload.generate(n);
        set.validate(self.spec);
        let threads = self.effective_threads(set.items.len());
        let mut outcomes = Vec::with_capacity(set.items.len());
        let mut energy = None;
        let mut latency = None;
        if threads > 1 && !set.items.is_empty() {
            for solve in self.solve_groups_parallel(&set.groups, &set.items, threads) {
                Self::fold_cost(solve.report, &mut energy, &mut latency);
                outcomes.push(solve.outcome);
            }
        } else {
            for solve in self.solve_workload_sequential(&set) {
                Self::fold_cost(solve.report, &mut energy, &mut latency);
                outcomes.push(solve.outcome);
            }
        }
        let score = workload.score(&set, &outcomes);
        WorkloadReport {
            workload: workload.name().to_string(),
            units: set.units,
            score: score.score,
            metrics: score.metrics,
            session: self.report_from(outcomes, energy, latency),
        }
    }

    fn report_from(
        &self,
        outcomes: Vec<FactorizationOutcome>,
        total_energy_j: Option<f64>,
        total_latency_s: Option<f64>,
    ) -> SessionReport {
        // One definition of solved-iteration aggregation, shared with
        // every batch path.
        let batch = BatchOutcome::from_outcomes(outcomes);
        SessionReport {
            backend: self.backend.name(),
            problems: batch.len(),
            solved: batch.iterations.count(),
            total_iterations: batch.total_iterations(),
            iterations: batch.iterations,
            total_energy_j,
            total_latency_s,
            outcomes: batch.outcomes,
        }
    }
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("spec", &self.spec)
            .field("backend", &self.kind)
            .field("seed", &self.seed)
            .field("max_iters", &self.max_iters)
            .field("problem_cursor", &self.problem_cursor)
            .finish()
    }
}

/// Steal events of the deterministic parallel executor since process
/// start, across every pass (monotone, process-global). A steal happens
/// when a worker's own chunk deque drains and it takes the back half of
/// another worker's — the signature of ragged lockstep retirement being
/// rebalanced. Observability only (the bench harness records it next to
/// the per-thread scaling curve); scheduling never reads it, and steal
/// timing cannot reach outcomes — every chunk re-seeds its engine from
/// its own cursor, so `threads(N) ≡ threads(1)` holds under any
/// interleaving.
pub fn executor_steal_events() -> u64 {
    crate::executor::steal_events()
}
