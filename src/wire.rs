//! The serving wire protocol: a compact, hand-rolled, length-prefixed
//! binary codec for driving a [`FactorizationService`] over a socket
//! (see [`crate::server`]).
//!
//! # Frame format
//!
//! Every frame is `[len: u32 LE][opcode: u8][payload]`, where `len`
//! counts the opcode byte plus the payload (so an empty-payload frame has
//! `len == 1`). Frames larger than [`MAX_FRAME_LEN`] are refused at
//! decode time without reading the payload, so a corrupt or hostile
//! length prefix cannot make the server allocate unboundedly.
//!
//! | opcode | frame | direction |
//! |---|---|---|
//! | `0x01` | [`Frame::Request`] | client → server |
//! | `0x02` | [`Frame::Response`] | server → client |
//! | `0x03` | [`Frame::Shed`] | server → client |
//! | `0x04` | [`Frame::StatsRequest`] | client → server |
//! | `0x05` | [`Frame::StatsResponse`] | server → client |
//! | `0x06` | [`Frame::Error`] | server → client |
//! | `0x07` | [`Frame::Hello`] | client → server |
//! | `0x08` | [`Frame::HelloAck`] | server → client |
//!
//! # Version negotiation
//!
//! The first frame on every connection must be a [`Frame::Hello`]
//! carrying the client's [`PROTOCOL_VERSION`]. The server answers with
//! [`Frame::HelloAck`] on a match, or a [`Frame::Error`] (and closes the
//! connection) on a mismatch, so future frame-layout changes fail loudly
//! at connect time instead of decoding garbage mid-stream. Clients see
//! the mismatch as a typed [`WireError::VersionMismatch`].
//!
//! Primitive encodings, all little-endian:
//!
//! - integers: `u8`, `u32`, `u64`; floats as IEEE-754 bits (`u64`), so
//!   values round-trip **bit-exactly** — the serving layer's bit-identity
//!   contract extends across the wire.
//! - `Option<T>`: presence byte (`0`/`1`) then `T`.
//! - strings: `u32` byte length + UTF-8 bytes.
//! - index lists: `u32` count + `u32` per index.
//! - hypervectors: `u32` dimension + `ceil(dim/64)` raw `u64` words
//!   (exactly [`hdc::BipolarVector`]'s packed layout; padding bits of
//!   the last word must be clear, which the decoder verifies).
//!
//! Request/response correlation is by client-chosen `tag`: the server
//! echoes the tag of the request a [`Frame::Response`] or [`Frame::Shed`]
//! answers, so one connection can keep many requests in flight and
//! receive completions out of submission order (micro-batching reorders
//! across connections).
//!
//! Decoding is strict: truncated payloads, trailing bytes, unknown
//! opcodes or enum codes, non-UTF-8 strings, and set padding bits all
//! produce a typed [`WireError`] instead of a partial value, and the
//! server answers them with [`Frame::Error`] and drops only that
//! connection — the accept loop never dies on malformed input.

use std::fmt;
use std::io::{self, Read, Write};

use hdc::BipolarVector;

use crate::session::BackendKind;

/// Hard ceiling on `len` (opcode + payload bytes) a peer may announce.
/// A `D = 8192` query frame is ~1 KiB; 1 MiB leaves two orders of
/// magnitude of headroom while keeping a hostile length prefix harmless.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// The protocol version this build speaks, negotiated in the
/// [`Frame::Hello`] handshake. v1 had no handshake and no request
/// deadlines; v2 added both plus the `deadline-exceeded` shed reason;
/// v3 added the `accounting_anomalies` counter to the stats frame;
/// v4 added the codebook-registry block ([`WireRegistryStats`]) to the
/// stats frame.
pub const PROTOCOL_VERSION: u8 = 4;

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket/stream failed.
    Io(io::Error),
    /// The stream ended inside a frame (mid-prefix or mid-payload), or a
    /// payload declared more elements than it has bytes.
    Truncated,
    /// The length prefix exceeded [`MAX_FRAME_LEN`].
    Oversized {
        /// The announced `len`.
        len: u32,
    },
    /// The opcode byte is not one of the defined frames.
    UnknownOpcode(u8),
    /// The payload was structurally invalid (bad enum code, set padding
    /// bits, trailing bytes, non-UTF-8 string, ...).
    Malformed(&'static str),
    /// The peer speaks a different protocol version (reported by the
    /// [`Frame::Hello`] handshake).
    VersionMismatch {
        /// The version the peer announced.
        got: u8,
        /// The version this build speaks ([`PROTOCOL_VERSION`]).
        expected: u8,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Oversized { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
            WireError::VersionMismatch { got, expected } => {
                write!(
                    f,
                    "protocol version mismatch: peer speaks v{got}, this build v{expected}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        // An EOF mid-frame is a truncation, not a transport fault.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}

/// Why the server refused a request (echoed in [`Frame::Shed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedReason {
    /// The target shard's bounded queue was full
    /// ([`crate::service::SubmitError::AtCapacity`] surfaced on the
    /// wire).
    QueueFull,
    /// The tenant's token bucket was empty (offered rate above quota).
    RateLimited,
    /// The tenant already had its quota of requests in flight.
    InFlightLimit,
    /// The service pool has no shard of the requested backend kind.
    UnknownBackend,
    /// The request's deadline expired while it was queued; it was shed at
    /// batch formation without consuming a run cursor.
    DeadlineExceeded,
}

impl ShedReason {
    /// All reasons, in wire-code order.
    pub const ALL: [ShedReason; 5] = [
        ShedReason::QueueFull,
        ShedReason::RateLimited,
        ShedReason::InFlightLimit,
        ShedReason::UnknownBackend,
        ShedReason::DeadlineExceeded,
    ];

    fn code(self) -> u8 {
        match self {
            ShedReason::QueueFull => 0,
            ShedReason::RateLimited => 1,
            ShedReason::InFlightLimit => 2,
            ShedReason::UnknownBackend => 3,
            ShedReason::DeadlineExceeded => 4,
        }
    }

    fn from_code(code: u8) -> Result<Self, WireError> {
        Self::ALL
            .get(code as usize)
            .copied()
            .ok_or(WireError::Malformed("unknown shed-reason code"))
    }
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::RateLimited => "rate-limited",
            ShedReason::InFlightLimit => "in-flight-limit",
            ShedReason::UnknownBackend => "unknown-backend",
            ShedReason::DeadlineExceeded => "deadline-exceeded",
        };
        f.write_str(s)
    }
}

/// Stable wire code of a [`BackendKind`] (its index in
/// [`BackendKind::ALL`]).
pub fn backend_code(kind: BackendKind) -> u8 {
    BackendKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("every kind is in ALL") as u8
}

/// Inverse of [`backend_code`].
pub fn backend_from_code(code: u8) -> Result<BackendKind, WireError> {
    BackendKind::ALL
        .get(code as usize)
        .copied()
        .ok_or(WireError::Malformed("unknown backend code"))
}

/// The engine's per-run cost report, flattened for the wire. Mirrors
/// [`crate::backend::RunReport`] except that the energy ledger is carried
/// as its total joules (per-component breakdowns stay server-side).
#[derive(Debug, Clone, PartialEq)]
pub struct WireReport {
    /// Resonator iterations executed.
    pub iterations: u64,
    /// Degenerate (all-zero activation) events.
    pub degenerate_events: u64,
    /// Total clock cycles (latency-modeled backends).
    pub cycles: Option<u64>,
    /// Modeled wall latency, seconds (bit-exact).
    pub latency_s: Option<f64>,
    /// Total energy, joules (bit-exact).
    pub energy_j: Option<f64>,
    /// RRAM tier activation switches (3D designs).
    pub tier_switches: Option<u64>,
    /// ADC conversions (analog designs).
    pub adc_conversions: Option<u64>,
    /// Peak SRAM buffer occupancy, bits (buffered designs).
    pub buffer_peak_bits: Option<u64>,
}

impl WireReport {
    /// Flattens a backend report for the wire.
    pub fn from_report(report: &crate::backend::RunReport) -> Self {
        Self {
            iterations: report.iterations as u64,
            degenerate_events: report.degenerate_events as u64,
            cycles: report.cycles,
            latency_s: report.latency_s,
            energy_j: report.energy_j(),
            tier_switches: report.tier_switches,
            adc_conversions: report.adc_conversions,
            buffer_peak_bits: report.buffer_peak_bits,
        }
    }
}

/// One completed request as it crosses the wire: admission facts plus the
/// outcome subset the serving contract pins (decode, solved, iterations —
/// all bit-comparable to an in-process replay).
#[derive(Debug, Clone, PartialEq)]
pub struct WireResponse {
    /// The client's correlation tag.
    pub tag: u64,
    /// The server-side admission id ([`crate::service::RequestId`]).
    pub id: u64,
    /// Backend kind that served the request.
    pub backend: BackendKind,
    /// Global shard index it was solved on.
    pub shard: u32,
    /// Engine run cursor it was solved at.
    pub cursor: u64,
    /// Whether the decode was accepted as the solution.
    pub solved: bool,
    /// Whether the resonator reached a fixed point.
    pub converged: bool,
    /// Iterations executed.
    pub iterations: u64,
    /// First iteration (1-based) at which the decode was correct.
    pub solved_at: Option<u64>,
    /// Final decoded item index per factor.
    pub decoded: Vec<u32>,
    /// Server-measured wall latency from admission to micro-batch
    /// completion, seconds.
    pub wall_latency_s: Option<f64>,
    /// The engine's cost report, when it produces one.
    pub report: Option<WireReport>,
}

/// Point-in-time per-shard facts in a [`WireStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireShardStat {
    /// The shard's backend kind.
    pub kind: BackendKind,
    /// Requests currently queued on the shard.
    pub queue_depth: u32,
    /// The shard's next admission cursor (== requests ever admitted).
    pub next_cursor: u64,
}

/// Per-tenant roll-up in a [`WireStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireTenantStat {
    /// The tenant.
    pub tenant: String,
    /// Completed requests.
    pub requests: u64,
    /// Completed requests flagged solved.
    pub solved: u64,
    /// Requests admitted but not yet completed.
    pub in_flight: u32,
    /// Total resonator iterations across completed requests.
    pub iterations: u64,
    /// Total energy, joules (energy-modeled shards only).
    pub energy_j: Option<f64>,
    /// Total modeled latency, seconds (latency-modeled shards only).
    pub latency_s: Option<f64>,
}

/// Codebook-registry counters in a [`WireStats`] (wire mirror of
/// [`crate::registry::RegistryStats`], added in protocol v4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireRegistryStats {
    /// Distinct codebook sets interned.
    pub interned_sets: u64,
    /// Intern calls answered by an existing entry (content match).
    pub dedup_hits: u64,
    /// Handle resolutions (touches).
    pub resolves: u64,
    /// Resolutions that found the entry already hot and complete.
    pub hot_hits: u64,
    /// Cold→hot promotions (including zero-cost aliasing ones).
    pub promotions: u64,
    /// Promotions that actually materialized lane mirrors.
    pub materializations: u64,
    /// Member mirrors dropped under hot-budget pressure.
    pub demotions: u64,
    /// Lane-mirror bytes currently held by the hot tier over cold.
    pub hot_bytes: u64,
    /// Packed row-major bytes held by the interned cold tier.
    pub cold_bytes: u64,
}

impl WireRegistryStats {
    /// Total packed bytes resident in the registry (cold rows + hot
    /// lane mirrors).
    pub fn resident_bytes(&self) -> u64 {
        self.cold_bytes + self.hot_bytes
    }
}

/// The `STATS` frame body: SLO latency percentiles, shed counters by
/// reason, the service's own counters and per-shard queue depths,
/// codebook-registry counters, and per-tenant roll-ups.
#[derive(Debug, Clone, PartialEq)]
pub struct WireStats {
    /// Wall-latency samples the percentiles were computed over.
    pub latency_samples: u64,
    /// p50 wall latency, milliseconds.
    pub p50_ms: f64,
    /// p95 wall latency, milliseconds.
    pub p95_ms: f64,
    /// p99 wall latency, milliseconds.
    pub p99_ms: f64,
    /// p99.9 wall latency, milliseconds.
    pub p999_ms: f64,
    /// Requests the server admitted into the service.
    pub accepted: u64,
    /// Requests completed and delivered (or routed to a gone peer).
    pub completed: u64,
    /// Connections currently open (handshake completed, not yet closed).
    pub open_connections: u32,
    /// Connections reaped because a read timed out (slow-loris defense).
    pub reaped_timeout: u64,
    /// Connections refused because the handshake announced the wrong
    /// protocol version.
    pub version_rejected: u64,
    /// Connections refused because the server was at its connection cap.
    pub conn_rejected: u64,
    /// Slot-accounting anomalies (double completion/shed of one request
    /// id, or an in-flight underflow). Always zero in a correct server.
    pub accounting_anomalies: u64,
    /// Shed counts, indexed like [`ShedReason::ALL`].
    pub shed: [u64; 5],
    /// The service's own counters
    /// ([`crate::service::ServiceStats`] flattened in field order).
    pub service: [u64; 9],
    /// Per-shard queue depths and cursors.
    pub shards: Vec<WireShardStat>,
    /// Codebook-registry counters (hot hits, demotions, resident bytes).
    pub registry: WireRegistryStats,
    /// Per-tenant roll-ups, sorted by tenant name.
    pub tenants: Vec<WireTenantStat>,
}

impl WireStats {
    /// Total requests shed, all reasons.
    pub fn shed_total(&self) -> u64 {
        self.shed.iter().sum()
    }

    /// Shed count for one reason.
    pub fn shed_for(&self, reason: ShedReason) -> u64 {
        self.shed[reason.code() as usize]
    }
}

/// One protocol frame. See the [module docs](self) for the layout.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A factorization query (client → server).
    Request {
        /// Client-chosen correlation tag, echoed in the answer.
        tag: u64,
        /// Submitting tenant.
        tenant: String,
        /// Requested backend kind.
        backend: BackendKind,
        /// The product vector to factorize.
        query: BipolarVector,
        /// Ground-truth indices, when known.
        truth: Option<Vec<u32>>,
        /// Relative deadline in microseconds from admission; the server
        /// sheds the request with [`ShedReason::DeadlineExceeded`] if it
        /// is still queued when the deadline passes.
        deadline_us: Option<u64>,
    },
    /// A completed request (server → client).
    Response(WireResponse),
    /// An admission refusal; the request was **not** enqueued and may be
    /// retried (server → client).
    Shed {
        /// The refused request's tag.
        tag: u64,
        /// Why it was refused.
        reason: ShedReason,
    },
    /// Asks for a [`Frame::StatsResponse`] (client → server).
    StatsRequest,
    /// The metrics snapshot (server → client).
    StatsResponse(WireStats),
    /// Protocol fault; the server closes the connection after sending it
    /// (server → client).
    Error {
        /// Human-readable description of the fault.
        message: String,
    },
    /// Handshake opener: the client's protocol version (client → server,
    /// must be the first frame on a connection).
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u8,
    },
    /// Handshake accept: the server's protocol version (server → client).
    HelloAck {
        /// The server's [`PROTOCOL_VERSION`].
        version: u8,
    },
}

const OP_REQUEST: u8 = 0x01;
const OP_RESPONSE: u8 = 0x02;
const OP_SHED: u8 = 0x03;
const OP_STATS_REQUEST: u8 = 0x04;
const OP_STATS_RESPONSE: u8 = 0x05;
const OP_ERROR: u8 = 0x06;
const OP_HELLO: u8 = 0x07;
const OP_HELLO_ACK: u8 = 0x08;

// ─── Encoding ───────────────────────────────────────────────────────────

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(u8::from(v));
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_opt<T>(buf: &mut Vec<u8>, v: &Option<T>, put: impl FnOnce(&mut Vec<u8>, &T)) {
    match v {
        None => buf.push(0),
        Some(v) => {
            buf.push(1);
            put(buf, v);
        }
    }
}

fn put_indices(buf: &mut Vec<u8>, idx: &[u32]) {
    put_u32(buf, idx.len() as u32);
    for &i in idx {
        put_u32(buf, i);
    }
}

fn put_vector(buf: &mut Vec<u8>, v: &BipolarVector) {
    put_u32(buf, v.dim() as u32);
    for &w in v.words() {
        put_u64(buf, w);
    }
}

fn put_report(buf: &mut Vec<u8>, r: &WireReport) {
    put_u64(buf, r.iterations);
    put_u64(buf, r.degenerate_events);
    put_opt(buf, &r.cycles, |b, &v| put_u64(b, v));
    put_opt(buf, &r.latency_s, |b, &v| put_f64(b, v));
    put_opt(buf, &r.energy_j, |b, &v| put_f64(b, v));
    put_opt(buf, &r.tier_switches, |b, &v| put_u64(b, v));
    put_opt(buf, &r.adc_conversions, |b, &v| put_u64(b, v));
    put_opt(buf, &r.buffer_peak_bits, |b, &v| put_u64(b, v));
}

impl Frame {
    /// Encodes the frame, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(64);
        match self {
            Frame::Request {
                tag,
                tenant,
                backend,
                query,
                truth,
                deadline_us,
            } => {
                body.push(OP_REQUEST);
                put_u64(&mut body, *tag);
                put_str(&mut body, tenant);
                body.push(backend_code(*backend));
                put_vector(&mut body, query);
                put_opt(&mut body, truth, |b, t| put_indices(b, t));
                put_opt(&mut body, deadline_us, |b, &v| put_u64(b, v));
            }
            Frame::Response(r) => {
                body.push(OP_RESPONSE);
                put_u64(&mut body, r.tag);
                put_u64(&mut body, r.id);
                body.push(backend_code(r.backend));
                put_u32(&mut body, r.shard);
                put_u64(&mut body, r.cursor);
                put_bool(&mut body, r.solved);
                put_bool(&mut body, r.converged);
                put_u64(&mut body, r.iterations);
                put_opt(&mut body, &r.solved_at, |b, &v| put_u64(b, v));
                put_indices(&mut body, &r.decoded);
                put_opt(&mut body, &r.wall_latency_s, |b, &v| put_f64(b, v));
                put_opt(&mut body, &r.report, put_report);
            }
            Frame::Shed { tag, reason } => {
                body.push(OP_SHED);
                put_u64(&mut body, *tag);
                body.push(reason.code());
            }
            Frame::StatsRequest => body.push(OP_STATS_REQUEST),
            Frame::StatsResponse(s) => {
                body.push(OP_STATS_RESPONSE);
                put_u64(&mut body, s.latency_samples);
                put_f64(&mut body, s.p50_ms);
                put_f64(&mut body, s.p95_ms);
                put_f64(&mut body, s.p99_ms);
                put_f64(&mut body, s.p999_ms);
                put_u64(&mut body, s.accepted);
                put_u64(&mut body, s.completed);
                put_u32(&mut body, s.open_connections);
                put_u64(&mut body, s.reaped_timeout);
                put_u64(&mut body, s.version_rejected);
                put_u64(&mut body, s.conn_rejected);
                put_u64(&mut body, s.accounting_anomalies);
                for &c in &s.shed {
                    put_u64(&mut body, c);
                }
                for &c in &s.service {
                    put_u64(&mut body, c);
                }
                put_u32(&mut body, s.shards.len() as u32);
                for sh in &s.shards {
                    body.push(backend_code(sh.kind));
                    put_u32(&mut body, sh.queue_depth);
                    put_u64(&mut body, sh.next_cursor);
                }
                for &c in &[
                    s.registry.interned_sets,
                    s.registry.dedup_hits,
                    s.registry.resolves,
                    s.registry.hot_hits,
                    s.registry.promotions,
                    s.registry.materializations,
                    s.registry.demotions,
                    s.registry.hot_bytes,
                    s.registry.cold_bytes,
                ] {
                    put_u64(&mut body, c);
                }
                put_u32(&mut body, s.tenants.len() as u32);
                for t in &s.tenants {
                    put_str(&mut body, &t.tenant);
                    put_u64(&mut body, t.requests);
                    put_u64(&mut body, t.solved);
                    put_u32(&mut body, t.in_flight);
                    put_u64(&mut body, t.iterations);
                    put_opt(&mut body, &t.energy_j, |b, &v| put_f64(b, v));
                    put_opt(&mut body, &t.latency_s, |b, &v| put_f64(b, v));
                }
            }
            Frame::Error { message } => {
                body.push(OP_ERROR);
                put_str(&mut body, message);
            }
            Frame::Hello { version } => {
                body.push(OP_HELLO);
                body.push(*version);
            }
            Frame::HelloAck { version } => {
                body.push(OP_HELLO_ACK);
                body.push(*version);
            }
        }
        debug_assert!(body.len() as u64 <= MAX_FRAME_LEN as u64);
        let mut out = Vec::with_capacity(4 + body.len());
        put_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
        out
    }
}

/// Writes one frame to `w` (no buffering assumptions; callers batch with
/// `BufWriter` if they care).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    w.write_all(&frame.encode())?;
    w.flush()?;
    Ok(())
}

// ─── Decoding ───────────────────────────────────────────────────────────

/// A strict little-endian cursor over one frame body.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn boolean(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("boolean byte not 0/1")),
        }
    }

    fn opt<T>(
        &mut self,
        read: impl FnOnce(&mut Self) -> Result<T, WireError>,
    ) -> Result<Option<T>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(read(self)?)),
            _ => Err(WireError::Malformed("presence byte not 0/1")),
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("non-UTF-8 string"))
    }

    fn indices(&mut self) -> Result<Vec<u32>, WireError> {
        let n = self.u32()? as usize;
        // Each index is 4 bytes; a count the payload cannot hold is a
        // truncation, caught before any allocation by the size check.
        if n.checked_mul(4).ok_or(WireError::Truncated)? > self.buf.len() - self.pos {
            return Err(WireError::Truncated);
        }
        (0..n).map(|_| self.u32()).collect()
    }

    fn vector(&mut self) -> Result<BipolarVector, WireError> {
        let dim = self.u32()? as usize;
        if dim == 0 {
            return Err(WireError::Malformed("zero-dimensional hypervector"));
        }
        let n_words = dim.div_ceil(64);
        if n_words.checked_mul(8).ok_or(WireError::Truncated)? > self.buf.len() - self.pos {
            return Err(WireError::Truncated);
        }
        let words: Vec<u64> = (0..n_words).map(|_| self.u64()).collect::<Result<_, _>>()?;
        let tail = dim % 64;
        if tail != 0 && words[n_words - 1] >> tail != 0 {
            return Err(WireError::Malformed("set padding bits in hypervector"));
        }
        // Rebuild through the sign constructor (the only public one):
        // a set bit is +1, a cleared bit -1, exactly the packed layout.
        let signs: Vec<i8> = (0..dim)
            .map(|i| {
                if words[i / 64] >> (i % 64) & 1 == 1 {
                    1
                } else {
                    -1
                }
            })
            .collect();
        Ok(BipolarVector::from_signs(&signs))
    }

    fn report(&mut self) -> Result<WireReport, WireError> {
        Ok(WireReport {
            iterations: self.u64()?,
            degenerate_events: self.u64()?,
            cycles: self.opt(Self::u64)?,
            latency_s: self.opt(Self::f64)?,
            energy_j: self.opt(Self::f64)?,
            tier_switches: self.opt(Self::u64)?,
            adc_conversions: self.opt(Self::u64)?,
            buffer_peak_bits: self.opt(Self::u64)?,
        })
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after payload"))
        }
    }
}

/// Decodes one frame body (opcode + payload, the length prefix already
/// stripped and validated).
pub fn decode_body(body: &[u8]) -> Result<Frame, WireError> {
    let mut r = Reader::new(body);
    let opcode = r.u8()?;
    let frame = match opcode {
        OP_REQUEST => Frame::Request {
            tag: r.u64()?,
            tenant: r.string()?,
            backend: backend_from_code(r.u8()?)?,
            query: r.vector()?,
            truth: r.opt(Reader::indices)?,
            deadline_us: r.opt(Reader::u64)?,
        },
        OP_RESPONSE => Frame::Response(WireResponse {
            tag: r.u64()?,
            id: r.u64()?,
            backend: backend_from_code(r.u8()?)?,
            shard: r.u32()?,
            cursor: r.u64()?,
            solved: r.boolean()?,
            converged: r.boolean()?,
            iterations: r.u64()?,
            solved_at: r.opt(Reader::u64)?,
            decoded: r.indices()?,
            wall_latency_s: r.opt(Reader::f64)?,
            report: r.opt(Reader::report)?,
        }),
        OP_SHED => Frame::Shed {
            tag: r.u64()?,
            reason: ShedReason::from_code(r.u8()?)?,
        },
        OP_STATS_REQUEST => Frame::StatsRequest,
        OP_STATS_RESPONSE => {
            let latency_samples = r.u64()?;
            let (p50_ms, p95_ms, p99_ms, p999_ms) = (r.f64()?, r.f64()?, r.f64()?, r.f64()?);
            let (accepted, completed) = (r.u64()?, r.u64()?);
            let open_connections = r.u32()?;
            let (reaped_timeout, version_rejected, conn_rejected) = (r.u64()?, r.u64()?, r.u64()?);
            let accounting_anomalies = r.u64()?;
            let mut shed = [0u64; 5];
            for c in &mut shed {
                *c = r.u64()?;
            }
            let mut service = [0u64; 9];
            for c in &mut service {
                *c = r.u64()?;
            }
            let n_shards = r.u32()? as usize;
            if n_shards.checked_mul(13).ok_or(WireError::Truncated)? > body.len() {
                return Err(WireError::Truncated);
            }
            let shards = (0..n_shards)
                .map(|_| {
                    Ok(WireShardStat {
                        kind: backend_from_code(r.u8()?)?,
                        queue_depth: r.u32()?,
                        next_cursor: r.u64()?,
                    })
                })
                .collect::<Result<_, WireError>>()?;
            let registry = WireRegistryStats {
                interned_sets: r.u64()?,
                dedup_hits: r.u64()?,
                resolves: r.u64()?,
                hot_hits: r.u64()?,
                promotions: r.u64()?,
                materializations: r.u64()?,
                demotions: r.u64()?,
                hot_bytes: r.u64()?,
                cold_bytes: r.u64()?,
            };
            let n_tenants = r.u32()? as usize;
            if n_tenants.checked_mul(34).ok_or(WireError::Truncated)? > body.len() {
                return Err(WireError::Truncated);
            }
            let tenants = (0..n_tenants)
                .map(|_| {
                    Ok(WireTenantStat {
                        tenant: r.string()?,
                        requests: r.u64()?,
                        solved: r.u64()?,
                        in_flight: r.u32()?,
                        iterations: r.u64()?,
                        energy_j: r.opt(Reader::f64)?,
                        latency_s: r.opt(Reader::f64)?,
                    })
                })
                .collect::<Result<_, WireError>>()?;
            Frame::StatsResponse(WireStats {
                latency_samples,
                p50_ms,
                p95_ms,
                p99_ms,
                p999_ms,
                accepted,
                completed,
                open_connections,
                reaped_timeout,
                version_rejected,
                conn_rejected,
                accounting_anomalies,
                shed,
                service,
                shards,
                registry,
                tenants,
            })
        }
        OP_ERROR => Frame::Error {
            message: r.string()?,
        },
        OP_HELLO => Frame::Hello { version: r.u8()? },
        OP_HELLO_ACK => Frame::HelloAck { version: r.u8()? },
        op => return Err(WireError::UnknownOpcode(op)),
    };
    r.finish()?;
    Ok(frame)
}

/// Reads one frame from `r`. Returns `Ok(None)` on a clean EOF at a frame
/// boundary; an EOF inside a frame is [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, WireError> {
    let mut prefix = [0u8; 4];
    // A clean close lands exactly between frames; map the first-byte EOF
    // to None and any partial prefix to Truncated.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut prefix[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(WireError::Truncated);
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len == 0 {
        return Err(WireError::Malformed("zero-length frame"));
    }
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized { len });
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    decode_body(&body).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng::rng_from_seed;

    #[test]
    fn request_round_trips_through_a_stream() {
        let mut rng = rng_from_seed(3);
        let frame = Frame::Request {
            tag: 42,
            tenant: "tenant-α".to_string(),
            backend: BackendKind::Stochastic,
            query: BipolarVector::random(100, &mut rng),
            truth: Some(vec![1, 5, 7]),
            deadline_us: Some(2_500),
        };
        let bytes = frame.encode();
        let mut cursor = std::io::Cursor::new(&bytes);
        let back = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(back, frame);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_prefix_is_refused_without_allocation() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, MAX_FRAME_LEN + 1);
        bytes.push(OP_STATS_REQUEST);
        match read_frame(&mut std::io::Cursor::new(&bytes)) {
            Err(WireError::Oversized { len }) => assert_eq!(len, MAX_FRAME_LEN + 1),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn padding_bits_are_rejected() {
        let mut body = vec![OP_REQUEST];
        put_u64(&mut body, 0);
        put_str(&mut body, "t");
        body.push(backend_code(BackendKind::Baseline));
        put_u32(&mut body, 10); // dim 10 → one word, tail mask 10 bits
        put_u64(&mut body, u64::MAX); // padding bits set
        body.push(0); // truth: None
        body.push(0); // deadline: None
        match decode_body(&body) {
            Err(WireError::Malformed(m)) => assert!(m.contains("padding")),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }
}
