//! The target abstraction: *what the resonator computes* (the three
//! kernels of the factorization loop) separated from *what hardware it
//! runs on* (which substrate executes them and what each step costs).
//!
//! A [`Target`] owns the MVM/cleanup primitives of one resonator run plus
//! per-step cost accounting; [`TargetBackend`] drives the shared
//! [`ResonatorLoop`] through any target and exposes the standard
//! [`Backend`] interface, so sessions, workloads, and the serving layer
//! are target-agnostic. Three implementations ship:
//!
//! - [`FunctionalTarget`] — the bit-exact packed-kernel path extracted
//!   from the six engines: same kernels, same seed streams, same cost
//!   recipes, so every golden reproduces bit-for-bit.
//! - [`ApproxTiledTarget`] — approximate hardware co-simulation: tiled
//!   crossbars with IR drop, rectifying ADC readout, and a lumped-RC
//!   thermal model stepped once per resonator iteration; the
//!   [`CostReport`] carries the per-iteration die-temperature trajectory.
//! - [`DmaQueueTarget`] — an offload stub: every kernel call is
//!   serialized into a bounded byte command queue, decoded and executed
//!   by a software device model, and the reply travels back the same way
//!   — bit-identical outcomes with queue-occupancy accounting, the
//!   skeleton a real DMA-attached accelerator would fill in.
//!
//! The trace/replay contract of the service layer doubles as the
//! cross-target equivalence harness: a trace captured on one target
//! replays bit-for-bit on any functionally equivalent target.
//!
//! Targets receive their codebooks per call (`&[Codebook]` slices) and
//! never own them, so they compose transparently with the codebook
//! registry ([`crate::registry`]): the caller resolves its
//! [`CodebookHandle`](crate::registry::CodebookHandle) once per pass and
//! every target sees the same registry-shared allocation, hot or cold —
//! kernels are value-identical in either tier state, so target semantics
//! are unchanged.

use arch3d::design::{DesignVariant, BASE_FREQUENCY_MHZ, NATIVE_PATH_LOAD_F};
use arch3d::neurosim::ComponentLibrary;
use arch3d::schedule::{IterationSchedule, ScheduleConfig};
use arch3d::tsv::TsvSpec;
use cim::adc::{AdcConfig, SarAdc};
use cim::counter::BipolarCounter;
use cim::crossbar::TiledCrossbar;
use cim::energy::{EnergyComponent, EnergyLedger};
use cim::noise::NoiseSpec;
use cim::power::PowerMode;
use cim::tech::TechNode;
use cim::xnor::XnorUnit;
use h3dfact_core::accelerator::AnalogKernels;
use h3dfact_core::{H3dFactConfig, PcmEngine};
use hdc::rng::{derive_seed, rng_from_seed};
use hdc::stats::normal;
use hdc::{BipolarVector, Codebook, ProblemSpec};
use rand::rngs::StdRng;
use resonator::engine::{
    FactorizationOutcome, Factorizer, LoopConfig, ResonatorKernels, ResonatorLoop,
};
use resonator::{Activation, StochasticResonator};
use std::fmt;
use thermal::{LumpedStack, Stack};

use crate::backend::{Backend, Capabilities, RunReport};
use crate::session::BackendKind;

/// Loop-seed namespace of the analog (crossbar) engines.
const ANALOG_LOOP_NS: u64 = 0xACC;
/// Loop-seed namespace of the PCM comparator engine.
const PCM_LOOP_NS: u64 = 0x9C31;
/// Loop-seed namespace of the stochastic software engine.
const STOCHASTIC_LOOP_NS: u64 = 0xD15C;

/// Which hardware target executes the resonator kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetKind {
    /// The bit-exact packed-kernel path of the engines (the default).
    Functional,
    /// Tiled crossbars + IR drop + per-iteration lumped-RC thermal
    /// coupling, with a temperature trajectory in the cost report.
    ApproxTiled,
    /// Kernel offload through a bounded DMA command queue (software
    /// executor; bit-identical to functional).
    DmaQueue,
}

impl TargetKind {
    /// The target's stable name.
    pub fn name(self) -> &'static str {
        match self {
            TargetKind::Functional => "functional",
            TargetKind::ApproxTiled => "approx-tiled",
            TargetKind::DmaQueue => "dma-queue",
        }
    }
}

impl fmt::Display for TargetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Command-queue occupancy statistics of a [`DmaQueueTarget`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// Kernel commands serialized through the queue.
    pub commands: u64,
    /// Total bytes transferred (commands + replies).
    pub bytes: u64,
    /// Peak queue occupancy observed, bytes.
    pub max_depth: usize,
    /// Configured queue capacity, bytes.
    pub capacity: usize,
}

/// Per-run cost report of a [`Target`]: the uniform currency every target
/// settles in, superset of the engine-level run statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    /// Name of the target that produced the report.
    pub target: &'static str,
    /// Resonator iterations executed.
    pub iterations: usize,
    /// Degenerate (all-zero activation) events.
    pub degenerate_events: usize,
    /// Total clock cycles, when the target has a latency model.
    pub cycles: Option<u64>,
    /// Wall latency at the design clock, seconds.
    pub latency_s: Option<f64>,
    /// Energy by component, when the target has an energy model.
    pub energy: Option<EnergyLedger>,
    /// RRAM tier activation switches (scheduled 3D targets only).
    pub tier_switches: Option<u64>,
    /// ADC conversions performed (analog targets only).
    pub adc_conversions: Option<u64>,
    /// Peak SRAM buffer occupancy, bits (buffered targets only).
    pub buffer_peak_bits: Option<u64>,
    /// Mean die temperature after each iteration, °C (thermal targets
    /// only; empty otherwise).
    pub mean_die_temp_c: Vec<f64>,
    /// Hottest node in the stack at run end, °C (thermal targets only).
    pub peak_temp_c: Option<f64>,
    /// DMA command-queue statistics ([`DmaQueueTarget`] only).
    pub queue: Option<QueueStats>,
}

/// An execution substrate for one resonator run: owns the three kernel
/// primitives (unbind, similarity MVM + activation, projection MVM), the
/// per-iteration hardware state hook, and per-run cost settlement.
///
/// Object-safe and `Send`, so a `Box<dyn Target>` travels through the
/// session's worker threads exactly like a `Box<dyn Backend>`. Codebooks
/// are passed by reference into the calls that need them (the
/// device-resident targets program them at [`Target::begin_run`] and
/// ignore the parameter afterwards), which keeps the trait free of
/// self-referential borrows.
pub trait Target: Send {
    /// Stable identifier of the target (used in cost reports).
    fn target_name(&self) -> &'static str;

    /// Prepares per-run state: programs arrays, reseeds stochasticity,
    /// resets ledgers and thermal state. Called once before each run.
    fn begin_run(&mut self, codebooks: &[Codebook], run_seed: u64);

    /// Unbinding `q_f = s ⊙ ⊙_{j≠f} x̂_j`, written into `out`.
    fn unbind(
        &mut self,
        product: &BipolarVector,
        others: &[&BipolarVector],
        out: &mut BipolarVector,
    );

    /// Similarity MVM + activation: the `M` projection weights for
    /// `factor`, written into `out`.
    fn similarity(
        &mut self,
        codebooks: &[Codebook],
        factor: usize,
        query: &BipolarVector,
        out: &mut [f64],
    );

    /// Projection MVM: pre-sign sums `X_f · w`, written into `out`.
    fn project(&mut self, codebooks: &[Codebook], factor: usize, weights: &[f64], out: &mut [f64]);

    /// Hook called once per resonator iteration, after all factors have
    /// been updated — where hardware state that co-evolves with the loop
    /// (thermal coupling) advances. Default: no-op.
    fn end_iteration(&mut self) {}

    /// Settles the run's cost into a [`CostReport`] and releases per-run
    /// state.
    fn finish_run(&mut self, outcome: &FactorizationOutcome) -> CostReport;

    /// The loop configuration this target's dynamics require.
    fn loop_config(&self) -> LoopConfig;

    /// Derives the loop-level seed from the run seed (each engine family
    /// namespaces differently; the target owns its family's convention).
    fn loop_seed(&self, run_seed: u64) -> u64;
}

/// Adapter implementing [`ResonatorKernels`] over any [`Target`], so the
/// shared [`ResonatorLoop`] drives targets without knowing about them.
struct TargetKernels<'a> {
    target: &'a mut dyn Target,
    codebooks: &'a [Codebook],
}

impl ResonatorKernels for TargetKernels<'_> {
    fn dim(&self) -> usize {
        self.codebooks[0].dim()
    }

    fn factors(&self) -> usize {
        self.codebooks.len()
    }

    fn codebook_size(&self) -> usize {
        self.codebooks[0].len()
    }

    fn unbind_into(
        &mut self,
        product: &BipolarVector,
        others: &[&BipolarVector],
        out: &mut BipolarVector,
    ) {
        self.target.unbind(product, others, out);
    }

    fn similarity_weights_into(&mut self, factor: usize, query: &BipolarVector, out: &mut [f64]) {
        self.target.similarity(self.codebooks, factor, query, out);
    }

    fn project_into(&mut self, factor: usize, weights: &[f64], out: &mut [f64]) {
        self.target.project(self.codebooks, factor, weights, out);
    }

    fn end_iteration(&mut self) {
        self.target.end_iteration();
    }
}

// ---------------------------------------------------------------------------
// FunctionalTarget
// ---------------------------------------------------------------------------

/// Per-run state of the digital (SRAM-CIM) kernel family, mirroring
/// `DigitalKernels` exactly.
struct DigitalState {
    counter: BipolarCounter,
    xnor: XnorUnit,
    ledger: EnergyLedger,
    lib: ComponentLibrary,
}

/// The software kernel family (baseline / stochastic / PCM comparator),
/// mirroring `SoftwareKernels` exactly: same RNG stream, same
/// survival-noise-rectify-activation order.
struct SoftwareFamily {
    loop_config: LoopConfig,
    /// Loop-seed namespace; `None` uses the run seed raw.
    loop_ns: Option<u64>,
    noise_sigma: f64,
    rectify: bool,
    activation: Activation,
    survival: f64,
    rng: Option<StdRng>,
    /// PCM cost mirror (`None` for the costless software engines).
    cost: Option<PcmEngine>,
}

/// Which kernel family a [`FunctionalTarget`] extracts.
#[allow(clippy::large_enum_variant)] // one instance per backend; size is irrelevant
enum Family {
    /// Crossbar path of `H3dFact` / `Hybrid2dEngine` (`AnalogKernels`).
    Analog {
        cfg: H3dFactConfig,
        variant: DesignVariant,
        kernels: Option<AnalogKernels>,
    },
    /// Digital path of `Sram2dEngine`.
    Digital {
        spec: ProblemSpec,
        max_iters: usize,
        state: DigitalState,
    },
    /// Software path of `BaselineResonator` / `StochasticResonator` /
    /// `PcmEngine`.
    Software(SoftwareFamily),
}

/// The bit-exact functional target: the packed-kernel compute path of the
/// engines extracted behind the [`Target`] interface. For every
/// [`BackendKind`], outcomes, seed streams, and cost reports are
/// bit-for-bit identical to the corresponding engine (pinned by the
/// golden suite).
pub struct FunctionalTarget {
    family: Family,
}

/// Design clock of an analog variant, MHz (mirrors
/// `H3dFact::frequency_mhz`).
fn analog_frequency_mhz(variant: DesignVariant) -> f64 {
    match variant {
        DesignVariant::H3dThreeTier => {
            BASE_FREQUENCY_MHZ * TsvSpec::paper().frequency_derate(NATIVE_PATH_LOAD_F)
        }
        _ => BASE_FREQUENCY_MHZ,
    }
}

impl FunctionalTarget {
    /// Builds the functional target equivalent to `kind.instantiate(..)`
    /// — same constructor-level knob handling (ADC/noise overrides), same
    /// per-run behavior.
    pub fn for_backend(
        kind: BackendKind,
        spec: ProblemSpec,
        max_iters: usize,
        adc_bits: Option<u8>,
        noise: Option<NoiseSpec>,
    ) -> Self {
        let hw_config = || {
            let mut cfg = H3dFactConfig::default_for(spec).with_max_iters(max_iters);
            if let Some(bits) = adc_bits {
                cfg = cfg.with_adc_bits(bits);
            }
            if let Some(n) = noise {
                cfg = cfg.with_noise(n);
            }
            cfg
        };
        let family = match kind {
            BackendKind::H3dFact => Family::Analog {
                cfg: hw_config(),
                variant: DesignVariant::H3dThreeTier,
                kernels: None,
            },
            BackendKind::Hybrid2d => Family::Analog {
                cfg: hw_config(),
                variant: DesignVariant::Hybrid2d,
                kernels: None,
            },
            BackendKind::Sram2d => Family::Digital {
                spec,
                max_iters,
                state: DigitalState {
                    counter: BipolarCounter::new(),
                    xnor: XnorUnit::new(),
                    ledger: EnergyLedger::new(),
                    lib: ComponentLibrary::heterogeneous(),
                },
            },
            BackendKind::Pcm => {
                // Mirror the session's PCM construction (the engine seed is
                // irrelevant here — only the cost model and derived knobs
                // are read off this instance).
                let mut engine = PcmEngine::paper_default(spec, max_iters, 0);
                if let Some(bits) = adc_bits {
                    engine = engine.with_adc_bits(bits);
                }
                if let Some(n) = noise {
                    engine = engine
                        .with_cell_sigma(n.sigma_total())
                        .with_faults(n.stuck_at_rate, n.write_gain());
                }
                Family::Software(SoftwareFamily {
                    loop_config: LoopConfig::stochastic(max_iters),
                    loop_ns: Some(PCM_LOOP_NS),
                    noise_sigma: engine.noise_sigma(),
                    rectify: true,
                    activation: Activation::noise_referenced(adc_bits.unwrap_or(4), spec.dim, 3.0),
                    survival: engine.survival(),
                    rng: None,
                    cost: Some(engine),
                })
            }
            BackendKind::Baseline => Family::Software(SoftwareFamily {
                loop_config: LoopConfig::baseline(max_iters),
                loop_ns: None,
                noise_sigma: 0.0,
                rectify: false,
                activation: Activation::Identity,
                survival: 1.0,
                rng: None,
                cost: None,
            }),
            BackendKind::Stochastic => {
                let cell_sigma = noise
                    .map(|n| n.sigma_total())
                    .unwrap_or(StochasticResonator::CHIP_CELL_SIGMA);
                let bits = adc_bits.unwrap_or(4);
                Family::Software(SoftwareFamily {
                    loop_config: LoopConfig::stochastic(max_iters),
                    loop_ns: Some(STOCHASTIC_LOOP_NS),
                    noise_sigma: cell_sigma * (spec.dim as f64).sqrt(),
                    rectify: true,
                    activation: Activation::noise_referenced(
                        bits,
                        spec.dim,
                        StochasticResonator::DEFAULT_LSB_SIGMAS,
                    ),
                    survival: 1.0,
                    rng: None,
                    cost: None,
                })
            }
        };
        Self { family }
    }
}

impl Target for FunctionalTarget {
    fn target_name(&self) -> &'static str {
        "functional"
    }

    fn begin_run(&mut self, codebooks: &[Codebook], run_seed: u64) {
        match &mut self.family {
            Family::Analog {
                cfg,
                variant,
                kernels,
            } => {
                *kernels = Some(AnalogKernels::program(cfg, *variant, codebooks, run_seed));
            }
            Family::Digital { state, .. } => {
                state.ledger = EnergyLedger::new();
            }
            Family::Software(sw) => {
                sw.rng = Some(rng_from_seed(run_seed));
            }
        }
    }

    fn unbind(
        &mut self,
        product: &BipolarVector,
        others: &[&BipolarVector],
        out: &mut BipolarVector,
    ) {
        match &mut self.family {
            Family::Analog { kernels, .. } => kernels
                .as_mut()
                .expect("begin_run before kernels")
                .unbind_into(product, others, out),
            Family::Digital { state, .. } => {
                state.xnor.unbind_all_into(product, others, out);
                state.ledger.add(
                    EnergyComponent::Unbind,
                    others.len() as f64
                        * product.dim() as f64
                        * state.lib.e_xnor_gate_j(TechNode::N16),
                );
            }
            Family::Software(_) => {
                out.copy_from(product);
                for o in others {
                    out.bind_assign(o);
                }
            }
        }
    }

    fn similarity(
        &mut self,
        codebooks: &[Codebook],
        factor: usize,
        query: &BipolarVector,
        out: &mut [f64],
    ) {
        match &mut self.family {
            Family::Analog { kernels, .. } => kernels
                .as_mut()
                .expect("begin_run before kernels")
                .similarity_weights_into(factor, query, out),
            Family::Digital { state, .. } => {
                state.counter.mvm_into(&codebooks[factor], query, out);
                state.ledger.add(
                    EnergyComponent::SimilarityMvm,
                    (query.dim() * out.len()) as f64
                        * state.lib.e_mac_sram_digital_j(TechNode::N16),
                );
            }
            Family::Software(sw) => {
                codebooks[factor].similarities_into(query, out);
                if sw.survival != 1.0 {
                    for w in out.iter_mut() {
                        *w *= sw.survival;
                    }
                }
                if sw.noise_sigma > 0.0 {
                    let rng = sw.rng.as_mut().expect("begin_run before RNG");
                    for w in out.iter_mut() {
                        *w += normal(0.0, sw.noise_sigma, rng);
                    }
                }
                if sw.rectify {
                    for w in out.iter_mut() {
                        if *w < 0.0 {
                            *w = 0.0;
                        }
                    }
                }
                sw.activation.apply(out);
            }
        }
    }

    fn project(&mut self, codebooks: &[Codebook], factor: usize, weights: &[f64], out: &mut [f64]) {
        match &mut self.family {
            Family::Analog { kernels, .. } => kernels
                .as_mut()
                .expect("begin_run before kernels")
                .project_into(factor, weights, out),
            Family::Digital { state, .. } => {
                codebooks[factor].packed().weighted_sums_into(weights, out);
                state.ledger.add(
                    EnergyComponent::ProjectionMvm,
                    (out.len() * weights.len()) as f64
                        * state.lib.e_mac_sram_digital_j(TechNode::N16),
                );
            }
            Family::Software(_) => {
                codebooks[factor].packed().weighted_sums_into(weights, out);
            }
        }
    }

    fn finish_run(&mut self, outcome: &FactorizationOutcome) -> CostReport {
        let iters = outcome.iterations;
        let base = CostReport {
            target: self.target_name(),
            iterations: iters,
            degenerate_events: outcome.degenerate_events,
            cycles: None,
            latency_s: None,
            energy: None,
            tier_switches: None,
            adc_conversions: None,
            buffer_peak_bits: None,
            mean_die_temp_c: Vec::new(),
            peak_temp_c: None,
            queue: None,
        };
        match &mut self.family {
            Family::Analog {
                cfg,
                variant,
                kernels,
            } => {
                let kernels = kernels.take().expect("begin_run before finish_run");
                let schedule =
                    IterationSchedule::compute(&ScheduleConfig::paper(cfg.spec.factors, cfg.batch));
                let cycles = schedule.cycles * iters as u64;
                let mut energy = kernels.ledger().clone();
                energy.add(
                    EnergyComponent::Control,
                    cycles as f64 * variant.library().e_control_cycle_j(variant.digital_node()),
                );
                CostReport {
                    cycles: Some(cycles),
                    latency_s: Some(cycles as f64 / (analog_frequency_mhz(*variant) * 1e6)),
                    energy: Some(energy),
                    tier_switches: Some(kernels.scheduler().switches()),
                    adc_conversions: Some(kernels.adc_conversions()),
                    buffer_peak_bits: Some(kernels.buffer_peak_bits()),
                    ..base
                }
            }
            Family::Digital { spec, state, .. } => {
                let schedule = IterationSchedule::compute(&ScheduleConfig::paper(spec.factors, 1));
                let cycles = schedule.cycles * iters as u64;
                let mut energy = std::mem::replace(&mut state.ledger, EnergyLedger::new());
                energy.add(
                    EnergyComponent::Control,
                    cycles as f64
                        * ComponentLibrary::heterogeneous().e_control_cycle_j(TechNode::N16),
                );
                CostReport {
                    cycles: Some(cycles),
                    latency_s: Some(cycles as f64 / (BASE_FREQUENCY_MHZ * 1e6)),
                    energy: Some(energy),
                    tier_switches: Some(0),
                    adc_conversions: Some(0),
                    buffer_peak_bits: Some(0),
                    ..base
                }
            }
            Family::Software(sw) => {
                sw.rng = None;
                match &sw.cost {
                    Some(engine) => {
                        let (cycles_per_iter, per_iter) = engine.iteration_cost();
                        let mut energy = EnergyLedger::new();
                        for (component, joules) in per_iter.iter() {
                            energy.add(component, joules * iters as f64);
                        }
                        let cycles = cycles_per_iter * iters as u64;
                        let spec = engine.spec();
                        CostReport {
                            cycles: Some(cycles),
                            latency_s: Some(cycles as f64 / (BASE_FREQUENCY_MHZ * 1e6)),
                            energy: Some(energy),
                            tier_switches: Some(0),
                            adc_conversions: Some(
                                (spec.factors * spec.codebook_size) as u64 * iters as u64,
                            ),
                            buffer_peak_bits: Some(0),
                            ..base
                        }
                    }
                    None => base,
                }
            }
        }
    }

    fn loop_config(&self) -> LoopConfig {
        match &self.family {
            Family::Analog { cfg, .. } => cfg.loop_config,
            Family::Digital { max_iters, .. } => LoopConfig::baseline(*max_iters),
            Family::Software(sw) => sw.loop_config,
        }
    }

    fn loop_seed(&self, run_seed: u64) -> u64 {
        match &self.family {
            Family::Analog { .. } => derive_seed(run_seed, ANALOG_LOOP_NS),
            Family::Digital { .. } => run_seed,
            Family::Software(sw) => match sw.loop_ns {
                Some(ns) => derive_seed(run_seed, ns),
                None => run_seed,
            },
        }
    }
}

// ---------------------------------------------------------------------------
// ApproxTiledTarget
// ---------------------------------------------------------------------------

/// Ambient (and initial) temperature of the thermal model, °C.
const APPROX_AMBIENT_C: f64 = 25.0;
/// Die extent handed to the thermal stack, mm (the paper floorplan).
const APPROX_EXTENT_MM: f64 = 1.0;

/// Approximate hardware co-simulation: per-factor tiled crossbars with IR
/// drop and rectifying SAR-ADC readout, both RRAM tiers held active (no
/// tier scheduler — the approximation), and a lumped-RC thermal network
/// stepped once per resonator iteration from that iteration's dissipated
/// energy. The [`CostReport`] carries the mean-die-temperature trajectory
/// and the peak stack temperature; everything is deterministic per run
/// seed.
pub struct ApproxTiledTarget {
    cfg: H3dFactConfig,
    variant: DesignVariant,
    lib: ComponentLibrary,
    stack: Stack,
    sim_tier: Vec<TiledCrossbar>,
    proj_tier: Vec<TiledCrossbar>,
    adc: SarAdc,
    xnor: XnorUnit,
    /// Run-cumulative energy.
    ledger: EnergyLedger,
    /// Energy of the iteration in flight (drained at `end_iteration`).
    iter_ledger: EnergyLedger,
    thermal: LumpedStack,
    trajectory: Vec<f64>,
    adc_conversions: u64,
    mvm_scratch: Vec<f64>,
    cycles_per_iter: u64,
    /// Modeled wall time of one iteration, seconds (the thermal step).
    dt_iter_s: f64,
}

impl ApproxTiledTarget {
    /// Builds the approximate tiled target for an analog design variant.
    ///
    /// # Panics
    ///
    /// Panics for the SRAM 2D variant (digital kernels have no crossbars).
    pub fn new(cfg: H3dFactConfig, variant: DesignVariant) -> Self {
        assert_ne!(
            variant,
            DesignVariant::Sram2d,
            "the approximate tiled target models the analog crossbar path"
        );
        cfg.validate();
        let schedule =
            IterationSchedule::compute(&ScheduleConfig::paper(cfg.spec.factors, cfg.batch));
        let dt_iter_s = schedule.cycles as f64 / (analog_frequency_mhz(variant) * 1e6);
        let stack = Stack::paper_h3dfact(APPROX_EXTENT_MM);
        let thermal = LumpedStack::new(&stack, APPROX_AMBIENT_C);
        let adc = SarAdc::ideal(AdcConfig {
            bits: cfg.adc_bits,
            full_scale: cfg.adc_full_scale(),
            offset_sigma: 0.0,
            gain_sigma: 0.0,
        });
        Self {
            cfg,
            variant,
            lib: variant.library(),
            stack,
            sim_tier: Vec::new(),
            proj_tier: Vec::new(),
            adc,
            xnor: XnorUnit::new(),
            ledger: EnergyLedger::new(),
            iter_ledger: EnergyLedger::new(),
            thermal,
            trajectory: Vec::new(),
            adc_conversions: 0,
            mvm_scratch: Vec::new(),
            cycles_per_iter: schedule.cycles,
            dt_iter_s,
        }
    }
}

impl Target for ApproxTiledTarget {
    fn target_name(&self) -> &'static str {
        "approx-tiled"
    }

    fn begin_run(&mut self, codebooks: &[Codebook], run_seed: u64) {
        assert_eq!(
            codebooks.len(),
            self.cfg.spec.factors,
            "codebook count != configured factors"
        );
        let program_one = |f: usize, tier: u64| {
            TiledCrossbar::program(
                &codebooks[f],
                self.cfg.subarray_rows,
                self.cfg.noise,
                self.cfg.fidelity,
                derive_seed(run_seed, tier * 1000 + f as u64),
            )
            .with_ir_drop(self.cfg.ir_drop)
        };
        self.sim_tier = (0..codebooks.len()).map(|f| program_one(f, 3)).collect();
        self.proj_tier = (0..codebooks.len()).map(|f| program_one(f, 2)).collect();
        for xb in self.sim_tier.iter_mut().chain(&mut self.proj_tier) {
            xb.set_power_mode(PowerMode::Active);
        }
        self.ledger = EnergyLedger::new();
        self.iter_ledger = EnergyLedger::new();
        // Programming energy lands in the run ledger directly: it happens
        // before the loop, so it does not heat any iteration's step.
        let pulses: u64 = self
            .sim_tier
            .iter()
            .chain(&self.proj_tier)
            .map(|xb| xb.stats().programs)
            .sum();
        self.ledger.add(
            EnergyComponent::RramProgram,
            pulses as f64 * cim::rram::RramDeviceParams::default().program_energy_j,
        );
        self.thermal = LumpedStack::new(&self.stack, APPROX_AMBIENT_C);
        self.trajectory = Vec::new();
        self.adc_conversions = 0;
        self.mvm_scratch = vec![0.0f64; codebooks[0].len()];
    }

    fn unbind(
        &mut self,
        product: &BipolarVector,
        others: &[&BipolarVector],
        out: &mut BipolarVector,
    ) {
        self.xnor.unbind_all_into(product, others, out);
        self.iter_ledger.add(
            EnergyComponent::Unbind,
            others.len() as f64
                * product.dim() as f64
                * self.lib.e_xnor_gate_j(self.variant.digital_node()),
        );
    }

    fn similarity(
        &mut self,
        _codebooks: &[Codebook],
        factor: usize,
        query: &BipolarVector,
        out: &mut [f64],
    ) {
        let d = query.dim() as f64;
        let m = out.len() as f64;
        self.sim_tier[factor]
            .try_mvm_bipolar_into(query, &mut self.mvm_scratch)
            .expect("similarity tier is held active");
        self.iter_ledger.add(
            EnergyComponent::SimilarityMvm,
            d * m * self.lib.e_mac_rram_j(),
        );
        self.iter_ledger.add(
            EnergyComponent::Control,
            d * self.lib.e_drive_row_j(self.variant.periphery_node()),
        );
        for (w, &c) in out.iter_mut().zip(&self.mvm_scratch) {
            *w = self.adc.convert(c.max(0.0));
        }
        self.adc_conversions += out.len() as u64;
        self.iter_ledger.add(
            EnergyComponent::Adc,
            m * self
                .lib
                .e_adc_j(self.cfg.adc_bits, self.variant.periphery_node()),
        );
    }

    fn project(
        &mut self,
        _codebooks: &[Codebook],
        factor: usize,
        weights: &[f64],
        out: &mut [f64],
    ) {
        let d = out.len() as f64;
        let m = weights.len() as f64;
        self.proj_tier[factor]
            .try_mvm_weighted_into(weights, out)
            .expect("projection tier is held active");
        self.iter_ledger.add(
            EnergyComponent::ProjectionMvm,
            d * m * self.lib.e_mac_rram_j(),
        );
        self.iter_ledger.add(
            EnergyComponent::Activation,
            d * self.lib.e_sense_j(self.variant.periphery_node()),
        );
    }

    fn end_iteration(&mut self) {
        self.iter_ledger.add(
            EnergyComponent::Control,
            self.cycles_per_iter as f64 * self.lib.e_control_cycle_j(self.variant.digital_node()),
        );
        // Split the iteration's dissipation across the three dies
        // (bottom-up: tier-1 digital, tier-2 projection, tier-3
        // similarity) and advance the RC network by one iteration time.
        let e = &self.iter_ledger;
        let p_digital = (e.get(EnergyComponent::Unbind)
            + e.get(EnergyComponent::Adc)
            + e.get(EnergyComponent::Control))
            / self.dt_iter_s;
        let p_proj = (e.get(EnergyComponent::ProjectionMvm) + e.get(EnergyComponent::Activation))
            / self.dt_iter_s;
        let p_sim = e.get(EnergyComponent::SimilarityMvm) / self.dt_iter_s;
        self.thermal
            .step(&[p_digital, p_proj, p_sim], self.dt_iter_s);
        self.trajectory.push(self.thermal.mean_die_temp_c());
        let drained = std::mem::replace(&mut self.iter_ledger, EnergyLedger::new());
        self.ledger.merge(&drained);
    }

    fn finish_run(&mut self, outcome: &FactorizationOutcome) -> CostReport {
        let cycles = self.cycles_per_iter * outcome.iterations as u64;
        let report = CostReport {
            target: self.target_name(),
            iterations: outcome.iterations,
            degenerate_events: outcome.degenerate_events,
            cycles: Some(cycles),
            latency_s: Some(cycles as f64 / (analog_frequency_mhz(self.variant) * 1e6)),
            energy: Some(self.ledger.clone()),
            tier_switches: None,
            adc_conversions: Some(self.adc_conversions),
            buffer_peak_bits: None,
            mean_die_temp_c: std::mem::take(&mut self.trajectory),
            peak_temp_c: Some(self.thermal.peak_temp_c()),
            queue: None,
        };
        self.sim_tier.clear();
        self.proj_tier.clear();
        report
    }

    fn loop_config(&self) -> LoopConfig {
        self.cfg.loop_config
    }

    fn loop_seed(&self, run_seed: u64) -> u64 {
        derive_seed(run_seed, ANALOG_LOOP_NS)
    }
}

// ---------------------------------------------------------------------------
// DmaQueueTarget
// ---------------------------------------------------------------------------

/// Default DMA command-queue capacity, bytes.
pub const DMA_QUEUE_CAPACITY: usize = 4096;

const OP_UNBIND: u8 = 1;
const OP_SIMILARITY: u8 = 2;
const OP_PROJECT: u8 = 3;

/// Serialization cursor over a command/reply buffer.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn u8(&mut self) -> u8 {
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }

    fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        v
    }

    fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        v
    }

    fn f64(&mut self) -> f64 {
        f64::from_bits(self.u64())
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_bipolar(buf: &mut Vec<u8>, v: &BipolarVector) {
    put_u32(buf, v.dim() as u32);
    for &w in v.words() {
        put_u64(buf, w);
    }
}

fn get_bipolar(cur: &mut Cursor<'_>) -> BipolarVector {
    let dim = cur.u32() as usize;
    let words: Vec<u64> = (0..dim.div_ceil(64)).map(|_| cur.u64()).collect();
    let signs: Vec<i8> = (0..dim)
        .map(|i| {
            if words[i / 64] >> (i % 64) & 1 == 1 {
                1
            } else {
                -1
            }
        })
        .collect();
    BipolarVector::from_signs(&signs)
}

/// The DMA offload stub: every kernel call is encoded into a byte command,
/// pushed through a bounded queue (the software executor drains a full
/// queue, exactly like a DMA engine consuming descriptors), decoded on the
/// device side, executed on the wrapped inner target, and the reply
/// returns through the same queue. The encoding is lossless (packed bit
/// words, `f64` bit patterns), so outcomes are bit-identical to driving
/// the inner target directly; the [`CostReport`] additionally carries
/// [`QueueStats`].
pub struct DmaQueueTarget {
    inner: Box<dyn Target>,
    capacity: usize,
    depth: usize,
    max_depth: usize,
    commands: u64,
    bytes: u64,
}

impl DmaQueueTarget {
    /// Wraps `inner` behind a command queue of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(inner: Box<dyn Target>, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            inner,
            capacity,
            depth: 0,
            max_depth: 0,
            commands: 0,
            bytes: 0,
        }
    }

    /// Streams `n` bytes through the bounded queue: occupancy grows until
    /// the executor drains a full queue, and the high-water mark is
    /// recorded.
    fn transfer(&mut self, n: usize) {
        let mut remaining = n;
        while remaining > 0 {
            let take = remaining.min(self.capacity - self.depth);
            self.depth += take;
            remaining -= take;
            self.max_depth = self.max_depth.max(self.depth);
            if self.depth == self.capacity {
                self.depth = 0;
            }
        }
        self.bytes += n as u64;
    }

    /// Submits one command: request bytes in, device executes, reply bytes
    /// back. The queue empties at the command boundary (the executor has
    /// consumed the descriptor).
    fn submit(&mut self, request: &[u8], reply_len: usize) {
        self.commands += 1;
        self.transfer(request.len());
        self.depth = 0;
        self.transfer(reply_len);
        self.depth = 0;
    }
}

impl Target for DmaQueueTarget {
    fn target_name(&self) -> &'static str {
        "dma-queue"
    }

    fn begin_run(&mut self, codebooks: &[Codebook], run_seed: u64) {
        self.inner.begin_run(codebooks, run_seed);
        self.depth = 0;
        self.max_depth = 0;
        self.commands = 0;
        self.bytes = 0;
    }

    fn unbind(
        &mut self,
        product: &BipolarVector,
        others: &[&BipolarVector],
        out: &mut BipolarVector,
    ) {
        let mut cmd = vec![OP_UNBIND];
        put_bipolar(&mut cmd, product);
        put_u32(&mut cmd, others.len() as u32);
        for o in others {
            put_bipolar(&mut cmd, o);
        }
        // Device side: reconstruct every operand from bytes alone.
        let mut cur = Cursor::new(&cmd);
        assert_eq!(cur.u8(), OP_UNBIND);
        let dev_product = get_bipolar(&mut cur);
        let n = cur.u32() as usize;
        let dev_others: Vec<BipolarVector> = (0..n).map(|_| get_bipolar(&mut cur)).collect();
        let refs: Vec<&BipolarVector> = dev_others.iter().collect();
        let mut dev_out = BipolarVector::ones(dev_product.dim());
        self.inner.unbind(&dev_product, &refs, &mut dev_out);
        let mut reply = Vec::new();
        put_bipolar(&mut reply, &dev_out);
        self.submit(&cmd, reply.len());
        let mut rcur = Cursor::new(&reply);
        out.copy_from(&get_bipolar(&mut rcur));
    }

    fn similarity(
        &mut self,
        codebooks: &[Codebook],
        factor: usize,
        query: &BipolarVector,
        out: &mut [f64],
    ) {
        let mut cmd = vec![OP_SIMILARITY];
        put_u32(&mut cmd, factor as u32);
        put_bipolar(&mut cmd, query);
        let mut cur = Cursor::new(&cmd);
        assert_eq!(cur.u8(), OP_SIMILARITY);
        let dev_factor = cur.u32() as usize;
        let dev_query = get_bipolar(&mut cur);
        let mut dev_out = vec![0.0f64; out.len()];
        self.inner
            .similarity(codebooks, dev_factor, &dev_query, &mut dev_out);
        let mut reply = Vec::new();
        for &w in &dev_out {
            put_f64(&mut reply, w);
        }
        self.submit(&cmd, reply.len());
        let mut rcur = Cursor::new(&reply);
        for w in out.iter_mut() {
            *w = rcur.f64();
        }
    }

    fn project(&mut self, codebooks: &[Codebook], factor: usize, weights: &[f64], out: &mut [f64]) {
        let mut cmd = vec![OP_PROJECT];
        put_u32(&mut cmd, factor as u32);
        put_u32(&mut cmd, weights.len() as u32);
        for &w in weights {
            put_f64(&mut cmd, w);
        }
        let mut cur = Cursor::new(&cmd);
        assert_eq!(cur.u8(), OP_PROJECT);
        let dev_factor = cur.u32() as usize;
        let n = cur.u32() as usize;
        let dev_weights: Vec<f64> = (0..n).map(|_| cur.f64()).collect();
        let mut dev_out = vec![0.0f64; out.len()];
        self.inner
            .project(codebooks, dev_factor, &dev_weights, &mut dev_out);
        let mut reply = Vec::new();
        for &s in &dev_out {
            put_f64(&mut reply, s);
        }
        self.submit(&cmd, reply.len());
        let mut rcur = Cursor::new(&reply);
        for s in out.iter_mut() {
            *s = rcur.f64();
        }
    }

    fn end_iteration(&mut self) {
        self.inner.end_iteration();
    }

    fn finish_run(&mut self, outcome: &FactorizationOutcome) -> CostReport {
        let mut report = self.inner.finish_run(outcome);
        report.target = self.target_name();
        report.queue = Some(QueueStats {
            commands: self.commands,
            bytes: self.bytes,
            max_depth: self.max_depth,
            capacity: self.capacity,
        });
        report
    }

    fn loop_config(&self) -> LoopConfig {
        self.inner.loop_config()
    }

    fn loop_seed(&self, run_seed: u64) -> u64 {
        self.inner.loop_seed(run_seed)
    }
}

// ---------------------------------------------------------------------------
// TargetBackend
// ---------------------------------------------------------------------------

/// Stable backend name of a `(kind, target)` pairing.
fn backend_name(kind: BackendKind, target: TargetKind) -> &'static str {
    match (kind, target) {
        // Functional targets are bit-identical to the engines and report
        // under the engine's own name.
        (_, TargetKind::Functional) => kind.name(),
        (BackendKind::H3dFact, TargetKind::ApproxTiled) => "h3dfact-3d+approx",
        (BackendKind::Hybrid2d, TargetKind::ApproxTiled) => "hybrid-2d+approx",
        (BackendKind::H3dFact, TargetKind::DmaQueue) => "h3dfact-3d+dma",
        (BackendKind::Hybrid2d, TargetKind::DmaQueue) => "hybrid-2d+dma",
        (BackendKind::Sram2d, TargetKind::DmaQueue) => "sram-2d+dma",
        (BackendKind::Pcm, TargetKind::DmaQueue) => "pcm-2die+dma",
        (BackendKind::Baseline, TargetKind::DmaQueue) => "baseline-sw+dma",
        (BackendKind::Stochastic, TargetKind::DmaQueue) => "stochastic-sw+dma",
        (kind, TargetKind::ApproxTiled) => {
            panic!("the approximate tiled target models the analog crossbar path; {kind} has none")
        }
    }
}

/// A [`Backend`] over any [`Target`]: owns the run-cursor seed discipline
/// (`run_seed = derive(engine seed, cursor)`), drives the shared
/// [`ResonatorLoop`] through the target's kernels, and settles each run
/// into both the target's [`CostReport`] and the standard [`RunReport`].
pub struct TargetBackend {
    name: &'static str,
    capabilities: Capabilities,
    target: Box<dyn Target>,
    seed: u64,
    runs: u64,
    last_cost: Option<CostReport>,
}

impl TargetBackend {
    /// Builds the backend for a `(kind, target)` pairing with the same
    /// constructor knobs as `BackendKind::instantiate`.
    ///
    /// # Panics
    ///
    /// Panics when `target` is [`TargetKind::ApproxTiled`] and `kind` is
    /// not an analog crossbar backend.
    pub fn new(
        kind: BackendKind,
        target_kind: TargetKind,
        spec: ProblemSpec,
        max_iters: usize,
        seed: u64,
        adc_bits: Option<u8>,
        noise: Option<NoiseSpec>,
    ) -> Self {
        let name = backend_name(kind, target_kind);
        let hw_config = || {
            let mut cfg = H3dFactConfig::default_for(spec).with_max_iters(max_iters);
            if let Some(bits) = adc_bits {
                cfg = cfg.with_adc_bits(bits);
            }
            if let Some(n) = noise {
                cfg = cfg.with_noise(n);
            }
            cfg
        };
        let functional = || {
            Box::new(FunctionalTarget::for_backend(
                kind, spec, max_iters, adc_bits, noise,
            ))
        };
        let target: Box<dyn Target> = match target_kind {
            TargetKind::Functional => functional(),
            TargetKind::DmaQueue => Box::new(DmaQueueTarget::new(functional(), DMA_QUEUE_CAPACITY)),
            TargetKind::ApproxTiled => {
                let variant = match kind {
                    BackendKind::H3dFact => DesignVariant::H3dThreeTier,
                    BackendKind::Hybrid2d => DesignVariant::Hybrid2d,
                    other => panic!(
                        "the approximate tiled target models the analog crossbar path; \
                         {other} has none"
                    ),
                };
                Box::new(ApproxTiledTarget::new(hw_config(), variant))
            }
        };
        let engine_caps = match kind {
            BackendKind::H3dFact | BackendKind::Hybrid2d | BackendKind::Pcm => Capabilities {
                stochastic: true,
                energy_model: true,
                latency_model: true,
                native_batch: false,
            },
            BackendKind::Sram2d => Capabilities {
                stochastic: false,
                energy_model: true,
                latency_model: true,
                native_batch: false,
            },
            BackendKind::Baseline => Capabilities {
                stochastic: false,
                energy_model: false,
                latency_model: false,
                native_batch: false,
            },
            BackendKind::Stochastic => Capabilities {
                stochastic: true,
                energy_model: false,
                latency_model: false,
                native_batch: false,
            },
        };
        let capabilities = match target_kind {
            // The co-simulated target always carries cost models.
            TargetKind::ApproxTiled => Capabilities {
                stochastic: true,
                energy_model: true,
                latency_model: true,
                native_batch: false,
            },
            _ => engine_caps,
        };
        Self {
            name,
            capabilities,
            target,
            seed,
            runs: 0,
            last_cost: None,
        }
    }

    /// The target's cost report of the most recent run.
    pub fn last_cost_report(&self) -> Option<&CostReport> {
        self.last_cost.as_ref()
    }
}

impl Factorizer for TargetBackend {
    fn factorize_query(
        &mut self,
        codebooks: &[Codebook],
        query: &BipolarVector,
        truth: Option<&[usize]>,
    ) -> FactorizationOutcome {
        let run_seed = derive_seed(self.seed, self.runs);
        self.runs += 1;
        self.target.begin_run(codebooks, run_seed);
        let config = self.target.loop_config();
        let loop_seed = self.target.loop_seed(run_seed);
        let mut kernels = TargetKernels {
            target: self.target.as_mut(),
            codebooks,
        };
        let outcome =
            ResonatorLoop::new(config).run(&mut kernels, codebooks, query, truth, loop_seed);
        self.last_cost = Some(self.target.finish_run(&outcome));
        outcome
    }
}

impl Backend for TargetBackend {
    fn name(&self) -> &'static str {
        self.name
    }

    fn capabilities(&self) -> Capabilities {
        self.capabilities
    }

    fn last_run_stats(&self) -> Option<RunReport> {
        self.last_cost.as_ref().map(|c| RunReport {
            backend: self.name,
            iterations: c.iterations,
            degenerate_events: c.degenerate_events,
            cycles: c.cycles,
            latency_s: c.latency_s,
            energy: c.energy.clone(),
            tier_switches: c.tier_switches,
            adc_conversions: c.adc_conversions,
            buffer_peak_bits: c.buffer_peak_bits,
        })
    }

    fn run_cursor(&self) -> u64 {
        self.runs
    }

    fn seek_run(&mut self, cursor: u64) {
        self.runs = cursor;
    }

    fn last_cost_report(&self) -> Option<CostReport> {
        self.last_cost.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng::rng_from_seed;
    use hdc::FactorizationProblem;

    fn problem(seed: u64) -> FactorizationProblem {
        FactorizationProblem::random(ProblemSpec::new(3, 8, 256), &mut rng_from_seed(seed))
    }

    #[test]
    fn functional_target_matches_h3dfact_engine() {
        let p = problem(900);
        let mut engine = h3dfact_core::H3dFact::new(
            H3dFactConfig::default_for(p.spec()).with_max_iters(400),
            42,
        );
        let mut target = TargetBackend::new(
            BackendKind::H3dFact,
            TargetKind::Functional,
            p.spec(),
            400,
            42,
            None,
            None,
        );
        for _ in 0..2 {
            let a = engine.factorize(&p);
            let b = target.factorize(&p);
            assert_eq!(a.solved, b.solved);
            assert_eq!(a.iterations, b.iterations);
            assert_eq!(a.decoded, b.decoded);
        }
        let ea = Backend::last_run_stats(&engine).unwrap();
        let eb = Backend::last_run_stats(&target).unwrap();
        assert_eq!(ea, eb, "functional cost report must match the engine");
    }

    #[test]
    fn dma_queue_is_bit_identical_to_functional() {
        let p = problem(901);
        for kind in [BackendKind::Baseline, BackendKind::Pcm] {
            let mut f =
                TargetBackend::new(kind, TargetKind::Functional, p.spec(), 400, 7, None, None);
            let mut d =
                TargetBackend::new(kind, TargetKind::DmaQueue, p.spec(), 400, 7, None, None);
            let a = f.factorize(&p);
            let b = d.factorize(&p);
            assert_eq!(a.solved, b.solved);
            assert_eq!(a.iterations, b.iterations);
            assert_eq!(a.decoded, b.decoded);
            let q = d.last_cost_report().unwrap().queue.unwrap();
            assert!(q.commands > 0 && q.bytes > 0);
            assert!(q.max_depth <= q.capacity);
        }
    }

    #[test]
    fn approx_tiled_records_thermal_trajectory() {
        let p = problem(902);
        let mut t = TargetBackend::new(
            BackendKind::H3dFact,
            TargetKind::ApproxTiled,
            p.spec(),
            400,
            3,
            None,
            None,
        );
        let out = t.factorize(&p);
        let cost = t.last_cost_report().unwrap();
        assert_eq!(cost.mean_die_temp_c.len(), out.iterations);
        assert!(cost
            .mean_die_temp_c
            .iter()
            .all(|&c| (APPROX_AMBIENT_C..200.0).contains(&c)));
        assert!(cost.peak_temp_c.unwrap() >= APPROX_AMBIENT_C);
        assert!(cost.energy.as_ref().unwrap().total() > 0.0);
    }
}
