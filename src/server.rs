//! The network serving front-end: a blocking TCP server that puts the
//! [`FactorizationService`] behind the wire protocol of [`crate::wire`],
//! with admission control and SLO metrics layered on top.
//!
//! # Architecture
//!
//! ```text
//!            accept loop (one thread)
//!                 │ spawn per connection
//!                 ▼
//!   connection reader threads ──► admission control ──► service
//!     (request/response pumps)      │ per-tenant quotas:   │
//!                 ▲                 │  token bucket +      │ micro-
//!                 │ shed / error    │  max in-flight       │ batches
//!                 │ frames          │ queue capacity       ▼
//!                 │                 ▼                 pump thread
//!                 └──────── completion router ◄───── (deadline
//!                     (request id → conn, tag)         flushes)
//! ```
//!
//! The environment is `std`-only (no async runtime), so the server is a
//! classic blocking design: one accept-loop thread, one reader thread per
//! connection pumping request/response frames, one pump thread that
//! sweeps deadline flushes, and — the worker handoff — dedicated
//! **solver threads** fed by a channel of formed micro-batches, so a
//! flush triggered by one connection's admission never solves on that
//! connection's reader thread and admission stays responsive while a
//! batch is mid-solve. All shared state (the service, the completion
//! routes, quota buckets, metrics) lives behind one mutex; batches are
//! *formed* under that lock ([`FactorizationService::take_batch`]) but
//! *solved* off it, and sockets are written only after the lock is
//! released, so neither a slow client nor a slow solve stalls admission
//! for the rest.
//!
//! # Connection hardening
//!
//! Every connection starts with a [`Frame::Hello`] version handshake
//! (wrong versions are refused with a typed error and counted), honors a
//! configurable [`ServerConfig::read_timeout`] so a slow-loris client
//! that sends half a frame and stalls is reaped instead of pinning its
//! reader thread forever, and is refused outright above
//! [`ServerConfig::max_connections`]. The reaped/refused counters
//! surface in the `STATS` frame.
//!
//! # Admission control and backpressure
//!
//! A request passes three gates, in order, each shedding with an explicit
//! [`Frame::Shed`] reason instead of silently queueing without bound:
//!
//! 1. **Token bucket** per tenant ([`TenantQuota::rate`]/
//!    [`TenantQuota::burst`]): offered load above the quota sheds
//!    [`ShedReason::RateLimited`].
//! 2. **In-flight cap** per tenant ([`TenantQuota::max_in_flight`]):
//!    sheds [`ShedReason::InFlightLimit`].
//! 3. **Bounded shard queue** ([`FactorizationService::try_admit`]):
//!    a full queue sheds [`ShedReason::QueueFull`] — the service-layer
//!    capacity rejection surfaced on the wire.
//!
//! A shed request was never admitted: no cursor is consumed, no trace
//! entry is written, and the client may retry. One shed reason is
//! post-admission: a request carrying a deadline that expires while
//! queued is shed as [`ShedReason::DeadlineExceeded`] at micro-batch
//! formation — it consumed no run cursor and has no trace entry, so the
//! replay contract is untouched.
//!
//! # Metrics
//!
//! Every completion's wall latency (admission → micro-batch completion)
//! feeds a bounded reservoir; a [`Frame::StatsRequest`] answers with
//! p50/p95/p99/p99.9, shed counts by reason, the service's own counters
//! and per-shard queue depths ([`FactorizationService::snapshot`]), and
//! per-tenant roll-ups ([`FactorizationService::tenant_stats`]).
//!
//! # Determinism across the wire
//!
//! The service's trace/replay contract survives the socket hop: outcomes
//! are a pure function of configuration and admission order, so the
//! responses a client receives are bit-identical to
//! [`FactorizationService::replay`] of the trace the live server
//! accumulated ([`ServerHandle::shutdown`] hands the service back for
//! exactly that comparison). With concurrent clients the admission
//! *order* is decided by the race to the service lock — but whatever
//! order was admitted, the replay reproduces it bit for bit.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hdc::BipolarVector;

use crate::backend::Backend;
use crate::registry::CodebookHandle;
use crate::service::{
    FactorizationService, FactorizeRequest, FactorizeResponse, FlushReason, PreparedBatch,
    SubmitError,
};
use crate::session::BackendKind;
use crate::wire::{
    read_frame, write_frame, Frame, ShedReason, WireError, WireRegistryStats, WireReport,
    WireResponse, WireShardStat, WireStats, WireTenantStat, PROTOCOL_VERSION,
};

/// Per-tenant admission quota. The default is fully open (no rate limit,
/// unbounded in-flight); tighten per tenant via
/// [`ServerConfig::quota`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQuota {
    /// Maximum requests admitted but not yet completed.
    pub max_in_flight: usize,
    /// Sustained admission rate, requests/second (`None` = unlimited).
    pub rate: Option<f64>,
    /// Token-bucket burst: how many requests may be admitted instantly
    /// from a full bucket. Only meaningful with a `rate`; set it to at
    /// least 1.0 or every request sheds.
    pub burst: f64,
}

impl Default for TenantQuota {
    fn default() -> Self {
        Self {
            max_in_flight: usize::MAX,
            rate: None,
            burst: 1.0,
        }
    }
}

impl TenantQuota {
    /// An open quota (no limits) — the default.
    pub fn open() -> Self {
        Self::default()
    }

    /// A token-bucket rate limit: sustained `rate` requests/second with
    /// `burst` instantly admittable.
    pub fn rate_limited(rate: f64, burst: f64) -> Self {
        Self {
            rate: Some(rate),
            burst,
            ..Self::default()
        }
    }

    /// Caps requests in flight (admitted, not yet completed).
    pub fn with_max_in_flight(mut self, max: usize) -> Self {
        self.max_in_flight = max;
        self
    }
}

/// Server configuration, fluently built.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    addr: String,
    pump_interval: Duration,
    default_quota: TenantQuota,
    quotas: BTreeMap<String, TenantQuota>,
    latency_window: usize,
    read_timeout: Option<Duration>,
    max_connections: usize,
    solver_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            pump_interval: Duration::from_millis(1),
            default_quota: TenantQuota::default(),
            quotas: BTreeMap::new(),
            latency_window: 1 << 16,
            read_timeout: None,
            max_connections: 1024,
            solver_threads: 1,
        }
    }
}

impl ServerConfig {
    /// Bind address (default `127.0.0.1:0` — loopback, ephemeral port;
    /// read the actual port from [`ServerHandle::local_addr`]).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// How often the pump thread sweeps deadline flushes (default 1 ms).
    /// Test configurations use a large interval to disable background
    /// flushing entirely.
    pub fn pump_interval(mut self, interval: Duration) -> Self {
        self.pump_interval = interval;
        self
    }

    /// The quota applied to tenants without an explicit entry.
    pub fn default_quota(mut self, quota: TenantQuota) -> Self {
        self.default_quota = quota;
        self
    }

    /// An explicit per-tenant quota.
    pub fn quota(mut self, tenant: impl Into<String>, quota: TenantQuota) -> Self {
        self.quotas.insert(tenant.into(), quota);
        self
    }

    /// Size of the wall-latency reservoir percentiles are computed over
    /// (default 65536 samples; older samples are overwritten).
    pub fn latency_window(mut self, window: usize) -> Self {
        self.latency_window = window.max(1);
        self
    }

    /// Per-connection read/idle timeout: a connection that produces no
    /// frame bytes for this long — a slow-loris client stalled mid-frame,
    /// or one idle past the keep-alive budget — is reaped (error frame,
    /// close, `reaped_timeout` counter) instead of pinning its reader
    /// thread. Default `None` (wait forever); production configs and the
    /// traffic generator set one.
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = Some(timeout);
        self
    }

    /// Hard cap on concurrently open connections (default 1024).
    /// Connections above the cap are refused with an error frame and
    /// counted as `conn_rejected`.
    pub fn max_connections(mut self, max: usize) -> Self {
        self.max_connections = max.max(1);
        self
    }

    /// Dedicated solver threads fed by the micro-batch handoff channel
    /// (default 1). With at least one, a batch formed by an admission is
    /// solved off the admitting connection's reader thread and admission
    /// stays responsive mid-solve. `0` disables the handoff: batches
    /// solve inline on whichever thread forms them (the pre-handoff
    /// behavior, kept for tests that want synchronous semantics).
    pub fn solver_threads(mut self, threads: usize) -> Self {
        self.solver_threads = threads;
        self
    }

    fn quota_for(&self, tenant: &str) -> TenantQuota {
        self.quotas
            .get(tenant)
            .copied()
            .unwrap_or(self.default_quota)
    }
}

/// Live token-bucket/in-flight state for one tenant.
struct QuotaState {
    tokens: f64,
    last_refill: Instant,
    in_flight: usize,
}

/// Bounded reservoir of recent wall latencies (seconds).
struct LatencyRing {
    samples: Vec<f64>,
    next: usize,
    window: usize,
    observed: u64,
}

impl LatencyRing {
    fn new(window: usize) -> Self {
        Self {
            samples: Vec::with_capacity(window.min(4096)),
            next: 0,
            window,
            observed: 0,
        }
    }

    fn record(&mut self, latency_s: f64) {
        // Clock anomalies (non-monotonic sources, overflowed upstream
        // math) must never poison the reservoir: NaN and negative
        // infinity clamp to zero, positive infinity to the largest
        // finite latency. The sort below uses `total_cmp` as a second
        // line of defense.
        let latency_s = if latency_s.is_finite() {
            latency_s
        } else if latency_s == f64::INFINITY {
            f64::MAX
        } else {
            0.0
        };
        self.observed += 1;
        if self.samples.len() < self.window {
            self.samples.push(latency_s);
        } else {
            self.samples[self.next] = latency_s;
            self.next = (self.next + 1) % self.window;
        }
    }

    /// Nearest-rank percentiles over the reservoir, milliseconds:
    /// `(p50, p95, p99, p99.9)`.
    fn percentiles_ms(&self) -> (f64, f64, f64, f64) {
        if self.samples.is_empty() {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        // Nearest rank in integer per-mille: `rank = ceil(permille·n /
        // 1000)`, computed without floats. The float formulation
        // (`((p/100)·n).ceil()`) returned the max for p99.9 of a
        // 1000-sample reservoir — `99.9/100.0` rounds to slightly above
        // 0.999, so `ceil` produced rank 1000 instead of 999.
        let pick = |permille: usize| {
            let rank = ((permille * n).div_ceil(1000)).max(1);
            sorted[rank - 1] * 1e3
        };
        (pick(500), pick(950), pick(990), pick(999))
    }
}

/// Server-level SLO counters.
struct Metrics {
    latency: LatencyRing,
    accepted: u64,
    completed: u64,
    shed: [u64; 5],
    /// Connections reaped by the read/idle timeout.
    reaped_timeout: u64,
    /// Connections refused for announcing the wrong protocol version.
    version_rejected: u64,
    /// Connections refused at the connection cap.
    conn_rejected: u64,
    /// Slot-accounting anomalies: a completion or shed event for a
    /// request whose routing slot was already released, or an in-flight
    /// decrement that would underflow. Always zero in a correct server;
    /// counted (and debug-asserted) rather than silently saturated so a
    /// double-release bug cannot quietly let a tenant exceed its
    /// in-flight cap.
    accounting_anomalies: u64,
}

/// A connection's write half, locked per frame so any thread can deliver
/// completions to it.
type ConnWriter = Arc<Mutex<TcpStream>>;

/// Frames ready to leave, paired with their target connection. Always
/// built under the state lock, always written after it is released.
type Outbox = Vec<(ConnWriter, Vec<u8>)>;

/// Everything behind the server's single state lock.
struct State {
    service: FactorizationService,
    /// Completion routing: request id → (connection, client tag).
    routes: HashMap<u64, (u64, u64)>,
    /// Live connections' write halves.
    conns: HashMap<u64, ConnWriter>,
    quota: HashMap<String, QuotaState>,
    metrics: Metrics,
}

impl State {
    /// Releases the completion slot request `id` of `tenant` holds:
    /// removes the route (returning it for response delivery) and
    /// decrements the tenant's in-flight count. Exactly one consumer —
    /// completion or deadline shed — wins the route; a second release of
    /// the same id finds no route, decrements **nothing**, and is
    /// counted as an accounting anomaly, so a duplicated event can never
    /// free two slots and let a tenant exceed `max_in_flight`.
    fn release_slot(&mut self, tenant: &str, id: u64) -> Option<(u64, u64)> {
        let Some(route) = self.routes.remove(&id) else {
            self.metrics.accounting_anomalies += 1;
            return None;
        };
        if let Some(q) = self.quota.get_mut(tenant) {
            if q.in_flight == 0 {
                debug_assert!(false, "in-flight underflow for tenant {tenant}");
                self.metrics.accounting_anomalies += 1;
            } else {
                q.in_flight -= 1;
            }
        }
        Some(route)
    }
}

struct Shared {
    state: Mutex<State>,
    stop: AtomicBool,
    config: ServerConfig,
    /// Live reader threads (established or mid-handshake) — the
    /// connection-cap gate and the `open_connections` stat.
    open_conns: AtomicUsize,
    /// Sending half of the micro-batch handoff channel. `None` when the
    /// server runs without solver threads, or once shutdown has closed
    /// the channel — either way [`enqueue_batch`] falls back to solving
    /// inline under the lock.
    job_tx: Mutex<Option<mpsc::Sender<PreparedBatch>>>,
}

impl Shared {
    /// Drains completed responses out of the service into the outbox,
    /// updating latency/in-flight accounting. Call with the state locked.
    fn collect_completed(state: &mut State, outbox: &mut Outbox) {
        for r in state.service.take_responses() {
            state.metrics.completed += 1;
            if let Some(l) = r.wall_latency_s {
                state.metrics.latency.record(l);
            }
            if let Some((conn, tag)) = state.release_slot(&r.tenant, r.id.0) {
                if let Some(writer) = state.conns.get(&conn) {
                    let frame = Frame::Response(wire_response(tag, &r));
                    outbox.push((writer.clone(), frame.encode()));
                }
            }
        }
    }

    /// Sheds deadline-expired requests back to their tenants: in-flight
    /// and shed accounting plus a [`ShedReason::DeadlineExceeded`] frame
    /// per request. Call with the state locked.
    fn collect_expired(state: &mut State, outbox: &mut Outbox) {
        for ex in state.service.take_expired() {
            let idx = ShedReason::ALL
                .iter()
                .position(|&r| r == ShedReason::DeadlineExceeded)
                .expect("reason in ALL");
            state.metrics.shed[idx] += 1;
            if let Some((conn, tag)) = state.release_slot(&ex.tenant, ex.id.0) {
                if let Some(writer) = state.conns.get(&conn) {
                    let frame = Frame::Shed {
                        tag,
                        reason: ShedReason::DeadlineExceeded,
                    };
                    outbox.push((writer.clone(), frame.encode()));
                }
            }
        }
    }

    /// Builds the `STATS` frame body. Call with the state locked.
    fn build_stats(&self, state: &State) -> WireStats {
        let (p50_ms, p95_ms, p99_ms, p999_ms) = state.metrics.latency.percentiles_ms();
        let snapshot = state.service.snapshot();
        let s = snapshot.stats;
        let mut tenants: Vec<WireTenantStat> = state
            .service
            .tenant_stats()
            .into_iter()
            .map(|t| WireTenantStat {
                in_flight: state
                    .quota
                    .get(&t.tenant)
                    .map(|q| q.in_flight as u32)
                    .unwrap_or(0),
                tenant: t.tenant,
                requests: t.requests as u64,
                solved: t.solved as u64,
                iterations: t.totals.iterations as u64,
                energy_j: t.totals.energy_j,
                latency_s: t.totals.latency_s,
            })
            .collect();
        // The service only rolls up tenants with at least one completion;
        // a tenant whose work is all still in flight must show up too.
        for (tenant, q) in &state.quota {
            if q.in_flight > 0 && !tenants.iter().any(|t| &t.tenant == tenant) {
                tenants.push(WireTenantStat {
                    tenant: tenant.clone(),
                    requests: 0,
                    solved: 0,
                    in_flight: q.in_flight as u32,
                    iterations: 0,
                    energy_j: None,
                    latency_s: None,
                });
            }
        }
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        let reg = state.service.codebook_handle().registry().stats();
        WireStats {
            latency_samples: state.metrics.latency.observed,
            p50_ms,
            p95_ms,
            p99_ms,
            p999_ms,
            accepted: state.metrics.accepted,
            completed: state.metrics.completed,
            open_connections: self.open_conns.load(Ordering::SeqCst) as u32,
            reaped_timeout: state.metrics.reaped_timeout,
            version_rejected: state.metrics.version_rejected,
            conn_rejected: state.metrics.conn_rejected,
            accounting_anomalies: state.metrics.accounting_anomalies,
            shed: state.metrics.shed,
            service: [
                s.accepted,
                s.rejected,
                s.completed,
                s.flushes,
                s.flushed_by_size,
                s.flushed_by_deadline,
                s.flushed_by_drain,
                s.largest_batch,
                s.expired,
            ],
            shards: snapshot
                .shards
                .iter()
                .map(|sh| WireShardStat {
                    kind: sh.kind,
                    queue_depth: sh.queue_depth as u32,
                    next_cursor: sh.next_cursor,
                })
                .collect(),
            registry: WireRegistryStats {
                interned_sets: reg.interned_sets,
                dedup_hits: reg.dedup_hits,
                resolves: reg.resolves,
                hot_hits: reg.hot_hits,
                promotions: reg.promotions,
                materializations: reg.materializations,
                demotions: reg.demotions,
                hot_bytes: reg.hot_bytes,
                cold_bytes: reg.cold_bytes,
            },
            tenants,
        }
    }
}

/// Flattens a service response for the wire.
fn wire_response(tag: u64, r: &FactorizeResponse) -> WireResponse {
    WireResponse {
        tag,
        id: r.id.0,
        backend: r.backend,
        shard: r.shard as u32,
        cursor: r.cursor,
        solved: r.outcome.solved,
        converged: r.outcome.converged,
        iterations: r.outcome.iterations as u64,
        solved_at: r.outcome.solved_at.map(|v| v as u64),
        decoded: r.outcome.decoded.iter().map(|&i| i as u32).collect(),
        wall_latency_s: r.wall_latency_s,
        report: r.report.as_ref().map(WireReport::from_report),
    }
}

/// Writes every outbox frame to its connection, outside the state lock.
/// Write errors are ignored: a gone peer loses only its own frames.
fn deliver(outbox: Outbox) {
    for (writer, bytes) in outbox {
        if let Ok(mut stream) = writer.lock() {
            let _ = stream.write_all(&bytes);
            let _ = stream.flush();
        }
    }
}

/// Hands a formed micro-batch to the solver threads, or — when the
/// handoff channel is closed or was never opened — solves it inline
/// under the lock (bit-identical either way; only where the work runs
/// differs). Call with the state locked.
fn enqueue_batch(shared: &Shared, state: &mut State, batch: PreparedBatch) {
    let tx = shared.job_tx.lock().expect("job channel").clone();
    match tx {
        Some(tx) => {
            if let Err(returned) = tx.send(batch) {
                state.service.solve_and_complete(returned.0);
            }
        }
        None => {
            state.service.solve_and_complete(batch);
        }
    }
}

/// Whether a wire error is the read/idle timeout firing (surfaced as
/// `WouldBlock` on Unix, `TimedOut` on Windows).
fn is_read_timeout(e: &WireError) -> bool {
    matches!(
        e,
        WireError::Io(io) if matches!(io.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
    )
}

/// The per-shard engine constructors solver threads build their
/// thread-local engines from ([`FactorizationService::shard_engine_factory`]).
type EngineFactories = Arc<Vec<Box<dyn Fn() -> Box<dyn Backend> + Send + Sync>>>;

/// One solver thread: pull formed micro-batches off the handoff channel,
/// solve them on thread-local engines (lazily built per shard, kept warm
/// across batches), and complete + deliver under the lock. Exits when
/// every sender is gone (shutdown closed the channel).
fn solver_loop(
    shared: Arc<Shared>,
    rx: Arc<Mutex<mpsc::Receiver<PreparedBatch>>>,
    factories: EngineFactories,
    codebooks: CodebookHandle,
) {
    let mut engines: Vec<Option<Box<dyn Backend>>> = (0..factories.len()).map(|_| None).collect();
    loop {
        // Hold the receiver lock only for the handout; solving runs
        // unlocked so multiple solver threads overlap on distinct
        // batches.
        let batch = rx.lock().expect("solver queue").recv();
        let Ok(batch) = batch else { break };
        let shard = batch.shard();
        let engine = engines[shard].get_or_insert_with(|| factories[shard]());
        // One registry resolve per micro-batch: the whole batch solves
        // against one `Arc`, and each resolve is one LRU touch —
        // hot-tier hit rate under live traffic shows up in the
        // registry's stats. Tier state never changes outcomes.
        let books = codebooks.resolve();
        let solved = batch.solve_with(engine.as_mut(), &books);
        let mut outbox = Outbox::new();
        {
            let mut state = shared.state.lock().expect("server state");
            state.service.complete_batch(solved);
            Shared::collect_completed(&mut state, &mut outbox);
        }
        deliver(outbox);
    }
}

/// A running server: the accept loop, connection pumps, and deadline
/// pump thread. Dropping the handle leaks the threads; call
/// [`ServerHandle::shutdown`] to stop them and recover the service.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_join: JoinHandle<()>,
    pump_join: JoinHandle<()>,
    solver_joins: Vec<JoinHandle<()>>,
    conn_joins: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Spawns a server over `service` per `config`. The returned handle owns
/// the listener threads; the bound address (ephemeral port resolved) is
/// [`ServerHandle::local_addr`].
pub fn spawn(service: FactorizationService, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let latency_window = config.latency_window;
    let solver_threads = config.solver_threads;
    // Solver threads build their own engines from the shard factories;
    // grab those (and an owning codebook handle) before the service moves
    // behind the lock.
    let factories: EngineFactories = Arc::new(
        (0..service.shard_count())
            .map(|i| service.shard_engine_factory(i))
            .collect(),
    );
    let codebooks = service.codebook_handle().clone();
    let (job_tx, job_rx) = if solver_threads > 0 {
        let (tx, rx) = mpsc::channel::<PreparedBatch>();
        (Some(tx), Some(Arc::new(Mutex::new(rx))))
    } else {
        (None, None)
    };
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            service,
            routes: HashMap::new(),
            conns: HashMap::new(),
            quota: HashMap::new(),
            metrics: Metrics {
                latency: LatencyRing::new(latency_window),
                accepted: 0,
                completed: 0,
                shed: [0; 5],
                reaped_timeout: 0,
                version_rejected: 0,
                conn_rejected: 0,
                accounting_anomalies: 0,
            },
        }),
        stop: AtomicBool::new(false),
        config,
        open_conns: AtomicUsize::new(0),
        job_tx: Mutex::new(job_tx),
    });
    let solver_joins: Vec<JoinHandle<()>> = match job_rx {
        Some(rx) => (0..solver_threads)
            .map(|_| {
                let shared = shared.clone();
                let rx = rx.clone();
                let factories = factories.clone();
                let codebooks = codebooks.clone();
                std::thread::spawn(move || solver_loop(shared, rx, factories, codebooks))
            })
            .collect(),
        None => Vec::new(),
    };
    let conn_joins: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept_join = {
        let shared = shared.clone();
        let joins = conn_joins.clone();
        std::thread::spawn(move || {
            let mut next_conn: u64 = 0;
            for stream in listener.incoming() {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_id = next_conn;
                next_conn += 1;
                let shared = shared.clone();
                let handle = std::thread::spawn(move || connection_pump(shared, conn_id, stream));
                joins.lock().expect("join registry").push(handle);
            }
        })
    };

    let pump_join = {
        let shared = shared.clone();
        std::thread::spawn(move || {
            // Sleep in short slices so shutdown never waits a full (test
            // configs: very long) pump interval.
            let slice = shared
                .config
                .pump_interval
                .min(Duration::from_millis(1))
                .max(Duration::from_micros(100));
            let mut since_pump = Duration::ZERO;
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(slice);
                since_pump += slice;
                if since_pump < shared.config.pump_interval {
                    continue;
                }
                since_pump = Duration::ZERO;
                let mut outbox = Outbox::new();
                {
                    let mut state = shared.state.lock().expect("server state");
                    // Form due batches under the lock, hand them to the
                    // solver threads (inline fallback), and shed whatever
                    // expired in the sweep.
                    for batch in state.service.take_due(Instant::now()) {
                        enqueue_batch(&shared, &mut state, batch);
                    }
                    Shared::collect_expired(&mut state, &mut outbox);
                    Shared::collect_completed(&mut state, &mut outbox);
                }
                deliver(outbox);
            }
        })
    };

    Ok(ServerHandle {
        shared,
        addr,
        accept_join,
        pump_join,
        solver_joins,
        conn_joins,
    })
}

/// One connection's thread: connection-cap gate, version handshake, then
/// the read loop — decode frames, admit or shed requests, answer stats,
/// reap on read timeout, and report protocol faults with [`Frame::Error`]
/// before dropping only this connection.
fn connection_pump(shared: Arc<Shared>, conn_id: u64, stream: TcpStream) {
    let open = shared.open_conns.fetch_add(1, Ordering::SeqCst) + 1;
    connection_serve(&shared, conn_id, stream, open);
    shared.open_conns.fetch_sub(1, Ordering::SeqCst);
}

fn connection_serve(shared: &Arc<Shared>, conn_id: u64, stream: TcpStream, open: usize) {
    let writer: ConnWriter = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    if open > shared.config.max_connections {
        shared
            .state
            .lock()
            .expect("server state")
            .metrics
            .conn_rejected += 1;
        send_error(&writer, "server at connection capacity");
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    if let Some(t) = shared.config.read_timeout {
        // Best-effort: a socket that refuses the option just keeps the
        // blocking behavior.
        let _ = stream.set_read_timeout(Some(t));
    }
    let mut reader = stream;

    // Version handshake: the first frame must be a Hello carrying this
    // build's protocol version; everything else is refused before any
    // request can decode against the wrong frame layout.
    match read_frame(&mut reader) {
        Ok(Some(Frame::Hello { version })) if version == PROTOCOL_VERSION => {
            let mut w = writer.lock().expect("conn writer");
            if write_frame(
                &mut *w,
                &Frame::HelloAck {
                    version: PROTOCOL_VERSION,
                },
            )
            .is_err()
            {
                return;
            }
        }
        Ok(Some(Frame::Hello { version })) => {
            shared
                .state
                .lock()
                .expect("server state")
                .metrics
                .version_rejected += 1;
            // Answer with the server's version (so a typed client can
            // report the mismatch) and a loud error, then close.
            {
                let mut w = writer.lock().expect("conn writer");
                let _ = write_frame(
                    &mut *w,
                    &Frame::HelloAck {
                        version: PROTOCOL_VERSION,
                    },
                );
            }
            send_error(
                &writer,
                &format!(
                    "protocol version mismatch: client speaks v{version}, \
                     server v{PROTOCOL_VERSION}"
                ),
            );
            let _ = reader.shutdown(Shutdown::Both);
            return;
        }
        Ok(Some(_)) => {
            send_error(&writer, "unexpected frame before the hello handshake");
            let _ = reader.shutdown(Shutdown::Both);
            return;
        }
        Ok(None) => {
            let _ = reader.shutdown(Shutdown::Both);
            return;
        }
        Err(e) if is_read_timeout(&e) => {
            shared
                .state
                .lock()
                .expect("server state")
                .metrics
                .reaped_timeout += 1;
            send_error(&writer, "read timed out; connection reaped");
            let _ = reader.shutdown(Shutdown::Both);
            return;
        }
        Err(e) => {
            send_error(&writer, &format!("protocol error: {e}"));
            let _ = reader.shutdown(Shutdown::Both);
            return;
        }
    }

    // Register for completion routing only once the handshake held.
    shared
        .state
        .lock()
        .expect("server state")
        .conns
        .insert(conn_id, writer.clone());

    loop {
        match read_frame(&mut reader) {
            Ok(None) => break,
            Ok(Some(Frame::Request {
                tag,
                tenant,
                backend,
                query,
                truth,
                deadline_us,
            })) => {
                let request = FactorizeRequest {
                    tenant,
                    backend,
                    query,
                    truth: truth.map(|t| t.iter().map(|&i| i as usize).collect()),
                    deadline: deadline_us.map(Duration::from_micros),
                };
                let outbox = admit(shared, conn_id, tag, request, &writer);
                deliver(outbox);
            }
            Ok(Some(Frame::StatsRequest)) => {
                let stats = {
                    let state = shared.state.lock().expect("server state");
                    shared.build_stats(&state)
                };
                let mut w = writer.lock().expect("conn writer");
                let _ = write_frame(&mut *w, &Frame::StatsResponse(stats));
            }
            Ok(Some(_)) => {
                // Server→client frames (or a second Hello) arriving at
                // the server are a protocol violation.
                send_error(&writer, "unexpected server-to-client frame");
                break;
            }
            Err(e) if is_read_timeout(&e) => {
                shared
                    .state
                    .lock()
                    .expect("server state")
                    .metrics
                    .reaped_timeout += 1;
                send_error(&writer, "read timed out; connection reaped");
                break;
            }
            Err(e) => {
                send_error(&writer, &format!("protocol error: {e}"));
                break;
            }
        }
    }
    let _ = reader.shutdown(Shutdown::Both);
    shared
        .state
        .lock()
        .expect("server state")
        .conns
        .remove(&conn_id);
}

fn send_error(writer: &ConnWriter, message: &str) {
    let mut w = writer.lock().expect("conn writer");
    let _ = write_frame(
        &mut *w,
        &Frame::Error {
            message: message.to_string(),
        },
    );
}

/// The three admission gates (token bucket, in-flight cap, bounded shard
/// queue), then completion routing for whatever the submit flushed.
fn admit(
    shared: &Arc<Shared>,
    conn_id: u64,
    tag: u64,
    request: FactorizeRequest,
    writer: &ConnWriter,
) -> Outbox {
    let mut outbox = Outbox::new();
    let mut state = shared.state.lock().expect("server state");

    let quota = shared.config.quota_for(&request.tenant);
    let now = Instant::now();
    let bucket = state
        .quota
        .entry(request.tenant.clone())
        .or_insert_with(|| QuotaState {
            tokens: quota.burst,
            last_refill: now,
            in_flight: 0,
        });
    if let Some(rate) = quota.rate {
        let dt = now.duration_since(bucket.last_refill).as_secs_f64();
        bucket.tokens = (bucket.tokens + dt * rate).min(quota.burst);
        bucket.last_refill = now;
        if bucket.tokens < 1.0 {
            return shed(state, tag, ShedReason::RateLimited, writer, outbox);
        }
    }
    if bucket.in_flight >= quota.max_in_flight {
        return shed(state, tag, ShedReason::InFlightLimit, writer, outbox);
    }

    let tenant = request.tenant.clone();
    match state.service.try_admit(request) {
        Ok(admission) => {
            let bucket = state.quota.get_mut(&tenant).expect("bucket exists");
            if quota.rate.is_some() {
                bucket.tokens -= 1.0;
            }
            bucket.in_flight += 1;
            state.routes.insert(admission.id.0, (conn_id, tag));
            state.metrics.accepted += 1;
            if admission.batch_ready {
                if let Some(batch) = state.service.take_batch(admission.shard, FlushReason::Size) {
                    enqueue_batch(shared, &mut state, batch);
                }
            }
        }
        Err(SubmitError::AtCapacity { .. }) => {
            return shed(state, tag, ShedReason::QueueFull, writer, outbox);
        }
        Err(SubmitError::UnknownBackend { .. }) => {
            return shed(state, tag, ShedReason::UnknownBackend, writer, outbox);
        }
    }
    Shared::collect_expired(&mut state, &mut outbox);
    Shared::collect_completed(&mut state, &mut outbox);
    outbox
}

/// Records a shed and queues the shed frame (still under the lock; the
/// caller delivers after release).
fn shed(
    mut state: std::sync::MutexGuard<'_, State>,
    tag: u64,
    reason: ShedReason,
    writer: &ConnWriter,
    mut outbox: Outbox,
) -> Outbox {
    let idx = ShedReason::ALL
        .iter()
        .position(|&r| r == reason)
        .expect("reason in ALL");
    state.metrics.shed[idx] += 1;
    // The admission attempt may have expired queued deadlines, and a
    // shard flush may have completed requests, even when this one shed.
    Shared::collect_expired(&mut state, &mut outbox);
    Shared::collect_completed(&mut state, &mut outbox);
    drop(state);
    outbox.push((writer.clone(), Frame::Shed { tag, reason }.encode()));
    outbox
}

impl ServerHandle {
    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the wire-level stats frame, for callers
    /// holding the handle (tests, harnesses) rather than a socket.
    pub fn stats(&self) -> WireStats {
        let state = self.shared.state.lock().expect("server state");
        self.shared.build_stats(&state)
    }

    /// Stops the server: drains every shard, delivers pending
    /// completions, closes all connections, joins all threads, and
    /// returns the service — trace intact — for replay or inspection.
    pub fn shutdown(self) -> FactorizationService {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept_join.join();

        // Hand every still-queued batch to the solver threads and drop
        // the sender so the channel disconnects; the solvers drain what
        // is buffered, complete it, and deliver before exiting. With no
        // solver threads the batches solve inline here.
        {
            let mut state = self.shared.state.lock().expect("server state");
            let batches = state.service.take_all();
            let tx = self.shared.job_tx.lock().expect("job sender").take();
            match tx {
                Some(tx) => {
                    for batch in batches {
                        if let Err(returned) = tx.send(batch) {
                            state.service.solve_and_complete(returned.0);
                        }
                    }
                }
                None => {
                    for batch in batches {
                        state.service.solve_and_complete(batch);
                    }
                }
            }
        }
        for handle in self.solver_joins {
            let _ = handle.join();
        }

        // Final sweep: anything the solvers completed but did not route,
        // plus deadline expiries, delivered before sockets close so
        // well-behaved clients see every accepted request answered.
        let mut outbox = Outbox::new();
        {
            let mut state = self.shared.state.lock().expect("server state");
            state.service.flush_all();
            Shared::collect_expired(&mut state, &mut outbox);
            Shared::collect_completed(&mut state, &mut outbox);
        }
        deliver(outbox);

        // Close every connection; reader threads unblock and exit.
        {
            let state = self.shared.state.lock().expect("server state");
            for writer in state.conns.values() {
                if let Ok(stream) = writer.lock() {
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
        }
        let joins = std::mem::take(&mut *self.conn_joins.lock().expect("join registry"));
        for handle in joins {
            let _ = handle.join();
        }
        let _ = self.pump_join.join();

        let shared = Arc::try_unwrap(self.shared)
            .unwrap_or_else(|_| panic!("server threads still hold state"));
        shared.state.into_inner().expect("server state").service
    }
}

// ─── Client ─────────────────────────────────────────────────────────────

/// A blocking client for the serving wire protocol: connect, stream
/// requests with caller-chosen tags, receive completions (possibly out of
/// submission order), and poll the `STATS` endpoint.
///
/// The client reads directly from the socket (no internal buffering
/// beyond frame reassembly), so [`ServeClient::try_clone`] safely splits
/// it into a sender and a receiver half for open-loop traffic.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
    pending: VecDeque<Frame>,
}

impl ServeClient {
    /// Connects to a serving front-end and completes the version
    /// handshake. A server speaking a different protocol version yields
    /// a typed [`WireError::VersionMismatch`] instead of decoding
    /// garbage later.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Self {
            stream,
            pending: VecDeque::new(),
        };
        client.send(&Frame::Hello {
            version: PROTOCOL_VERSION,
        })?;
        match read_frame(&mut client.stream)? {
            Some(Frame::HelloAck { version }) if version == PROTOCOL_VERSION => Ok(client),
            Some(Frame::HelloAck { version }) => Err(WireError::VersionMismatch {
                got: version,
                expected: PROTOCOL_VERSION,
            }),
            Some(_) => Err(WireError::Malformed("expected hello ack")),
            None => Err(WireError::Truncated),
        }
    }

    /// A second handle on the same connection (shared socket) — one half
    /// sends while the other receives.
    pub fn try_clone(&self) -> std::io::Result<Self> {
        Ok(Self {
            stream: self.stream.try_clone()?,
            pending: VecDeque::new(),
        })
    }

    /// Sends one frame.
    pub fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
        write_frame(&mut self.stream, frame)
    }

    /// Submits a factorization request under `tag`.
    pub fn send_request(&mut self, tag: u64, request: &FactorizeRequest) -> Result<(), WireError> {
        self.send(&request_frame(tag, request))
    }

    /// Receives the next frame (`None` on clean server close). Frames
    /// buffered by [`ServeClient::stats`] are yielded first.
    pub fn recv(&mut self) -> Result<Option<Frame>, WireError> {
        if let Some(frame) = self.pending.pop_front() {
            return Ok(Some(frame));
        }
        read_frame(&mut self.stream)
    }

    /// Round-trips a `STATS` request. Response/shed frames arriving
    /// before the stats answer are buffered for later
    /// [`ServeClient::recv`] calls.
    pub fn stats(&mut self) -> Result<WireStats, WireError> {
        self.send(&Frame::StatsRequest)?;
        loop {
            match read_frame(&mut self.stream)? {
                Some(Frame::StatsResponse(stats)) => return Ok(stats),
                Some(other) => self.pending.push_back(other),
                None => return Err(WireError::Truncated),
            }
        }
    }

    /// Closes the write half; the server finishes in-flight work and the
    /// read half keeps yielding frames until the server closes.
    pub fn finish_sending(&self) -> std::io::Result<()> {
        self.stream.shutdown(Shutdown::Write)
    }
}

/// Builds the wire frame for a service request under `tag`.
pub fn request_frame(tag: u64, request: &FactorizeRequest) -> Frame {
    Frame::Request {
        tag,
        tenant: request.tenant.clone(),
        backend: request.backend,
        query: request.query.clone(),
        truth: request
            .truth
            .as_ref()
            .map(|t| t.iter().map(|&i| i as u32).collect()),
        deadline_us: request.deadline.map(|d| d.as_micros() as u64),
    }
}

/// Convenience for tests and examples: a query request with no ground
/// truth over an explicit vector.
pub fn raw_request(tenant: &str, backend: BackendKind, query: BipolarVector) -> FactorizeRequest {
    FactorizeRequest {
        tenant: tenant.to_string(),
        backend,
        query,
        truth: None,
        deadline: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::ProblemSpec;

    fn ring_with(samples: &[f64]) -> LatencyRing {
        let mut ring = LatencyRing::new(1 << 16);
        for &s in samples {
            ring.record(s);
        }
        ring
    }

    #[test]
    fn percentiles_pin_nearest_rank_for_small_and_large_reservoirs() {
        // Size 0: all zeros, no panic.
        assert_eq!(ring_with(&[]).percentiles_ms(), (0.0, 0.0, 0.0, 0.0));
        // Size 1: every percentile is the single sample.
        assert_eq!(
            ring_with(&[5.0]).percentiles_ms(),
            (5_000.0, 5_000.0, 5_000.0, 5_000.0)
        );
        // Size 2: nearest rank puts p50 on the first sample (rank
        // ceil(0.5·2) = 1) and everything above on the second.
        assert_eq!(
            ring_with(&[2.0, 1.0]).percentiles_ms(),
            (1_000.0, 2_000.0, 2_000.0, 2_000.0)
        );
        // Size 1000, samples 1..=1000 seconds: p99.9 is rank 999 (the
        // 999th order statistic), NOT the maximum — the float
        // formulation returned 1000 here because 99.9/100 rounds above
        // 0.999 and `ceil` overshot the rank.
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        assert_eq!(
            ring_with(&samples).percentiles_ms(),
            (500_000.0, 950_000.0, 990_000.0, 999_000.0)
        );
    }

    #[test]
    fn non_finite_latency_samples_clamp_instead_of_poisoning_stats() {
        // A NaN sample panicked the old `partial_cmp(..).expect(..)`
        // sort, poisoning the state mutex behind the STATS path.
        let ring = ring_with(&[0.5, f64::NAN, f64::NEG_INFINITY, f64::INFINITY]);
        let (p50, _, _, p999) = ring.percentiles_ms();
        assert!(p50.is_finite());
        assert_eq!(ring.observed, 4);
        // NaN and -inf clamp to zero, +inf to the largest finite value.
        assert_eq!(p50, 0.0);
        assert_eq!(p999, f64::MAX * 1e3);
    }

    #[test]
    fn completion_and_shed_of_one_request_release_one_slot() {
        let service = FactorizationService::builder()
            .spec(ProblemSpec::new(2, 8, 256))
            .backends(&[(BackendKind::Baseline, 1)])
            .seed(3)
            .max_iters(100)
            .build();
        let mut state = State {
            service,
            routes: HashMap::new(),
            conns: HashMap::new(),
            quota: HashMap::new(),
            metrics: Metrics {
                latency: LatencyRing::new(16),
                accepted: 0,
                completed: 0,
                shed: [0; 5],
                reaped_timeout: 0,
                version_rejected: 0,
                conn_rejected: 0,
                accounting_anomalies: 0,
            },
        };
        // One admitted request: route held, one slot in flight.
        state.routes.insert(7, (0, 42));
        state.quota.insert(
            "t".to_string(),
            QuotaState {
                tokens: 1.0,
                last_refill: Instant::now(),
                in_flight: 1,
            },
        );
        // First release (the completion) wins the route and frees the
        // slot.
        assert_eq!(state.release_slot("t", 7), Some((0, 42)));
        assert_eq!(state.quota["t"].in_flight, 0);
        assert_eq!(state.metrics.accounting_anomalies, 0);
        // A duplicated event for the same id (completion + shed racing)
        // finds no route: nothing is decremented — the old saturating
        // arithmetic would have silently absorbed this, letting the
        // tenant exceed its in-flight cap — and the anomaly is counted.
        assert_eq!(state.release_slot("t", 7), None);
        assert_eq!(state.quota["t"].in_flight, 0);
        assert_eq!(state.metrics.accounting_anomalies, 1);
    }
}
