//! The unified engine abstraction: every factorization engine in the
//! workspace — device-accurate hardware simulations and algorithm-level
//! software models alike — is drivable through one object-safe trait.
//!
//! [`Backend`] is a superset of `resonator::engine::Factorizer` (which it
//! keeps as a supertrait so kernel-level code keeps working): on top of
//! `factorize`/`factorize_query` it adds engine identification
//! ([`Backend::name`]), capability discovery ([`Backend::capabilities`]),
//! batched solving ([`Backend::factorize_batch`]) and uniform run
//! reporting ([`Backend::last_run_stats`] returning a common
//! [`RunReport`]).
//!
//! Code rarely calls a `Backend` directly: `Session` drives one per
//! configured [`BackendKind`](crate::session::BackendKind), and the
//! [`Workload`](crate::workload::Workload) layer routes whole experiments
//! through it — anything implementing this trait automatically serves
//! every workload, batched and threaded.
//!
//! The six engines implementing it:
//!
//! | backend | substrate | stochastic | cost model |
//! |---|---|---|---|
//! | [`H3dFact`] | 3-tier RRAM CIM | yes | full (energy+latency) |
//! | [`Hybrid2dEngine`] | monolithic 2D RRAM CIM | yes | full |
//! | [`Sram2dEngine`] | digital SRAM CIM | no | full |
//! | [`PcmEngine`] | two-die PCM CIM | yes | full (package links) |
//! | [`BaselineResonator`] | software | no | none |
//! | [`StochasticResonator`] | software | yes | none |

use cim::energy::EnergyLedger;
use h3dfact_core::{H3dFact, Hybrid2dEngine, PcmEngine, RunStats, Sram2dEngine};
use hdc::{BipolarVector, Codebook};
use resonator::batch::{run_batch, BatchItem, BatchOutcome};
use resonator::engine::{FactorizationOutcome, Factorizer};
use resonator::{BaselineResonator, SoftwareRunSummary, StochasticResonator};

/// What a backend models and how it can be driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Relies on stochastic exploration (device noise / sparse activation)
    /// rather than the deterministic baseline dynamics.
    pub stochastic: bool,
    /// Reports per-run energy through [`RunReport::energy`].
    pub energy_model: bool,
    /// Reports per-run cycles/latency through [`RunReport::cycles`] /
    /// [`RunReport::latency_s`].
    pub latency_model: bool,
    /// Has a native batch schedule that amortizes cost across a batch
    /// (otherwise `factorize_batch` is a sequential convenience).
    pub native_batch: bool,
}

/// Uniform statistics of a backend's most recent run (or batch).
///
/// Software engines have no hardware cost model, so the cost fields are
/// `None` for them; the loop-level facts are always present.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Name of the backend that produced the report.
    pub backend: &'static str,
    /// Resonator iterations executed.
    pub iterations: usize,
    /// Degenerate (all-zero activation) events.
    pub degenerate_events: usize,
    /// Total clock cycles, when the backend has a latency model.
    pub cycles: Option<u64>,
    /// Wall latency at the design clock, seconds.
    pub latency_s: Option<f64>,
    /// Energy by component, when the backend has an energy model.
    pub energy: Option<EnergyLedger>,
    /// RRAM tier activation switches (3D designs only).
    pub tier_switches: Option<u64>,
    /// ADC conversions performed (analog designs only).
    pub adc_conversions: Option<u64>,
    /// Peak SRAM buffer occupancy, bits (buffered hardware designs only).
    pub buffer_peak_bits: Option<u64>,
}

impl RunReport {
    pub(crate) fn from_hardware(backend: &'static str, stats: &RunStats) -> Self {
        Self {
            backend,
            iterations: stats.iterations,
            degenerate_events: stats.degenerate_events,
            cycles: Some(stats.cycles),
            latency_s: Some(stats.latency_s),
            energy: Some(stats.energy.clone()),
            tier_switches: Some(stats.tier_switches),
            adc_conversions: Some(stats.adc_conversions),
            buffer_peak_bits: Some(stats.buffer_peak_bits),
        }
    }

    pub(crate) fn from_software(backend: &'static str, summary: SoftwareRunSummary) -> Self {
        Self {
            backend,
            iterations: summary.iterations,
            degenerate_events: summary.degenerate_events,
            cycles: None,
            latency_s: None,
            energy: None,
            tier_switches: None,
            adc_conversions: None,
            buffer_peak_bits: None,
        }
    }

    /// Reconstructs hardware [`RunStats`] from this report (missing cost
    /// fields become zeros/empty), for batch-level roll-ups.
    fn to_run_stats(&self) -> RunStats {
        RunStats {
            iterations: self.iterations,
            cycles: self.cycles.unwrap_or(0),
            latency_s: self.latency_s.unwrap_or(0.0),
            energy: self.energy.clone().unwrap_or_default(),
            tier_switches: self.tier_switches.unwrap_or(0),
            adc_conversions: self.adc_conversions.unwrap_or(0),
            degenerate_events: self.degenerate_events,
            buffer_peak_bits: self.buffer_peak_bits.unwrap_or(0),
        }
    }

    /// Total energy in joules, when an energy model exists.
    pub fn energy_j(&self) -> Option<f64> {
        self.energy.as_ref().map(|e| e.total())
    }
}

/// An order-deterministic accumulator over [`RunReport`]s: the single
/// definition of how per-run statistics roll up into multi-run totals,
/// shared by the service layer's per-tenant and per-shard aggregation.
///
/// Cost fields stay `None` until the first report that carries them (so a
/// software backend's totals honestly report "no cost model" rather than
/// zero joules); folding must happen in a deterministic order (admission
/// order, in the service) for the floating-point sums to be reproducible.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunTotals {
    /// Reports folded in.
    pub runs: usize,
    /// Total resonator iterations.
    pub iterations: usize,
    /// Total degenerate (all-zero activation) events.
    pub degenerate_events: usize,
    /// Total clock cycles, when any report carried a latency model.
    pub cycles: Option<u64>,
    /// Total modeled latency, seconds.
    pub latency_s: Option<f64>,
    /// Runs whose report carried a latency model (the denominator of
    /// [`RunTotals::latency_per_run_s`] — a tenant may mix hardware and
    /// software shards, and software runs must not dilute the mean).
    pub latency_runs: usize,
    /// Total energy, joules.
    pub energy_j: Option<f64>,
    /// Runs whose report carried an energy model.
    pub energy_runs: usize,
}

impl RunTotals {
    /// Folds one run's report into the totals.
    pub fn fold(&mut self, report: &RunReport) {
        self.runs += 1;
        self.iterations += report.iterations;
        self.degenerate_events += report.degenerate_events;
        if let Some(c) = report.cycles {
            *self.cycles.get_or_insert(0) += c;
        }
        if let Some(l) = report.latency_s {
            *self.latency_s.get_or_insert(0.0) += l;
            self.latency_runs += 1;
        }
        if let Some(e) = report.energy_j() {
            *self.energy_j.get_or_insert(0.0) += e;
            self.energy_runs += 1;
        }
    }

    /// Mean modeled latency per latency-modeled run, seconds.
    pub fn latency_per_run_s(&self) -> Option<f64> {
        self.latency_s
            .filter(|_| self.latency_runs > 0)
            .map(|l| l / self.latency_runs as f64)
    }

    /// Mean energy per energy-modeled run, joules.
    pub fn energy_per_run_j(&self) -> Option<f64> {
        self.energy_j
            .filter(|_| self.energy_runs > 0)
            .map(|e| e / self.energy_runs as f64)
    }
}

/// One reference-borrowed query of a lockstep batch: what
/// [`Backend::factorize_lockstep`] solves per item.
pub type LockstepQuery<'a> = (&'a BipolarVector, Option<&'a [usize]>);

/// One lockstep-solved item: the outcome plus the per-run report the
/// engine would have produced for the same item via `factorize_query` —
/// bit-identical to the sequential call stream, so executors can fold
/// costs from lockstep batches exactly as they fold per-item solves.
#[derive(Debug, Clone)]
pub struct LockstepSolve {
    /// The item's factorization outcome.
    pub outcome: FactorizationOutcome,
    /// The engine's per-run report for the item, when the engine
    /// produces one.
    pub report: Option<RunReport>,
}

/// Builds the per-item [`LockstepSolve`]s a software engine's lockstep
/// batch implies: each report is exactly what `last_run_stats` would have
/// returned right after the item's sequential solve.
fn software_lockstep_solves(
    backend: &'static str,
    outcomes: Vec<FactorizationOutcome>,
) -> Vec<LockstepSolve> {
    outcomes
        .into_iter()
        .map(|outcome| LockstepSolve {
            report: Some(RunReport::from_software(
                backend,
                SoftwareRunSummary::of(&outcome),
            )),
            outcome,
        })
        .collect()
}

/// The unified, object-safe interface over every factorization engine.
///
/// Extends [`Factorizer`] (so `factorize` and `factorize_query` are
/// available on every `Box<dyn Backend>`) with identification, capability
/// discovery, batching, deterministic run-cursor control, and uniform
/// reporting. `Send` is required so engines can be dispatched to the
/// session's worker threads.
pub trait Backend: Factorizer + Send {
    /// Stable identifier of the engine (used in reports and logs).
    fn name(&self) -> &'static str;

    /// What this engine models.
    fn capabilities(&self) -> Capabilities;

    /// Statistics of the most recent `factorize*` call, in the common
    /// report format. `None` before the first run.
    fn last_run_stats(&self) -> Option<RunReport>;

    /// How many `factorize*` item solves this engine has issued. Every
    /// engine derives the seed of run `k` purely from `(engine seed, k)`,
    /// which is what makes parallel batch execution bit-identical to
    /// sequential execution.
    fn run_cursor(&self) -> u64;

    /// Repositions the run cursor: the next `factorize*` call draws the
    /// seed stream of run `cursor`. The session's parallel executor gives
    /// each batch item the cursor it would have had sequentially.
    fn seek_run(&mut self, cursor: u64);

    /// Solves `queries` as one lockstep batch when the engine has a
    /// batched stepper: item `i` is solved at run cursor
    /// `run_cursor() + i`, the cursor advances past the batch, and
    /// outcomes and reports are **bit-identical** (up to wall-clock
    /// phase times) to the equivalent sequential `factorize_query` call
    /// stream. Returns `None` (the default) when the engine has no
    /// lockstep path — the simulated hardware engines, whose kernels
    /// carry per-run device state — in which case callers fall back to
    /// per-item solving.
    fn factorize_lockstep(
        &mut self,
        codebooks: &[Codebook],
        queries: &[LockstepQuery<'_>],
    ) -> Option<Vec<LockstepSolve>> {
        let _ = (codebooks, queries);
        None
    }

    /// Factorizes every item against shared codebooks.
    ///
    /// The default implementation routes through the engine's lockstep
    /// batch path when it has one (bitwise identical to per-item calls,
    /// but matrix–matrix in the kernels), chunked at the executor's
    /// lockstep bound so batch scratch stays `O(chunk)` however large the
    /// item set is; engines without a stepper solve sequentially, and
    /// backends with a native batch schedule override the whole method to
    /// amortize hardware cost.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or shapes disagree.
    fn factorize_batch(&mut self, codebooks: &[Codebook], items: &[BatchItem]) -> BatchOutcome {
        assert!(!items.is_empty(), "batch must be non-empty");
        let mut outcomes = Vec::with_capacity(items.len());
        for chunk in items.chunks(crate::executor::LOCKSTEP_CHUNK) {
            let queries: Vec<LockstepQuery<'_>> = chunk
                .iter()
                .map(|item| (&item.query, item.truth.as_deref()))
                .collect();
            match self.factorize_lockstep(codebooks, &queries) {
                Some(solves) => outcomes.extend(solves.into_iter().map(|s| s.outcome)),
                None => {
                    // No stepper: the cursor is exactly where the solved
                    // prefix left it, so the remainder runs per-item.
                    let rest = run_batch(self, codebooks, &items[outcomes.len()..]);
                    outcomes.extend(rest.outcomes);
                    break;
                }
            }
        }
        BatchOutcome::from_outcomes(outcomes)
    }

    /// Folds per-item run reports — produced by an executor that solved a
    /// batch item-by-item at the same run cursors — into this engine's
    /// batch-level report, exactly as its native `factorize_batch` would.
    /// Returns `false` (the default) when the engine has no native batch
    /// roll-up, in which case the last item's report stands.
    fn fold_batch_reports(&mut self, per_item: &[RunReport]) -> bool {
        let _ = per_item;
        false
    }

    /// The target-level [`CostReport`](crate::target::CostReport) of the
    /// most recent run, for backends driven through a
    /// [`Target`](crate::target::Target). `None` (the default) for the
    /// direct engines, whose costs surface through [`RunReport`] only.
    fn last_cost_report(&self) -> Option<crate::target::CostReport> {
        None
    }
}

impl Backend for H3dFact {
    fn name(&self) -> &'static str {
        "h3dfact-3d"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            stochastic: true,
            energy_model: true,
            latency_model: true,
            native_batch: true,
        }
    }

    fn last_run_stats(&self) -> Option<RunReport> {
        H3dFact::last_run_stats(self).map(|s| RunReport::from_hardware(Backend::name(self), s))
    }

    fn run_cursor(&self) -> u64 {
        H3dFact::run_cursor(self)
    }

    fn seek_run(&mut self, cursor: u64) {
        H3dFact::set_run_cursor(self, cursor);
    }

    fn factorize_batch(&mut self, codebooks: &[Codebook], items: &[BatchItem]) -> BatchOutcome {
        // The SRAM-buffered batch schedule of Sec. IV-A.
        H3dFact::factorize_batch(self, codebooks, items)
    }

    fn fold_batch_reports(&mut self, per_item: &[RunReport]) -> bool {
        let stats: Vec<RunStats> = per_item.iter().map(RunReport::to_run_stats).collect();
        self.install_batch_stats(&stats);
        true
    }
}

impl Backend for Hybrid2dEngine {
    fn name(&self) -> &'static str {
        "hybrid-2d"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            stochastic: true,
            energy_model: true,
            latency_model: true,
            native_batch: false,
        }
    }

    fn last_run_stats(&self) -> Option<RunReport> {
        Hybrid2dEngine::last_run_stats(self)
            .map(|s| RunReport::from_hardware(Backend::name(self), s))
    }
    fn run_cursor(&self) -> u64 {
        Hybrid2dEngine::run_cursor(self)
    }

    fn seek_run(&mut self, cursor: u64) {
        Hybrid2dEngine::set_run_cursor(self, cursor);
    }
}

impl Backend for Sram2dEngine {
    fn name(&self) -> &'static str {
        "sram-2d"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            stochastic: false,
            energy_model: true,
            latency_model: true,
            native_batch: false,
        }
    }

    fn last_run_stats(&self) -> Option<RunReport> {
        Sram2dEngine::last_run_stats(self).map(|s| RunReport::from_hardware(Backend::name(self), s))
    }
    fn run_cursor(&self) -> u64 {
        Sram2dEngine::run_cursor(self)
    }

    fn seek_run(&mut self, cursor: u64) {
        Sram2dEngine::set_run_cursor(self, cursor);
    }
}

impl Backend for PcmEngine {
    fn name(&self) -> &'static str {
        "pcm-2die"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            stochastic: true,
            energy_model: true,
            latency_model: true,
            native_batch: false,
        }
    }

    fn last_run_stats(&self) -> Option<RunReport> {
        PcmEngine::last_run_stats(self).map(|s| RunReport::from_hardware(Backend::name(self), s))
    }
    fn run_cursor(&self) -> u64 {
        PcmEngine::run_cursor(self)
    }

    fn seek_run(&mut self, cursor: u64) {
        PcmEngine::set_run_cursor(self, cursor);
    }
}

impl Backend for BaselineResonator {
    fn name(&self) -> &'static str {
        "baseline-sw"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            stochastic: false,
            energy_model: false,
            latency_model: false,
            native_batch: false,
        }
    }

    fn last_run_stats(&self) -> Option<RunReport> {
        self.last_run_summary()
            .map(|s| RunReport::from_software(Backend::name(self), s))
    }
    fn run_cursor(&self) -> u64 {
        BaselineResonator::run_cursor(self)
    }

    fn seek_run(&mut self, cursor: u64) {
        BaselineResonator::set_run_cursor(self, cursor);
    }

    fn factorize_lockstep(
        &mut self,
        codebooks: &[Codebook],
        queries: &[LockstepQuery<'_>],
    ) -> Option<Vec<LockstepSolve>> {
        let outcomes = BaselineResonator::factorize_lockstep(self, codebooks, queries);
        Some(software_lockstep_solves(Backend::name(self), outcomes))
    }
}

impl Backend for StochasticResonator {
    fn name(&self) -> &'static str {
        "stochastic-sw"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            stochastic: true,
            energy_model: false,
            latency_model: false,
            native_batch: false,
        }
    }

    fn last_run_stats(&self) -> Option<RunReport> {
        self.last_run_summary()
            .map(|s| RunReport::from_software(Backend::name(self), s))
    }
    fn run_cursor(&self) -> u64 {
        StochasticResonator::run_cursor(self)
    }

    fn seek_run(&mut self, cursor: u64) {
        StochasticResonator::set_run_cursor(self, cursor);
    }

    fn factorize_lockstep(
        &mut self,
        codebooks: &[Codebook],
        queries: &[LockstepQuery<'_>],
    ) -> Option<Vec<LockstepSolve>> {
        let outcomes = StochasticResonator::factorize_lockstep(self, codebooks, queries);
        Some(software_lockstep_solves(Backend::name(self), outcomes))
    }
}
