//! The serving layer: a [`FactorizationService`] is the multi-tenant,
//! always-warm front door to the factorization engines — the software
//! model of the deployment shape H3DFact argues for, where one shared
//! in-memory factorizer streams perceptual queries from many users
//! instead of every caller paying codebook programming per batch.
//!
//! # Architecture
//!
//! ```text
//!  tenants ──► submit / try_submit ──► per-shard bounded queues
//!                   │                        │  (micro-batching:
//!                   │ admission:             │   flush on batch-size,
//!                   │  id + shard            │   deadline, or drain;
//!                   │  assignment            │   expired requests shed)
//!                   ▼                        ▼
//!            batch formation:         deterministic worker pool
//!            run-cursor + trace             │
//!            assignment                     ▼
//!            (replayable)          responses + per-tenant stats
//! ```
//!
//! The service owns a pool of **pre-warmed session shards** — each a
//! [`Session`] carved from one parent ([`Session::carve_shard_as`]), so
//! codebooks are generated once and shared while every shard's engine
//! stochasticity and problem stream stay disjoint. Requests are admitted
//! into bounded per-shard queues ([`FactorizationService::try_submit`]
//! rejects at capacity; [`FactorizationService::submit`] applies
//! backpressure by flushing first) and solved in **micro-batches**: a
//! shard flushes when its queue reaches the configured batch size, when
//! its oldest request exceeds the flush deadline
//! ([`FactorizationService::pump`]), or on
//! [`FactorizationService::drain`].
//!
//! # Determinism and replay
//!
//! Every accepted request is assigned its **shard** at admission
//! (round-robin within the requested backend kind) and its **run
//! cursor** at micro-batch formation, when it is appended to the service
//! trace ([`FactorizationService::trace`]). Because each engine derives
//! the seed of run `k` purely from `(engine seed, k)`, a request's
//! outcome is a pure function of the service configuration and its trace
//! entry — *not* of micro-batch boundaries, flush timing, or
//! worker-thread count. Deferring cursor assignment to formation is what
//! lets a queued request whose deadline expired be shed **without
//! consuming a cursor**: the requests actually solved keep contiguous
//! cursors and the trace records exactly what ran.
//! [`FactorizationService::replay`] re-runs any trace serially to
//! **bit-identical** outcomes, which is what makes the whole serving path
//! testable: live micro-batched multi-threaded output must equal the
//! serial replay, bit for bit.
//!
//! # Example
//!
//! ```
//! use h3dfact::prelude::*;
//!
//! let mut service = FactorizationService::builder()
//!     .spec(ProblemSpec::new(3, 8, 256))
//!     .backends(&[(BackendKind::Stochastic, 2)])
//!     .seed(7)
//!     .max_iters(500)
//!     .batch_size(4)
//!     .build();
//!
//! // A tenant streams requests drawn from the service's codebooks.
//! let mut stream = service.request_stream("tenant-a", BackendKind::Stochastic, 0);
//! for _ in 0..6 {
//!     let req = stream.next_request();
//!     service.submit(req);
//! }
//! let responses = service.drain();
//! assert_eq!(responses.len(), 6);
//!
//! // The same trace replays serially to bit-identical outcomes.
//! // (Responses come back in admission-id order, the trace in flush
//! // order, so align the replay by id before comparing.)
//! let trace = service.trace().to_vec();
//! let mut replayed = service.replay(&trace);
//! replayed.sort_by_key(|r| r.id);
//! for (live, rep) in responses.iter().zip(&replayed) {
//!     assert_eq!(live.outcome.decoded, rep.outcome.decoded);
//! }
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cim::noise::NoiseSpec;
use hdc::rng::{derive_seed, stream_rng};
use hdc::{BipolarVector, Codebook, FactorizationProblem, ProblemSpec};
use resonator::engine::FactorizationOutcome;

use crate::backend::{Backend, LockstepQuery, RunReport, RunTotals};
use crate::executor::{self, RequestSolve};
use crate::registry::{CodebookHandle, CodebookRegistry};
use crate::session::{BackendKind, Session};

/// Stream namespace for [`FactorizationService::request_stream`] problem
/// streams, mixed with the service seed through nested `derive_seed`.
const REQUEST_STREAM_NS: u64 = 0x5EED;

/// Identifier of an accepted request: its admission index. Dense and
/// monotonically increasing in admission order. (Not the index into the
/// service trace — trace entries are appended at micro-batch formation,
/// in flush order, and expired requests never get one.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// One factorization query submitted by a tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorizeRequest {
    /// The tenant submitting (stats are rolled up per tenant).
    pub tenant: String,
    /// Which engine family should serve the request.
    pub backend: BackendKind,
    /// The product vector to factorize (over the service codebooks).
    pub query: BipolarVector,
    /// Ground-truth indices, when the tenant knows them (enables solved
    /// accounting in the stats).
    pub truth: Option<Vec<usize>>,
    /// Relative deadline from admission. A request still queued when its
    /// deadline passes is shed at micro-batch formation (surfaced via
    /// [`FactorizationService::take_expired`]) without consuming a run
    /// cursor. `None` means the request waits indefinitely.
    pub deadline: Option<Duration>,
}

/// Why a submission was refused. The request is handed back so the caller
/// can retry, redirect, or drop it.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The admission-order target shard's bounded queue is full.
    AtCapacity {
        /// The refused request, returned intact.
        request: FactorizeRequest,
        /// The shard (global index) whose queue was full.
        shard: usize,
    },
    /// No shard of the requested backend kind exists in the pool.
    UnknownBackend {
        /// The refused request, returned intact.
        request: FactorizeRequest,
    },
}

impl SubmitError {
    /// Recovers the refused request.
    pub fn into_request(self) -> FactorizeRequest {
        match self {
            SubmitError::AtCapacity { request, .. } => request,
            SubmitError::UnknownBackend { request } => request,
        }
    }
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::AtCapacity { shard, request } => write!(
                f,
                "shard {shard} ({}) at capacity; request rejected",
                request.backend
            ),
            SubmitError::UnknownBackend { request } => {
                write!(f, "no {} shard in the service pool", request.backend)
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// What [`FactorizationService::try_admit`] hands back: the admission id,
/// the target shard, and whether the admission filled a micro-batch the
/// caller should now flush or hand off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// The admitted request's id.
    pub id: RequestId,
    /// Global index of the shard it was queued on.
    pub shard: usize,
    /// Whether the shard's queue reached the micro-batch size.
    pub batch_ready: bool,
}

/// One trace record: everything needed to re-solve the request
/// deterministically — the shard, the run cursor assigned at micro-batch
/// formation, and the query itself.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// The request's admission id.
    pub id: RequestId,
    /// The submitting tenant.
    pub tenant: String,
    /// The backend kind that served it.
    pub backend: BackendKind,
    /// Global index of the shard it was assigned to.
    pub shard: usize,
    /// The run cursor assigned at micro-batch formation (the engine seed
    /// stream).
    pub cursor: u64,
    /// The query.
    pub query: BipolarVector,
    /// Ground truth, when supplied.
    pub truth: Option<Vec<usize>>,
}

/// One completed request: the outcome, the engine's run report, and (in
/// live mode) the measured wall latency from submission to flush.
#[derive(Debug, Clone)]
pub struct FactorizeResponse {
    /// The request's admission id.
    pub id: RequestId,
    /// The submitting tenant.
    pub tenant: String,
    /// The backend kind that served it.
    pub backend: BackendKind,
    /// Global index of the shard that served it.
    pub shard: usize,
    /// The run cursor it was solved at.
    pub cursor: u64,
    /// The factorization outcome.
    pub outcome: FactorizationOutcome,
    /// The engine's per-run report, when the engine produces one.
    pub report: Option<RunReport>,
    /// Wall-clock seconds from submission to micro-batch completion —
    /// `None` for replayed responses (replay has no queueing).
    pub wall_latency_s: Option<f64>,
}

/// Per-tenant roll-up over every completed request, folded in admission
/// order (so the floating-point cost sums are reproducible run to run).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStats {
    /// The tenant.
    pub tenant: String,
    /// Completed requests.
    pub requests: usize,
    /// Requests whose outcome was flagged solved.
    pub solved: usize,
    /// Engine-report totals (iterations, energy, modeled latency).
    pub totals: RunTotals,
}

/// Service-level counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted (admitted to a queue).
    pub accepted: u64,
    /// Requests refused by [`FactorizationService::try_submit`].
    pub rejected: u64,
    /// Requests completed (flushed and solved).
    pub completed: u64,
    /// Micro-batches flushed.
    pub flushes: u64,
    /// Flushes triggered by a full micro-batch.
    pub flushed_by_size: u64,
    /// Flushes triggered by the deadline ([`FactorizationService::pump`]).
    pub flushed_by_deadline: u64,
    /// Flushes triggered by drain or blocking-submit backpressure.
    pub flushed_by_drain: u64,
    /// Largest micro-batch flushed.
    pub largest_batch: u64,
    /// Requests whose deadline expired while queued, shed at micro-batch
    /// formation without consuming a run cursor.
    pub expired: u64,
}

/// Point-in-time view of one shard's queue (see
/// [`FactorizationService::snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// The shard's backend kind.
    pub kind: BackendKind,
    /// Requests currently queued on the shard (bounded by the service's
    /// `queue_capacity`).
    pub queue_depth: usize,
    /// The shard's next run cursor — equivalently, how many requests
    /// have ever been solved on (or formed into a batch for) it.
    pub next_cursor: u64,
}

/// A point-in-time service snapshot: the counters of [`ServiceStats`]
/// plus per-shard queue depths — the queue-depth/shed-count view a
/// metrics endpoint or load-balancer polls, where
/// [`FactorizationService::tenant_stats`] is the per-tenant billing view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceSnapshot {
    /// Service-level counters (accepted/rejected/completed/flushes/...).
    pub stats: ServiceStats,
    /// Per-shard queue state, indexed by global shard index.
    pub shards: Vec<ShardSnapshot>,
}

impl ServiceSnapshot {
    /// Requests currently queued across all shards.
    pub fn pending(&self) -> usize {
        self.shards.iter().map(|s| s.queue_depth).sum()
    }

    /// Requests shed (refused by [`FactorizationService::try_submit`])
    /// over the service's lifetime.
    pub fn shed(&self) -> u64 {
        self.stats.rejected
    }
}

/// Why [`ServiceBuilder::try_build`] refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceBuildError {
    /// No problem shape was supplied.
    MissingSpec,
    /// The shard pool was empty.
    NoShards,
    /// `batch_size` was zero.
    ZeroBatchSize,
    /// `queue_capacity` was zero (no request could ever be admitted).
    ZeroQueueCapacity,
}

impl fmt::Display for ServiceBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceBuildError::MissingSpec => {
                write!(f, "service builder needs .spec(ProblemSpec::new(..))")
            }
            ServiceBuildError::NoShards => {
                write!(f, "service needs at least one (BackendKind, count>0) shard")
            }
            ServiceBuildError::ZeroBatchSize => write!(f, "batch_size must be at least 1"),
            ServiceBuildError::ZeroQueueCapacity => {
                write!(f, "queue_capacity must be at least 1")
            }
        }
    }
}

impl std::error::Error for ServiceBuildError {}

/// Fluent construction of a [`FactorizationService`].
#[derive(Debug, Clone)]
pub struct ServiceBuilder {
    spec: Option<ProblemSpec>,
    seed: u64,
    max_iters: usize,
    adc_bits: Option<u8>,
    noise: Option<NoiseSpec>,
    threads: usize,
    batch_size: usize,
    flush_deadline: Duration,
    queue_capacity: usize,
    shards: Vec<(BackendKind, usize)>,
    target: Option<crate::target::TargetKind>,
    registry: Option<Arc<CodebookRegistry>>,
}

impl Default for ServiceBuilder {
    fn default() -> Self {
        Self {
            spec: None,
            seed: 0,
            max_iters: 2_000,
            adc_bits: None,
            noise: None,
            threads: 1,
            batch_size: 8,
            flush_deadline: Duration::from_millis(2),
            queue_capacity: 64,
            shards: vec![(BackendKind::H3dFact, 1)],
            target: None,
            registry: None,
        }
    }
}

impl ServiceBuilder {
    /// The problem shape every shard is provisioned for (required).
    pub fn spec(mut self, spec: ProblemSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Master seed for codebooks and every shard's seed lineage
    /// (default: 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Iteration budget per request (default: 2000).
    pub fn max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// ADC resolution override for the analog hardware backends.
    pub fn adc_bits(mut self, bits: u8) -> Self {
        self.adc_bits = Some(bits);
        self
    }

    /// Device-noise override for the analog hardware backends.
    pub fn noise(mut self, noise: NoiseSpec) -> Self {
        self.noise = Some(noise);
        self
    }

    /// Worker threads for micro-batch solving (default 1; `0` = all
    /// cores). Thread count never changes outcomes, only wall time.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Micro-batch size: a shard flushes as soon as its queue holds this
    /// many requests (default: 8).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Deadline-based flush: [`FactorizationService::pump`] flushes any
    /// shard whose oldest queued request is at least this old
    /// (default: 2 ms).
    pub fn flush_deadline(mut self, deadline: Duration) -> Self {
        self.flush_deadline = deadline;
        self
    }

    /// Bounded per-shard queue capacity, the backpressure limit of
    /// [`FactorizationService::try_submit`] (default: 64). A capacity
    /// below `batch_size` is valid: size-based auto-flush then never
    /// triggers and the shard batches purely by deadline, drain, or
    /// blocking-submit backpressure.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// The shard pool: for each `(kind, count)` pair, `count` pre-warmed
    /// shards of that backend kind (replaces the default pool).
    pub fn backends(mut self, shards: &[(BackendKind, usize)]) -> Self {
        self.shards = shards.to_vec();
        self
    }

    /// Execution target every shard routes its kernels through (default:
    /// the engines' direct path). With
    /// [`TargetKind::Functional`](crate::target::TargetKind::Functional)
    /// outcomes and traces are bit-identical to the direct path, so a
    /// trace captured on one target replays on any functionally
    /// equivalent one — the cross-target equivalence contract.
    pub fn target(mut self, target: crate::target::TargetKind) -> Self {
        self.target = Some(target);
        self
    }

    /// Codebook registry the parent session interns its codebooks in
    /// (default: the process-wide
    /// [`CodebookRegistry::global`](crate::registry::CodebookRegistry::global)).
    /// Services at the same seed/spec resolve to one shared allocation
    /// through the registry; pass a private registry in tests/benches
    /// that measure footprint or tier behavior in isolation.
    pub fn registry(mut self, registry: Arc<CodebookRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Builds the service: generates the shared codebooks once, then
    /// carves and warms every shard.
    pub fn try_build(self) -> Result<FactorizationService, ServiceBuildError> {
        let spec = self.spec.ok_or(ServiceBuildError::MissingSpec)?;
        if self.batch_size == 0 {
            return Err(ServiceBuildError::ZeroBatchSize);
        }
        if self.queue_capacity == 0 {
            return Err(ServiceBuildError::ZeroQueueCapacity);
        }
        let counts: usize = self.shards.iter().map(|&(_, n)| n).sum();
        if counts == 0 {
            return Err(ServiceBuildError::NoShards);
        }
        // The parent session pays codebook generation exactly once; every
        // shard is carved from it with a disjoint seed lineage. The
        // parent's own backend kind is irrelevant — a cheap software
        // engine keeps warm-up fast.
        let mut parent = Session::builder()
            .spec(spec)
            .backend(BackendKind::Baseline)
            .seed(self.seed)
            .max_iters(self.max_iters)
            .threads(self.threads);
        if let Some(bits) = self.adc_bits {
            parent = parent.adc_bits(bits);
        }
        if let Some(n) = self.noise {
            parent = parent.noise(n);
        }
        if let Some(t) = self.target {
            parent = parent.target(t);
        }
        if let Some(r) = self.registry {
            parent = parent.registry(r);
        }
        let mut parent = parent.build();
        let mut shards = Vec::with_capacity(counts);
        let mut by_kind: BTreeMap<&'static str, Vec<usize>> = BTreeMap::new();
        for &(kind, count) in &self.shards {
            for _ in 0..count {
                by_kind.entry(kind.name()).or_default().push(shards.len());
                shards.push(Shard {
                    kind,
                    session: parent.carve_shard_as(kind),
                    next_cursor: 0,
                    pending: Vec::new(),
                });
            }
        }
        Ok(FactorizationService {
            spec,
            seed: self.seed,
            threads: self.threads,
            batch_size: self.batch_size,
            flush_deadline: self.flush_deadline,
            queue_capacity: self.queue_capacity,
            parent,
            shards,
            by_kind,
            assigned: BTreeMap::new(),
            next_id: 0,
            trace: Vec::new(),
            completed: BTreeMap::new(),
            expired: Vec::new(),
            ledger: Vec::new(),
            stats: ServiceStats::default(),
        })
    }

    /// Builds the service.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid; use
    /// [`ServiceBuilder::try_build`] for a `Result`.
    pub fn build(self) -> FactorizationService {
        match self.try_build() {
            Ok(service) => service,
            Err(e) => panic!("invalid service: {e}"),
        }
    }
}

/// A queued, admitted request awaiting its micro-batch. The request
/// payload is owned here until batch formation moves it into the trace.
struct QueuedRequest {
    id: RequestId,
    request: FactorizeRequest,
    submitted: Instant,
    /// Absolute expiry (admission + request deadline), when set.
    expires: Option<Instant>,
}

/// One pre-warmed serving shard: a carved [`Session`] (shared codebooks,
/// disjoint seed lineage) plus its bounded micro-batch queue.
struct Shard {
    kind: BackendKind,
    session: Session,
    /// Next engine run cursor to assign at micro-batch formation.
    next_cursor: u64,
    pending: Vec<QueuedRequest>,
}

impl Shard {
    fn oldest(&self) -> Option<Instant> {
        self.pending.first().map(|q| q.submitted)
    }
}

/// Why a micro-batch was flushed (counted in [`ServiceStats`]).
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The queue reached the configured micro-batch size.
    Size,
    /// The oldest queued request aged past the flush deadline.
    Deadline,
    /// An explicit drain / backpressure flush.
    Drain,
}

/// A queued request whose deadline expired before it was formed into a
/// micro-batch. It consumed no run cursor and has no trace entry; the
/// caller (e.g. the network server) sheds it back to the tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpiredRequest {
    /// The request's admission id.
    pub id: RequestId,
    /// The submitting tenant.
    pub tenant: String,
}

/// One micro-batch entry, self-contained for off-lock solving.
struct BatchEntry {
    id: RequestId,
    /// Index of this request's [`TraceEntry`].
    trace_idx: usize,
    cursor: u64,
    query: BipolarVector,
    truth: Option<Vec<usize>>,
    submitted: Instant,
}

/// A formed micro-batch, detached from the service so it can be solved
/// **off the admission lock** (on a dedicated solver thread) and
/// completed later via [`FactorizationService::complete_batch`]. Cursors
/// and trace entries were assigned at formation, so the batch is
/// self-contained: solving it needs only an engine for its shard plus
/// the shared codebooks, and its entries' cursors are contiguous by
/// construction.
pub struct PreparedBatch {
    shard: usize,
    entries: Vec<BatchEntry>,
}

/// A solved micro-batch, ready for
/// [`FactorizationService::complete_batch`].
pub struct SolvedBatch {
    batch: PreparedBatch,
    solves: Vec<executor::IndexedSolve>,
}

impl PreparedBatch {
    /// Global index of the shard this batch belongs to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the batch is empty (never true for batches returned by the
    /// service; formation skips empty queues).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Solves the batch on `engine` (which must be a fresh-or-warmed
    /// engine of this batch's shard) against the shared codebooks,
    /// chunked through the engine's lockstep stepper when it has one.
    /// Entry cursors are contiguous by formation, so one seek per chunk
    /// suffices; outcomes are bit-identical to a serial per-item pass.
    pub fn solve_with(self, engine: &mut dyn Backend, codebooks: &[Codebook]) -> SolvedBatch {
        let mut solves = Vec::with_capacity(self.entries.len());
        for chunk in self.entries.chunks(executor::LOCKSTEP_CHUNK) {
            engine.seek_run(chunk[0].cursor);
            let queries: Vec<LockstepQuery<'_>> = chunk
                .iter()
                .map(|e| (&e.query, e.truth.as_deref()))
                .collect();
            match engine.factorize_lockstep(codebooks, &queries) {
                Some(batch) => solves.extend(batch.into_iter().map(|s| executor::IndexedSolve {
                    outcome: s.outcome,
                    report: s.report,
                })),
                None => solves.extend(chunk.iter().map(|e| {
                    engine.seek_run(e.cursor);
                    let outcome = engine.factorize_query(codebooks, &e.query, e.truth.as_deref());
                    let report = engine.last_run_stats();
                    executor::IndexedSolve { outcome, report }
                })),
            }
        }
        SolvedBatch {
            batch: self,
            solves,
        }
    }
}

/// A multi-tenant factorization service over a pool of pre-warmed session
/// shards. See the [module docs](self) for architecture, the determinism
/// contract, and a round-trip example.
pub struct FactorizationService {
    spec: ProblemSpec,
    seed: u64,
    threads: usize,
    batch_size: usize,
    flush_deadline: Duration,
    queue_capacity: usize,
    /// The codebook owner every shard was carved from.
    parent: Session,
    shards: Vec<Shard>,
    /// Global shard indices per backend kind, fixed at build time (the
    /// round-robin tables of [`FactorizationService::target_shard`]).
    by_kind: BTreeMap<&'static str, Vec<usize>>,
    /// Per-kind admission counters driving round-robin shard assignment.
    assigned: BTreeMap<&'static str, u64>,
    /// Next admission id to issue.
    next_id: u64,
    /// The trace: one entry per request formed into a micro-batch, in
    /// flush order.
    trace: Vec<TraceEntry>,
    /// Completed responses awaiting [`FactorizationService::take_responses`].
    completed: BTreeMap<u64, FactorizeResponse>,
    /// Deadline-expired requests awaiting
    /// [`FactorizationService::take_expired`].
    expired: Vec<ExpiredRequest>,
    /// Immutable per-request completion facts `(solved, report)` indexed
    /// like the trace, kept after responses are taken so
    /// [`FactorizationService::tenant_stats`] can always fold in trace
    /// order. `None` until the request completes.
    ledger: Vec<Option<(bool, Option<RunReport>)>>,
    stats: ServiceStats,
}

impl FactorizationService {
    /// Starts building a service.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::default()
    }

    /// The problem shape every shard serves.
    pub fn spec(&self) -> ProblemSpec {
        self.spec
    }

    /// The shared codebooks (generated once, served by every shard).
    pub fn codebooks(&self) -> &[Codebook] {
        self.parent.codebooks()
    }

    /// Number of shards in the pool.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The backend kind of shard `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= shard_count()`.
    pub fn shard_kind(&self, i: usize) -> BackendKind {
        self.shards[i].kind
    }

    /// Requests currently queued across all shards.
    pub fn pending(&self) -> usize {
        self.shards.iter().map(|s| s.pending.len()).sum()
    }

    /// Service-level counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// Requests shed (refused by [`FactorizationService::try_submit`]).
    pub fn shed_count(&self) -> u64 {
        self.stats.rejected
    }

    /// A point-in-time snapshot of the counters and every shard's queue
    /// depth — what a metrics endpoint or load-balancer polls.
    pub fn snapshot(&self) -> ServiceSnapshot {
        ServiceSnapshot {
            stats: self.stats,
            shards: self
                .shards
                .iter()
                .map(|s| ShardSnapshot {
                    kind: s.kind,
                    queue_depth: s.pending.len(),
                    next_cursor: s.next_cursor,
                })
                .collect(),
        }
    }

    /// The master seed the service was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured micro-batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// The bounded per-shard queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// The deadline [`FactorizationService::pump`] flushes against.
    pub fn flush_deadline(&self) -> Duration {
        self.flush_deadline
    }

    /// The trace so far: one entry per request formed into a micro-batch,
    /// in flush order (ids inside one shard's batch are ascending, but
    /// the global order interleaves shards by flush timing; expired
    /// requests never appear).
    ///
    /// The trace (and the per-request stats ledger behind
    /// [`FactorizationService::tenant_stats`]) grows for the service's
    /// lifetime — it *is* the replay contract, and queued requests are
    /// solved out of it, so it cannot be truncated while requests are in
    /// flight. Memory is one query vector plus a few words per accepted
    /// request; a deployment serving unbounded traffic would checkpoint
    /// and rotate traces at quiesce points (a future scaling PR — the
    /// determinism contract is already cut to allow it: any drained
    /// prefix can be dropped without affecting later outcomes).
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// A deterministic, cursor-seeded stream of requests over the
    /// service's codebooks for `tenant` on `kind` — the standard way to
    /// drive the service with fresh problems. Streams with different
    /// `stream` ids are disjoint; the same `(service seed, stream)` pair
    /// always produces the same request sequence.
    pub fn request_stream(&self, tenant: &str, kind: BackendKind, stream: u64) -> RequestStream {
        RequestStream {
            tenant: tenant.to_string(),
            kind,
            codebooks: self.parent.codebooks_shared(),
            master: derive_seed(derive_seed(self.seed, REQUEST_STREAM_NS), stream),
            cursor: 0,
        }
    }

    /// The admission-order round-robin target shard for `kind`, or `None`
    /// when the pool has no shard of that kind.
    fn target_shard(&self, kind: BackendKind) -> Option<usize> {
        let of_kind = self.by_kind.get(kind.name())?;
        let count = *self.assigned.get(kind.name()).unwrap_or(&0);
        Some(of_kind[(count % of_kind.len() as u64) as usize])
    }

    /// Admits a request into its target shard's bounded queue **without
    /// flushing**, rejecting when the queue is full. Returns the
    /// admission facts; when `batch_ready` is set the shard holds a full
    /// micro-batch and the caller decides where it solves — inline via
    /// [`FactorizationService::take_batch`] +
    /// [`FactorizationService::solve_and_complete`], or handed off to a
    /// solver thread so admission never runs a solve. Rejection leaves
    /// every cursor,
    /// queue, and counter exactly as it was (apart from the rejection
    /// counter), so a refused request can be retried later with no trace
    /// of the attempt.
    pub fn try_admit(&mut self, request: FactorizeRequest) -> Result<Admission, SubmitError> {
        let Some(shard_idx) = self.target_shard(request.backend) else {
            self.stats.rejected += 1;
            return Err(SubmitError::UnknownBackend { request });
        };
        // Expired stragglers must not hold queue capacity against a live
        // admission.
        self.sweep_shard_expired(shard_idx, Instant::now());
        if self.shards[shard_idx].pending.len() >= self.queue_capacity {
            self.stats.rejected += 1;
            return Err(SubmitError::AtCapacity {
                request,
                shard: shard_idx,
            });
        }
        let id = RequestId(self.next_id);
        self.next_id += 1;
        *self.assigned.entry(request.backend.name()).or_insert(0) += 1;
        let submitted = Instant::now();
        let expires = request.deadline.map(|d| submitted + d);
        let shard = &mut self.shards[shard_idx];
        shard.pending.push(QueuedRequest {
            id,
            request,
            submitted,
            expires,
        });
        self.stats.accepted += 1;
        Ok(Admission {
            id,
            shard: shard_idx,
            batch_ready: self.shards[shard_idx].pending.len() >= self.batch_size,
        })
    }

    /// Admits a request, rejecting instead of blocking when the target
    /// shard's bounded queue is full, and flushing inline when the
    /// admission fills a micro-batch (the in-process serving loop; the
    /// network server uses [`FactorizationService::try_admit`] and hands
    /// full batches to solver threads instead).
    pub fn try_submit(&mut self, request: FactorizeRequest) -> Result<RequestId, SubmitError> {
        let admission = self.try_admit(request)?;
        if admission.batch_ready {
            self.flush_shard(admission.shard, FlushReason::Size);
        }
        Ok(admission.id)
    }

    /// Admits a request, applying backpressure instead of rejecting: when
    /// the target shard is full, its queue is flushed (the submitting
    /// caller does the work) before the request is admitted.
    ///
    /// # Panics
    ///
    /// Panics if the pool has no shard of the request's backend kind.
    pub fn submit(&mut self, request: FactorizeRequest) -> RequestId {
        match self.try_submit(request) {
            Ok(id) => id,
            Err(SubmitError::AtCapacity { request, shard }) => {
                // Undo the rejection accounting: this path serves the
                // request rather than refusing it.
                self.stats.rejected -= 1;
                self.flush_shard(shard, FlushReason::Drain);
                self.try_submit(request)
                    .expect("flushed shard accepts the retried request")
            }
            Err(e @ SubmitError::UnknownBackend { .. }) => panic!("{e}"),
        }
    }

    /// Deadline sweep: sheds expired requests, then flushes every shard
    /// whose oldest queued request is at least `flush_deadline` old.
    /// Returns the number of requests flushed. Call this from the serving
    /// loop between submissions; it never changes outcomes, only when
    /// they materialize.
    pub fn pump(&mut self) -> usize {
        let now = Instant::now();
        let mut flushed = 0;
        for i in 0..self.shards.len() {
            self.sweep_shard_expired(i, now);
            if let Some(oldest) = self.shards[i].oldest() {
                if now.duration_since(oldest) >= self.flush_deadline {
                    flushed += self.flush_shard(i, FlushReason::Deadline);
                }
            }
        }
        flushed
    }

    /// The handoff variant of [`FactorizationService::pump`]: sheds
    /// expired requests and **forms** (without solving) a micro-batch for
    /// every shard whose oldest queued request is at least
    /// `flush_deadline` old as of `now`. The caller dispatches the
    /// batches to solver threads and completes them with
    /// [`FactorizationService::complete_batch`].
    pub fn take_due(&mut self, now: Instant) -> Vec<PreparedBatch> {
        let mut due = Vec::new();
        for i in 0..self.shards.len() {
            self.sweep_shard_expired(i, now);
            if let Some(oldest) = self.shards[i].oldest() {
                if now.duration_since(oldest) >= self.flush_deadline {
                    due.extend(self.take_batch(i, FlushReason::Deadline));
                }
            }
        }
        due
    }

    /// Forms (without solving) a micro-batch for every non-empty shard
    /// queue — the handoff variant of [`FactorizationService::flush_all`],
    /// used by the network server's shutdown path to push all remaining
    /// work to its solver threads in one critical section.
    pub fn take_all(&mut self) -> Vec<PreparedBatch> {
        (0..self.shards.len())
            .filter_map(|i| self.take_batch(i, FlushReason::Drain))
            .collect()
    }

    /// Flushes every shard's queue without taking the completed
    /// responses (they stay staged for
    /// [`FactorizationService::take_responses`]). Returns the number of
    /// requests flushed. This is the quiesce primitive the network
    /// server's shutdown path uses: it completes all queued work while
    /// leaving responses in place for completion routing.
    pub fn flush_all(&mut self) -> usize {
        (0..self.shards.len())
            .map(|i| self.flush_shard(i, FlushReason::Drain))
            .sum()
    }

    /// Flushes every shard's queue, then returns (and removes) all
    /// completed responses in admission order.
    pub fn drain(&mut self) -> Vec<FactorizeResponse> {
        self.flush_all();
        self.take_responses()
    }

    /// Returns (and removes) all completed responses so far, in admission
    /// order. Completion facts stay in the stats ledger.
    pub fn take_responses(&mut self) -> Vec<FactorizeResponse> {
        std::mem::take(&mut self.completed).into_values().collect()
    }

    /// Returns (and removes) every request shed because its deadline
    /// expired while queued, in expiry-sweep order. Expired requests
    /// consumed no run cursor and have no trace entry.
    pub fn take_expired(&mut self) -> Vec<ExpiredRequest> {
        std::mem::take(&mut self.expired)
    }

    /// Per-tenant roll-ups over every **completed** request, folded in
    /// admission order (deterministic regardless of flush timing), sorted
    /// by tenant name.
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        let mut by_tenant: BTreeMap<&str, TenantStats> = BTreeMap::new();
        for (entry, fact) in self.trace.iter().zip(&self.ledger) {
            let Some((solved, report)) = fact else {
                continue;
            };
            let stats = by_tenant
                .entry(entry.tenant.as_str())
                .or_insert_with(|| TenantStats {
                    tenant: entry.tenant.clone(),
                    requests: 0,
                    solved: 0,
                    totals: RunTotals::default(),
                });
            stats.requests += 1;
            stats.solved += usize::from(*solved);
            if let Some(report) = report {
                stats.totals.fold(report);
            }
        }
        by_tenant.into_values().collect()
    }

    /// Sheds shard `i`'s queued requests whose deadline has passed as of
    /// `now`, staging them for [`FactorizationService::take_expired`].
    fn sweep_shard_expired(&mut self, i: usize, now: Instant) {
        // Common case — nothing expired — takes no allocation.
        if !self.shards[i]
            .pending
            .iter()
            .any(|q| q.expires.is_some_and(|e| e <= now))
        {
            return;
        }
        let pending = std::mem::take(&mut self.shards[i].pending);
        let mut kept = Vec::with_capacity(pending.len());
        for q in pending {
            if q.expires.is_some_and(|e| e <= now) {
                self.stats.expired += 1;
                self.expired.push(ExpiredRequest {
                    id: q.id,
                    tenant: q.request.tenant,
                });
            } else {
                kept.push(q);
            }
        }
        self.shards[i].pending = kept;
    }

    /// Forms shard `i`'s queue into a micro-batch: sheds expired
    /// requests, then assigns every remaining queued request its run
    /// cursor and trace entry (in admission order, so a batch's cursors
    /// are contiguous by construction) and detaches the batch for
    /// solving — inline via
    /// [`FactorizationService::solve_and_complete`], or off-lock via
    /// [`PreparedBatch::solve_with`] on a solver thread. Returns `None`
    /// when the queue is empty after the expiry sweep. The flush is
    /// counted here, at formation.
    pub fn take_batch(&mut self, i: usize, reason: FlushReason) -> Option<PreparedBatch> {
        self.sweep_shard_expired(i, Instant::now());
        let queued = std::mem::take(&mut self.shards[i].pending);
        if queued.is_empty() {
            return None;
        }
        self.stats.flushes += 1;
        match reason {
            FlushReason::Size => self.stats.flushed_by_size += 1,
            FlushReason::Deadline => self.stats.flushed_by_deadline += 1,
            FlushReason::Drain => self.stats.flushed_by_drain += 1,
        }
        self.stats.largest_batch = self.stats.largest_batch.max(queued.len() as u64);
        let mut entries = Vec::with_capacity(queued.len());
        for q in queued {
            let shard = &mut self.shards[i];
            let cursor = shard.next_cursor;
            shard.next_cursor += 1;
            let trace_idx = self.trace.len();
            self.trace.push(TraceEntry {
                id: q.id,
                tenant: q.request.tenant,
                backend: q.request.backend,
                shard: i,
                cursor,
                query: q.request.query.clone(),
                truth: q.request.truth.clone(),
            });
            self.ledger.push(None);
            entries.push(BatchEntry {
                id: q.id,
                trace_idx,
                cursor,
                query: q.request.query,
                truth: q.request.truth,
                submitted: q.submitted,
            });
        }
        Some(PreparedBatch { shard: i, entries })
    }

    /// Records a solved micro-batch: stages responses (wall latency
    /// measured from each request's submission to now), fills the stats
    /// ledger, and bumps the completion counter. Returns the batch size.
    /// Batches may complete in any order across shards — ordering never
    /// affects outcomes, only when responses materialize.
    pub fn complete_batch(&mut self, solved: SolvedBatch) -> usize {
        let SolvedBatch { batch, solves } = solved;
        assert_eq!(batch.entries.len(), solves.len(), "one solve per entry");
        let n = batch.entries.len();
        let finished = Instant::now();
        for (e, solve) in batch.entries.into_iter().zip(solves) {
            let entry = &self.trace[e.trace_idx];
            self.ledger[e.trace_idx] = Some((solve.outcome.solved, solve.report.clone()));
            self.completed.insert(
                e.id.0,
                FactorizeResponse {
                    id: e.id,
                    tenant: entry.tenant.clone(),
                    backend: entry.backend,
                    shard: entry.shard,
                    cursor: e.cursor,
                    outcome: solve.outcome,
                    report: solve.report,
                    wall_latency_s: Some(finished.duration_since(e.submitted).as_secs_f64()),
                },
            );
            self.stats.completed += 1;
        }
        n
    }

    /// Solves a formed micro-batch **inline** (on the calling thread) and
    /// records it: multi-thread configurations go through the
    /// deterministic executor pool, single-thread through the shard's own
    /// warmed engine. This is the in-process flush path and the fallback
    /// when no solver thread is attached; outcomes are bit-identical
    /// either way.
    pub fn solve_and_complete(&mut self, batch: PreparedBatch) -> usize {
        let i = batch.shard;
        let threads = executor::resolve_threads(self.threads).min(batch.entries.len());
        // One registry resolve per micro-batch: a single LRU touch, and
        // one `Arc` for the whole batch (the executor chunks by slice
        // identity). Tier state never changes outcomes, only footprint.
        let codebooks = self.parent.codebook_handle().resolve();
        let solved = if threads > 1 {
            let factory: Box<dyn Fn() -> Box<dyn Backend> + Send + Sync> =
                Box::new(self.shards[i].session.backend_factory());
            let requests: Vec<RequestSolve<'_>> = batch
                .entries
                .iter()
                .map(|e| RequestSolve {
                    shard: 0,
                    cursor: e.cursor,
                    codebooks: &codebooks,
                    query: &e.query,
                    truth: e.truth.as_deref(),
                })
                .collect();
            let solves =
                executor::solve_requests(std::slice::from_ref(&factory), &requests, threads);
            SolvedBatch { batch, solves }
        } else {
            let engine = self.shards[i].session.backend_mut();
            batch.solve_with(engine, &codebooks)
        };
        self.complete_batch(solved)
    }

    /// Flushes shard `i`'s queue as one inline micro-batch. Returns the
    /// number of requests flushed.
    fn flush_shard(&mut self, i: usize, reason: FlushReason) -> usize {
        match self.take_batch(i, reason) {
            Some(batch) => self.solve_and_complete(batch),
            None => 0,
        }
    }

    /// A constructor for shard `i`'s engine — what a dedicated solver
    /// thread uses to build (and keep warm) its own engine per shard,
    /// off the service lock. Factory-built engines share the shard's seed
    /// lineage, so solving a [`PreparedBatch`] on one is bit-identical to
    /// the inline path.
    pub fn shard_engine_factory(
        &self,
        i: usize,
    ) -> Box<dyn Fn() -> Box<dyn Backend> + Send + Sync> {
        Box::new(self.shards[i].session.backend_factory())
    }

    /// The shared codebooks as an owning handle, for solver threads that
    /// outlive any one borrow of the service.
    pub fn codebooks_shared(&self) -> Arc<[Codebook]> {
        self.parent.codebooks_shared()
    }

    /// The registry handle the service's codebooks are interned under.
    /// Solver loops resolve it once per micro-batch: each resolve is one
    /// LRU touch on the registry (promoting the entry hot if it was
    /// demoted) and the whole batch runs against the single returned
    /// `Arc`, so hot-tier hit rate under live traffic is observable in
    /// [`crate::registry::RegistryStats`].
    pub fn codebook_handle(&self) -> &CodebookHandle {
        self.parent.codebook_handle()
    }

    /// Replays a trace **serially** — one fresh engine per shard, every
    /// request solved at its admission cursor in trace order — and
    /// returns responses in that order. By the determinism contract (see
    /// the [module docs](self)), the outcomes and reports are
    /// bit-identical to what the live micro-batched, multi-threaded
    /// service produced for the same admissions; `wall_latency_s` is
    /// `None` (replay has no queueing).
    ///
    /// The live state of `self` (queues, cursors, stats) is untouched: a
    /// replay can run mid-flight, after a drain, or on a fresh service
    /// built with the same configuration.
    ///
    /// # Panics
    ///
    /// Panics if an entry names a shard outside this service's pool.
    pub fn replay(&self, trace: &[TraceEntry]) -> Vec<FactorizeResponse> {
        // One resolve for the whole replay; outcomes are tier-independent,
        // so live (possibly demoted/promoted mid-run) ≡ replay holds.
        let codebooks = self.parent.codebook_handle().resolve();
        let codebooks = &codebooks[..];
        let mut engines: Vec<Option<Box<dyn Backend>>> =
            (0..self.shards.len()).map(|_| None).collect();
        trace
            .iter()
            .map(|entry| {
                assert!(
                    entry.shard < self.shards.len(),
                    "trace entry {} names shard {} outside the pool",
                    entry.id,
                    entry.shard
                );
                let engine = engines[entry.shard]
                    .get_or_insert_with(self.shards[entry.shard].session.backend_factory());
                engine.seek_run(entry.cursor);
                let outcome =
                    engine.factorize_query(codebooks, &entry.query, entry.truth.as_deref());
                FactorizeResponse {
                    id: entry.id,
                    tenant: entry.tenant.clone(),
                    backend: entry.backend,
                    shard: entry.shard,
                    cursor: entry.cursor,
                    report: engine.last_run_stats(),
                    outcome,
                    wall_latency_s: None,
                }
            })
            .collect()
    }
}

impl fmt::Debug for FactorizationService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FactorizationService")
            .field("spec", &self.spec)
            .field("seed", &self.seed)
            .field("shards", &self.shards.len())
            .field("batch_size", &self.batch_size)
            .field("queue_capacity", &self.queue_capacity)
            .field("accepted", &self.stats.accepted)
            .field("pending", &self.pending())
            .finish()
    }
}

/// A deterministic, cursor-seeded stream of [`FactorizeRequest`]s over a
/// service's codebooks (see
/// [`FactorizationService::request_stream`]). Request `k` of a stream is
/// a pure function of `(service seed, stream id, k)`, so producers can be
/// stopped, resumed, or re-created without repeating or skipping
/// problems.
#[derive(Debug, Clone)]
pub struct RequestStream {
    tenant: String,
    kind: BackendKind,
    codebooks: Arc<[Codebook]>,
    master: u64,
    cursor: u64,
}

impl RequestStream {
    /// The next request of the stream (fresh problem, known truth).
    pub fn next_request(&mut self) -> FactorizeRequest {
        let mut rng = stream_rng(self.master, self.cursor);
        self.cursor += 1;
        let p = FactorizationProblem::with_codebooks(&self.codebooks, &mut rng);
        FactorizeRequest {
            tenant: self.tenant.clone(),
            backend: self.kind,
            query: p.product().clone(),
            truth: Some(p.true_indices().to_vec()),
            deadline: None,
        }
    }

    /// The stream's next cursor.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Repositions the stream (request `k` is cursor-addressable).
    pub fn seek(&mut self, cursor: u64) {
        self.cursor = cursor;
    }
}

impl Iterator for RequestStream {
    type Item = FactorizeRequest;

    fn next(&mut self) -> Option<FactorizeRequest> {
        Some(self.next_request())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_service(batch: usize, capacity: usize, threads: usize) -> FactorizationService {
        FactorizationService::builder()
            .spec(ProblemSpec::new(2, 8, 256))
            .backends(&[(BackendKind::Stochastic, 2), (BackendKind::Baseline, 1)])
            .seed(11)
            .max_iters(300)
            .batch_size(batch)
            .queue_capacity(capacity)
            .threads(threads)
            .build()
    }

    #[test]
    fn round_robin_alternates_within_a_kind() {
        let mut svc = small_service(8, 8, 1);
        let mut stream = svc.request_stream("t", BackendKind::Stochastic, 0);
        let a = svc.submit(stream.next_request());
        let b = svc.submit(stream.next_request());
        let c = svc.submit(stream.next_request());
        // Shard assignment surfaces in the responses (the trace is only
        // written at flush).
        let by_id: BTreeMap<u64, usize> =
            svc.drain().into_iter().map(|r| (r.id.0, r.shard)).collect();
        let shards: Vec<usize> = [a, b, c].iter().map(|id| by_id[&id.0]).collect();
        assert_eq!(shards[0], shards[2]);
        assert_ne!(shards[0], shards[1]);
    }

    #[test]
    fn batch_size_triggers_auto_flush() {
        let mut svc = small_service(2, 8, 1);
        let mut stream = svc.request_stream("t", BackendKind::Baseline, 1);
        svc.submit(stream.next_request());
        assert_eq!(svc.pending(), 1);
        svc.submit(stream.next_request());
        // Second submit fills the micro-batch; the shard flushed itself.
        assert_eq!(svc.pending(), 0);
        assert_eq!(svc.stats().flushed_by_size, 1);
        assert_eq!(svc.take_responses().len(), 2);
    }

    #[test]
    fn unknown_backend_is_rejected_with_the_request() {
        let mut svc = small_service(4, 8, 1);
        let req = svc.request_stream("t", BackendKind::Pcm, 0).next_request();
        let err = svc.try_submit(req.clone()).unwrap_err();
        assert_eq!(err.into_request(), req);
        assert_eq!(svc.stats().rejected, 1);
    }

    #[test]
    fn request_streams_are_cursor_addressable() {
        let svc = small_service(4, 8, 1);
        let mut a = svc.request_stream("t", BackendKind::Stochastic, 3);
        let first: Vec<FactorizeRequest> = (0..4).map(|_| a.next_request()).collect();
        let mut b = svc.request_stream("t", BackendKind::Stochastic, 3);
        b.seek(2);
        assert_eq!(b.next_request(), first[2]);
        let mut other = svc.request_stream("t", BackendKind::Stochastic, 4);
        assert_ne!(other.next_request(), first[0]);
    }
}
