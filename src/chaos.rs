//! Deterministic fault injection for the serving wire protocol.
//!
//! [`ChaosProxy`] sits between a client and a serving front-end as a
//! frame-aware TCP proxy: it reassembles `[len][body]` frames on the
//! client→server path and, per frame, draws from a seeded splitmix64
//! stream to decide whether to forward intact, **delay**, **corrupt** a
//! body byte, **truncate** the frame mid-write and cut the link, or
//! **sever** the connection outright. The server→client path forwards
//! unmodified (severing a link kills both directions).
//!
//! All decisions depend only on `(proxy seed, connection index, frame
//! index)` — never on wall-clock time — so a single-threaded client
//! driving the proxy sees the exact same fault schedule on every run.
//! That determinism is what lets the chaos suite assert exact outcomes
//! ("the server never panics, every admitted request replays
//! bit-identically, the resilient client finishes its work") instead of
//! statistical ones.
//!
//! Faults are applied to client→server traffic because that is the
//! hostile direction: corrupted requests must bounce off the server's
//! typed protocol errors without taking down the accept loop, and cut
//! connections must look to the client like any real network partition.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::wire::MAX_FRAME_LEN;

/// Per-frame fault probabilities. Rates are evaluated in order sever →
/// truncate → corrupt → delay against one uniform draw, so their sum
/// should stay ≤ 1.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed of the fault schedule.
    pub seed: u64,
    /// Probability a frame's link is severed before forwarding.
    pub sever_rate: f64,
    /// Probability a frame is cut mid-write (half the bytes, then cut).
    pub truncate_rate: f64,
    /// Probability one body byte is flipped.
    pub corrupt_rate: f64,
    /// Probability the frame is delayed by up to `max_delay`.
    pub delay_rate: f64,
    /// Upper bound of an injected delay.
    pub max_delay: Duration,
}

impl ChaosConfig {
    /// A transparent proxy (no faults) with the given schedule seed.
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            sever_rate: 0.0,
            truncate_rate: 0.0,
            corrupt_rate: 0.0,
            delay_rate: 0.0,
            max_delay: Duration::from_millis(2),
        }
    }

    /// Sets the sever rate.
    pub fn sever(mut self, rate: f64) -> Self {
        self.sever_rate = rate;
        self
    }

    /// Sets the truncate rate.
    pub fn truncate(mut self, rate: f64) -> Self {
        self.truncate_rate = rate;
        self
    }

    /// Sets the corrupt rate.
    pub fn corrupt(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate;
        self
    }

    /// Sets the delay rate and bound.
    pub fn delay(mut self, rate: f64, max: Duration) -> Self {
        self.delay_rate = rate;
        self.max_delay = max;
        self
    }
}

/// What the proxy did over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Connections accepted.
    pub connections: u64,
    /// Client→server frames seen (faulted ones included).
    pub frames: u64,
    /// Frames forwarded after an injected delay.
    pub delayed: u64,
    /// Frames forwarded with a flipped body byte.
    pub corrupted: u64,
    /// Frames cut mid-write (connection severed after).
    pub truncated: u64,
    /// Connections severed before a frame was forwarded.
    pub severed: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    frames: AtomicU64,
    delayed: AtomicU64,
    corrupted: AtomicU64,
    truncated: AtomicU64,
    severed: AtomicU64,
}

/// A running chaos proxy. Connect clients to
/// [`ChaosProxy::local_addr`]; traffic forwards to the upstream address
/// given at spawn.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accept_join: Option<JoinHandle<()>>,
    pump_joins: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ChaosProxy {
    /// Binds an ephemeral loopback port and starts proxying to
    /// `upstream`.
    pub fn spawn(upstream: SocketAddr, config: ChaosConfig) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let conns = Arc::new(Mutex::new(Vec::new()));
        let pump_joins = Arc::new(Mutex::new(Vec::new()));

        let accept_join = {
            let (stop, counters, conns, pump_joins) = (
                stop.clone(),
                counters.clone(),
                conns.clone(),
                pump_joins.clone(),
            );
            std::thread::spawn(move || {
                for (conn_idx, incoming) in listener.incoming().enumerate() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(client) = incoming else { continue };
                    counters.connections.fetch_add(1, Ordering::Relaxed);
                    let Ok(server) = TcpStream::connect(upstream) else {
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    };
                    let _ = client.set_nodelay(true);
                    let _ = server.set_nodelay(true);
                    {
                        let mut held = conns.lock().expect("proxy conns");
                        if let (Ok(c), Ok(s)) = (client.try_clone(), server.try_clone()) {
                            held.push(c);
                            held.push(s);
                        }
                    }
                    let joins = [
                        {
                            // client→server: the faulted direction.
                            let counters = counters.clone();
                            let (c, s) = (client.try_clone(), server.try_clone());
                            std::thread::spawn(move || {
                                if let (Ok(c), Ok(s)) = (c, s) {
                                    pump_faulted(c, s, config, conn_idx as u64, &counters);
                                }
                            })
                        },
                        std::thread::spawn(move || pump_clean(server, client)),
                    ];
                    pump_joins.lock().expect("proxy joins").extend(joins);
                }
            })
        };

        Ok(ChaosProxy {
            addr,
            stop,
            counters,
            conns,
            accept_join: Some(accept_join),
            pump_joins,
        })
    }

    /// The proxy's listening address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the fault counters.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            connections: self.counters.connections.load(Ordering::Relaxed),
            frames: self.counters.frames.load(Ordering::Relaxed),
            delayed: self.counters.delayed.load(Ordering::Relaxed),
            corrupted: self.counters.corrupted.load(Ordering::Relaxed),
            truncated: self.counters.truncated.load(Ordering::Relaxed),
            severed: self.counters.severed.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, cuts every live link, and joins all threads.
    pub fn shutdown(mut self) -> ChaosStats {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.accept_join.take() {
            let _ = join.join();
        }
        for conn in self.conns.lock().expect("proxy conns").drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let joins = std::mem::take(&mut *self.pump_joins.lock().expect("proxy joins"));
        for join in joins {
            let _ = join.join();
        }
        self.stats()
    }
}

/// Reads one raw frame (length prefix included) without decoding it.
/// `Ok(None)` on clean EOF at a frame boundary.
fn read_raw_frame(stream: &mut TcpStream) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let body_len = u32::from_le_bytes(len);
    if body_len == 0 || body_len > MAX_FRAME_LEN {
        // Forward the bogus header as-is and let the server refuse it.
        return Ok(Some(len.to_vec()));
    }
    let mut frame = vec![0u8; 4 + body_len as usize];
    frame[..4].copy_from_slice(&len);
    stream.read_exact(&mut frame[4..])?;
    Ok(Some(frame))
}

/// splitmix64: the per-connection fault schedule.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// The client→server pump: reassemble frames, roll the fault die, act.
fn pump_faulted(
    mut from: TcpStream,
    mut to: TcpStream,
    config: ChaosConfig,
    conn_idx: u64,
    counters: &Counters,
) {
    let mut state = config
        .seed
        .wrapping_mul(0xA24B_AED4_963E_E407)
        .wrapping_add(conn_idx);
    // EOF and read errors both end the pump (the sockets are cut below).
    while let Ok(Some(mut frame)) = read_raw_frame(&mut from) {
        counters.frames.fetch_add(1, Ordering::Relaxed);
        let u = unit(&mut state);
        let mut threshold = config.sever_rate;
        if u < threshold {
            counters.severed.fetch_add(1, Ordering::Relaxed);
            break;
        }
        threshold += config.truncate_rate;
        if u < threshold && frame.len() > 1 {
            counters.truncated.fetch_add(1, Ordering::Relaxed);
            let _ = to.write_all(&frame[..frame.len() / 2]);
            break;
        }
        threshold += config.corrupt_rate;
        if u < threshold && frame.len() > 5 {
            counters.corrupted.fetch_add(1, Ordering::Relaxed);
            // Flip one body byte; the length prefix stays honest so the
            // stream re-synchronizes at the next frame.
            let at = 5 + (splitmix(&mut state) as usize) % (frame.len() - 5);
            frame[at] ^= 0xA5;
        } else {
            threshold += config.delay_rate;
            if u < threshold {
                counters.delayed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(config.max_delay.mul_f64(unit(&mut state)));
            }
        }
        if to.write_all(&frame).is_err() {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// The server→client pump: byte-for-byte forwarding.
fn pump_clean(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 8192];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_schedule_is_deterministic_per_seed_and_connection() {
        let mut a = 7u64.wrapping_mul(0xA24B_AED4_963E_E407).wrapping_add(3);
        let mut b = 7u64.wrapping_mul(0xA24B_AED4_963E_E407).wrapping_add(3);
        let xs: Vec<f64> = (0..16).map(|_| unit(&mut a)).collect();
        let ys: Vec<f64> = (0..16).map(|_| unit(&mut b)).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        // A different connection index yields a different schedule.
        let mut c = 7u64.wrapping_mul(0xA24B_AED4_963E_E407).wrapping_add(4);
        assert!((0..16).map(|_| unit(&mut c)).collect::<Vec<_>>() != xs);
    }
}
