//! # H3DFact reproduction — facade crate
//!
//! One crate for the whole workspace. The public API centers on two
//! concepts:
//!
//! - [`Backend`](backend::Backend) — the unified, object-safe interface
//!   implemented by all six factorization engines: the device-accurate
//!   [`H3dFact`](h3dfact_core::H3dFact) accelerator, the Table III
//!   baselines ([`Sram2dEngine`](h3dfact_core::Sram2dEngine),
//!   [`Hybrid2dEngine`](h3dfact_core::Hybrid2dEngine)), the two-die PCM
//!   comparator ([`PcmEngine`](h3dfact_core::PcmEngine)), and the software
//!   resonators ([`BaselineResonator`](resonator::BaselineResonator),
//!   [`StochasticResonator`](resonator::StochasticResonator)).
//! - [`Session`](session::Session) — the top-level entry point owning
//!   problem generation, batched solving with per-problem seeds, and
//!   aggregate accuracy/energy/latency reporting, built fluently and
//!   swappable across backends via
//!   [`BackendKind`](session::BackendKind).
//!
//! On top of these, [`Workload`](workload::Workload) unifies every
//! experiment shape — random factorization, Fig. 7 perception (scenes and
//! RPM puzzles), integer factorization, capacity sweeps, or custom
//! scenarios — behind
//! [`Session::run_workload`](session::Session::run_workload), which runs
//! any of them through the same deterministic parallel executor and
//! reporting path.
//!
//! For serving-shaped work, the
//! [`FactorizationService`](service::FactorizationService) layers
//! multi-tenant streaming on top of sessions: a pool of pre-warmed
//! session shards (codebooks generated once), bounded queues with
//! backpressure, micro-batching with deadline flushes, per-tenant stats,
//! and a deterministic trace/replay contract.
//!
//! The underlying layers stay available for specialized work:
//!
//! - [`hdc`] — holographic hypervector substrate (bipolar vectors,
//!   codebooks).
//! - [`resonator`] — resonator-network factorization, deterministic and
//!   stochastic.
//! - [`cim`] — device/circuit-level compute-in-memory models (RRAM
//!   crossbars, SAR ADCs, noise).
//! - [`arch3d`] — heterogeneous 3D architecture: tiers, TSVs, floorplans,
//!   PPA roll-ups.
//! - [`thermal`] — steady-state 3D thermal solver (HotSpot substitute).
//! - [`perception`] — synthetic holographic perception tasks (RAVEN-like).
//! - [`core`](h3dfact_core) — the H3DFact accelerator engine tying the
//!   above together.
//!
//! # Quickstart
//!
//! ```
//! use h3dfact::prelude::*;
//!
//! // A small factorization problem shape: 3 attributes, 8 items each,
//! // D = 256 — and a session driving the simulated H3DFact accelerator.
//! let spec = ProblemSpec::new(3, 8, 256);
//! let mut session = Session::builder()
//!     .spec(spec)
//!     .backend(BackendKind::H3dFact)
//!     .seed(7)
//!     .max_iters(2_000)
//!     .build();
//!
//! // Generate and solve a small batch; the report aggregates accuracy,
//! // energy, and modeled latency.
//! let report = session.run(2);
//! assert_eq!(report.problems, 2);
//! assert!(report.accuracy() > 0.0);
//! assert!(report.total_energy_j.unwrap() > 0.0);
//!
//! // The same spec on the software stochastic model — only the backend
//! // kind changes.
//! let mut sw = Session::builder()
//!     .spec(spec)
//!     .backend(BackendKind::Stochastic)
//!     .seed(7)
//!     .max_iters(2_000)
//!     .build();
//! assert!(sw.run(2).accuracy() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use arch3d;
pub use cim;
pub use h3dfact_core;
pub use hdc;
pub use perception;
pub use resonator;
pub use thermal;

pub mod backend;
pub mod chaos;
pub mod client;
pub(crate) mod executor;
pub mod registry;
pub mod server;
pub mod service;
pub mod session;
pub mod target;
pub mod wire;
pub mod workload;

/// Commonly used items across the workspace, re-exported for convenience.
pub mod prelude {
    pub use crate::backend::{
        Backend, Capabilities, LockstepQuery, LockstepSolve, RunReport, RunTotals,
    };
    pub use crate::chaos::{ChaosConfig, ChaosProxy, ChaosStats};
    pub use crate::client::{ClientConfig, ClientError, ClientStats, ResilientClient, RetryPolicy};
    pub use crate::registry::{CodebookHandle, CodebookRegistry, RegistryStats};
    pub use crate::server::{ServeClient, ServerConfig, ServerHandle, TenantQuota};
    pub use crate::service::{
        Admission, ExpiredRequest, FactorizationService, FactorizeRequest, FactorizeResponse,
        FlushReason, PreparedBatch, RequestId, RequestStream, ServiceBuilder, ServiceSnapshot,
        ServiceStats, ShardSnapshot, SolvedBatch, SubmitError, TenantStats, TraceEntry,
    };
    pub use crate::session::{
        BackendKind, Session, SessionBuildError, SessionBuilder, SessionReport,
    };
    pub use crate::target::{
        ApproxTiledTarget, CostReport, DmaQueueTarget, FunctionalTarget, QueueStats, Target,
        TargetBackend, TargetKind,
    };
    pub use crate::wire::{
        Frame, ShedReason, WireError, WireRegistryStats, WireResponse, WireStats, PROTOCOL_VERSION,
    };
    pub use crate::workload::{
        CapacitySweep, FrontierPoint, IntegerFactorization, Perception, RandomFactorization,
        RobustnessSweep, SeverityPoint, Workload, WorkloadReport, WorkloadScore,
    };
    pub use arch3d::design::{DesignReport, DesignVariant};
    pub use cim::adc::AdcConfig;
    pub use cim::crossbar::Crossbar;
    pub use cim::noise::NoiseSpec;
    pub use h3dfact_core::accelerator::H3dFact;
    pub use h3dfact_core::config::H3dFactConfig;
    pub use h3dfact_core::{Hybrid2dEngine, PcmEngine, Sram2dEngine};
    pub use hdc::rng::rng_from_seed;
    pub use hdc::{BipolarVector, Codebook, FactorizationProblem, ProblemSpec};
    pub use perception::pipeline::PerceptionPipeline;
    pub use resonator::engine::{FactorizationOutcome, Factorizer};
    pub use resonator::{BaselineResonator, StochasticResonator};
}
