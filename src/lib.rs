//! # H3DFact reproduction — facade crate
//!
//! This crate re-exports the whole workspace so that examples, integration
//! tests, and downstream users can depend on a single crate:
//!
//! - [`hdc`] — holographic hypervector substrate (bipolar vectors, codebooks).
//! - [`resonator`] — resonator-network factorization, deterministic and
//!   stochastic.
//! - [`cim`] — device/circuit-level compute-in-memory models (RRAM crossbars,
//!   SAR ADCs, noise).
//! - [`arch3d`] — heterogeneous 3D architecture: tiers, TSVs, floorplans,
//!   PPA roll-ups.
//! - [`thermal`] — steady-state 3D thermal solver (HotSpot substitute).
//! - [`perception`] — synthetic holographic perception tasks (RAVEN-like).
//! - [`core`](h3dfact_core) — the H3DFact accelerator engine tying the above
//!   together.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.
//!
//! # Quickstart
//!
//! ```
//! use h3dfact::prelude::*;
//!
//! // A small factorization problem: 3 attributes, 16 items each, D = 1024.
//! let spec = ProblemSpec::new(3, 16, 1024);
//! let mut rng = rng_from_seed(1);
//! let problem = FactorizationProblem::random(spec, &mut rng);
//!
//! // Solve it on the simulated H3DFact accelerator.
//! let mut engine = H3dFact::new(H3dFactConfig::default_for(spec), 7);
//! let outcome = engine.factorize(&problem);
//! assert!(outcome.solved);
//! ```

#![forbid(unsafe_code)]

pub use arch3d;
pub use cim;
pub use h3dfact_core;
pub use hdc;
pub use perception;
pub use resonator;
pub use thermal;

/// Commonly used items across the workspace, re-exported for convenience.
pub mod prelude {
    pub use arch3d::design::{DesignReport, DesignVariant};
    pub use cim::adc::AdcConfig;
    pub use cim::crossbar::Crossbar;
    pub use cim::noise::NoiseSpec;
    pub use h3dfact_core::accelerator::H3dFact;
    pub use h3dfact_core::config::H3dFactConfig;
    pub use hdc::rng::rng_from_seed;
    pub use hdc::{BipolarVector, Codebook, FactorizationProblem, ProblemSpec};
    pub use perception::pipeline::PerceptionPipeline;
    pub use resonator::engine::{FactorizationOutcome, Factorizer};
    pub use resonator::{BaselineResonator, StochasticResonator};
}
