//! Integer factorization as holographic factorization — one of the
//! applications the paper names in Sec. V-E ("analogical reasoning, tree
//! search, and integer factorization"), packaged as a session `Workload`.
//!
//! Encoding: a semiprime `n = p · q` is represented by binding the
//! hypervector of `p` (from a codebook of candidate small factors) with
//! the hypervector of `q` (from a codebook of candidate cofactors). The
//! resonator then *searches the factor table in superposition* instead of
//! trial division. This is a toy — the point is the code path, not number
//! theory: the product vector is exactly the kind of composed structure
//! H3DFact accelerates, and as a `Workload` it batches, threads, and
//! scores through the same session machinery as every other experiment.
//!
//! ```sh
//! cargo run --release --example integer_factorization
//! ```

use h3dfact::prelude::*;

fn main() {
    // Candidate factors: the primes below 100 (25 of them); candidate
    // cofactors use an independent codebook over the same table.
    let mut workload = IntegerFactorization::new(100, 1024, 31_337);
    let spec = workload.spec();
    let m = workload.primes().len();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // A session on the simulated hardware; the workload carries its own
    // prime-table codebooks, so the session's random books are unused.
    let mut session = Session::builder()
        .spec(spec)
        .backend(BackendKind::H3dFact)
        .seed(3)
        .max_iters(2_000)
        .threads(threads)
        .build();

    let cases = 10;
    println!(
        "factorizing {cases} semiprimes over a {m}-entry prime table (D = {})\n",
        spec.dim
    );
    let report = session.run_workload(&mut workload, cases);
    let primes = workload.primes();
    // Generation is deterministic, so a sibling workload at the same seed
    // replays epoch 0's ground truth for the per-case table.
    let truths = IntegerFactorization::new(100, 1024, 31_337).generate(cases);
    for (i, (out, item)) in report
        .session
        .outcomes
        .iter()
        .zip(&truths.items)
        .enumerate()
    {
        let truth = item.truth.as_deref().expect("semiprimes carry truth");
        let n = primes[truth[0]] * primes[truth[1]];
        let (dp, dq) = (primes[out.decoded[0]], primes[out.decoded[1]]);
        println!(
            "  case {i}: n = {n:>5}  ->  decoded {dp:>2} x {dq:>2}  ({} iterations{})",
            out.iterations,
            if dp * dq == n { "" } else { "  MISS" }
        );
    }
    println!(
        "\nrecovered {:.0}/{} factorizations in-memory \
         (exact index rate {:.0} %, {:.2} mJ total)",
        report.score * cases as f64,
        cases,
        100.0 * report.metric("exact_index_rate").unwrap_or(0.0),
        report.session.total_energy_j.unwrap_or(0.0) * 1e3
    );
}
