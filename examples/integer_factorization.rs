//! Integer factorization as holographic factorization — one of the
//! applications the paper names in Sec. V-E ("analogical reasoning, tree
//! search, and integer factorization").
//!
//! Encoding: a semiprime `n = p · q` is represented by binding the
//! hypervector of `p` (from a codebook of candidate small factors) with
//! the hypervector of `q` (from a codebook of candidate cofactors). The
//! resonator then *searches the factor table in superposition* instead of
//! trial division. This is a toy — the point is the code path, not number
//! theory: the product vector is exactly the kind of composed structure
//! H3DFact accelerates.
//!
//! ```sh
//! cargo run --release --example integer_factorization
//! ```

use h3dfact::prelude::*;

fn main() {
    // Candidate factors: the primes below 100 (25 of them); candidate
    // cofactors use an independent codebook over the same table.
    let primes: Vec<u64> = (2u64..100)
        .filter(|&n| (2..n).all(|d| n % d != 0))
        .collect();
    let m = primes.len();
    let dim = 1024usize;
    let spec = ProblemSpec::new(2, m, dim);

    let mut rng = rng_from_seed(31_337);
    let p_book = Codebook::random(m, dim, &mut rng);
    let q_book = Codebook::random(m, dim, &mut rng);

    // A session on the simulated hardware; the prime-table codebooks are
    // domain-specific, so they are passed per query instead of using the
    // session's own random books.
    let mut session = Session::builder()
        .spec(spec)
        .backend(BackendKind::H3dFact)
        .seed(3)
        .max_iters(2_000)
        .build();

    println!("factorizing semiprimes over a {m}-entry prime table (D = {dim})\n");
    let mut solved = 0;
    let cases = 10;
    for t in 0..cases {
        let mut rng_t = rng_from_seed(500 + t);
        let pi = rand::Rng::gen_range(&mut rng_t, 0..m);
        let qi = rand::Rng::gen_range(&mut rng_t, 0..m);
        let (p, q) = (primes[pi], primes[qi]);
        let n = p * q;

        // n's holographic code: bind the factor vectors.
        let n_vector = p_book.vector(pi).bind(q_book.vector(qi));

        let books = [p_book.clone(), q_book.clone()];
        let out = session.solve_query(&books, &n_vector, Some(&[pi, qi]));
        let (dp, dq) = (primes[out.decoded[0]], primes[out.decoded[1]]);
        let ok = dp * dq == n;
        if ok {
            solved += 1;
        }
        println!(
            "  n = {n:>5} = {p:>2} x {q:>2}  ->  decoded {dp:>2} x {dq:>2}  ({} iterations){}",
            out.iterations,
            if ok { "" } else { "  MISS" }
        );
    }
    println!("\nrecovered {solved}/{cases} factorizations in-memory");
}
