//! The serving round-trip: a multi-tenant `FactorizationService` pool
//! streaming micro-batched traffic, per-tenant stats roll-ups, and the
//! deterministic trace → replay contract.
//!
//! ```sh
//! cargo run --release --example serve_trace
//! ```

use std::time::Duration;

use h3dfact::prelude::*;

fn main() {
    // A heterogeneous warmed pool: two software shards absorb bulk
    // traffic, one simulated H3DFact shard serves the tenant that wants
    // hardware cost accounting. Codebooks are generated once and shared.
    let mut service = FactorizationService::builder()
        .spec(ProblemSpec::new(3, 8, 256))
        .backends(&[(BackendKind::Stochastic, 2), (BackendKind::H3dFact, 1)])
        .seed(7)
        .max_iters(1_000)
        .batch_size(8)
        .queue_capacity(32)
        .threads(0) // all cores
        .flush_deadline(Duration::from_millis(1))
        .build();
    println!(
        "service: {} shards over shared codebooks (spec {:?})",
        service.shard_count(),
        service.spec()
    );

    // Three tenants stream cursor-seeded requests. Micro-batches flush
    // on size as queues fill; `pump()` sweeps deadline-aged stragglers.
    let mut alpha = service.request_stream("alpha", BackendKind::Stochastic, 0);
    let mut beta = service.request_stream("beta", BackendKind::Stochastic, 1);
    let mut gamma = service.request_stream("gamma", BackendKind::H3dFact, 2);
    for round in 0..12 {
        for _ in 0..3 {
            service.submit(alpha.next_request());
            service.submit(beta.next_request());
        }
        service.submit(gamma.next_request());
        if round % 4 == 3 {
            service.pump();
        }
    }
    let responses = service.drain();
    let stats = service.stats();
    println!(
        "served {} requests in {} micro-batches ({} by size, {} by deadline, {} by drain)",
        responses.len(),
        stats.flushes,
        stats.flushed_by_size,
        stats.flushed_by_deadline,
        stats.flushed_by_drain
    );

    println!("\nper-tenant roll-ups (folded in admission order):");
    for t in service.tenant_stats() {
        print!(
            "  {:<6} {:>3} requests, {:>3} solved, {:>6} iterations",
            t.tenant, t.requests, t.solved, t.totals.iterations
        );
        match (t.totals.energy_per_run_j(), t.totals.latency_per_run_s()) {
            (Some(e), Some(l)) => {
                println!(", {:.2} nJ + {:.2} µs per request", e * 1e9, l * 1e6)
            }
            _ => println!(" (software shard: no cost model)"),
        }
    }

    // The determinism contract: re-running the admission trace serially
    // reproduces every live micro-batched outcome bit for bit.
    let trace = service.trace().to_vec();
    let replayed = service.replay(&trace);
    let identical = responses
        .iter()
        .zip(&replayed)
        .all(|(l, r)| l.outcome.decoded == r.outcome.decoded && l.cursor == r.cursor);
    println!(
        "\nreplayed {} trace entries serially: live ≡ replay = {}",
        trace.len(),
        identical
    );
    assert!(identical, "live service output diverged from trace replay");
}
