//! The network serving round-trip: spawn the TCP front-end over a warmed
//! shard pool, stream two tenants' requests through
//! [`ServeClient`](h3dfact::server::ServeClient), and poll the `STATS`
//! endpoint for latency percentiles, shed counts, and tenant roll-ups.
//!
//! ```sh
//! cargo run --release --example serve_client
//! ```

use std::time::Duration;

use h3dfact::prelude::*;
use h3dfact::server;
use h3dfact::wire::Frame;

fn main() {
    // The same heterogeneous pool as `serve_trace`, now behind a socket:
    // software shards for bulk traffic, one simulated H3DFact shard for
    // the tenant that wants hardware cost accounting.
    let service = FactorizationService::builder()
        .spec(ProblemSpec::new(3, 8, 256))
        .backends(&[(BackendKind::Stochastic, 2), (BackendKind::H3dFact, 1)])
        .seed(7)
        .max_iters(1_000)
        .batch_size(8)
        .queue_capacity(32)
        .threads(0) // all cores
        .flush_deadline(Duration::from_millis(1))
        .build();

    // Request streams are detached from the service (they own the shared
    // codebooks), so they keep generating after the service moves into
    // the server. "alpha" gets a generous rate quota to show the token
    // bucket without shedding this small workload.
    let mut alpha = service.request_stream("alpha", BackendKind::Stochastic, 0);
    let mut beta = service.request_stream("beta", BackendKind::H3dFact, 1);
    let config = ServerConfig::default()
        .quota("alpha", TenantQuota::rate_limited(10_000.0, 64.0))
        .quota("beta", TenantQuota::open().with_max_in_flight(16))
        .read_timeout(Duration::from_secs(5))
        .solver_threads(1);
    let handle = server::spawn(service, config).expect("spawn server");
    let addr = handle.local_addr();
    println!("serving on {addr} (wire protocol v{PROTOCOL_VERSION}, 3 shards)");

    // Two tenants on two connections. Each sends a tagged burst, then
    // collects its completions (they may arrive out of submission order —
    // the tag correlates them).
    let workers =
        [("alpha", 24u64, &mut alpha), ("beta", 8u64, &mut beta)].map(|(tenant, n, stream)| {
            let requests: Vec<FactorizeRequest> = (0..n).map(|_| stream.next_request()).collect();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                for (tag, request) in requests.iter().enumerate() {
                    client.send_request(tag as u64, request).expect("send");
                }
                let mut solved = 0u64;
                let mut shed = 0u64;
                for _ in 0..n {
                    match client.recv().expect("recv").expect("open") {
                        Frame::Response(r) => solved += u64::from(r.solved),
                        Frame::Shed { .. } => shed += 1,
                        other => panic!("unexpected frame: {other:?}"),
                    }
                }
                (tenant, n, solved, shed)
            })
        });
    for w in workers {
        let (tenant, n, solved, shed) = w.join().expect("client thread");
        println!("  {tenant:<6} {n:>3} sent, {solved:>3} solved, {shed} shed");
    }

    // The STATS frame: SLO percentiles over wall latency, shed counts by
    // reason, per-shard queue depths, per-tenant roll-ups.
    let mut observer = ServeClient::connect(addr).expect("connect");
    let stats = observer.stats().expect("stats");
    println!(
        "\nSLO: p50 {:.2} ms · p95 {:.2} ms · p99 {:.2} ms · p99.9 {:.2} ms ({} samples)",
        stats.p50_ms, stats.p95_ms, stats.p99_ms, stats.p999_ms, stats.latency_samples
    );
    println!(
        "admission: {} accepted, {} completed, {} shed",
        stats.accepted,
        stats.completed,
        stats.shed_total()
    );
    println!(
        "connections: {} open, {} reaped for timeout, {} version-rejected",
        stats.open_connections, stats.reaped_timeout, stats.version_rejected
    );
    for s in &stats.shards {
        println!(
            "  shard {:<12} queue {:>2}, cursor {:>3}",
            s.kind.name(),
            s.queue_depth,
            s.next_cursor
        );
    }
    for t in &stats.tenants {
        println!(
            "  tenant {:<6} {:>3} requests, {:>3} solved, in-flight {}",
            t.tenant, t.requests, t.solved, t.in_flight
        );
    }

    // Shutdown returns the service, trace intact: the wire hop preserved
    // the determinism contract.
    let service = handle.shutdown();
    let replayed = service.replay(service.trace());
    println!(
        "\nreplayed {} admitted requests: outcomes reproduce bit for bit",
        replayed.len()
    );
}
