//! Quickstart: drive the simulated H3DFact accelerator through the
//! unified `Session` API, then swap in the deterministic software
//! baseline by changing only the backend kind.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use h3dfact::prelude::*;

fn main() {
    // A visual-object-style problem: 3 attributes, 16 items each, D = 512.
    let spec = ProblemSpec::new(3, 16, 512);
    println!(
        "problem: F={} attributes x M={} items, D={} (search space {})",
        spec.factors,
        spec.codebook_size,
        spec.dim,
        spec.search_space()
    );

    // The device-accurate H3DFact engine: RRAM crossbars with
    // chip-calibrated noise, 4-bit noise-referenced ADCs, three-tier
    // scheduling — behind the Session entry point.
    let mut session = Session::builder()
        .spec(spec)
        .backend(BackendKind::H3dFact)
        .seed(2024)
        .max_iters(2_000)
        .build();

    let report = session.run(4);
    println!("\n--- {} x{} problems ---", report.backend, report.problems);
    println!("accuracy    : {:.0} %", 100.0 * report.accuracy());
    println!("iterations  : {} total", report.total_iterations);
    if let Some(e) = report.total_energy_j {
        println!("energy      : {:.3} nJ total", e * 1e9);
    }
    if let Some(l) = report.total_latency_s {
        println!("latency     : {:.2} us total (modeled)", l * 1e6);
    }

    let stats = session
        .last_run_stats()
        .expect("stats recorded after a run");
    println!("\n--- last run, hardware detail ---");
    println!("cycles        : {}", stats.cycles.unwrap());
    println!("tier switches : {}", stats.tier_switches.unwrap());
    println!("ADC converts  : {}", stats.adc_conversions.unwrap());
    print!("{}", stats.energy.as_ref().unwrap());

    // Contrast with the deterministic baseline resonator: same spec, same
    // seed stream, different backend kind.
    let mut baseline = Session::builder()
        .spec(spec)
        .backend(BackendKind::Baseline)
        .seed(2024)
        .max_iters(2_000)
        .build();
    let base = baseline.run(4);
    println!(
        "\nbaseline resonator: {:.0} % accuracy in {} total iterations (limit cycles cap it as M grows)",
        100.0 * base.accuracy(),
        base.total_iterations
    );
}
