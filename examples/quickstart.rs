//! Quickstart: factorize a holographic product vector on the simulated
//! H3DFact accelerator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use h3dfact::prelude::*;

fn main() {
    // A visual-object-style problem: 3 attributes, 16 items each, D = 512.
    let spec = ProblemSpec::new(3, 16, 512);
    let mut rng = rng_from_seed(2024);
    let problem = FactorizationProblem::random(spec, &mut rng);
    println!(
        "problem: F={} attributes x M={} items, D={} (search space {})",
        spec.factors,
        spec.codebook_size,
        spec.dim,
        spec.search_space()
    );
    println!("ground truth indices: {:?}", problem.true_indices());

    // The device-accurate H3DFact engine: RRAM crossbars with
    // chip-calibrated noise, 4-bit noise-referenced ADCs, three-tier
    // scheduling.
    let mut engine = H3dFact::new(H3dFactConfig::default_for(spec), 7);
    let outcome = engine.factorize(&problem);

    println!("\nsolved      : {}", outcome.solved);
    println!("decoded     : {:?}", outcome.decoded);
    println!("iterations  : {}", outcome.iterations);
    println!("tier events : {} degenerate activations", outcome.degenerate_events);

    let stats = engine.last_run_stats().expect("stats recorded after a run");
    println!("\n--- hardware run statistics ---");
    println!("cycles        : {}", stats.cycles);
    println!("latency       : {:.2} us", stats.latency_s * 1e6);
    println!("tier switches : {}", stats.tier_switches);
    println!("ADC converts  : {}", stats.adc_conversions);
    println!("energy        : {:.3} nJ total", stats.energy.total() * 1e9);
    print!("{}", stats.energy);

    // Contrast with the deterministic baseline resonator.
    let mut baseline = BaselineResonator::new(2_000, 7);
    let base_out = baseline.factorize(&problem);
    println!(
        "baseline resonator: solved={} in {} iterations{}",
        base_out.solved,
        base_out.iterations,
        base_out
            .cycle
            .map(|c| format!(" (limit cycle of period {})", c.period()))
            .unwrap_or_default()
    );
}
