//! Multi-object scenes: factorizing a *superposition* of products with
//! the explain-away decoder (`resonator::superposed`) on the simulated
//! H3DFact hardware — the paper's "search in superposition" taken one
//! level up, toward the complex combinatorial problems its Sec. V-E
//! envisions.
//!
//! ```sh
//! cargo run --release --example multi_object
//! ```

use h3dfact::hdc::{bind_all, bundle, TieBreak};
use h3dfact::prelude::*;
use h3dfact::resonator::superposed::{explain_away, ExplainAwayConfig};

fn main() {
    let spec = ProblemSpec::new(3, 8, 1024);
    let mut rng = rng_from_seed(2_718);
    let books: Vec<Codebook> = (0..spec.factors)
        .map(|_| Codebook::random(spec.codebook_size, spec.dim, &mut rng))
        .collect();

    // Two objects with disjoint attribute values (shape/color/position).
    let object_a = vec![0usize, 2, 4];
    let object_b = vec![5usize, 6, 1];
    let compose = |idx: &[usize]| {
        bind_all(
            &idx.iter()
                .zip(&books)
                .map(|(&i, cb)| cb.vector(i).clone())
                .collect::<Vec<_>>(),
        )
    };
    let scene = bundle(&[compose(&object_a), compose(&object_b)], TieBreak::Parity);
    println!(
        "scene = [ object{:?} + object{:?} ] bundled into one {}-d vector",
        object_a, object_b, spec.dim
    );

    // The session's backend is a `Factorizer`, so the explain-away
    // decoder drives it directly.
    let mut session = Session::builder()
        .spec(spec)
        .backend(BackendKind::H3dFact)
        .seed(9)
        .max_iters(1_500)
        .build();
    let out = explain_away(
        session.backend_mut(),
        &books,
        &scene,
        &ExplainAwayConfig::default(),
    );

    println!("\nextracted objects (in pursuit order):");
    for (k, obj) in out.objects.iter().enumerate() {
        println!("  object {k}: attributes {obj:?}");
    }
    println!(
        "residue energy after explaining away: {:.2} of the input (tie positions are unexplainable)",
        out.residue_energy
    );
    println!("total factorizer iterations: {}", out.iterations);
    let truth = [object_a, object_b];
    println!(
        "ground truth recovered: {}",
        if out.matches(&truth) { "yes" } else { "no" }
    );
}
