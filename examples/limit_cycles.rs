//! Limit-cycle scenario (paper Fig. 2b): the same problem instance, run
//! deterministically (falls into a cycle) and stochastically (breaks
//! free), with the per-iteration trajectory printed.
//!
//! ```sh
//! cargo run --release --example limit_cycles
//! ```

use h3dfact::prelude::*;
use h3dfact::resonator::engine::{CycleAction, DegeneratePolicy};
use h3dfact::resonator::{Activation, LoopConfig};

fn main() {
    // A shape at the capacity edge, where the noise-free quantized
    // dynamics frequently collapse into an absorbing state.
    let spec = ProblemSpec::new(3, 24, 256);
    let mut found = None;
    for seed in 0..200 {
        let problem = FactorizationProblem::random(spec, &mut rng_from_seed(seed));
        // The noise-free twin of the H3DFact engine: same 4-bit quantized
        // readout, zero device noise, no random exploration.
        let mut cfg = LoopConfig::stochastic(2_000);
        cfg.degenerate = DegeneratePolicy::KeepPrevious;
        cfg.cycle_action = CycleAction::Abort;
        cfg.stop_on_fixed_point = true;
        let mut det = StochasticResonator::with_parts(
            cfg,
            0.0,
            Activation::noise_referenced(4, spec.dim, StochasticResonator::DEFAULT_LSB_SIGMAS),
            seed,
        );
        let out = det.factorize(&problem);
        if !out.solved && (out.cycle.is_some() || out.converged) {
            found = Some((problem, out, seed));
            break;
        }
    }
    let (problem, base_out, seed) = found.expect("a stuck instance exists in the first 200 seeds");

    println!("problem: F=3, M=24, D=256 (seed {seed})");
    match base_out.cycle {
        Some(cycle) => println!(
            "noise-free quantized factorizer: stuck — state first seen at iteration {}, revisited at {}, period {}",
            cycle.first_seen,
            cycle.detected_at,
            cycle.period()
        ),
        None => println!(
            "noise-free quantized factorizer: stuck in a wrong fixed point at iteration {}",
            base_out.iterations
        ),
    }

    // Same instance, stochastic engine, trajectory recorded.
    let mut cfg = LoopConfig::stochastic(4_000);
    cfg.record_trajectory = true;
    let mut stochastic = StochasticResonator::with_parts(
        cfg,
        StochasticResonator::CHIP_CELL_SIGMA * (spec.dim as f64).sqrt(),
        h3dfact::resonator::Activation::noise_referenced(
            4,
            spec.dim,
            StochasticResonator::DEFAULT_LSB_SIGMAS,
        ),
        seed ^ 0x5EED,
    );
    let out = stochastic.factorize(&problem);
    println!(
        "stochastic factorizer: solved={} at iteration {:?} ({} state revisits along the way)",
        out.solved, out.solved_at, out.revisits
    );

    if !out.cosines.is_empty() {
        println!("\nper-factor |cosine to truth| along the stochastic trajectory:");
        let n = out.cosines.len();
        let marks: Vec<usize> = (0..8).map(|i| i * (n - 1).max(1) / 7).collect();
        for &t in &marks {
            let cs = &out.cosines[t];
            let bars: String = cs
                .iter()
                .map(|c| {
                    let lvl = (c.abs() * 8.0).round() as usize;
                    char::from_u32(0x2581 + lvl.min(7) as u32).unwrap_or('?')
                })
                .collect();
            println!(
                "  iter {:>4}: {}  {:?}",
                t + 1,
                bars,
                cs.iter()
                    .map(|c| (c * 100.0).round() / 100.0)
                    .collect::<Vec<_>>()
            );
        }
    }
}
