//! Operational-capacity scenario (paper Table II, condensed): watch the
//! deterministic baseline collapse while the stochastic factorizer keeps
//! going, on a small grid that runs in about a minute.
//!
//! ```sh
//! cargo run --release --example capacity_sweep
//! ```

use h3dfact::prelude::*;
use h3dfact::resonator::{measure_cell, SweepConfig};

fn main() {
    let dim = 256;
    let trials = 16;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    println!("capacity sweep at D = {dim}, {trials} trials per cell\n");
    println!("  F   M   search-space | baseline acc | stochastic acc | stoch. mean iters");
    for (f, m, budget) in [
        (3usize, 16usize, 3_000usize),
        (3, 32, 5_000),
        (3, 48, 6_000),
        (3, 64, 8_000),
        (4, 16, 8_000),
        (4, 24, 12_000),
    ] {
        let spec = ProblemSpec::new(f, m, dim);
        let cfg = SweepConfig::parallel(trials, budget, 4_242 + m as u64, threads);
        // Backends come from the unified registry; `Box<dyn Backend>`
        // upcasts to the sweep's `Box<dyn Factorizer>`.
        let base = measure_cell(spec, &cfg, |s| {
            BackendKind::Baseline.instantiate(spec, budget, s, None, None)
        });
        let stoch = measure_cell(spec, &cfg, |s| {
            BackendKind::Stochastic.instantiate(spec, budget, s, None, None)
        });
        println!(
            "  {f}  {m:>3}   {:>12} |    {:>5.1} %   |     {:>5.1} %    | {:>10}",
            spec.search_space(),
            100.0 * base.accuracy(),
            100.0 * stoch.accuracy(),
            stoch
                .mean_iterations()
                .map(|x| format!("{x:.0}"))
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!("\nthe full Table II grid lives in `cargo bench --bench table2_accuracy`");
}
