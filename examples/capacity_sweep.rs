//! Operational-capacity scenario (paper Table II, condensed): watch the
//! deterministic baseline collapse while the stochastic factorizer keeps
//! going, on a small grid that runs in about a minute. Each cell is the
//! `CapacitySweep` workload — fresh random codebooks and ground truth per
//! trial — run through a session per backend, so the whole study threads
//! across cores with reproducible reports.
//!
//! ```sh
//! cargo run --release --example capacity_sweep
//! ```

use h3dfact::prelude::*;

fn main() {
    let dim = 256;
    let trials = 16;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    println!("capacity sweep at D = {dim}, {trials} trials per cell\n");
    println!("  F   M   search-space | baseline acc | stochastic acc | stoch. mean iters");
    for (f, m, budget) in [
        (3usize, 16usize, 3_000usize),
        (3, 32, 5_000),
        (3, 48, 6_000),
        (3, 64, 8_000),
        (4, 16, 8_000),
        (4, 24, 12_000),
    ] {
        let spec = ProblemSpec::new(f, m, dim);
        let run = |kind: BackendKind| -> WorkloadReport {
            let mut workload = CapacitySweep::new(spec, 4_242 + m as u64);
            Session::builder()
                .spec(spec)
                .backend(kind)
                .seed(4_242 + m as u64)
                .max_iters(budget)
                .threads(threads)
                .build()
                .run_workload(&mut workload, trials)
        };
        let base = run(BackendKind::Baseline);
        let stoch = run(BackendKind::Stochastic);
        println!(
            "  {f}  {m:>3}   {:>12} |    {:>5.1} %   |     {:>5.1} %    | {:>10}",
            spec.search_space(),
            100.0 * base.score,
            100.0 * stoch.score,
            stoch
                .metric("mean_iterations_solved")
                .map(|x| format!("{x:.0}"))
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!("\nthe full Table II grid lives in `cargo bench --bench table2_accuracy`");
}
