//! Visual-perception scenario (paper Fig. 7): disentangle the attributes
//! of RAVEN-style scenes arriving as *approximate* product vectors from a
//! simulated neural frontend, then solve full Raven's-Progressive-Matrices
//! puzzles neuro-symbolically — both driven through the session's unified
//! `Workload` layer, so scenes and puzzle panels batch and parallelize
//! like any other query stream.
//!
//! ```sh
//! cargo run --release --example visual_scene
//! ```

use h3dfact::perception::{AttributeSchema, NeuralFrontend};
use h3dfact::prelude::*;

fn main() {
    let schema = AttributeSchema::raven();
    let dim = 512;
    let spec = schema.problem_spec(dim);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "attribute schema: {:?} with cardinalities {:?}",
        schema.names(),
        schema.cardinalities()
    );

    // A frontend emitting ≈0.96-cosine embeddings (2 % component flips),
    // feeding a session on the algorithm-level stochastic backend (swap
    // `BackendKind::H3dFact` in for the device-accurate run). The session
    // threads across all cores; reports stay bit-identical to threads(1).
    let mut session = Session::builder()
        .spec(spec)
        .backend(BackendKind::Stochastic)
        .seed(5)
        .max_iters(3_000)
        .threads(threads)
        .build();
    let mut scenes =
        Perception::attributes(schema.clone(), dim, NeuralFrontend::paper_quality(3), 42);

    // Show a few individual scenes end to end over the workload's own
    // codebooks.
    println!("\n--- individual scenes ---");
    let mut rng = rng_from_seed(99);
    let books = scenes.codebooks().to_vec();
    for i in 0..5 {
        let scene = schema.sample(&mut rng);
        let frontend = NeuralFrontend::paper_quality(100 + i);
        let mut scene_rng = rng_from_seed(200 + i);
        let query = frontend.embed_with(&scene, &schema, &books, &mut scene_rng);
        let out = session.solve_query(&books, &query, Some(&scene.attributes));
        println!(
            "scene {i}: truth {:?} -> decoded {:?} ({} iterations{})",
            scene.attributes,
            out.decoded,
            out.iterations,
            if out.solved { "" } else { ", FAILED" }
        );
    }

    // Aggregate attribute-estimation accuracy (the paper's 99.4 % metric)
    // through the workload layer: one call batches, threads, and scores.
    let report = session.run_workload(&mut scenes, 60);
    println!("\n--- aggregate over {} scenes ---", report.units);
    println!(
        "attribute accuracy : {:.1} % (paper: 99.4 %)",
        100.0 * report.score
    );
    println!(
        "whole-scene accuracy: {:.1} %",
        100.0 * report.metric("scene_accuracy").unwrap_or(0.0)
    );
    println!(
        "mean iterations     : {:.1}",
        report.session.total_iterations as f64 / report.units.max(1) as f64
    );

    // Full neuro-symbolic RPM solve: each puzzle contributes sixteen panel
    // queries that fan out over the worker pool.
    let mut puzzles = Perception::puzzles(schema, dim, NeuralFrontend::paper_quality(3), 43);
    let report = session.run_workload(&mut puzzles, 12);
    println!(
        "\nRPM puzzles (8 candidates, chance 12.5 %): {:.0} % solved \
         ({} panel queries through the pool)",
        100.0 * report.score,
        report.session.problems
    );
}
