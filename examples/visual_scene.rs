//! Visual-perception scenario (paper Fig. 7): disentangle the attributes
//! of RAVEN-style scenes arriving as *approximate* product vectors from a
//! simulated neural frontend, then solve full Raven's-Progressive-Matrices
//! puzzles neuro-symbolically.
//!
//! ```sh
//! cargo run --release --example visual_scene
//! ```

use h3dfact::perception::{AttributeSchema, NeuralFrontend, PerceptionPipeline};
use h3dfact::prelude::*;

fn main() {
    let schema = AttributeSchema::raven();
    let dim = 512;
    let spec = schema.problem_spec(dim);
    println!(
        "attribute schema: {:?} with cardinalities {:?}",
        schema.names(),
        schema.cardinalities()
    );

    // A frontend emitting ≈0.96-cosine embeddings (2 % component flips),
    // feeding a session on the algorithm-level stochastic backend (swap
    // `BackendKind::H3dFact` in for the device-accurate run).
    let mut pipeline =
        PerceptionPipeline::new(schema.clone(), dim, NeuralFrontend::paper_quality(3), 42);
    let mut session = Session::builder()
        .spec(spec)
        .backend(BackendKind::Stochastic)
        .seed(5)
        .max_iters(3_000)
        .build();

    // Show a few individual scenes end to end.
    println!("\n--- individual scenes ---");
    let mut rng = rng_from_seed(99);
    for i in 0..5 {
        let scene = pipeline.schema().sample(&mut rng);
        let mut frontend = NeuralFrontend::paper_quality(100 + i);
        let query = frontend.embed(&scene, &schema, pipeline.codebooks());
        let out = session.solve_query(pipeline.codebooks(), &query, Some(&scene.attributes));
        println!(
            "scene {i}: truth {:?} -> decoded {:?} ({} iterations{})",
            scene.attributes,
            out.decoded,
            out.iterations,
            if out.solved { "" } else { ", FAILED" }
        );
    }

    // Aggregate attribute-estimation accuracy (the paper's 99.4 % metric);
    // the pipeline takes any `Factorizer`, so the session's backend plugs
    // straight in.
    let report = pipeline.attribute_accuracy(session.backend_mut(), 60);
    println!("\n--- aggregate over {} scenes ---", report.scenes);
    println!(
        "attribute accuracy : {:.1} % (paper: 99.4 %)",
        100.0 * report.attribute_accuracy
    );
    println!(
        "whole-scene accuracy: {:.1} %",
        100.0 * report.scene_accuracy
    );
    println!("mean iterations     : {:.1}", report.mean_iterations);

    // Full neuro-symbolic RPM solve.
    let acc = pipeline.solve_puzzles(session.backend_mut(), 12);
    println!(
        "\nRPM puzzles (8 candidates, chance 12.5 %): {:.0} % solved",
        100.0 * acc
    );
}
