//! The backend matrix: every factorization engine in the workspace driven
//! through the same `Session` API on the same workload — the Table II/III
//! comparison condensed into one run.
//!
//! ```sh
//! cargo run --release --example backend_matrix
//! ```

use h3dfact::prelude::*;

fn main() {
    let spec = ProblemSpec::new(3, 16, 512);
    let problems = 6;
    let budget = 2_000;
    println!(
        "F={} x M={} at D={}, {} problems per backend, budget {}\n",
        spec.factors, spec.codebook_size, spec.dim, problems, budget
    );
    println!(
        "  {:<14} {:>5}  {:>9}  {:>12}  {:>12}  caps",
        "backend", "acc", "mean-iter", "energy/prob", "latency/prob"
    );

    for kind in BackendKind::ALL {
        // Same seed everywhere: every backend sees the same codebooks and
        // the same per-problem queries.
        let mut session = Session::builder()
            .spec(spec)
            .backend(kind)
            .seed(99)
            .max_iters(budget)
            .build();
        let caps = {
            // Capability discovery through the trait object.
            let c = session.backend_mut().capabilities();
            format!(
                "{}{}{}{}",
                if c.stochastic { "s" } else { "-" },
                if c.energy_model { "e" } else { "-" },
                if c.latency_model { "l" } else { "-" },
                if c.native_batch { "b" } else { "-" },
            )
        };
        let report = session.run(problems);
        println!(
            "  {:<14} {:>4.0}%  {:>9}  {:>12}  {:>12}  {}",
            report.backend,
            100.0 * report.accuracy(),
            report
                .mean_iterations_solved()
                .map(|x| format!("{x:.0}"))
                .unwrap_or_else(|| "-".into()),
            report
                .energy_per_problem_j()
                .map(|e| format!("{:.2} nJ", e * 1e9))
                .unwrap_or_else(|| "-".into()),
            report
                .latency_per_problem_s()
                .map(|l| format!("{:.2} us", l * 1e6))
                .unwrap_or_else(|| "-".into()),
            caps,
        );
    }
    println!("\ncaps: s=stochastic exploration, e=energy model, l=latency model, b=native batch schedule");
    println!(
        "the deterministic engines (sram-2d, baseline-sw) share the limit-cycle accuracy ceiling;"
    );
    println!("the stochastic ones match each other, differing only in hardware cost.");
}
