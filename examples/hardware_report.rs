//! Hardware-design scenario: full PPA report of the three iso-capacity
//! designs (paper Table III), the PCM comparison (Sec. V-B), and a thermal
//! summary of the stack (Fig. 5).
//!
//! ```sh
//! cargo run --release --example hardware_report
//! ```

use h3dfact::arch3d::design::{build_report, DesignVariant};
use h3dfact::arch3d::floorplan::{digital_tier_floorplan, rram_tier_floorplan};
use h3dfact::h3dfact_core::pcm::PcmComparison;
use h3dfact::thermal::{embed_die_power, solve, Stack};

fn main() {
    println!("=== design reports (Table III style) ===\n");
    let mut reports = Vec::new();
    for variant in [
        DesignVariant::Sram2d,
        DesignVariant::Hybrid2d,
        DesignVariant::H3dThreeTier,
    ] {
        let r = build_report(variant);
        println!("{}", r.variant);
        println!(
            "  silicon        {:>8.3} mm^2 (footprint {:.3})",
            r.total_area_mm2, r.footprint_mm2
        );
        println!("  clock          {:>8.0} MHz", r.frequency_mhz);
        println!("  throughput     {:>8.2} TOPS", r.throughput_tops);
        println!(
            "  density        {:>8.1} TOPS/mm^2",
            r.compute_density_tops_mm2
        );
        println!("  efficiency     {:>8.1} TOPS/W", r.energy_eff_tops_w);
        println!("  ADCs / TSVs    {:>8} / {}", r.adc_count, r.tsv_count);
        for (name, area) in &r.tier_areas {
            println!("    {name:<38} {area:.4} mm^2");
        }
        println!();
        reports.push(r);
    }
    let h3d = &reports[2];
    println!(
        "headline: {:.1}x less silicon than hybrid 2D, {:.1}x compute density, {:.2}x energy efficiency vs SRAM 2D",
        h3d.area_saving_vs(&reports[1]),
        h3d.density_ratio(&reports[1]),
        h3d.efficiency_ratio(&reports[0])
    );

    println!("\n=== PCM in-memory factorizer comparison (iso-area) ===");
    let c = PcmComparison::paper_default();
    println!(
        "throughput {:.2}x, energy efficiency {:.2}x (paper: 1.78x / 1.48x)",
        c.throughput_ratio(),
        c.efficiency_ratio()
    );

    println!("\n=== thermal summary (Fig. 5 setup) ===");
    let iter_rate = h3d.frequency_mhz * 1e6 / h3d.cycles_per_iter as f64;
    let power = h3d.energy_per_iter_j * iter_rate;
    let die_side = h3d.footprint_mm2.sqrt() * 1e-3;
    let extent_mm = 0.78;
    let stack = Stack::paper_h3dfact(extent_mm);
    let dies = stack.die_layers();
    let die_n = 10;
    let (nx, ny) = (20, 20);
    let mut powers = vec![vec![]; stack.layers().len()];
    let thirds = power / 3.0;
    for (i, &z) in dies.iter().enumerate() {
        let fp = if i == 0 {
            digital_tier_floorplan("tier-1", die_side * 1e3, thirds)
        } else {
            rram_tier_floorplan("rram", die_side * 1e3, thirds)
        };
        powers[z] = embed_die_power(
            &fp.power_grid(die_n, die_n),
            die_n,
            die_side,
            nx,
            extent_mm * 1e-3,
        );
    }
    let field = solve(&stack, nx, ny, &powers, 25.0, 1e-6, 300_000);
    for &z in &dies {
        let s = field.layer_stats(z);
        println!(
            "  {:<22} mean {:>5.1} C (max {:>5.1} C)",
            stack.layers()[z].name,
            s.mean_c,
            s.max_c
        );
    }
    println!("  (RRAM retention limit: 100 C)");
}
