//! RAVEN-style Raven's Progressive Matrices: generation and rule-based
//! solving over factorized attribute estimates.
//!
//! A puzzle is a 3×3 grid of panels; each attribute evolves along every
//! row according to one hidden rule. The solver sees the first eight
//! panels (as *estimated* attribute tuples coming out of the factorizer)
//! plus eight candidate answers, induces the rule per attribute from the
//! first two rows, predicts the missing panel, and picks the best-matching
//! candidate — the symbolic half of the paper's neuro-symbolic pipeline.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::scene::{AttributeSchema, Scene};

/// A row rule for one attribute (value arithmetic is modular in the
/// attribute's cardinality).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RavenRule {
    /// The value is constant along each row.
    Constant,
    /// The value advances by `step` along the row.
    Progression(i64),
    /// Each row contains the same three values, rotated by the row index.
    DistributeThree,
}

impl RavenRule {
    /// Value at `(row, col)` given the row's starting value `start` (for
    /// `DistributeThree`, `start` indexes into the base set).
    fn value(self, start: usize, row: usize, col: usize, cardinality: usize) -> usize {
        let c = cardinality as i64;
        match self {
            RavenRule::Constant => start % cardinality,
            RavenRule::Progression(step) => {
                (((start as i64 + step * col as i64) % c + c) % c) as usize
            }
            RavenRule::DistributeThree => {
                // Base set {start, start+1, start+2}, rotated by row.
                let offset = (row + col) % 3;
                (start + offset) % cardinality
            }
        }
    }

    /// Checks whether this rule explains an observed row, returning the
    /// inferred `start` on success.
    fn fit_row(self, row_vals: &[usize; 3], row: usize, cardinality: usize) -> Option<usize> {
        for start in 0..cardinality {
            if (0..3).all(|col| self.value(start, row, col, cardinality) == row_vals[col]) {
                return Some(start);
            }
        }
        None
    }

    /// All candidate rules the solver considers.
    pub fn candidates() -> Vec<RavenRule> {
        vec![
            RavenRule::Constant,
            RavenRule::Progression(1),
            RavenRule::Progression(-1),
            RavenRule::Progression(2),
            RavenRule::DistributeThree,
        ]
    }
}

/// A generated puzzle: 8 context panels, 8 candidate answers, and the
/// correct answer index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RavenPuzzle {
    /// Context panels in row-major order (the 9th is withheld).
    pub context: Vec<Scene>,
    /// Candidate answer panels.
    pub candidates: Vec<Scene>,
    /// Index of the correct candidate.
    pub answer: usize,
    /// The hidden rule per attribute (for diagnostics).
    pub rules: Vec<RavenRule>,
}

impl RavenPuzzle {
    /// Generates a puzzle over `schema`.
    pub fn generate<R: Rng + ?Sized>(schema: &AttributeSchema, rng: &mut R) -> Self {
        let f = schema.len();
        // Pick a rule and per-row start value for every attribute.
        let rules: Vec<RavenRule> = (0..f)
            .map(|a| {
                let c = schema.cardinalities()[a];
                loop {
                    let r =
                        RavenRule::candidates()[rng.gen_range(0..RavenRule::candidates().len())];
                    // Rules must be well-posed for the cardinality.
                    let ok = match r {
                        RavenRule::Constant => true,
                        RavenRule::Progression(s) => c as i64 > s.abs() * 2,
                        RavenRule::DistributeThree => c >= 3,
                    };
                    if ok {
                        return r;
                    }
                }
            })
            .collect();
        let starts: Vec<[usize; 3]> = (0..f)
            .map(|a| {
                let c = schema.cardinalities()[a];
                [
                    rng.gen_range(0..c),
                    rng.gen_range(0..c),
                    rng.gen_range(0..c),
                ]
            })
            .collect();

        let panel = |row: usize, col: usize| -> Scene {
            Scene {
                attributes: (0..f)
                    .map(|a| rules[a].value(starts[a][row], row, col, schema.cardinalities()[a]))
                    .collect(),
            }
        };
        let mut grid: Vec<Scene> = Vec::with_capacity(9);
        for row in 0..3 {
            for col in 0..3 {
                grid.push(panel(row, col));
            }
        }
        let correct = grid.pop().expect("grid has 9 panels");

        // Candidates: the correct answer plus 7 single-attribute
        // perturbations.
        let n_candidates = 8;
        let answer = rng.gen_range(0..n_candidates);
        let mut candidates = Vec::with_capacity(n_candidates);
        for i in 0..n_candidates {
            if i == answer {
                candidates.push(correct.clone());
            } else {
                let mut s = correct.clone();
                let a = rng.gen_range(0..f);
                let c = schema.cardinalities()[a];
                let bump = 1 + rng.gen_range(0..c.max(2) - 1);
                s.attributes[a] = (s.attributes[a] + bump) % c;
                candidates.push(s);
            }
        }
        Self {
            context: grid,
            candidates,
            answer,
            rules,
        }
    }
}

/// Rule-induction solver over (possibly noisy) attribute estimates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RavenSolver;

impl RavenSolver {
    /// Predicts the missing panel's attributes from the eight context
    /// estimates: per attribute, find a rule consistent with rows 0 and 1,
    /// then extend it to row 2 using the first two panels of that row.
    /// Attributes with no consistent rule fall back to the row-2 mode.
    pub fn predict(&self, schema: &AttributeSchema, context: &[Vec<usize>]) -> Vec<usize> {
        assert_eq!(context.len(), 8, "need eight context panels");
        let f = schema.len();
        (0..f)
            .map(|a| {
                let c = schema.cardinalities()[a];
                let at = |p: usize| context[p][a];
                let row0 = [at(0), at(1), at(2)];
                let row1 = [at(3), at(4), at(5)];
                for rule in RavenRule::candidates() {
                    let fits =
                        rule.fit_row(&row0, 0, c).is_some() && rule.fit_row(&row1, 1, c).is_some();
                    if !fits {
                        continue;
                    }
                    // Infer row 2's start from its first two panels.
                    for start in 0..c {
                        if rule.value(start, 2, 0, c) == at(6)
                            && rule.value(start, 2, 1, c) == at(7)
                        {
                            return rule.value(start, 2, 2, c);
                        }
                    }
                }
                // Fallback: repeat the row's neighbour.
                at(7)
            })
            .collect()
    }

    /// Picks the candidate whose attributes best match the prediction.
    pub fn choose(&self, prediction: &[usize], candidates: &[Vec<usize>]) -> usize {
        candidates
            .iter()
            .enumerate()
            .max_by_key(|(_, cand)| cand.iter().zip(prediction).filter(|(a, b)| a == b).count())
            .map(|(i, _)| i)
            .expect("at least one candidate")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng::rng_from_seed;

    #[test]
    fn generated_puzzles_are_solvable_with_exact_estimates() {
        let schema = AttributeSchema::raven();
        let solver = RavenSolver;
        let mut rng = rng_from_seed(520);
        let mut correct = 0;
        let n = 100;
        for _ in 0..n {
            let p = RavenPuzzle::generate(&schema, &mut rng);
            let context: Vec<Vec<usize>> = p.context.iter().map(|s| s.attributes.clone()).collect();
            let candidates: Vec<Vec<usize>> =
                p.candidates.iter().map(|s| s.attributes.clone()).collect();
            let pred = solver.predict(&schema, &context);
            if solver.choose(&pred, &candidates) == p.answer {
                correct += 1;
            }
        }
        // With exact attribute estimates the symbolic solver should be
        // near-perfect (distractors differ in one attribute).
        assert!(correct >= 95, "solved {correct}/{n}");
    }

    #[test]
    fn progression_rule_wraps() {
        let r = RavenRule::Progression(1);
        assert_eq!(r.value(4, 0, 2, 5), 1);
        let fit = r.fit_row(&[3, 4, 0], 0, 5);
        assert_eq!(fit, Some(3));
    }

    #[test]
    fn constant_rule_fits_only_constant_rows() {
        let r = RavenRule::Constant;
        assert_eq!(r.fit_row(&[2, 2, 2], 1, 5), Some(2));
        assert_eq!(r.fit_row(&[2, 3, 2], 1, 5), None);
    }

    #[test]
    fn choose_prefers_exact_match() {
        let solver = RavenSolver;
        let pred = vec![1, 2, 3];
        let cands = vec![vec![1, 2, 0], vec![1, 2, 3], vec![0, 0, 0]];
        assert_eq!(solver.choose(&pred, &cands), 1);
    }
}
