//! The neural-frontend substitute: scene → approximate product vector.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use hdc::rng::rng_from_seed;
use hdc::{BipolarVector, Codebook};

use crate::scene::{AttributeSchema, Scene};

/// Parametric model of a trained perception network's output quality.
///
/// A trained ResNet-18 emitting holographic query vectors produces outputs
/// whose cosine to the ideal product is high but not perfect; a binary
/// symmetric channel with flip rate `p` yields `E[cos] = 1 − 2p`, so
/// `p = 0.02` models a ≈0.96-cosine frontend (the regime in which the
/// paper's chip-validated factorizer achieves >96 % one-shot accuracy).
/// Occasionally the network mis-embeds an object outright; `outlier_rate`
/// injects those hard failures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NeuralFrontend {
    /// Per-component flip probability of the emitted vector.
    pub flip_rate: f64,
    /// Probability that an embedding is replaced by an unrelated random
    /// vector (a frontend failure no factorizer can recover).
    pub outlier_rate: f64,
    seed: u64,
    #[serde(skip, default = "frontend_rng_default")]
    rng: StdRng,
}

// Expanded only by the real serde derive; the offline no-op derive under
// `vendor/serde` leaves the `#[serde(default = ...)]` attribute inert.
#[allow(dead_code)]
fn frontend_rng_default() -> StdRng {
    rng_from_seed(0)
}

impl NeuralFrontend {
    /// Creates a frontend model.
    ///
    /// # Panics
    ///
    /// Panics if rates are outside `[0, 1]`.
    pub fn new(flip_rate: f64, outlier_rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&flip_rate), "flip rate in [0,1]");
        assert!((0.0..=1.0).contains(&outlier_rate), "outlier rate in [0,1]");
        Self {
            flip_rate,
            outlier_rate,
            seed,
            rng: rng_from_seed(seed),
        }
    }

    /// The paper-regime frontend: 2 % flips, 0.1 % outright failures.
    pub fn paper_quality(seed: u64) -> Self {
        Self::new(0.02, 0.001, seed)
    }

    /// An ideal frontend (exact products) for ablations.
    pub fn ideal(seed: u64) -> Self {
        Self::new(0.0, 0.0, seed)
    }

    /// The seed this frontend was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Embeds a scene: composes the exact product over the codebooks and
    /// passes it through the quality channel, drawing noise from the
    /// frontend's internal rng (order-dependent across calls).
    pub fn embed(
        &mut self,
        scene: &Scene,
        schema: &AttributeSchema,
        codebooks: &[Codebook],
    ) -> BipolarVector {
        let mut rng = std::mem::replace(&mut self.rng, rng_from_seed(0));
        let v = self.embed_with(scene, schema, codebooks, &mut rng);
        self.rng = rng;
        v
    }

    /// Embeds a scene drawing all channel noise from a caller-supplied
    /// rng instead of the frontend's internal state. Given the same rng
    /// state this is a pure function of the scene — the form batch
    /// executors need so every item's embedding is independent of the
    /// order (or thread) it is produced on.
    pub fn embed_with<R: Rng + ?Sized>(
        &self,
        scene: &Scene,
        schema: &AttributeSchema,
        codebooks: &[Codebook],
        rng: &mut R,
    ) -> BipolarVector {
        let problem = scene.compose(schema, codebooks);
        if self.outlier_rate > 0.0 && rng.gen::<f64>() < self.outlier_rate {
            return BipolarVector::random(codebooks[0].dim(), rng);
        }
        problem.product().with_flip_noise(self.flip_rate, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::AttributeSchema;
    use hdc::rng::rng_from_seed;

    #[test]
    fn ideal_frontend_is_exact() {
        let schema = AttributeSchema::raven();
        let mut rng = rng_from_seed(510);
        let books = schema.codebooks(512, &mut rng);
        let scene = schema.sample(&mut rng);
        let mut fe = NeuralFrontend::ideal(1);
        let v = fe.embed(&scene, &schema, &books);
        assert_eq!(&v, scene.compose(&schema, &books).product());
    }

    #[test]
    fn paper_quality_cosine_near_096() {
        let schema = AttributeSchema::raven();
        let mut rng = rng_from_seed(511);
        let books = schema.codebooks(4096, &mut rng);
        let scene = schema.sample(&mut rng);
        let exact = scene.compose(&schema, &books).product().clone();
        let mut fe = NeuralFrontend::new(0.02, 0.0, 2);
        let v = fe.embed(&scene, &schema, &books);
        let cos = exact.cosine(&v);
        assert!((cos - 0.96).abs() < 0.03, "cos {cos}");
    }

    #[test]
    fn outliers_are_uncorrelated() {
        let schema = AttributeSchema::raven();
        let mut rng = rng_from_seed(512);
        let books = schema.codebooks(2048, &mut rng);
        let scene = schema.sample(&mut rng);
        let exact = scene.compose(&schema, &books).product().clone();
        let mut fe = NeuralFrontend::new(0.0, 1.0, 3);
        let v = fe.embed(&scene, &schema, &books);
        assert!(exact.cosine(&v).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "flip rate")]
    fn bad_rate_rejected() {
        let _ = NeuralFrontend::new(1.5, 0.0, 0);
    }
}
