//! Scenes over a fixed attribute schema.

use rand::Rng;
use serde::{Deserialize, Serialize};

use hdc::{Codebook, FactorizationProblem, ProblemSpec};

/// The attribute structure of a perception domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributeSchema {
    names: Vec<String>,
    cardinalities: Vec<usize>,
}

impl AttributeSchema {
    /// Creates a schema.
    ///
    /// # Panics
    ///
    /// Panics if the lists are empty, differ in length, or contain zero
    /// cardinalities.
    pub fn new(names: Vec<String>, cardinalities: Vec<usize>) -> Self {
        assert!(!names.is_empty(), "schema needs at least one attribute");
        assert_eq!(names.len(), cardinalities.len(), "schema shape mismatch");
        assert!(
            cardinalities.iter().all(|&c| c > 0),
            "cardinalities must be positive"
        );
        Self {
            names,
            cardinalities,
        }
    }

    /// The RAVEN single-object attribute space: type (5), size (6),
    /// color (10), position (9 grid cells) — after Zhang et al., CVPR'19.
    pub fn raven() -> Self {
        Self::new(
            vec![
                "type".into(),
                "size".into(),
                "color".into(),
                "position".into(),
            ],
            vec![5, 6, 10, 9],
        )
    }

    /// Attribute names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Attribute cardinalities.
    pub fn cardinalities(&self) -> &[usize] {
        &self.cardinalities
    }

    /// Number of attributes (`F`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Always false (schemas are non-empty by construction).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Generates codebooks for every attribute at dimension `dim`. All
    /// books share the padded size `max(cardinalities)` so the factorizer
    /// sees uniform hardware shapes; entries beyond an attribute's
    /// cardinality are unused codevectors.
    pub fn codebooks<R: Rng + ?Sized>(&self, dim: usize, rng: &mut R) -> Vec<Codebook> {
        let m = self.max_cardinality();
        (0..self.len())
            .map(|_| Codebook::random(m, dim, rng))
            .collect()
    }

    /// Largest cardinality (the shared codebook size).
    pub fn max_cardinality(&self) -> usize {
        *self
            .cardinalities
            .iter()
            .max()
            .expect("schema is non-empty")
    }

    /// The factorization problem shape induced at dimension `dim`.
    pub fn problem_spec(&self, dim: usize) -> ProblemSpec {
        ProblemSpec::new(self.len(), self.max_cardinality(), dim)
    }

    /// Samples a random scene.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Scene {
        Scene {
            attributes: self
                .cardinalities
                .iter()
                .map(|&c| rng.gen_range(0..c))
                .collect(),
        }
    }
}

/// One perceived object: a value per attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Scene {
    /// Attribute value indices, aligned with the schema.
    pub attributes: Vec<usize>,
}

impl Scene {
    /// Composes the exact holographic product vector of this scene.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or attribute values exceed codebook sizes.
    pub fn compose(
        &self,
        schema: &AttributeSchema,
        codebooks: &[Codebook],
    ) -> FactorizationProblem {
        assert_eq!(self.attributes.len(), schema.len(), "scene shape mismatch");
        let spec = schema.problem_spec(codebooks[0].dim());
        FactorizationProblem::compose(spec, codebooks.to_vec(), self.attributes.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng::rng_from_seed;

    #[test]
    fn raven_schema_shape() {
        let s = AttributeSchema::raven();
        assert_eq!(s.len(), 4);
        assert_eq!(s.max_cardinality(), 10);
        assert_eq!(s.problem_spec(512).factors, 4);
        assert_eq!(s.problem_spec(512).codebook_size, 10);
    }

    #[test]
    fn samples_respect_cardinalities() {
        let s = AttributeSchema::raven();
        let mut rng = rng_from_seed(500);
        for _ in 0..100 {
            let scene = s.sample(&mut rng);
            for (v, &c) in scene.attributes.iter().zip(s.cardinalities()) {
                assert!(v < &c);
            }
        }
    }

    #[test]
    fn compose_roundtrip() {
        let s = AttributeSchema::raven();
        let mut rng = rng_from_seed(501);
        let books = s.codebooks(512, &mut rng);
        let scene = s.sample(&mut rng);
        let p = scene.compose(&s, &books);
        assert_eq!(p.true_indices(), scene.attributes.as_slice());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn schema_rejects_mismatched_lists() {
        let _ = AttributeSchema::new(vec!["a".into()], vec![1, 2]);
    }
}
