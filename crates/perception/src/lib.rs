//! Synthetic holographic perception tasks (paper Sec. V-E, Fig. 7).
//!
//! The paper's end-to-end demonstration pairs a ResNet-18 frontend with
//! H3DFact: the network maps a RAVEN image panel to an *approximate
//! product hypervector* over known attribute codebooks (type, size,
//! color, position), and the factorizer disentangles it back into
//! attribute values (99.4 % attribute-estimation accuracy).
//!
//! Neither RAVEN images nor a trained ResNet are available offline, and
//! the factorizer never consumes pixels — only the approximate product
//! vector. This crate therefore substitutes the *scene → vector* stage
//! with a parametric model: scenes are sampled from the RAVEN attribute
//! schema, composed exactly, and corrupted by a binary symmetric channel
//! whose flip rate mimics the trained frontend's output quality
//! (`NeuralFrontend`). The downstream code path — noisy product in,
//! attributes out — is identical to the paper's.
//!
//! A RAVEN-style Raven's-Progressive-Matrices generator and solver
//! ([`raven`]) completes the neuro-symbolic story: panel attributes are
//! estimated by factorization, per-attribute rules are induced from the
//! 3×3 context, and the missing panel is predicted and matched against
//! candidate answers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frontend;
pub mod pipeline;
pub mod raven;
pub mod scene;

pub use frontend::NeuralFrontend;
pub use pipeline::{PerceptionPipeline, PerceptionReport};
pub use raven::{RavenPuzzle, RavenRule, RavenSolver};
pub use scene::{AttributeSchema, Scene};
