//! The end-to-end neuro-symbolic pipeline of Fig. 7.
//!
//! Scenes → (simulated) neural frontend → noisy product hypervectors →
//! factorizer → attribute estimates → (optionally) RPM rule induction.

use serde::{Deserialize, Serialize};

use hdc::rng::stream_rng;
use hdc::Codebook;
use resonator::engine::Factorizer;

use crate::frontend::NeuralFrontend;
use crate::raven::{RavenPuzzle, RavenSolver};
use crate::scene::AttributeSchema;

/// Accuracy summary of an attribute-estimation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerceptionReport {
    /// Scenes evaluated.
    pub scenes: usize,
    /// Fraction of individual attributes estimated correctly (the paper's
    /// 99.4 % metric).
    pub attribute_accuracy: f64,
    /// Fraction of scenes with *all* attributes correct.
    pub scene_accuracy: f64,
    /// Mean factorizer iterations per scene.
    pub mean_iterations: f64,
}

/// The pipeline: schema + codebooks + frontend.
pub struct PerceptionPipeline {
    schema: AttributeSchema,
    codebooks: Vec<Codebook>,
    frontend: NeuralFrontend,
    seed: u64,
}

impl PerceptionPipeline {
    /// Builds the pipeline with freshly sampled codebooks.
    pub fn new(schema: AttributeSchema, dim: usize, frontend: NeuralFrontend, seed: u64) -> Self {
        let mut rng = stream_rng(seed, 0);
        let codebooks = schema.codebooks(dim, &mut rng);
        Self {
            schema,
            codebooks,
            frontend,
            seed,
        }
    }

    /// The attribute schema.
    pub fn schema(&self) -> &AttributeSchema {
        &self.schema
    }

    /// The shared attribute codebooks.
    pub fn codebooks(&self) -> &[Codebook] {
        &self.codebooks
    }

    /// Estimates attributes for `n` random scenes through `engine` and
    /// scores them against ground truth (paper Sec. V-E).
    pub fn attribute_accuracy(
        &mut self,
        engine: &mut dyn Factorizer,
        n: usize,
    ) -> PerceptionReport {
        assert!(n > 0, "need at least one scene");
        let mut attr_correct = 0usize;
        let mut scene_correct = 0usize;
        let mut iterations = 0usize;
        let f = self.schema.len();
        for i in 0..n {
            let mut rng = stream_rng(self.seed, 1000 + i as u64);
            let scene = self.schema.sample(&mut rng);
            let query = self.frontend.embed(&scene, &self.schema, &self.codebooks);
            let out =
                engine.factorize_query(&self.codebooks, &query, Some(scene.attributes.as_slice()));
            iterations += out.iterations;
            let correct = out
                .decoded
                .iter()
                .zip(&scene.attributes)
                .filter(|(a, b)| a == b)
                .count();
            attr_correct += correct;
            if correct == f {
                scene_correct += 1;
            }
        }
        PerceptionReport {
            scenes: n,
            attribute_accuracy: attr_correct as f64 / (n * f) as f64,
            scene_accuracy: scene_correct as f64 / n as f64,
            mean_iterations: iterations as f64 / n as f64,
        }
    }

    /// Solves `n` RPM puzzles end-to-end: every context panel and every
    /// candidate is embedded by the frontend and factorized (no ground
    /// truth leaks into the estimates); the symbolic solver then predicts
    /// and matches. Returns the puzzle-level accuracy.
    pub fn solve_puzzles(&mut self, engine: &mut dyn Factorizer, n: usize) -> f64 {
        assert!(n > 0, "need at least one puzzle");
        let solver = RavenSolver;
        let mut correct = 0usize;
        for i in 0..n {
            let mut rng = stream_rng(self.seed, 50_000 + i as u64);
            let puzzle = RavenPuzzle::generate(&self.schema, &mut rng);
            let estimate = |scene: &crate::scene::Scene,
                            frontend: &mut NeuralFrontend,
                            engine: &mut dyn Factorizer|
             -> Vec<usize> {
                let q = frontend.embed(scene, &self.schema, &self.codebooks);
                engine.factorize_query(&self.codebooks, &q, None).decoded
            };
            let context: Vec<Vec<usize>> = puzzle
                .context
                .iter()
                .map(|s| estimate(s, &mut self.frontend, engine))
                .collect();
            let candidates: Vec<Vec<usize>> = puzzle
                .candidates
                .iter()
                .map(|s| estimate(s, &mut self.frontend, engine))
                .collect();
            let pred = solver.predict(&self.schema, &context);
            if solver.choose(&pred, &candidates) == puzzle.answer {
                correct += 1;
            }
        }
        correct as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resonator::StochasticResonator;

    #[test]
    fn attribute_estimation_is_accurate_in_paper_regime() {
        let schema = AttributeSchema::raven();
        let dim = 512;
        let spec = schema.problem_spec(dim);
        let mut pipeline =
            PerceptionPipeline::new(schema, dim, NeuralFrontend::paper_quality(7), 600);
        let mut engine = StochasticResonator::paper_default(spec, 2000, 8);
        let report = pipeline.attribute_accuracy(&mut engine, 60);
        assert!(
            report.attribute_accuracy > 0.93,
            "attribute accuracy {}",
            report.attribute_accuracy
        );
        assert!(report.mean_iterations < 2000.0);
    }

    #[test]
    fn ideal_frontend_gives_perfect_scenes() {
        let schema = AttributeSchema::raven();
        let dim = 512;
        let spec = schema.problem_spec(dim);
        let mut pipeline = PerceptionPipeline::new(schema, dim, NeuralFrontend::ideal(9), 601);
        let mut engine = StochasticResonator::paper_default(spec, 2000, 10);
        let report = pipeline.attribute_accuracy(&mut engine, 20);
        assert!(
            report.scene_accuracy >= 0.95,
            "scene accuracy {}",
            report.scene_accuracy
        );
    }

    #[test]
    fn puzzles_solve_end_to_end() {
        let schema = AttributeSchema::raven();
        let dim = 512;
        let spec = schema.problem_spec(dim);
        let mut pipeline =
            PerceptionPipeline::new(schema, dim, NeuralFrontend::paper_quality(11), 602);
        let mut engine = StochasticResonator::paper_default(spec, 1500, 12);
        let acc = pipeline.solve_puzzles(&mut engine, 10);
        assert!(acc >= 0.7, "puzzle accuracy {acc}");
    }
}
