//! The end-to-end neuro-symbolic pipeline of Fig. 7.
//!
//! Scenes → (simulated) neural frontend → noisy product hypervectors →
//! factorizer → attribute estimates → (optionally) RPM rule induction.

use serde::{Deserialize, Serialize};

use hdc::rng::{derive_seed, stream_rng};
use hdc::Codebook;
use resonator::engine::Factorizer;

use crate::frontend::NeuralFrontend;
use crate::raven::{RavenPuzzle, RavenSolver};
use crate::scene::AttributeSchema;

/// Stream namespace for attribute-estimation scenes. Namespaces are mixed
/// into the seed through `derive_seed`, so the attribute and puzzle
/// streams can never collide regardless of how many items either side
/// draws (the old scheme's flat `1000 + i` / `50_000 + i` offsets
/// overlapped from `i = 49_000` on).
const STREAM_ATTRIBUTES: u64 = 0x5CEE_A77B;
/// Stream namespace for RPM puzzle generation.
const STREAM_PUZZLES: u64 = 0x5CEE_B422;

/// Accuracy summary of an attribute-estimation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerceptionReport {
    /// Scenes evaluated.
    pub scenes: usize,
    /// Fraction of individual attributes estimated correctly (the paper's
    /// 99.4 % metric).
    pub attribute_accuracy: f64,
    /// Fraction of scenes with *all* attributes correct.
    pub scene_accuracy: f64,
    /// Mean factorizer iterations per scene.
    pub mean_iterations: f64,
}

/// The pipeline: schema + codebooks + frontend.
pub struct PerceptionPipeline {
    schema: AttributeSchema,
    codebooks: Vec<Codebook>,
    frontend: NeuralFrontend,
    seed: u64,
    /// Evaluation calls issued so far. Every `attribute_accuracy` /
    /// `solve_puzzles` call draws its scenes from a fresh epoch stream —
    /// repeated calls score fresh scenes instead of silently re-scoring
    /// the same ones (the same epoch discipline `Session` applies to
    /// problem generation).
    epoch: u64,
}

impl PerceptionPipeline {
    /// Builds the pipeline with freshly sampled codebooks.
    pub fn new(schema: AttributeSchema, dim: usize, frontend: NeuralFrontend, seed: u64) -> Self {
        let mut rng = stream_rng(seed, 0);
        let codebooks = schema.codebooks(dim, &mut rng);
        Self {
            schema,
            codebooks,
            frontend,
            seed,
            epoch: 0,
        }
    }

    /// Evaluation epochs issued so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Master seed for the next epoch of `namespace`, advancing the epoch.
    fn next_epoch_seed(&mut self, namespace: u64) -> u64 {
        let master = derive_seed(derive_seed(self.seed, namespace), self.epoch);
        self.epoch += 1;
        master
    }

    /// The attribute schema.
    pub fn schema(&self) -> &AttributeSchema {
        &self.schema
    }

    /// The shared attribute codebooks.
    pub fn codebooks(&self) -> &[Codebook] {
        &self.codebooks
    }

    /// Estimates attributes for `n` random scenes through `engine` and
    /// scores them against ground truth (paper Sec. V-E).
    pub fn attribute_accuracy(
        &mut self,
        engine: &mut dyn Factorizer,
        n: usize,
    ) -> PerceptionReport {
        assert!(n > 0, "need at least one scene");
        let master = self.next_epoch_seed(STREAM_ATTRIBUTES);
        let mut attr_correct = 0usize;
        let mut scene_correct = 0usize;
        let mut iterations = 0usize;
        let f = self.schema.len();
        for i in 0..n {
            let mut rng = stream_rng(master, i as u64);
            let scene = self.schema.sample(&mut rng);
            let query = self
                .frontend
                .embed_with(&scene, &self.schema, &self.codebooks, &mut rng);
            let out =
                engine.factorize_query(&self.codebooks, &query, Some(scene.attributes.as_slice()));
            iterations += out.iterations;
            let correct = out
                .decoded
                .iter()
                .zip(&scene.attributes)
                .filter(|(a, b)| a == b)
                .count();
            attr_correct += correct;
            if correct == f {
                scene_correct += 1;
            }
        }
        PerceptionReport {
            scenes: n,
            attribute_accuracy: attr_correct as f64 / (n * f) as f64,
            scene_accuracy: scene_correct as f64 / n as f64,
            mean_iterations: iterations as f64 / n as f64,
        }
    }

    /// Solves `n` RPM puzzles end-to-end: every context panel and every
    /// candidate is embedded by the frontend and factorized (no ground
    /// truth leaks into the estimates); the symbolic solver then predicts
    /// and matches. Returns the puzzle-level accuracy.
    pub fn solve_puzzles(&mut self, engine: &mut dyn Factorizer, n: usize) -> f64 {
        assert!(n > 0, "need at least one puzzle");
        let master = self.next_epoch_seed(STREAM_PUZZLES);
        let solver = RavenSolver;
        let mut correct = 0usize;
        for i in 0..n {
            let mut rng = stream_rng(master, i as u64);
            let puzzle = RavenPuzzle::generate(&self.schema, &mut rng);
            let mut estimate = |scene: &crate::scene::Scene| -> Vec<usize> {
                let q = self
                    .frontend
                    .embed_with(scene, &self.schema, &self.codebooks, &mut rng);
                engine.factorize_query(&self.codebooks, &q, None).decoded
            };
            let context: Vec<Vec<usize>> = puzzle.context.iter().map(&mut estimate).collect();
            let candidates: Vec<Vec<usize>> = puzzle.candidates.iter().map(&mut estimate).collect();
            let pred = solver.predict(&self.schema, &context);
            if solver.choose(&pred, &candidates) == puzzle.answer {
                correct += 1;
            }
        }
        correct as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resonator::StochasticResonator;

    #[test]
    fn attribute_estimation_is_accurate_in_paper_regime() {
        let schema = AttributeSchema::raven();
        let dim = 512;
        let spec = schema.problem_spec(dim);
        let mut pipeline =
            PerceptionPipeline::new(schema, dim, NeuralFrontend::paper_quality(7), 600);
        let mut engine = StochasticResonator::paper_default(spec, 2000, 8);
        let report = pipeline.attribute_accuracy(&mut engine, 60);
        assert!(
            report.attribute_accuracy > 0.93,
            "attribute accuracy {}",
            report.attribute_accuracy
        );
        assert!(report.mean_iterations < 2000.0);
    }

    #[test]
    fn ideal_frontend_gives_perfect_scenes() {
        let schema = AttributeSchema::raven();
        let dim = 512;
        let spec = schema.problem_spec(dim);
        let mut pipeline = PerceptionPipeline::new(schema, dim, NeuralFrontend::ideal(9), 601);
        let mut engine = StochasticResonator::paper_default(spec, 2000, 10);
        let report = pipeline.attribute_accuracy(&mut engine, 20);
        assert!(
            report.scene_accuracy >= 0.95,
            "scene accuracy {}",
            report.scene_accuracy
        );
    }

    /// Records every query it is asked to factorize and returns a fixed
    /// dummy outcome — lets tests observe exactly which scenes a pipeline
    /// evaluation drew.
    struct QueryProbe {
        queries: Vec<hdc::BipolarVector>,
    }

    impl Factorizer for QueryProbe {
        fn factorize_query(
            &mut self,
            codebooks: &[Codebook],
            query: &hdc::BipolarVector,
            _truth: Option<&[usize]>,
        ) -> resonator::engine::FactorizationOutcome {
            self.queries.push(query.clone());
            resonator::engine::FactorizationOutcome {
                solved: false,
                iterations: 1,
                solved_at: None,
                converged: false,
                decoded: vec![0; codebooks.len()],
                cycle: None,
                revisits: 0,
                degenerate_events: 0,
                correct_at: Vec::new(),
                cosines: Vec::new(),
                times: Default::default(),
            }
        }
    }

    #[test]
    fn consecutive_evaluations_see_fresh_scenes() {
        // The epoch counter must advance the scene stream: calling
        // `attribute_accuracy` twice (or `solve_puzzles` after it) may
        // never re-score the queries of the previous call.
        let schema = AttributeSchema::raven();
        let mut pipeline =
            PerceptionPipeline::new(schema, 256, NeuralFrontend::paper_quality(7), 610);
        let mut probe = QueryProbe {
            queries: Vec::new(),
        };
        let n = 12;
        let _ = pipeline.attribute_accuracy(&mut probe, n);
        let first: Vec<_> = probe.queries.drain(..).collect();
        assert_eq!(pipeline.epoch(), 1);
        let _ = pipeline.attribute_accuracy(&mut probe, n);
        let second: Vec<_> = probe.queries.drain(..).collect();
        assert_eq!(pipeline.epoch(), 2);
        for (i, q) in second.iter().enumerate() {
            assert!(
                !first.contains(q),
                "scene {i} of the second call re-scored a first-call scene"
            );
        }
        // Puzzle streams live in their own namespace: none of the 16
        // panel queries of puzzle 0 may collide with attribute scenes.
        let _ = pipeline.solve_puzzles(&mut probe, 1);
        for q in &probe.queries {
            assert!(
                !first.contains(q) && !second.contains(q),
                "puzzle panels must not reuse attribute-scene streams"
            );
        }
    }

    #[test]
    fn same_seed_pipelines_replay_identically() {
        // Determinism across pipeline instances: same seed, same calls,
        // same queries — epoching only separates calls *within* one
        // instance.
        let mk = || {
            PerceptionPipeline::new(
                AttributeSchema::raven(),
                256,
                NeuralFrontend::paper_quality(7),
                611,
            )
        };
        let (mut a, mut b) = (mk(), mk());
        let mut pa = QueryProbe {
            queries: Vec::new(),
        };
        let mut pb = QueryProbe {
            queries: Vec::new(),
        };
        let _ = a.attribute_accuracy(&mut pa, 8);
        let _ = a.solve_puzzles(&mut pa, 2);
        let _ = b.attribute_accuracy(&mut pb, 8);
        let _ = b.solve_puzzles(&mut pb, 2);
        assert_eq!(pa.queries, pb.queries);
    }

    #[test]
    fn puzzles_solve_end_to_end() {
        let schema = AttributeSchema::raven();
        let dim = 512;
        let spec = schema.problem_spec(dim);
        let mut pipeline =
            PerceptionPipeline::new(schema, dim, NeuralFrontend::paper_quality(11), 602);
        let mut engine = StochasticResonator::paper_default(spec, 1500, 12);
        let acc = pipeline.solve_puzzles(&mut engine, 10);
        assert!(acc >= 0.7, "puzzle accuracy {acc}");
    }
}
