//! Thermal-calibration sweep: steady-state die temperatures vs the package
//! lateral extent, for the Fig. 5 setup. Used to pick the extent knob that
//! lands the paper's 44–48 °C operating band at the measured chip power.

use thermal::{solve, Stack};

fn main() {
    let (nx, ny) = (12, 12);
    println!("tier temperatures vs package extent (16 mW total, Fig. 5 stack)");
    for extent in [0.6, 0.7, 0.78, 0.9, 1.0, 1.2] {
        let stack = Stack::paper_h3dfact(extent);
        let dies = stack.die_layers();
        let mut p = vec![vec![]; stack.layers().len()];
        for (i, &d) in dies.iter().enumerate() {
            let w = [0.006, 0.005, 0.005][i];
            p[d] = vec![w / (nx * ny) as f64; nx * ny];
        }
        let f = solve(&stack, nx, ny, &p, 25.0, 1e-8, 300_000);
        let t1 = f.layer_stats(dies[0]);
        let t3 = f.layer_stats(dies[2]);
        println!(
            "  extent {extent:>4.2} mm: tier-1 {:>5.1} C, tier-3 {:>5.1} C ({} sweeps)",
            t1.mean_c, t3.mean_c, f.sweeps
        );
    }
}
