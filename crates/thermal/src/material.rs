//! Material thermal properties.

use serde::{Deserialize, Serialize};

/// A homogeneous material with isotropic thermal conductivity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Material {
    /// Material name.
    pub name: String,
    /// Thermal conductivity, W/(m·K).
    pub conductivity_w_mk: f64,
}

impl Material {
    /// Creates a material.
    ///
    /// # Panics
    ///
    /// Panics if the conductivity is not positive.
    pub fn new(name: impl Into<String>, conductivity_w_mk: f64) -> Self {
        assert!(conductivity_w_mk > 0.0, "conductivity must be positive");
        Self {
            name: name.into(),
            conductivity_w_mk,
        }
    }

    /// Bulk silicon (~130 W/m·K at operating temperature).
    pub fn silicon() -> Self {
        Self::new("silicon", 130.0)
    }

    /// Thermal interface material (paste/pad class, ~4 W/m·K).
    pub fn tim() -> Self {
        Self::new("TIM", 4.0)
    }

    /// Organic package substrate (effective, ~15 W/m·K with vias).
    pub fn package() -> Self {
        Self::new("package", 15.0)
    }

    /// FR-4 printed circuit board (effective through-plane, ~0.8 W/m·K).
    pub fn pcb() -> Self {
        Self::new("PCB", 0.8)
    }

    /// C4 bump / underfill layer (effective, ~2 W/m·K).
    pub fn bump_layer() -> Self {
        Self::new("bumps", 2.0)
    }

    /// Hybrid-bond / BEOL dielectric layer (effective, ~1.5 W/m·K; copper
    /// bond pads raise it above pure oxide).
    pub fn bond_layer() -> Self {
        Self::new("bond", 1.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_sensibly() {
        assert!(Material::silicon().conductivity_w_mk > Material::package().conductivity_w_mk);
        assert!(Material::package().conductivity_w_mk > Material::tim().conductivity_w_mk);
        assert!(Material::tim().conductivity_w_mk > Material::bond_layer().conductivity_w_mk);
        assert!(Material::bond_layer().conductivity_w_mk > Material::pcb().conductivity_w_mk);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_conductivity_rejected() {
        let _ = Material::new("vacuum", 0.0);
    }
}
