//! Finite-volume assembly and line-SOR steady-state solve.
//!
//! Discretization: each stack layer becomes one grid plane of `nx × ny`
//! cells (thin layers are resistive films — one plane suffices; thick
//! layers' vertical resistance is still captured exactly because vertical
//! conductance uses the full layer thickness, and their lateral spreading
//! uses the layer cross-section). Vertical neighbour conductance between
//! plane `k` and `k+1` is the series combination of each half-layer;
//! lateral conductance within a plane is `k·A_side/Δx`. The top plane adds
//! a convective conductance `h·A_cell` to ambient, as does the bottom.
//!
//! Solver: successive over-relaxation with **vertical line relaxation**.
//! Die stacks are violently anisotropic — 10 µm films at 130 W/(m·K)
//! against mm-scale package layers below 1 W/(m·K) — so the vertical
//! conductances dominate the lateral ones by orders of magnitude and
//! pointwise Gauss–Seidel needs tens of thousands of sweeps to propagate
//! heat through the strongly coupled column. Solving each `(x, y)` column
//! exactly per visit (a tridiagonal Thomas solve over `z`), then
//! over-relaxing, removes the stiff direction from the iteration entirely:
//! the same fields converge in tens of sweeps instead of tens of
//! thousands. Convergence is decided by the **true defect** — the
//! magnitude of the remaining Gauss–Seidel update implied by the energy
//! imbalance at each cell, in °C — not by the size of the last relaxation
//! step, which over-relaxation renders meaningless as an error measure.

use serde::{Deserialize, Serialize};

use crate::report::LayerStats;
use crate::stack::Stack;

/// A solved temperature field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemperatureField {
    nx: usize,
    ny: usize,
    nz: usize,
    /// Temperatures in °C, indexed `[z][y][x]` flattened.
    t_c: Vec<f64>,
    /// Final residual: the largest Gauss–Seidel update still implied by
    /// the discrete energy imbalance anywhere in the field, °C. Zero means
    /// the field satisfies the discretized balance exactly.
    pub residual: f64,
    /// Sweeps executed.
    pub sweeps: usize,
}

impl TemperatureField {
    /// Assembles a field from raw parts (used by the transient solver).
    ///
    /// # Panics
    ///
    /// Panics if `t_c.len() != nx·ny·nz`.
    pub fn from_raw(
        nx: usize,
        ny: usize,
        nz: usize,
        t_c: Vec<f64>,
        residual: f64,
        sweeps: usize,
    ) -> Self {
        assert_eq!(t_c.len(), nx * ny * nz, "field shape mismatch");
        Self {
            nx,
            ny,
            nz,
            t_c,
            residual,
            sweeps,
        }
    }

    /// Grid shape `(nx, ny, nz)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Temperature at `(x, y, z)`, °C.
    pub fn at(&self, x: usize, y: usize, z: usize) -> f64 {
        self.t_c[(z * self.ny + y) * self.nx + x]
    }

    /// The full plane of layer `z`, row-major.
    pub fn layer_plane(&self, z: usize) -> &[f64] {
        &self.t_c[z * self.nx * self.ny..(z + 1) * self.nx * self.ny]
    }

    /// Min/mean/max statistics of layer `z`.
    pub fn layer_stats(&self, z: usize) -> LayerStats {
        let plane = self.layer_plane(z);
        let min = plane.iter().copied().fold(f64::INFINITY, f64::min);
        let max = plane.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = plane.iter().sum::<f64>() / plane.len() as f64;
        LayerStats {
            min_c: min,
            mean_c: mean,
            max_c: max,
        }
    }
}

/// Solves the steady-state temperature field.
///
/// `layer_powers[z]` is either empty (no power) or an `nx·ny` row-major
/// grid of watts per cell for layer `z`.
///
/// # Panics
///
/// Panics if a non-empty power grid has the wrong length or contains
/// negative/non-finite entries.
pub fn solve(
    stack: &Stack,
    nx: usize,
    ny: usize,
    layer_powers: &[Vec<f64>],
    ambient_c: f64,
    tol_c: f64,
    max_sweeps: usize,
) -> TemperatureField {
    assert!(nx > 0 && ny > 0, "grid must be non-empty");
    let nz = stack.layers().len();
    assert_eq!(
        layer_powers.len(),
        nz,
        "need one power grid (possibly empty) per layer"
    );
    let cells = nx * ny;
    for (z, p) in layer_powers.iter().enumerate() {
        if !p.is_empty() {
            assert_eq!(p.len(), cells, "power grid {z} has wrong size");
            assert!(
                p.iter().all(|&w| w.is_finite() && w >= 0.0),
                "power grid {z} has invalid entries"
            );
        }
    }

    let dx = stack.extent_m / nx as f64;
    let dy = stack.extent_m / ny as f64;
    let a_cell = dx * dy;

    // Per-layer conductances.
    let k: Vec<f64> = stack
        .layers()
        .iter()
        .map(|l| l.material.conductivity_w_mk)
        .collect();
    let dz: Vec<f64> = stack.layers().iter().map(|l| l.thickness_m).collect();
    // Vertical conductance between plane z and z+1 (series half-layers).
    let g_vert: Vec<f64> = (0..nz.saturating_sub(1))
        .map(|z| {
            let r = dz[z] / (2.0 * k[z] * a_cell) + dz[z + 1] / (2.0 * k[z + 1] * a_cell);
            1.0 / r
        })
        .collect();
    // Lateral conductances within plane z.
    let g_lat_x: Vec<f64> = (0..nz).map(|z| k[z] * dz[z] * dy / dx).collect();
    let g_lat_y: Vec<f64> = (0..nz).map(|z| k[z] * dz[z] * dx / dy).collect();
    let g_top = stack.h_top_w_m2k * a_cell;
    let g_bottom = stack.h_bottom_w_m2k * a_cell;

    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut t = vec![ambient_c; cells * nz];

    // Loop-invariant per-cell diagonal conductance and constant source
    // (injected power plus boundary convection toward ambient).
    let mut g_diag = vec![0.0f64; cells * nz];
    let mut source = vec![0.0f64; cells * nz];
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let mut g = 0.0;
                if x > 0 {
                    g += g_lat_x[z];
                }
                if x + 1 < nx {
                    g += g_lat_x[z];
                }
                if y > 0 {
                    g += g_lat_y[z];
                }
                if y + 1 < ny {
                    g += g_lat_y[z];
                }
                if z > 0 {
                    g += g_vert[z - 1];
                }
                if z + 1 < nz {
                    g += g_vert[z];
                }
                let mut s = layer_powers[z].get(y * nx + x).copied().unwrap_or(0.0);
                if z == nz - 1 {
                    g += g_top;
                    s += g_top * ambient_c;
                }
                if z == 0 {
                    g += g_bottom;
                    s += g_bottom * ambient_c;
                }
                g_diag[idx(x, y, z)] = g;
                source[idx(x, y, z)] = s;
            }
        }
    }

    // Lateral in-flux into cell (x, y, z) at the current field state.
    let lateral_flux = |t: &[f64], x: usize, y: usize, z: usize| -> f64 {
        let mut flux = 0.0;
        if x > 0 {
            flux += g_lat_x[z] * t[idx(x - 1, y, z)];
        }
        if x + 1 < nx {
            flux += g_lat_x[z] * t[idx(x + 1, y, z)];
        }
        if y > 0 {
            flux += g_lat_y[z] * t[idx(x, y - 1, z)];
        }
        if y + 1 < ny {
            flux += g_lat_y[z] * t[idx(x, y + 1, z)];
        }
        flux
    };

    // Adaptive over-relaxation. The stack couples internally at
    // conductances orders of magnitude above the convective boundary, so
    // the iteration matrix's spectral radius sits extremely close to 1 and
    // any fixed small omega crawls. Run the first sweeps un-relaxed, read
    // the Gauss–Seidel rate `rho` off the measured defect decay, and jump
    // to the SOR-optimal factor `2 / (1 + sqrt(1 - rho))` (Young's formula
    // with `rho_Jacobi² = rho_GS` for consistently ordered systems). The
    // estimate repeats periodically, ratcheting omega upward only, in case
    // the early transient understated the asymptotic rate.
    let mut omega = 1.0;
    const ESTIMATE_EVERY: usize = 12;
    let mut window_start_residual = f64::INFINITY;
    let mut c_prime = vec![0.0f64; nz];
    let mut d_prime = vec![0.0f64; nz];
    let mut line = vec![0.0f64; nz];
    let mut residual = f64::INFINITY;
    let mut sweeps = 0;

    while sweeps < max_sweeps && residual > tol_c {
        // One line-SOR sweep: per (x, y) column, solve the vertical
        // tridiagonal system exactly (lateral fluxes frozen at the current
        // Gauss–Seidel state) with the Thomas algorithm, then over-relax
        // toward the line solution.
        for y in 0..ny {
            for x in 0..nx {
                for z in 0..nz {
                    let i = idx(x, y, z);
                    let rhs = source[i] + lateral_flux(&t, x, y, z);
                    let sub = if z > 0 { -g_vert[z - 1] } else { 0.0 };
                    let sup = if z + 1 < nz { -g_vert[z] } else { 0.0 };
                    if z == 0 {
                        c_prime[0] = sup / g_diag[i];
                        d_prime[0] = rhs / g_diag[i];
                    } else {
                        let m = g_diag[i] - sub * c_prime[z - 1];
                        c_prime[z] = sup / m;
                        d_prime[z] = (rhs - sub * d_prime[z - 1]) / m;
                    }
                }
                // Back-substitution (the last plane's `c_prime` is zero,
                // so the recurrence is uniform), then over-relaxation.
                let mut above = 0.0;
                for z in (0..nz).rev() {
                    above = d_prime[z] - c_prime[z] * above;
                    line[z] = above;
                }
                for (z, &solved) in line.iter().enumerate() {
                    let i = idx(x, y, z);
                    t[i] += omega * (solved - t[i]);
                }
            }
        }
        sweeps += 1;

        // True-defect convergence check: the Gauss–Seidel update each cell
        // would still take given the full current field, in °C. Unlike the
        // size of the last (over-relaxed) step, this goes to zero exactly
        // when the discrete energy balance is satisfied.
        residual = 0.0;
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let i = idx(x, y, z);
                    let mut flux = source[i] + lateral_flux(&t, x, y, z);
                    if z > 0 {
                        flux += g_vert[z - 1] * t[idx(x, y, z - 1)];
                    }
                    if z + 1 < nz {
                        flux += g_vert[z] * t[idx(x, y, z + 1)];
                    }
                    residual = residual.max((flux / g_diag[i] - t[i]).abs());
                }
            }
        }

        if sweeps % ESTIMATE_EVERY == 0 && residual > tol_c {
            if window_start_residual.is_finite() && residual > 0.0 {
                // Mean per-sweep contraction over the window. With omega
                // already applied the observed rate is the SOR rate; map it
                // back to the underlying Gauss–Seidel rate before applying
                // Young's formula (for omega = 1 this is the identity).
                let per_sweep = (residual / window_start_residual)
                    .powf(1.0 / ESTIMATE_EVERY as f64)
                    .clamp(0.0, 0.999_999);
                let rho_gs = if omega > 1.0 {
                    // rho_sor ≈ omega - 1 at/above optimum; below optimum
                    // invert Young's rate relation conservatively.
                    (per_sweep + omega - 1.0) / omega
                } else {
                    per_sweep
                };
                let next = 2.0 / (1.0 + (1.0 - rho_gs).max(1e-12).sqrt());
                omega = omega.max(next.clamp(1.0, 1.99));
            }
            window_start_residual = residual;
        }
    }

    TemperatureField {
        nx,
        ny,
        nz,
        t_c: t,
        residual,
        sweeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::Stack;

    fn uniform_power(stack: &Stack, nx: usize, ny: usize, die: usize, watts: f64) -> Vec<Vec<f64>> {
        let mut p = vec![vec![]; stack.layers().len()];
        p[die] = vec![watts / (nx * ny) as f64; nx * ny];
        p
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let stack = Stack::paper_h3dfact(1.0);
        let p = vec![vec![]; stack.layers().len()];
        let f = solve(&stack, 6, 6, &p, 25.0, 1e-9, 20_000);
        for z in 0..stack.layers().len() {
            let s = f.layer_stats(z);
            assert!((s.mean_c - 25.0).abs() < 1e-6, "layer {z}: {}", s.mean_c);
        }
    }

    #[test]
    fn power_raises_temperature_and_converges() {
        let stack = Stack::paper_h3dfact(1.0);
        let dies = stack.die_layers();
        let p = uniform_power(&stack, 8, 8, dies[1], 0.015);
        let f = solve(&stack, 8, 8, &p, 25.0, 1e-8, 100_000);
        assert!(f.residual <= 1e-8, "did not converge: {}", f.residual);
        let s = f.layer_stats(dies[1]);
        assert!(s.mean_c > 30.0 && s.mean_c < 90.0, "T = {}", s.mean_c);
        // Monotone: the powered die is the hottest die.
        assert!(s.mean_c >= f.layer_stats(dies[0]).mean_c);
    }

    #[test]
    fn energy_balance_holds() {
        // In steady state, total convected heat equals injected power.
        let stack = Stack::paper_h3dfact(1.0);
        let dies = stack.die_layers();
        let (nx, ny) = (8, 8);
        let watts = 0.010;
        let p = uniform_power(&stack, nx, ny, dies[2], watts);
        let f = solve(&stack, nx, ny, &p, 25.0, 1e-10, 200_000);
        let a_cell = (stack.extent_m / nx as f64) * (stack.extent_m / ny as f64);
        let nz = stack.layers().len();
        let mut out = 0.0;
        for y in 0..ny {
            for x in 0..nx {
                out += stack.h_top_w_m2k * a_cell * (f.at(x, y, nz - 1) - 25.0);
                out += stack.h_bottom_w_m2k * a_cell * (f.at(x, y, 0) - 25.0);
            }
        }
        assert!(
            (out - watts).abs() / watts < 0.02,
            "convected {out} vs injected {watts}"
        );
    }

    #[test]
    fn heat_source_location_shows_in_plane() {
        let stack = Stack::paper_h3dfact(1.0);
        let dies = stack.die_layers();
        let (nx, ny) = (10, 10);
        let mut p = vec![vec![]; stack.layers().len()];
        let mut grid = vec![0.0; nx * ny];
        // All power in the south-west corner cell.
        grid[0] = 0.010;
        p[dies[2]] = grid;
        let f = solve(&stack, nx, ny, &p, 25.0, 1e-9, 200_000);
        let z = dies[2];
        assert!(f.at(0, 0, z) > f.at(9, 9, z), "hot corner must be hotter");
    }

    #[test]
    fn more_power_means_hotter() {
        let stack = Stack::paper_2d(1.0);
        let die = stack.die_layers()[0];
        let f1 = solve(
            &stack,
            6,
            6,
            &uniform_power(&stack, 6, 6, die, 0.005),
            25.0,
            1e-9,
            100_000,
        );
        let f2 = solve(
            &stack,
            6,
            6,
            &uniform_power(&stack, 6, 6, die, 0.020),
            25.0,
            1e-9,
            100_000,
        );
        assert!(f2.layer_stats(die).mean_c > f1.layer_stats(die).mean_c + 1.0);
    }

    #[test]
    #[should_panic(expected = "wrong size")]
    fn mismatched_power_grid_rejected() {
        let stack = Stack::paper_2d(1.0);
        let mut p = vec![vec![]; stack.layers().len()];
        p[stack.die_layers()[0]] = vec![0.1; 5];
        let _ = solve(&stack, 6, 6, &p, 25.0, 1e-9, 1000);
    }
}
