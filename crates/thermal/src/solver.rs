//! Finite-volume assembly and Gauss–Seidel/SOR steady-state solve.
//!
//! Discretization: each stack layer becomes one grid plane of `nx × ny`
//! cells (thin layers are resistive films — one plane suffices; thick
//! layers' vertical resistance is still captured exactly because vertical
//! conductance uses the full layer thickness, and their lateral spreading
//! uses the layer cross-section). Vertical neighbour conductance between
//! plane `k` and `k+1` is the series combination of each half-layer;
//! lateral conductance within a plane is `k·A_side/Δx`. The top plane adds
//! a convective conductance `h·A_cell` to ambient, as does the bottom.

use serde::{Deserialize, Serialize};

use crate::report::LayerStats;
use crate::stack::Stack;

/// A solved temperature field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemperatureField {
    nx: usize,
    ny: usize,
    nz: usize,
    /// Temperatures in °C, indexed `[z][y][x]` flattened.
    t_c: Vec<f64>,
    /// Final residual (max absolute cell update of the last sweep, °C).
    pub residual: f64,
    /// Sweeps executed.
    pub sweeps: usize,
}

impl TemperatureField {
    /// Assembles a field from raw parts (used by the transient solver).
    ///
    /// # Panics
    ///
    /// Panics if `t_c.len() != nx·ny·nz`.
    pub fn from_raw(
        nx: usize,
        ny: usize,
        nz: usize,
        t_c: Vec<f64>,
        residual: f64,
        sweeps: usize,
    ) -> Self {
        assert_eq!(t_c.len(), nx * ny * nz, "field shape mismatch");
        Self {
            nx,
            ny,
            nz,
            t_c,
            residual,
            sweeps,
        }
    }

    /// Grid shape `(nx, ny, nz)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Temperature at `(x, y, z)`, °C.
    pub fn at(&self, x: usize, y: usize, z: usize) -> f64 {
        self.t_c[(z * self.ny + y) * self.nx + x]
    }

    /// The full plane of layer `z`, row-major.
    pub fn layer_plane(&self, z: usize) -> &[f64] {
        &self.t_c[z * self.nx * self.ny..(z + 1) * self.nx * self.ny]
    }

    /// Min/mean/max statistics of layer `z`.
    pub fn layer_stats(&self, z: usize) -> LayerStats {
        let plane = self.layer_plane(z);
        let min = plane.iter().copied().fold(f64::INFINITY, f64::min);
        let max = plane.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = plane.iter().sum::<f64>() / plane.len() as f64;
        LayerStats {
            min_c: min,
            mean_c: mean,
            max_c: max,
        }
    }
}

/// Solves the steady-state temperature field.
///
/// `layer_powers[z]` is either empty (no power) or an `nx·ny` row-major
/// grid of watts per cell for layer `z`.
///
/// # Panics
///
/// Panics if a non-empty power grid has the wrong length or contains
/// negative/non-finite entries.
pub fn solve(
    stack: &Stack,
    nx: usize,
    ny: usize,
    layer_powers: &[Vec<f64>],
    ambient_c: f64,
    tol_c: f64,
    max_sweeps: usize,
) -> TemperatureField {
    assert!(nx > 0 && ny > 0, "grid must be non-empty");
    let nz = stack.layers().len();
    assert_eq!(
        layer_powers.len(),
        nz,
        "need one power grid (possibly empty) per layer"
    );
    let cells = nx * ny;
    for (z, p) in layer_powers.iter().enumerate() {
        if !p.is_empty() {
            assert_eq!(p.len(), cells, "power grid {z} has wrong size");
            assert!(
                p.iter().all(|&w| w.is_finite() && w >= 0.0),
                "power grid {z} has invalid entries"
            );
        }
    }

    let dx = stack.extent_m / nx as f64;
    let dy = stack.extent_m / ny as f64;
    let a_cell = dx * dy;

    // Per-layer conductances.
    let k: Vec<f64> = stack
        .layers()
        .iter()
        .map(|l| l.material.conductivity_w_mk)
        .collect();
    let dz: Vec<f64> = stack.layers().iter().map(|l| l.thickness_m).collect();
    // Vertical conductance between plane z and z+1 (series half-layers).
    let g_vert: Vec<f64> = (0..nz.saturating_sub(1))
        .map(|z| {
            let r = dz[z] / (2.0 * k[z] * a_cell) + dz[z + 1] / (2.0 * k[z + 1] * a_cell);
            1.0 / r
        })
        .collect();
    // Lateral conductances within plane z.
    let g_lat_x: Vec<f64> = (0..nz).map(|z| k[z] * dz[z] * dy / dx).collect();
    let g_lat_y: Vec<f64> = (0..nz).map(|z| k[z] * dz[z] * dx / dy).collect();
    let g_top = stack.h_top_w_m2k * a_cell;
    let g_bottom = stack.h_bottom_w_m2k * a_cell;

    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut t = vec![ambient_c; cells * nz];
    let omega = 1.5; // SOR factor; stable for this M-matrix.
    let mut residual = f64::INFINITY;
    let mut sweeps = 0;

    while sweeps < max_sweeps && residual > tol_c {
        residual = 0.0;
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let mut g_sum = 0.0;
                    let mut flux = 0.0;
                    if x > 0 {
                        g_sum += g_lat_x[z];
                        flux += g_lat_x[z] * t[idx(x - 1, y, z)];
                    }
                    if x + 1 < nx {
                        g_sum += g_lat_x[z];
                        flux += g_lat_x[z] * t[idx(x + 1, y, z)];
                    }
                    if y > 0 {
                        g_sum += g_lat_y[z];
                        flux += g_lat_y[z] * t[idx(x, y - 1, z)];
                    }
                    if y + 1 < ny {
                        g_sum += g_lat_y[z];
                        flux += g_lat_y[z] * t[idx(x, y + 1, z)];
                    }
                    if z > 0 {
                        g_sum += g_vert[z - 1];
                        flux += g_vert[z - 1] * t[idx(x, y, z - 1)];
                    }
                    if z + 1 < nz {
                        g_sum += g_vert[z];
                        flux += g_vert[z] * t[idx(x, y, z + 1)];
                    }
                    if z == nz - 1 {
                        g_sum += g_top;
                        flux += g_top * ambient_c;
                    }
                    if z == 0 {
                        g_sum += g_bottom;
                        flux += g_bottom * ambient_c;
                    }
                    let p = layer_powers[z].get(y * nx + x).copied().unwrap_or(0.0);
                    let t_new = (flux + p) / g_sum;
                    let i = idx(x, y, z);
                    let delta = t_new - t[i];
                    t[i] += omega * delta;
                    residual = residual.max(delta.abs());
                }
            }
        }
        sweeps += 1;
    }

    TemperatureField {
        nx,
        ny,
        nz,
        t_c: t,
        residual,
        sweeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::Stack;

    fn uniform_power(stack: &Stack, nx: usize, ny: usize, die: usize, watts: f64) -> Vec<Vec<f64>> {
        let mut p = vec![vec![]; stack.layers().len()];
        p[die] = vec![watts / (nx * ny) as f64; nx * ny];
        p
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let stack = Stack::paper_h3dfact(1.0);
        let p = vec![vec![]; stack.layers().len()];
        let f = solve(&stack, 6, 6, &p, 25.0, 1e-9, 20_000);
        for z in 0..stack.layers().len() {
            let s = f.layer_stats(z);
            assert!((s.mean_c - 25.0).abs() < 1e-6, "layer {z}: {}", s.mean_c);
        }
    }

    #[test]
    fn power_raises_temperature_and_converges() {
        let stack = Stack::paper_h3dfact(1.0);
        let dies = stack.die_layers();
        let p = uniform_power(&stack, 8, 8, dies[1], 0.015);
        let f = solve(&stack, 8, 8, &p, 25.0, 1e-8, 100_000);
        assert!(f.residual <= 1e-8, "did not converge: {}", f.residual);
        let s = f.layer_stats(dies[1]);
        assert!(s.mean_c > 30.0 && s.mean_c < 90.0, "T = {}", s.mean_c);
        // Monotone: the powered die is the hottest die.
        assert!(s.mean_c >= f.layer_stats(dies[0]).mean_c);
    }

    #[test]
    fn energy_balance_holds() {
        // In steady state, total convected heat equals injected power.
        let stack = Stack::paper_h3dfact(1.0);
        let dies = stack.die_layers();
        let (nx, ny) = (8, 8);
        let watts = 0.010;
        let p = uniform_power(&stack, nx, ny, dies[2], watts);
        let f = solve(&stack, nx, ny, &p, 25.0, 1e-10, 200_000);
        let a_cell = (stack.extent_m / nx as f64) * (stack.extent_m / ny as f64);
        let nz = stack.layers().len();
        let mut out = 0.0;
        for y in 0..ny {
            for x in 0..nx {
                out += stack.h_top_w_m2k * a_cell * (f.at(x, y, nz - 1) - 25.0);
                out += stack.h_bottom_w_m2k * a_cell * (f.at(x, y, 0) - 25.0);
            }
        }
        assert!(
            (out - watts).abs() / watts < 0.02,
            "convected {out} vs injected {watts}"
        );
    }

    #[test]
    fn heat_source_location_shows_in_plane() {
        let stack = Stack::paper_h3dfact(1.0);
        let dies = stack.die_layers();
        let (nx, ny) = (10, 10);
        let mut p = vec![vec![]; stack.layers().len()];
        let mut grid = vec![0.0; nx * ny];
        // All power in the south-west corner cell.
        grid[0] = 0.010;
        p[dies[2]] = grid;
        let f = solve(&stack, nx, ny, &p, 25.0, 1e-9, 200_000);
        let z = dies[2];
        assert!(f.at(0, 0, z) > f.at(9, 9, z), "hot corner must be hotter");
    }

    #[test]
    fn more_power_means_hotter() {
        let stack = Stack::paper_2d(1.0);
        let die = stack.die_layers()[0];
        let f1 = solve(
            &stack,
            6,
            6,
            &uniform_power(&stack, 6, 6, die, 0.005),
            25.0,
            1e-9,
            100_000,
        );
        let f2 = solve(
            &stack,
            6,
            6,
            &uniform_power(&stack, 6, 6, die, 0.020),
            25.0,
            1e-9,
            100_000,
        );
        assert!(f2.layer_stats(die).mean_c > f1.layer_stats(die).mean_c + 1.0);
    }

    #[test]
    #[should_panic(expected = "wrong size")]
    fn mismatched_power_grid_rejected() {
        let stack = Stack::paper_2d(1.0);
        let mut p = vec![vec![]; stack.layers().len()];
        p[stack.die_layers()[0]] = vec![0.1; 5];
        let _ = solve(&stack, 6, 6, &p, 25.0, 1e-9, 1000);
    }
}
