//! Lumped per-layer RC network: the cheap thermal stepper.
//!
//! The full transient solver ([`crate::solve_transient`]) resolves a 3D
//! grid and is far too expensive to call once per resonator iteration.
//! This module collapses every stack layer to a single thermal node —
//! capacitance from the layer volume, conductance from the series
//! half-thickness path to each neighbour, convective films at the two
//! boundary faces — which is accurate enough to track the *trajectory* of
//! die heating across thousands of microsecond-scale iterations while
//! costing a handful of flops per step. The approximate tiled target
//! steps one of these alongside the resonator loop.

use serde::{Deserialize, Serialize};

use crate::stack::Stack;
use crate::transient::volumetric_heat_capacity_j_m3k;

/// One-node-per-layer RC model of a [`Stack`], integrated with explicit
/// Euler substeps chosen for unconditional stability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LumpedStack {
    /// Per-layer heat capacity, J/K.
    cap_j_k: Vec<f64>,
    /// Conductance between layer `i` and `i+1`, W/K (`len = layers − 1`).
    g_between_w_k: Vec<f64>,
    /// Conductance from the bottom layer to ambient (PCB film), W/K.
    g_bottom_w_k: f64,
    /// Conductance from the top layer to ambient (heat-sink film), W/K.
    g_top_w_k: f64,
    /// Indices of the die layers (power injection points).
    die_layers: Vec<usize>,
    /// Current node temperatures, °C.
    temps_c: Vec<f64>,
    ambient_c: f64,
    /// Largest explicit-Euler step that keeps every node stable, seconds.
    dt_stable_s: f64,
}

impl LumpedStack {
    /// Builds the RC network from a stack geometry, starting in thermal
    /// equilibrium at `ambient_c`.
    pub fn new(stack: &Stack, ambient_c: f64) -> Self {
        let area = stack.extent_m * stack.extent_m;
        let layers = stack.layers();
        let cap_j_k: Vec<f64> = layers
            .iter()
            .map(|l| volumetric_heat_capacity_j_m3k(&l.material.name) * area * l.thickness_m)
            .collect();
        // Series path through the two half-thicknesses meeting at the
        // interface.
        let g_between_w_k: Vec<f64> = layers
            .windows(2)
            .map(|w| {
                let r = w[0].thickness_m / (2.0 * w[0].material.conductivity_w_mk)
                    + w[1].thickness_m / (2.0 * w[1].material.conductivity_w_mk);
                area / r
            })
            .collect();
        let boundary = |layer: &crate::stack::StackLayer, h: f64| {
            if h <= 0.0 {
                return 0.0;
            }
            let r = layer.thickness_m / (2.0 * layer.material.conductivity_w_mk) + 1.0 / h;
            area / r
        };
        let g_bottom_w_k = boundary(&layers[0], stack.h_bottom_w_m2k);
        let g_top_w_k = boundary(&layers[layers.len() - 1], stack.h_top_w_m2k);

        // Stability bound: dt < min_i C_i / ΣG_i; halve it for margin.
        let n = layers.len();
        let mut dt_stable_s = f64::INFINITY;
        for i in 0..n {
            let mut g = 0.0;
            if i > 0 {
                g += g_between_w_k[i - 1];
            }
            if i + 1 < n {
                g += g_between_w_k[i];
            }
            if i == 0 {
                g += g_bottom_w_k;
            }
            if i == n - 1 {
                g += g_top_w_k;
            }
            if g > 0.0 {
                dt_stable_s = dt_stable_s.min(0.5 * cap_j_k[i] / g);
            }
        }

        Self {
            cap_j_k,
            g_between_w_k,
            g_bottom_w_k,
            g_top_w_k,
            die_layers: stack.die_layers(),
            temps_c: vec![ambient_c; n],
            ambient_c,
            dt_stable_s,
        }
    }

    /// Advances the network by `dt_s` seconds with `die_powers_w` watts
    /// dissipated in the die layers (bottom-up order, matching
    /// [`Stack::die_layers`]). Internally splits `dt_s` into stable Euler
    /// substeps.
    ///
    /// # Panics
    ///
    /// Panics if `die_powers_w.len()` disagrees with the stack's die count
    /// or `dt_s` is not positive.
    pub fn step(&mut self, die_powers_w: &[f64], dt_s: f64) {
        assert_eq!(
            die_powers_w.len(),
            self.die_layers.len(),
            "one power entry per die layer"
        );
        assert!(dt_s > 0.0, "time step must be positive");
        let substeps = (dt_s / self.dt_stable_s).ceil().max(1.0) as usize;
        // Bound the cost of one call: long idle intervals converge to the
        // steady state well before 10k substeps.
        let substeps = substeps.min(10_000);
        let dt = dt_s / substeps as f64;
        let n = self.temps_c.len();
        let mut flux = vec![0.0f64; n];
        for _ in 0..substeps {
            flux.fill(0.0);
            for (d, &li) in self.die_layers.iter().enumerate() {
                flux[li] += die_powers_w[d];
            }
            for (i, &g) in self.g_between_w_k.iter().enumerate() {
                let q = g * (self.temps_c[i] - self.temps_c[i + 1]);
                flux[i] -= q;
                flux[i + 1] += q;
            }
            flux[0] -= self.g_bottom_w_k * (self.temps_c[0] - self.ambient_c);
            flux[n - 1] -= self.g_top_w_k * (self.temps_c[n - 1] - self.ambient_c);
            for (i, &f) in flux.iter().enumerate() {
                self.temps_c[i] += dt * f / self.cap_j_k[i];
            }
        }
    }

    /// Current per-layer temperatures, bottom-up, °C.
    pub fn layer_temps_c(&self) -> &[f64] {
        &self.temps_c
    }

    /// Current die-layer temperatures, bottom-up, °C.
    pub fn die_temps_c(&self) -> Vec<f64> {
        self.die_layers.iter().map(|&i| self.temps_c[i]).collect()
    }

    /// Mean die temperature, °C — the scalar the cost reports record.
    pub fn mean_die_temp_c(&self) -> f64 {
        let d = self.die_layers.len();
        if d == 0 {
            return self.ambient_c;
        }
        self.die_layers
            .iter()
            .map(|&i| self.temps_c[i])
            .sum::<f64>()
            / d as f64
    }

    /// Hottest node in the stack, °C.
    pub fn peak_temp_c(&self) -> f64 {
        self.temps_c.iter().copied().fold(self.ambient_c, f64::max)
    }

    /// The ambient (and initial) temperature, °C.
    pub fn ambient_c(&self) -> f64 {
        self.ambient_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_power_stays_at_ambient() {
        let mut rc = LumpedStack::new(&Stack::paper_h3dfact(1.0), 25.0);
        rc.step(&[0.0, 0.0, 0.0], 1e-3);
        for &t in rc.layer_temps_c() {
            assert!((t - 25.0).abs() < 1e-12);
        }
        assert_eq!(rc.mean_die_temp_c(), 25.0);
    }

    #[test]
    fn heating_is_monotone_and_bounded() {
        let mut rc = LumpedStack::new(&Stack::paper_h3dfact(1.0), 25.0);
        let mut last = rc.mean_die_temp_c();
        for _ in 0..50 {
            rc.step(&[0.005, 0.01, 0.01], 1e-4);
            let now = rc.mean_die_temp_c();
            assert!(now >= last - 1e-9, "temperature must not oscillate down");
            assert!(now < 200.0, "explicit scheme must stay stable");
            last = now;
        }
        assert!(last > 25.0, "dies must heat under power");
        assert!(rc.peak_temp_c() >= last);
    }

    #[test]
    fn constant_power_approach_is_bounded_and_decaying() {
        // Drive only the top die: the rise must be physically plausible
        // and the approach to steady state must slow down window over
        // window (exponential relaxation, no runaway or oscillation).
        // The stack's time constant is seconds, so a unit test can't
        // affordably reach true steady state — the decaying-increment
        // property is what pins the RC behaviour.
        let stack = Stack::paper_h3dfact(1.0);
        let mut rc = LumpedStack::new(&stack, 25.0);
        let p = 0.02;
        let mut deltas = Vec::new();
        for _ in 0..4 {
            let before = rc.die_temps_c()[2];
            for _ in 0..100 {
                rc.step(&[0.0, 0.0, p], 5e-3);
            }
            deltas.push(rc.die_temps_c()[2] - before);
        }
        let rise = rc.die_temps_c()[2] - 25.0;
        assert!(rise > 0.5, "20 mW through film+TIM should rise >0.5°C");
        assert!(rise < 60.0, "rise implausibly large: {rise}");
        for w in deltas.windows(2) {
            assert!(w[1] > 0.0, "still heating toward steady state");
            assert!(
                w[1] < w[0],
                "approach must decay window over window: {deltas:?}"
            );
        }
    }

    #[test]
    fn determinism_across_instances() {
        let stack = Stack::paper_h3dfact(1.0);
        let mut a = LumpedStack::new(&stack, 25.0);
        let mut b = LumpedStack::new(&stack, 25.0);
        for _ in 0..20 {
            a.step(&[0.004, 0.008, 0.009], 2e-4);
            b.step(&[0.004, 0.008, 0.009], 2e-4);
        }
        assert_eq!(a.layer_temps_c(), b.layer_temps_c());
    }
}
