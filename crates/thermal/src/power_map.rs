//! Embedding die-level power maps into the package-level solver grid.
//!
//! The dies are far smaller than the package (tens of mm² of laminate
//! around ~0.03–0.5 mm² of silicon), so floorplan power maps are embedded
//! as a centered patch in the package grid; everything outside the die
//! dissipates nothing. This concentration is what makes the stacked design
//! run hotter than the 2D design at equal total power — the paper's
//! Fig. 5 comparison (46.8–47.8 °C for three stacked tiers vs 44 °C 2D).

/// Embeds a die power grid (row-major `die_n × die_n`, watts per cell)
/// as a centered patch of a `package_n × package_n` grid spanning
/// `extent_m`, given the die's side length `die_side_m`.
///
/// Power is conserved exactly: each package cell receives the sum of die
/// power falling within it (area-weighted overlap).
///
/// # Panics
///
/// Panics if shapes are inconsistent or the die is larger than the
/// package extent.
pub fn embed_die_power(
    die_grid: &[f64],
    die_n: usize,
    die_side_m: f64,
    package_n: usize,
    extent_m: f64,
) -> Vec<f64> {
    assert!(die_n > 0 && package_n > 0, "grids must be non-empty");
    assert_eq!(die_grid.len(), die_n * die_n, "die grid shape mismatch");
    assert!(
        die_side_m <= extent_m,
        "die ({die_side_m} m) larger than package extent ({extent_m} m)"
    );
    let mut out = vec![0.0f64; package_n * package_n];
    let offset = (extent_m - die_side_m) / 2.0;
    let die_dx = die_side_m / die_n as f64;
    let pkg_dx = extent_m / package_n as f64;
    for dy in 0..die_n {
        for dx_i in 0..die_n {
            let p = die_grid[dy * die_n + dx_i];
            if p == 0.0 {
                continue;
            }
            // Die cell extents in package coordinates.
            let x0 = offset + dx_i as f64 * die_dx;
            let x1 = x0 + die_dx;
            let y0 = offset + dy as f64 * die_dx;
            let y1 = y0 + die_dx;
            let ix0 = (x0 / pkg_dx).floor() as usize;
            let ix1 = ((x1 / pkg_dx).ceil() as usize).min(package_n);
            let iy0 = (y0 / pkg_dx).floor() as usize;
            let iy1 = ((y1 / pkg_dx).ceil() as usize).min(package_n);
            let cell_area = die_dx * die_dx;
            for iy in iy0..iy1 {
                let py0 = iy as f64 * pkg_dx;
                let py1 = py0 + pkg_dx;
                let oy = (y1.min(py1) - y0.max(py0)).max(0.0);
                if oy == 0.0 {
                    continue;
                }
                for ix in ix0..ix1 {
                    let px0 = ix as f64 * pkg_dx;
                    let px1 = px0 + pkg_dx;
                    let ox = (x1.min(px1) - x0.max(px0)).max(0.0);
                    if ox > 0.0 {
                        out[iy * package_n + ix] += p * (ox * oy) / cell_area;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_is_conserved() {
        let die = vec![0.001; 64];
        for pkg_n in [8, 12, 17] {
            let out = embed_die_power(&die, 8, 0.2e-3, pkg_n, 1.0e-3);
            let total: f64 = out.iter().sum();
            assert!((total - 0.064).abs() < 1e-12, "pkg {pkg_n}: {total}");
        }
    }

    #[test]
    fn power_lands_in_center() {
        let die = vec![0.010; 16];
        let out = embed_die_power(&die, 4, 0.2e-3, 10, 1.0e-3);
        // Corners of the package carry nothing.
        assert_eq!(out[0], 0.0);
        assert_eq!(out[9], 0.0);
        assert_eq!(out[90], 0.0);
        assert_eq!(out[99], 0.0);
        // Center cells carry the power.
        let mut center = 0.0;
        for y in 4..6 {
            for x in 4..6 {
                center += out[y * 10 + x];
            }
        }
        assert!(center > 0.0);
    }

    #[test]
    fn full_size_die_matches_direct() {
        let die = vec![0.002; 16];
        let out = embed_die_power(&die, 4, 1.0e-3, 4, 1.0e-3);
        for (a, b) in out.iter().zip(&die) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "larger than package")]
    fn oversized_die_rejected() {
        let die = vec![0.0; 4];
        let _ = embed_die_power(&die, 2, 2.0e-3, 4, 1.0e-3);
    }
}
