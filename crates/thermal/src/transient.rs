//! Transient thermal solve: temperature evolution under time-varying
//! power (HotSpot's transient mode).
//!
//! The steady-state map of Fig. 5 answers "how hot does it settle"; the
//! transient solver answers "how fast", which is what bounds duty-cycled
//! operation (tier switching, batch bursts). Discretization matches the
//! steady solver — one plane per layer, finite-volume conductances — plus
//! a per-cell heat capacity `C = c_v · V`. Time stepping is implicit
//! (backward Euler): each step solves `(C/Δt + G) T_{n+1} = C/Δt·T_n + P`
//! with the same Gauss–Seidel/SOR sweep, so arbitrarily large steps remain
//! stable and the long-time limit is exactly the steady solution.

use serde::{Deserialize, Serialize};

use crate::solver::TemperatureField;
use crate::stack::Stack;

/// Volumetric heat capacity of a layer material, J/(m³·K).
///
/// First-order values: silicon ≈ 1.63 MJ/m³K, organic laminates ≈ 1.8,
/// TIM ≈ 2.0, copper-loaded bump layers ≈ 2.5.
pub fn volumetric_heat_capacity_j_m3k(material_name: &str) -> f64 {
    match material_name {
        "silicon" => 1.63e6,
        "TIM" => 2.0e6,
        "package" => 1.8e6,
        "PCB" => 1.8e6,
        "bumps" => 2.5e6,
        "bond" => 2.2e6,
        _ => 1.8e6,
    }
}

/// A snapshot of the transient solution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientSample {
    /// Simulation time, seconds.
    pub t_s: f64,
    /// Temperature field at `t_s`.
    pub field: TemperatureField,
}

/// Integrates the stack's thermal response from a uniform `ambient_c`
/// start under constant `layer_powers`, sampling every `sample_every`
/// steps. Returns the samples (always including the final time).
///
/// # Panics
///
/// Panics on inconsistent inputs (mirrors [`crate::solve`]).
#[allow(clippy::too_many_arguments)]
pub fn solve_transient(
    stack: &Stack,
    nx: usize,
    ny: usize,
    layer_powers: &[Vec<f64>],
    ambient_c: f64,
    dt_s: f64,
    steps: usize,
    sample_every: usize,
) -> Vec<TransientSample> {
    assert!(nx > 0 && ny > 0, "grid must be non-empty");
    assert!(dt_s > 0.0, "time step must be positive");
    assert!(steps > 0, "need at least one step");
    let nz = stack.layers().len();
    assert_eq!(layer_powers.len(), nz, "one power grid per layer");
    let cells = nx * ny;
    for (z, p) in layer_powers.iter().enumerate() {
        if !p.is_empty() {
            assert_eq!(p.len(), cells, "power grid {z} has wrong size");
        }
    }

    let dx = stack.extent_m / nx as f64;
    let dy = stack.extent_m / ny as f64;
    let a_cell = dx * dy;
    let k: Vec<f64> = stack
        .layers()
        .iter()
        .map(|l| l.material.conductivity_w_mk)
        .collect();
    let dz: Vec<f64> = stack.layers().iter().map(|l| l.thickness_m).collect();
    let g_vert: Vec<f64> = (0..nz.saturating_sub(1))
        .map(|z| {
            let r = dz[z] / (2.0 * k[z] * a_cell) + dz[z + 1] / (2.0 * k[z + 1] * a_cell);
            1.0 / r
        })
        .collect();
    let g_lat_x: Vec<f64> = (0..nz).map(|z| k[z] * dz[z] * dy / dx).collect();
    let g_lat_y: Vec<f64> = (0..nz).map(|z| k[z] * dz[z] * dx / dy).collect();
    let g_top = stack.h_top_w_m2k * a_cell;
    let g_bottom = stack.h_bottom_w_m2k * a_cell;
    // Heat capacity per cell, J/K.
    let cap: Vec<f64> = stack
        .layers()
        .iter()
        .map(|l| volumetric_heat_capacity_j_m3k(&l.material.name) * a_cell * l.thickness_m)
        .collect();

    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut t = vec![ambient_c; cells * nz];
    let mut samples = Vec::new();
    let omega = 1.4;

    for step in 1..=steps {
        // Backward-Euler step: inner SOR sweeps on the augmented system.
        let t_prev = t.clone();
        let mut residual = f64::INFINITY;
        let mut sweeps = 0;
        while sweeps < 8_000 && residual > 1e-7 {
            residual = 0.0;
            for z in 0..nz {
                let c_dt = cap[z] / dt_s;
                for y in 0..ny {
                    for x in 0..nx {
                        let mut g_sum = c_dt;
                        let mut flux = c_dt * t_prev[idx(x, y, z)];
                        if x > 0 {
                            g_sum += g_lat_x[z];
                            flux += g_lat_x[z] * t[idx(x - 1, y, z)];
                        }
                        if x + 1 < nx {
                            g_sum += g_lat_x[z];
                            flux += g_lat_x[z] * t[idx(x + 1, y, z)];
                        }
                        if y > 0 {
                            g_sum += g_lat_y[z];
                            flux += g_lat_y[z] * t[idx(x, y - 1, z)];
                        }
                        if y + 1 < ny {
                            g_sum += g_lat_y[z];
                            flux += g_lat_y[z] * t[idx(x, y + 1, z)];
                        }
                        if z > 0 {
                            g_sum += g_vert[z - 1];
                            flux += g_vert[z - 1] * t[idx(x, y, z - 1)];
                        }
                        if z + 1 < nz {
                            g_sum += g_vert[z];
                            flux += g_vert[z] * t[idx(x, y, z + 1)];
                        }
                        if z == nz - 1 {
                            g_sum += g_top;
                            flux += g_top * ambient_c;
                        }
                        if z == 0 {
                            g_sum += g_bottom;
                            flux += g_bottom * ambient_c;
                        }
                        let p = layer_powers[z].get(y * nx + x).copied().unwrap_or(0.0);
                        let t_new = (flux + p) / g_sum;
                        let i = idx(x, y, z);
                        let delta = t_new - t[i];
                        t[i] += omega * delta;
                        residual = residual.max(delta.abs());
                    }
                }
            }
            sweeps += 1;
        }

        if step % sample_every == 0 || step == steps {
            samples.push(TransientSample {
                t_s: step as f64 * dt_s,
                field: TemperatureField::from_raw(nx, ny, nz, t.clone(), residual, sweeps),
            });
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve;

    fn uniform(stack: &Stack, nx: usize, ny: usize, die: usize, watts: f64) -> Vec<Vec<f64>> {
        let mut p = vec![vec![]; stack.layers().len()];
        p[die] = vec![watts / (nx * ny) as f64; nx * ny];
        p
    }

    #[test]
    fn transient_heats_monotonically() {
        let stack = Stack::paper_h3dfact(0.8);
        let die = stack.die_layers()[2];
        let p = uniform(&stack, 5, 5, die, 0.015);
        let samples = solve_transient(&stack, 5, 5, &p, 25.0, 0.05, 12, 3);
        assert!(samples.len() >= 4);
        let temps: Vec<f64> = samples
            .iter()
            .map(|s| s.field.layer_stats(die).mean_c)
            .collect();
        for w in temps.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "heating must be monotone: {temps:?}");
        }
        assert!(temps[0] > 25.0);
    }

    #[test]
    fn transient_approaches_steady_state() {
        let stack = Stack::paper_h3dfact(0.8);
        let die = stack.die_layers()[1];
        let p = uniform(&stack, 5, 5, die, 0.012);
        let steady = solve(&stack, 5, 5, &p, 25.0, 1e-9, 200_000);
        // The dominant time constant is the package/PCB mass: seconds.
        let samples = solve_transient(&stack, 5, 5, &p, 25.0, 0.5, 60, 60);
        let last = samples.last().unwrap();
        let t_tr = last.field.layer_stats(die).mean_c;
        let t_ss = steady.layer_stats(die).mean_c;
        assert!(
            (t_tr - t_ss).abs() < 0.05 * (t_ss - 25.0).max(0.1),
            "transient {t_tr} vs steady {t_ss}"
        );
    }

    #[test]
    fn thin_die_responds_much_faster_than_package() {
        // The die plane jumps within milliseconds; the full stack needs
        // seconds — the separation that makes tier-switch ripple invisible
        // in Fig. 5's steady map.
        let stack = Stack::paper_h3dfact(0.8);
        let die = stack.die_layers()[2];
        let p = uniform(&stack, 5, 5, die, 0.015);
        let early = solve_transient(&stack, 5, 5, &p, 25.0, 1e-3, 3, 3);
        let rise_early = early.last().unwrap().field.layer_stats(die).mean_c - 25.0;
        let late = solve_transient(&stack, 5, 5, &p, 25.0, 0.5, 40, 40);
        let rise_late = late.last().unwrap().field.layer_stats(die).mean_c - 25.0;
        assert!(
            rise_early > 0.005,
            "die must respond within ms: {rise_early}"
        );
        assert!(
            rise_late > 5.0 * rise_early,
            "package settling dominates: {rise_early} vs {rise_late}"
        );
    }

    #[test]
    #[should_panic(expected = "time step must be positive")]
    fn zero_dt_rejected() {
        let stack = Stack::paper_2d(0.8);
        let p = vec![vec![]; stack.layers().len()];
        let _ = solve_transient(&stack, 4, 4, &p, 25.0, 0.0, 1, 1);
    }
}
