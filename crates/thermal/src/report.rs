//! Reporting helpers: per-layer statistics and ASCII thermal maps.

use serde::{Deserialize, Serialize};

/// Min/mean/max of one layer's temperature plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerStats {
    /// Coolest cell, °C.
    pub min_c: f64,
    /// Mean, °C.
    pub mean_c: f64,
    /// Hottest cell, °C.
    pub max_c: f64,
}

impl LayerStats {
    /// Spread `max − min`, °C.
    pub fn spread_c(&self) -> f64 {
        self.max_c - self.min_c
    }
}

/// Renders a temperature plane as an ASCII heat map (the textual stand-in
/// for the paper's Fig. 5 color map). Hotter cells get denser glyphs.
pub fn render_ascii_map(plane: &[f64], nx: usize) -> String {
    assert!(
        nx > 0 && plane.len().is_multiple_of(nx),
        "plane shape mismatch"
    );
    let min = plane.iter().copied().fold(f64::INFINITY, f64::min);
    let max = plane.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let glyphs: &[u8] = b" .:-=+*#%@";
    let ny = plane.len() / nx;
    let mut out = String::with_capacity((nx + 1) * ny);
    // Render top row (largest y) first so "north" is up.
    for y in (0..ny).rev() {
        for x in 0..nx {
            let t = plane[y * nx + x];
            let level = if max > min {
                (((t - min) / (max - min)) * (glyphs.len() - 1) as f64).round() as usize
            } else {
                0
            };
            out.push(glyphs[level.min(glyphs.len() - 1)] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_spread() {
        let s = LayerStats {
            min_c: 40.0,
            mean_c: 44.0,
            max_c: 48.0,
        };
        assert_eq!(s.spread_c(), 8.0);
    }

    #[test]
    fn ascii_map_shape_and_extremes() {
        let plane = vec![0.0, 0.0, 0.0, 10.0];
        let map = render_ascii_map(&plane, 2);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), 2);
        // Hottest cell is at (x=1, y=1) → first rendered row, second column.
        assert_eq!(lines[0].as_bytes()[1], b'@');
        assert_eq!(lines[1].as_bytes()[0], b' ');
    }

    #[test]
    fn flat_plane_renders_uniform() {
        let plane = vec![25.0; 9];
        let map = render_ascii_map(&plane, 3);
        assert!(map.lines().all(|l| l == "   "));
    }
}
