//! Layer stacks: the vertical structure of the package assembly.

use serde::{Deserialize, Serialize};

use crate::material::Material;

/// What a layer is, for reporting purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerKind {
    /// An active die (may dissipate power).
    Die,
    /// Any passive layer (TIM, bond, package, PCB, bumps).
    Passive,
}

/// One layer of the stack, bottom-up.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackLayer {
    /// Layer name (used in reports).
    pub name: String,
    /// Material.
    pub material: Material,
    /// Thickness in metres.
    pub thickness_m: f64,
    /// Die or passive.
    pub kind: LayerKind,
}

/// A full vertical stack with lateral extent and boundary conditions.
///
/// The paper's Fig. 5 setup: 3 tiers, 100 µm bumping, 1 mm package, 2 mm
/// PCB, two 20 µm TIM layers, convective film coefficient 1000 W/(m²·°C)
/// at the top, ambient 25 °C. The lateral extent is not listed in the
/// paper; it is the package-spreading calibration knob (about 1 mm
/// reproduces the reported 44–48 °C range at the measured power).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stack {
    layers: Vec<StackLayer>,
    /// Lateral side length of the modeled region, metres.
    pub extent_m: f64,
    /// Convective film coefficient at the top surface, W/(m²·K).
    pub h_top_w_m2k: f64,
    /// Convective film coefficient at the bottom (PCB) surface.
    pub h_bottom_w_m2k: f64,
}

impl Stack {
    /// Builds a stack from explicit layers (bottom-up order).
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or any thickness is non-positive.
    pub fn new(
        layers: Vec<StackLayer>,
        extent_m: f64,
        h_top_w_m2k: f64,
        h_bottom_w_m2k: f64,
    ) -> Self {
        assert!(!layers.is_empty(), "stack needs at least one layer");
        assert!(
            layers.iter().all(|l| l.thickness_m > 0.0),
            "layer thicknesses must be positive"
        );
        assert!(extent_m > 0.0, "extent must be positive");
        assert!(h_top_w_m2k >= 0.0 && h_bottom_w_m2k >= 0.0);
        Self {
            layers,
            extent_m,
            h_top_w_m2k,
            h_bottom_w_m2k,
        }
    }

    /// The paper's three-tier H3DFact assembly (bottom-up: PCB, package,
    /// bumps, tier-1, bond, tier-2, bond, tier-3, TIM1, TIM2), with
    /// `extent_mm` of lateral package spreading.
    pub fn paper_h3dfact(extent_mm: f64) -> Self {
        let die = |name: &str| StackLayer {
            name: name.into(),
            material: Material::silicon(),
            thickness_m: 10e-6,
            kind: LayerKind::Die,
        };
        let passive = |name: &str, m: Material, t: f64| StackLayer {
            name: name.into(),
            material: m,
            thickness_m: t,
            kind: LayerKind::Passive,
        };
        Self::new(
            vec![
                passive("pcb", Material::pcb(), 2e-3),
                passive("package", Material::package(), 1e-3),
                passive("bumps", Material::bump_layer(), 100e-6),
                die("tier-1 (digital)"),
                passive("bond-12", Material::bond_layer(), 3e-6),
                die("tier-2 (RRAM proj)"),
                passive("bond-23", Material::bond_layer(), 3e-6),
                die("tier-3 (RRAM sim)"),
                passive("tim1", Material::tim(), 20e-6),
                passive("tim2", Material::tim(), 20e-6),
            ],
            extent_mm * 1e-3,
            1000.0,
            10.0,
        )
    }

    /// A single-die 2D assembly with the same packaging (the thermal
    /// comparison point: the paper quotes 44 °C for the 2D design).
    pub fn paper_2d(extent_mm: f64) -> Self {
        let mut layers = vec![
            StackLayer {
                name: "pcb".into(),
                material: Material::pcb(),
                thickness_m: 2e-3,
                kind: LayerKind::Passive,
            },
            StackLayer {
                name: "package".into(),
                material: Material::package(),
                thickness_m: 1e-3,
                kind: LayerKind::Passive,
            },
            StackLayer {
                name: "bumps".into(),
                material: Material::bump_layer(),
                thickness_m: 100e-6,
                kind: LayerKind::Passive,
            },
            StackLayer {
                name: "die (2D)".into(),
                material: Material::silicon(),
                thickness_m: 300e-6,
                kind: LayerKind::Die,
            },
        ];
        layers.push(StackLayer {
            name: "tim1".into(),
            material: Material::tim(),
            thickness_m: 20e-6,
            kind: LayerKind::Passive,
        });
        layers.push(StackLayer {
            name: "tim2".into(),
            material: Material::tim(),
            thickness_m: 20e-6,
            kind: LayerKind::Passive,
        });
        Self::new(layers, extent_mm * 1e-3, 1000.0, 10.0)
    }

    /// The layers, bottom-up.
    pub fn layers(&self) -> &[StackLayer] {
        &self.layers
    }

    /// Indices of the die layers, bottom-up.
    pub fn die_layers(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.kind == LayerKind::Die)
            .map(|(i, _)| i)
            .collect()
    }

    /// Total stack height in metres.
    pub fn height_m(&self) -> f64 {
        self.layers.iter().map(|l| l.thickness_m).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_stack_has_three_dies_in_order() {
        let s = Stack::paper_h3dfact(1.0);
        let dies = s.die_layers();
        assert_eq!(dies.len(), 3);
        // Tier-1 below tier-2 below tier-3 (paper Fig. 3: digital at the
        // bottom, similarity at the top).
        assert!(dies[0] < dies[1] && dies[1] < dies[2]);
        assert_eq!(s.layers()[dies[0]].name, "tier-1 (digital)");
        assert_eq!(s.layers()[dies[2]].name, "tier-3 (RRAM sim)");
    }

    #[test]
    fn stack_height_matches_fig5_setup() {
        let s = Stack::paper_h3dfact(1.0);
        // 2 mm PCB + 1 mm package + 0.1 mm bumps + 3 dies + 2 bonds + 2 TIM.
        let expect = 2e-3 + 1e-3 + 100e-6 + 3.0 * 10e-6 + 2.0 * 3e-6 + 2.0 * 20e-6;
        assert!((s.height_m() - expect).abs() < 1e-12);
    }

    #[test]
    fn two_d_stack_has_one_die() {
        assert_eq!(Stack::paper_2d(1.0).die_layers().len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_stack_rejected() {
        let _ = Stack::new(vec![], 1e-3, 1000.0, 0.0);
    }
}
