//! Steady-state 3D thermal solver for stacked-die systems.
//!
//! A HotSpot-6.0 substitute (the paper's Sec. V-C tool) built on the same
//! physics: the chip/package assembly is discretized into a 3D grid of
//! finite volumes, each with a thermal conductance to its neighbours
//! derived from layer materials and geometry; dissipated power enters the
//! die layers through rasterized floorplan power maps; the top surface
//! sheds heat through a convective film coefficient into ambient. The
//! steady-state temperature field solves the resulting linear system
//! (Gauss–Seidel with successive over-relaxation — the grids here are
//! small enough that simplicity beats sophistication).
//!
//! # Example
//!
//! ```
//! use thermal::{solve, Stack};
//!
//! let stack = Stack::paper_h3dfact(1.0);
//! // 13 mW in the middle die, uniformly spread.
//! let mut powers = vec![vec![]; stack.layers().len()];
//! let die = stack.die_layers()[1];
//! powers[die] = vec![0.013 / 64.0; 64];
//! let field = solve(&stack, 8, 8, &powers, 25.0, 1e-7, 50_000);
//! let t = field.layer_stats(die);
//! assert!(t.max_c > 25.0 && t.max_c < 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lumped;
pub mod material;
pub mod power_map;
pub mod report;
pub mod solver;
pub mod stack;
pub mod transient;

pub use lumped::LumpedStack;
pub use material::Material;
pub use power_map::embed_die_power;
pub use report::{render_ascii_map, LayerStats};
pub use solver::{solve, TemperatureField};
pub use stack::{LayerKind, Stack, StackLayer};
pub use transient::{solve_transient, TransientSample};
