//! Property-based tests for the thermal solver: the physics it must obey.

use proptest::prelude::*;
use thermal::{embed_die_power, solve, Stack};

fn uniform(stack: &Stack, nx: usize, ny: usize, die: usize, watts: f64) -> Vec<Vec<f64>> {
    let mut p = vec![vec![]; stack.layers().len()];
    p[die] = vec![watts / (nx * ny) as f64; nx * ny];
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn superposition_holds(w1 in 0.001f64..0.02, w2 in 0.001f64..0.02) {
        // The discretized system is linear: T(P1+P2) − amb =
        // (T(P1) − amb) + (T(P2) − amb).
        let stack = Stack::paper_h3dfact(0.8);
        let dies = stack.die_layers();
        let (nx, ny) = (6, 6);
        let p1 = uniform(&stack, nx, ny, dies[0], w1);
        let p2 = uniform(&stack, nx, ny, dies[2], w2);
        let mut p12 = p1.clone();
        p12[dies[2]] = p2[dies[2]].clone();
        let amb = 25.0;
        let f1 = solve(&stack, nx, ny, &p1, amb, 1e-9, 200_000);
        let f2 = solve(&stack, nx, ny, &p2, amb, 1e-9, 200_000);
        let f12 = solve(&stack, nx, ny, &p12, amb, 1e-9, 200_000);
        for z in 0..stack.layers().len() {
            let a = f1.layer_stats(z).mean_c - amb;
            let b = f2.layer_stats(z).mean_c - amb;
            let c = f12.layer_stats(z).mean_c - amb;
            prop_assert!((a + b - c).abs() < 0.02 * (a + b).max(0.1), "layer {z}");
        }
    }

    #[test]
    fn temperatures_above_ambient_and_scale(w in 0.002f64..0.05) {
        let stack = Stack::paper_2d(0.9);
        let die = stack.die_layers()[0];
        let f = solve(&stack, 6, 6, &uniform(&stack, 6, 6, die, w), 25.0, 1e-9, 200_000);
        let s = f.layer_stats(die);
        prop_assert!(s.min_c >= 25.0 - 1e-9);
        // Linearity: doubling power doubles the rise.
        let f2 = solve(&stack, 6, 6, &uniform(&stack, 6, 6, die, 2.0 * w), 25.0, 1e-9, 200_000);
        let rise = s.mean_c - 25.0;
        let rise2 = f2.layer_stats(die).mean_c - 25.0;
        prop_assert!((rise2 / rise - 2.0).abs() < 0.02, "rise ratio {}", rise2 / rise);
    }

    #[test]
    fn ambient_shift_is_pure_offset(amb in 0.0f64..60.0) {
        let stack = Stack::paper_2d(0.9);
        let die = stack.die_layers()[0];
        let p = uniform(&stack, 5, 5, die, 0.01);
        let f0 = solve(&stack, 5, 5, &p, 25.0, 1e-9, 200_000);
        let fa = solve(&stack, 5, 5, &p, amb, 1e-9, 200_000);
        let d0 = f0.layer_stats(die).mean_c - 25.0;
        let da = fa.layer_stats(die).mean_c - amb;
        prop_assert!((d0 - da).abs() < 0.01);
    }

    #[test]
    fn embed_conserves_any_power_map(n_die in 2usize..10, n_pkg in 4usize..20,
                                     seed in 0u64..100) {
        use hdc::rng::rng_from_seed;
        use rand::Rng;
        let mut rng = rng_from_seed(seed);
        let grid: Vec<f64> = (0..n_die * n_die).map(|_| rng.gen::<f64>() * 1e-3).collect();
        let total: f64 = grid.iter().sum();
        let out = embed_die_power(&grid, n_die, 0.2e-3, n_pkg, 1.0e-3);
        let out_total: f64 = out.iter().sum();
        prop_assert!((out_total - total).abs() < 1e-12 + 1e-9 * total);
    }
}
