//! Engine configuration.

use serde::{Deserialize, Serialize};

use cim::crossbar::Fidelity;
use cim::irdrop::IrDropModel;
use cim::noise::NoiseSpec;
use hdc::ProblemSpec;
use resonator::engine::LoopConfig;

/// Configuration of the simulated H3DFact engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct H3dFactConfig {
    /// Problem shape the hardware is provisioned for.
    pub spec: ProblemSpec,
    /// Rows per physical RRAM subarray (`d`; the paper uses 256). When the
    /// hypervector dimension exceeds `d`, codebooks fold across subarrays.
    pub subarray_rows: usize,
    /// ADC resolution for similarity readout (the paper uses 4 bits).
    pub adc_bits: u8,
    /// ADC LSB size in units of the random-similarity noise floor
    /// `sqrt(D)` (the `VTGT` tuning of Sec. V-D).
    pub lsb_sigmas: f64,
    /// Device noise model of the RRAM tiers.
    pub noise: NoiseSpec,
    /// Noise simulation fidelity.
    pub fidelity: Fidelity,
    /// Bit-line IR-drop model of the similarity readout (default: the
    /// 40 nm macro's mitigated profile — reference [22]'s drop
    /// compensation).
    pub ir_drop: IrDropModel,
    /// Resonator loop settings.
    pub loop_config: LoopConfig,
    /// Batch size for the SRAM-buffered schedule (latency/energy model).
    pub batch: usize,
}

impl H3dFactConfig {
    /// Paper-default configuration for problems of shape `spec`:
    /// chip-calibrated noise, 4-bit noise-referenced ADC, stochastic loop
    /// with a 2000-iteration budget.
    pub fn default_for(spec: ProblemSpec) -> Self {
        Self {
            spec,
            subarray_rows: 256.min(spec.dim),
            adc_bits: 4,
            lsb_sigmas: 3.0,
            noise: NoiseSpec::chip_40nm(),
            fidelity: Fidelity::Column,
            ir_drop: IrDropModel::macro_40nm_mitigated(),
            loop_config: LoopConfig::stochastic(2000),
            batch: 1,
        }
    }

    /// Same configuration with a different iteration budget.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.loop_config.max_iters = max_iters;
        self
    }

    /// Same configuration with a different ADC resolution (Fig. 6a).
    pub fn with_adc_bits(mut self, bits: u8) -> Self {
        self.adc_bits = bits;
        self
    }

    /// Same configuration with a different noise model.
    pub fn with_noise(mut self, noise: NoiseSpec) -> Self {
        self.noise = noise;
        self
    }

    /// ADC full-scale in dot-product units.
    ///
    /// The sensing range is fixed by the analog front end (the
    /// `VTGT`-tuned current window), *not* by the ADC resolution: at the
    /// 4-bit design point one LSB spans `lsb_sigmas · sqrt(D)`, and an
    /// 8-bit ADC divides the **same** range 16× finer. This is what makes
    /// the Fig. 6a comparison meaningful — higher resolution removes the
    /// sparsifying dead zone instead of just rescaling it.
    pub fn adc_full_scale(&self) -> f64 {
        const REFERENCE_MAX_CODE: f64 = 7.0; // 4-bit design point
        self.lsb_sigmas * (self.spec.dim as f64).sqrt() * REFERENCE_MAX_CODE
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent parameters (zero sizes, dim not divisible by
    /// subarray rows, out-of-range ADC bits).
    pub fn validate(&self) {
        assert!(self.subarray_rows > 0, "subarray rows must be positive");
        assert_eq!(
            self.spec.dim % self.subarray_rows,
            0,
            "dimension {} must fold evenly into {}-row subarrays",
            self.spec.dim,
            self.subarray_rows
        );
        assert!(
            (2..=12).contains(&self.adc_bits),
            "ADC resolution out of range"
        );
        assert!(self.lsb_sigmas > 0.0, "lsb_sigmas must be positive");
        assert!(self.batch > 0, "batch must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let cfg = H3dFactConfig::default_for(ProblemSpec::new(3, 16, 1024));
        cfg.validate();
        assert_eq!(cfg.subarray_rows, 256);
        assert_eq!(cfg.adc_bits, 4);
    }

    #[test]
    fn small_dim_shrinks_subarray() {
        let cfg = H3dFactConfig::default_for(ProblemSpec::new(3, 16, 128));
        cfg.validate();
        assert_eq!(cfg.subarray_rows, 128);
    }

    #[test]
    fn full_scale_matches_activation_model() {
        let spec = ProblemSpec::new(3, 16, 1024);
        let cfg = H3dFactConfig::default_for(spec);
        // 3σ · sqrt(1024) · 7 = 672.
        assert!((cfg.adc_full_scale() - 672.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "fold evenly")]
    fn bad_fold_rejected() {
        let mut cfg = H3dFactConfig::default_for(ProblemSpec::new(3, 16, 1024));
        cfg.subarray_rows = 300;
        cfg.validate();
    }

    #[test]
    fn builders_apply() {
        let spec = ProblemSpec::new(3, 16, 512);
        let cfg = H3dFactConfig::default_for(spec)
            .with_adc_bits(8)
            .with_max_iters(77);
        assert_eq!(cfg.adc_bits, 8);
        assert_eq!(cfg.loop_config.max_iters, 77);
    }
}
