//! Comparator model for the PCM-based in-memory factorizer of
//! Langenegger et al., *Nature Nanotechnology* 2023 ([15] in the paper).
//!
//! The published system maps each resonator MVM to a 2D PCM CIM core on a
//! separate die; every iteration shuttles the similarity/projection
//! operands between dies over package-level links. H3DFact's intro calls
//! out exactly this cost ("considerable cost due to the increased silicon
//! area and data communication between different dies in each iteration"),
//! and Sec. V-B quotes the resulting iso-area advantage: **1.78×
//! throughput and 1.48× energy efficiency**.
//!
//! The model here reproduces that comparison structurally: the PCM system
//! executes the same iteration with the same MVM cost model, but pays
//! (a) package-level inter-die transfer latency per leg and (b)
//! package-link switching energy per bit, both absent in the TSV-coupled
//! 3D stack. Link constants are first-order package-interconnect figures
//! (tens of cycles, ~1 pJ/bit) — the knob is documented, not hidden.

use serde::{Deserialize, Serialize};

use arch3d::design::{build_report, DesignReport, DesignVariant, BASE_FREQUENCY_MHZ};
use arch3d::ppa::{iteration_energy, ArchParams, EnergyInputs, MvmSubstrate};
use arch3d::schedule::{IterationSchedule, ScheduleConfig};
use cim::energy::EnergyLedger;
use cim::tech::TechNode;
use hdc::rng::derive_seed;
use hdc::{BipolarVector, Codebook, ProblemSpec};
use resonator::engine::{FactorizationOutcome, Factorizer, LoopConfig, ResonatorLoop};
use resonator::software::SoftwareKernels;
use resonator::Activation;

use crate::stats::RunStats;

/// Package-level link parameters of the two-die PCM system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcmLinkModel {
    /// Added cycles per inter-die transfer leg (two legs per factor).
    pub inter_die_cycles: u64,
    /// Switching energy per transferred bit, joules.
    pub energy_per_bit_j: f64,
}

impl PcmLinkModel {
    /// First-order package-interconnect figures: ~150 ns per 1 kb leg at
    /// 200 MHz and ~0.9 pJ/bit.
    pub fn default_package() -> Self {
        Self {
            inter_die_cycles: 30,
            energy_per_bit_j: 0.9e-12,
        }
    }
}

/// PPA summary of the PCM two-die system at iso-silicon-area with H3DFact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcmReport {
    /// Cycles per resonator iteration.
    pub cycles_per_iter: u64,
    /// Clock, MHz (2D: no TSV derate).
    pub frequency_mhz: f64,
    /// Throughput, TOPS.
    pub throughput_tops: f64,
    /// Energy per iteration, joules.
    pub energy_per_iter_j: f64,
    /// Energy efficiency, TOPS/W.
    pub energy_eff_tops_w: f64,
    /// Total silicon, mm² (set iso with H3DFact).
    pub total_area_mm2: f64,
}

/// The single source of truth for the two-die PCM cost model: cycles and
/// energy of one resonator iteration at shape `arch` under `schedule`,
/// shared by the closed-form [`PcmReport`] and the runnable [`PcmEngine`].
///
/// Same iteration structure as H3DFact plus two package-link legs per
/// factor; same MVM substrate energy (PCM ≈ RRAM analog MAC at this
/// fidelity) with 14 nm-class digital periphery (modeled at the 16 nm
/// node) and no TSV coupling; inter-die traffic carries the quantized
/// similarities out and back per factor.
fn pcm_iteration_cost(
    arch: ArchParams,
    schedule: &ScheduleConfig,
    link: &PcmLinkModel,
) -> (u64, cim::energy::EnergyLedger) {
    let base = IterationSchedule::compute(schedule);
    let cycles_per_iter = base.cycles + arch.factors as u64 * 2 * link.inter_die_cycles;
    let mut energy = iteration_energy(
        &DesignVariant::H3dThreeTier.library(),
        &EnergyInputs {
            arch,
            substrate: MvmSubstrate::AnalogRram,
            periphery_node: TechNode::N16,
            digital_node: TechNode::N16,
            cycles_per_iter,
            tsv_switches_per_iter: 0,
        },
    );
    let bits_per_iter = arch.factors as f64 * 2.0 * arch.cols as f64 * arch.adc_bits as f64;
    energy.add(
        cim::energy::EnergyComponent::Interconnect,
        bits_per_iter * link.energy_per_bit_j,
    );
    (cycles_per_iter, energy)
}

/// Builds the PCM comparator report at the paper's design point.
pub fn pcm_reference_report() -> PcmReport {
    pcm_reference_report_with(PcmLinkModel::default_package())
}

/// Builds the PCM comparator report with explicit link parameters.
pub fn pcm_reference_report_with(link: PcmLinkModel) -> PcmReport {
    let arch = ArchParams::paper();
    let h3d = build_report(DesignVariant::H3dThreeTier);
    let (cycles_per_iter, energy) =
        pcm_iteration_cost(arch, &ScheduleConfig::paper(arch.factors, 1), &link);

    let ops = arch.ops_per_iteration() as f64;
    let latency_s = cycles_per_iter as f64 / (BASE_FREQUENCY_MHZ * 1e6);
    PcmReport {
        cycles_per_iter,
        frequency_mhz: BASE_FREQUENCY_MHZ,
        throughput_tops: ops / latency_s / 1e12,
        energy_per_iter_j: energy.total(),
        energy_eff_tops_w: ops / energy.total() / 1e12,
        total_area_mm2: h3d.total_area_mm2,
    }
}

/// The Sec. V-B comparison: H3DFact vs the PCM in-memory factorizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcmComparison {
    /// H3DFact's Table III report.
    pub h3d: DesignReport,
    /// The PCM comparator report.
    pub pcm: PcmReport,
}

impl PcmComparison {
    /// Builds the comparison at the paper's design point.
    pub fn paper_default() -> Self {
        Self {
            h3d: build_report(DesignVariant::H3dThreeTier),
            pcm: pcm_reference_report(),
        }
    }

    /// Throughput advantage of H3DFact (paper: 1.78×).
    pub fn throughput_ratio(&self) -> f64 {
        self.h3d.throughput_tops / self.pcm.throughput_tops
    }

    /// Energy-efficiency advantage of H3DFact (paper: 1.48×).
    pub fn efficiency_ratio(&self) -> f64 {
        self.h3d.energy_eff_tops_w / self.pcm.energy_eff_tops_w
    }
}

/// Runnable model of the two-die PCM in-memory factorizer.
///
/// Functionally it executes the same stochastic resonator dynamics as
/// H3DFact — the published PCM system likewise relies on intrinsic device
/// randomness to escape limit cycles — so accuracy matches the stochastic
/// engines. The *cost* model is where it differs: every iteration pays the
/// two package-link legs per factor in cycles and the inter-die bit
/// traffic in energy, with 14 nm-class digital periphery (modeled at the
/// 16 nm node) and no TSV coupling.
///
/// Accounting note: this engine bills steady-state iteration + link cost
/// only; one-time array programming is not modeled (the published
/// comparison amortizes it over the array lifetime). The `H3dFact` engine
/// by contrast re-bills crossbar programming on every run, so compare
/// per-iteration energies — or the closed-form [`PcmComparison`] — when
/// programming amortization matters.
pub struct PcmEngine {
    spec: ProblemSpec,
    loop_config: LoopConfig,
    noise_sigma: f64,
    activation: Activation,
    link: PcmLinkModel,
    adc_bits: u8,
    /// Deterministic similarity gain from stuck-at-HRS devices and write
    /// nonlinearity (`(1 − stuck_at) · write_gain`); `1.0` = ideal array.
    survival: f64,
    seed: u64,
    runs: u64,
    last_stats: Option<RunStats>,
}

impl PcmEngine {
    /// Relative per-cell readout sigma of the PCM devices. Kept equal to
    /// the RRAM chip figure so the Sec. V-B comparison stays
    /// iso-functional — both systems sit at the same stochasticity level
    /// and differ only in integration cost.
    pub const PCM_CELL_SIGMA: f64 = 0.139;

    /// The paper-comparison engine for problems of shape `spec`.
    pub fn paper_default(spec: ProblemSpec, max_iters: usize, seed: u64) -> Self {
        Self {
            spec,
            loop_config: LoopConfig::stochastic(max_iters),
            noise_sigma: Self::PCM_CELL_SIGMA * (spec.dim as f64).sqrt(),
            activation: Activation::noise_referenced(4, spec.dim, 3.0),
            link: PcmLinkModel::default_package(),
            adc_bits: 4,
            survival: 1.0,
            seed,
            runs: 0,
            last_stats: None,
        }
    }

    /// Same engine with explicit package-link parameters.
    pub fn with_link(mut self, link: PcmLinkModel) -> Self {
        self.link = link;
        self
    }

    /// Same engine with a different readout resolution: updates both the
    /// activation quantizer and the cost model's ADC/traffic accounting.
    pub fn with_adc_bits(mut self, bits: u8) -> Self {
        self.adc_bits = bits;
        self.activation = Activation::noise_referenced(bits, self.spec.dim, 3.0);
        self
    }

    /// Same engine with a different relative per-cell readout sigma
    /// (e.g. `NoiseSpec::sigma_total()` of a device model).
    pub fn with_cell_sigma(mut self, cell_sigma: f64) -> Self {
        assert!(cell_sigma >= 0.0, "cell sigma must be non-negative");
        self.noise_sigma = cell_sigma * (self.spec.dim as f64).sqrt();
        self
    }

    /// Same engine with device-fault attenuation applied to every
    /// similarity readout: a fraction `stuck_at_rate` of PCM devices stuck
    /// at HRS contributes no differential signal, and the nonlinear write
    /// curve compresses the remaining window by `1 − write_gain` — exactly
    /// the column-fidelity treatment the RRAM crossbars apply, so the
    /// robustness frontier stresses both comparators with the same
    /// physics.
    ///
    /// # Panics
    ///
    /// Panics unless `stuck_at_rate ∈ [0, 1)` and `write_gain ∈ (0, 1]`.
    pub fn with_faults(mut self, stuck_at_rate: f64, write_gain: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&stuck_at_rate),
            "stuck-at rate must be in [0, 1)"
        );
        assert!(
            write_gain > 0.0 && write_gain <= 1.0,
            "write gain must be in (0, 1]"
        );
        self.survival = (1.0 - stuck_at_rate) * write_gain;
        self
    }

    /// The effective similarity gain after device faults (`1.0` = ideal).
    pub fn survival(&self) -> f64 {
        self.survival
    }

    /// The problem shape the engine is provisioned for.
    pub fn spec(&self) -> ProblemSpec {
        self.spec
    }

    /// The package-link model in use.
    pub fn link(&self) -> PcmLinkModel {
        self.link
    }

    /// The effective per-dot-product similarity-noise sigma (dot units,
    /// i.e. relative cell sigma × `sqrt(D)`) — comparable across every
    /// analog backend under the workspace noise convention.
    pub fn noise_sigma(&self) -> f64 {
        self.noise_sigma
    }

    /// Statistics of the most recent run.
    pub fn last_run_stats(&self) -> Option<&RunStats> {
        self.last_stats.as_ref()
    }

    /// How many `factorize*` calls this engine has issued; per-run seeds
    /// derive from `(engine seed, cursor)`.
    pub fn run_cursor(&self) -> u64 {
        self.runs
    }

    /// Repositions the run cursor so the next `factorize*` call draws the
    /// seed stream of run `cursor`.
    pub fn set_run_cursor(&mut self, cursor: u64) {
        self.runs = cursor;
    }

    /// Per-iteration cycles and energy at this engine's shape, through
    /// the shared [`pcm_iteration_cost`] model.
    ///
    /// A dimension beyond the 256-row subarray folds across tiles that
    /// operate in parallel: energy bills the **full** `D × M` MAC count
    /// (every tile burns charge), while the schedule keeps the subarray
    /// row count (tiles convert concurrently) — mirroring how the
    /// `H3dFact` engine's tiled crossbars account the same fold.
    pub fn iteration_cost(&self) -> (u64, EnergyLedger) {
        let arch = ArchParams {
            rows: self.spec.dim,
            cols: self.spec.codebook_size,
            factors: self.spec.factors,
            adc_bits: self.adc_bits,
        };
        let schedule = ScheduleConfig::for_shape(
            self.spec.factors,
            1,
            self.spec.dim.min(256),
            self.spec.codebook_size,
            self.adc_bits,
        );
        pcm_iteration_cost(arch, &schedule, &self.link)
    }
}

impl Factorizer for PcmEngine {
    fn factorize_query(
        &mut self,
        codebooks: &[Codebook],
        query: &BipolarVector,
        truth: Option<&[usize]>,
    ) -> FactorizationOutcome {
        let run_seed = derive_seed(self.seed, self.runs);
        self.runs += 1;
        let mut kernels =
            SoftwareKernels::new(codebooks, self.noise_sigma, true, self.activation, run_seed)
                .with_survival(self.survival);
        let outcome = ResonatorLoop::new(self.loop_config).run(
            &mut kernels,
            codebooks,
            query,
            truth,
            derive_seed(run_seed, 0x9C31),
        );

        let (cycles_per_iter, per_iter) = self.iteration_cost();
        let mut energy = EnergyLedger::new();
        for (component, joules) in per_iter.iter() {
            energy.add(component, joules * outcome.iterations as f64);
        }
        let cycles = cycles_per_iter * outcome.iterations as u64;
        self.last_stats = Some(RunStats {
            iterations: outcome.iterations,
            cycles,
            latency_s: cycles as f64 / (BASE_FREQUENCY_MHZ * 1e6),
            energy,
            tier_switches: 0,
            adc_conversions: (self.spec.factors * self.spec.codebook_size) as u64
                * outcome.iterations as u64,
            degenerate_events: outcome.degenerate_events,
            buffer_peak_bits: 0,
        });
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iso_area_by_construction() {
        let c = PcmComparison::paper_default();
        assert!((c.pcm.total_area_mm2 - c.h3d.total_area_mm2).abs() < 1e-12);
    }

    #[test]
    fn throughput_ratio_near_paper() {
        let c = PcmComparison::paper_default();
        let r = c.throughput_ratio();
        assert!(r > 1.4 && r < 2.2, "throughput ratio {r} (paper: 1.78)");
    }

    #[test]
    fn efficiency_ratio_near_paper() {
        let c = PcmComparison::paper_default();
        let r = c.efficiency_ratio();
        assert!(r > 1.2 && r < 1.9, "efficiency ratio {r} (paper: 1.48)");
    }

    #[test]
    fn faults_attenuate_similarities_and_alter_runs() {
        use hdc::rng::rng_from_seed;
        use hdc::FactorizationProblem;
        let spec = ProblemSpec::new(3, 8, 512);
        let p = FactorizationProblem::random(spec, &mut rng_from_seed(99));
        let mut clean = PcmEngine::paper_default(spec, 300, 9);
        let mut faulty = PcmEngine::paper_default(spec, 300, 9).with_faults(0.2, 0.9);
        assert_eq!(clean.survival(), 1.0);
        assert!((faulty.survival() - 0.8 * 0.9).abs() < 1e-15);
        let oc = clean.factorize(&p);
        let of = faulty.factorize(&p);
        assert!(oc.solved, "clean engine should solve a small problem");
        // Same seeds, different survival → the noisy readouts quantize
        // differently, so the trajectories must diverge.
        assert!(
            oc.iterations != of.iterations || oc.decoded != of.decoded || !of.solved,
            "20% stuck-at must perturb the run"
        );
    }

    #[test]
    fn slower_links_widen_the_gap() {
        let fast = pcm_reference_report_with(PcmLinkModel {
            inter_die_cycles: 5,
            energy_per_bit_j: 0.1e-12,
        });
        let slow = pcm_reference_report_with(PcmLinkModel {
            inter_die_cycles: 60,
            energy_per_bit_j: 2e-12,
        });
        assert!(slow.throughput_tops < fast.throughput_tops);
        assert!(slow.energy_eff_tops_w < fast.energy_eff_tops_w);
    }
}
