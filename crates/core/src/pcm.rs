//! Comparator model for the PCM-based in-memory factorizer of
//! Langenegger et al., *Nature Nanotechnology* 2023 ([15] in the paper).
//!
//! The published system maps each resonator MVM to a 2D PCM CIM core on a
//! separate die; every iteration shuttles the similarity/projection
//! operands between dies over package-level links. H3DFact's intro calls
//! out exactly this cost ("considerable cost due to the increased silicon
//! area and data communication between different dies in each iteration"),
//! and Sec. V-B quotes the resulting iso-area advantage: **1.78×
//! throughput and 1.48× energy efficiency**.
//!
//! The model here reproduces that comparison structurally: the PCM system
//! executes the same iteration with the same MVM cost model, but pays
//! (a) package-level inter-die transfer latency per leg and (b)
//! package-link switching energy per bit, both absent in the TSV-coupled
//! 3D stack. Link constants are first-order package-interconnect figures
//! (tens of cycles, ~1 pJ/bit) — the knob is documented, not hidden.

use serde::{Deserialize, Serialize};

use arch3d::design::{build_report, DesignReport, DesignVariant, BASE_FREQUENCY_MHZ};
use arch3d::ppa::{iteration_energy, ArchParams, EnergyInputs, MvmSubstrate};
use arch3d::schedule::{IterationSchedule, ScheduleConfig};
use cim::tech::TechNode;

/// Package-level link parameters of the two-die PCM system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcmLinkModel {
    /// Added cycles per inter-die transfer leg (two legs per factor).
    pub inter_die_cycles: u64,
    /// Switching energy per transferred bit, joules.
    pub energy_per_bit_j: f64,
}

impl PcmLinkModel {
    /// First-order package-interconnect figures: ~150 ns per 1 kb leg at
    /// 200 MHz and ~0.9 pJ/bit.
    pub fn default_package() -> Self {
        Self {
            inter_die_cycles: 30,
            energy_per_bit_j: 0.9e-12,
        }
    }
}

/// PPA summary of the PCM two-die system at iso-silicon-area with H3DFact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcmReport {
    /// Cycles per resonator iteration.
    pub cycles_per_iter: u64,
    /// Clock, MHz (2D: no TSV derate).
    pub frequency_mhz: f64,
    /// Throughput, TOPS.
    pub throughput_tops: f64,
    /// Energy per iteration, joules.
    pub energy_per_iter_j: f64,
    /// Energy efficiency, TOPS/W.
    pub energy_eff_tops_w: f64,
    /// Total silicon, mm² (set iso with H3DFact).
    pub total_area_mm2: f64,
}

/// Builds the PCM comparator report at the paper's design point.
pub fn pcm_reference_report() -> PcmReport {
    pcm_reference_report_with(PcmLinkModel::default_package())
}

/// Builds the PCM comparator report with explicit link parameters.
pub fn pcm_reference_report_with(link: PcmLinkModel) -> PcmReport {
    let arch = ArchParams::paper();
    let h3d = build_report(DesignVariant::H3dThreeTier);

    // Same iteration structure, plus two package-link legs per factor.
    let base = IterationSchedule::compute(&ScheduleConfig::paper(arch.factors, 1));
    let cycles_per_iter = base.cycles + arch.factors as u64 * 2 * link.inter_die_cycles;

    // Same MVM substrate energy (PCM ≈ RRAM analog MAC at this fidelity),
    // 14 nm-class digital periphery (modeled at the 16 nm node).
    let mut energy = iteration_energy(
        &DesignVariant::H3dThreeTier.library(),
        &EnergyInputs {
            arch,
            substrate: MvmSubstrate::AnalogRram,
            periphery_node: TechNode::N16,
            digital_node: TechNode::N16,
            cycles_per_iter,
            tsv_switches_per_iter: 0,
        },
    );
    // Inter-die traffic: quantized similarities out and back per factor.
    let bits_per_iter =
        arch.factors as f64 * 2.0 * arch.cols as f64 * arch.adc_bits as f64;
    energy.add(
        cim::energy::EnergyComponent::Interconnect,
        bits_per_iter * link.energy_per_bit_j,
    );

    let ops = arch.ops_per_iteration() as f64;
    let latency_s = cycles_per_iter as f64 / (BASE_FREQUENCY_MHZ * 1e6);
    PcmReport {
        cycles_per_iter,
        frequency_mhz: BASE_FREQUENCY_MHZ,
        throughput_tops: ops / latency_s / 1e12,
        energy_per_iter_j: energy.total(),
        energy_eff_tops_w: ops / energy.total() / 1e12,
        total_area_mm2: h3d.total_area_mm2,
    }
}

/// The Sec. V-B comparison: H3DFact vs the PCM in-memory factorizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcmComparison {
    /// H3DFact's Table III report.
    pub h3d: DesignReport,
    /// The PCM comparator report.
    pub pcm: PcmReport,
}

impl PcmComparison {
    /// Builds the comparison at the paper's design point.
    pub fn paper_default() -> Self {
        Self {
            h3d: build_report(DesignVariant::H3dThreeTier),
            pcm: pcm_reference_report(),
        }
    }

    /// Throughput advantage of H3DFact (paper: 1.78×).
    pub fn throughput_ratio(&self) -> f64 {
        self.h3d.throughput_tops / self.pcm.throughput_tops
    }

    /// Energy-efficiency advantage of H3DFact (paper: 1.48×).
    pub fn efficiency_ratio(&self) -> f64 {
        self.h3d.energy_eff_tops_w / self.pcm.energy_eff_tops_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iso_area_by_construction() {
        let c = PcmComparison::paper_default();
        assert!((c.pcm.total_area_mm2 - c.h3d.total_area_mm2).abs() < 1e-12);
    }

    #[test]
    fn throughput_ratio_near_paper() {
        let c = PcmComparison::paper_default();
        let r = c.throughput_ratio();
        assert!(r > 1.4 && r < 2.2, "throughput ratio {r} (paper: 1.78)");
    }

    #[test]
    fn efficiency_ratio_near_paper() {
        let c = PcmComparison::paper_default();
        let r = c.efficiency_ratio();
        assert!(r > 1.2 && r < 1.9, "efficiency ratio {r} (paper: 1.48)");
    }

    #[test]
    fn slower_links_widen_the_gap() {
        let fast = pcm_reference_report_with(PcmLinkModel {
            inter_die_cycles: 5,
            energy_per_bit_j: 0.1e-12,
        });
        let slow = pcm_reference_report_with(PcmLinkModel {
            inter_die_cycles: 60,
            energy_per_bit_j: 2e-12,
        });
        assert!(slow.throughput_tops < fast.throughput_tops);
        assert!(slow.energy_eff_tops_w < fast.energy_eff_tops_w);
    }
}
