//! The H3DFact accelerator engine.
//!
//! This crate assembles the full simulated system of the paper: the
//! resonator iteration (`resonator`) executing *through* device-accurate
//! hardware models (`cim`) under the three-tier architecture's scheduling
//! and cost models (`arch3d`). It also provides the iso-capacity baseline
//! engines of Table III (fully-digital SRAM 2D, monolithic hybrid 2D) and
//! the PCM in-memory-factorizer comparator of Sec. V-B.
//!
//! # Example
//!
//! ```
//! use h3dfact_core::accelerator::H3dFact;
//! use h3dfact_core::config::H3dFactConfig;
//! use hdc::{FactorizationProblem, ProblemSpec, rng::rng_from_seed};
//! use resonator::engine::Factorizer;
//!
//! let spec = ProblemSpec::new(3, 8, 512);
//! let problem = FactorizationProblem::random(spec, &mut rng_from_seed(5));
//! let mut engine = H3dFact::new(H3dFactConfig::default_for(spec), 42);
//! let outcome = engine.factorize(&problem);
//! assert!(outcome.solved);
//! let stats = engine.last_run_stats().expect("stats recorded");
//! assert!(stats.energy.total() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accelerator;
pub mod baselines;
pub mod config;
pub mod pcm;
pub mod stats;

pub use accelerator::H3dFact;
pub use baselines::{DigitalKernels, Hybrid2dEngine, Sram2dEngine};
pub use config::H3dFactConfig;
pub use pcm::{pcm_reference_report, PcmComparison, PcmEngine, PcmLinkModel};
pub use stats::RunStats;
