//! The iso-capacity 2D baseline engines of Table III.
//!
//! - [`Sram2dEngine`] — the fully digital design: exact (deterministic)
//!   MVMs through the −1's-counter datapath at 16 nm. Functionally it *is*
//!   the baseline resonator, so it inherits the limit-cycle accuracy
//!   ceiling (Table III's 95.8 % column); on top it accounts digital-CIM
//!   energy and latency.
//! - [`Hybrid2dEngine`] — the monolithic 40 nm RRAM+SRAM design: the same
//!   stochastic analog datapath as H3DFact (same accuracy), but paying
//!   legacy-node periphery energy and the 2D silicon bill.

use arch3d::design::{DesignVariant, BASE_FREQUENCY_MHZ};
use arch3d::neurosim::ComponentLibrary;
use arch3d::schedule::{IterationSchedule, ScheduleConfig};
use cim::counter::BipolarCounter;
use cim::energy::{EnergyComponent, EnergyLedger};
use cim::tech::TechNode;
use cim::xnor::XnorUnit;
use hdc::rng::derive_seed;
use hdc::{BipolarVector, Codebook, ProblemSpec};
use resonator::engine::{
    FactorizationOutcome, Factorizer, LoopConfig, ResonatorKernels, ResonatorLoop,
};

use crate::accelerator::H3dFact;
use crate::config::H3dFactConfig;
use crate::stats::RunStats;

/// Digital kernels: exact similarity through the XNOR-popcount +
/// −1's-counter datapath, identity activation (the deterministic baseline
/// dynamics), with SRAM-CIM energy accounting.
pub struct DigitalKernels<'a> {
    codebooks: &'a [Codebook],
    counter: BipolarCounter,
    xnor: XnorUnit,
    ledger: EnergyLedger,
    lib: ComponentLibrary,
}

impl<'a> DigitalKernels<'a> {
    /// Creates the digital datapath over borrowed codebooks.
    pub fn new(codebooks: &'a [Codebook]) -> Self {
        Self {
            codebooks,
            counter: BipolarCounter::new(),
            xnor: XnorUnit::new(),
            ledger: EnergyLedger::new(),
            lib: ComponentLibrary::heterogeneous(),
        }
    }

    /// Energy accumulated so far (consumed by post-run cost accounting).
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }
}

impl ResonatorKernels for DigitalKernels<'_> {
    fn dim(&self) -> usize {
        self.codebooks[0].dim()
    }

    fn factors(&self) -> usize {
        self.codebooks.len()
    }

    fn codebook_size(&self) -> usize {
        self.codebooks[0].len()
    }

    fn unbind_into(
        &mut self,
        product: &BipolarVector,
        others: &[&BipolarVector],
        out: &mut BipolarVector,
    ) {
        self.xnor.unbind_all_into(product, others, out);
        self.ledger.add(
            EnergyComponent::Unbind,
            others.len() as f64 * product.dim() as f64 * self.lib.e_xnor_gate_j(TechNode::N16),
        );
    }

    fn similarity_weights_into(&mut self, factor: usize, query: &BipolarVector, out: &mut [f64]) {
        self.counter.mvm_into(&self.codebooks[factor], query, out);
        self.ledger.add(
            EnergyComponent::SimilarityMvm,
            (query.dim() * out.len()) as f64 * self.lib.e_mac_sram_digital_j(TechNode::N16),
        );
    }

    fn project_into(&mut self, factor: usize, weights: &[f64], out: &mut [f64]) {
        self.codebooks[factor]
            .packed()
            .weighted_sums_into(weights, out);
        self.ledger.add(
            EnergyComponent::ProjectionMvm,
            (out.len() * weights.len()) as f64 * self.lib.e_mac_sram_digital_j(TechNode::N16),
        );
    }
}

/// The fully digital SRAM-CIM 2D baseline engine.
pub struct Sram2dEngine {
    spec: ProblemSpec,
    config: LoopConfig,
    seed: u64,
    runs: u64,
    last_stats: Option<RunStats>,
}

impl Sram2dEngine {
    /// Creates the engine with an iteration budget.
    pub fn new(spec: ProblemSpec, max_iters: usize, seed: u64) -> Self {
        Self {
            spec,
            config: LoopConfig::baseline(max_iters),
            seed,
            runs: 0,
            last_stats: None,
        }
    }

    /// Statistics of the most recent run.
    pub fn last_run_stats(&self) -> Option<&RunStats> {
        self.last_stats.as_ref()
    }

    /// How many `factorize*` calls this engine has issued; per-run seeds
    /// derive from `(engine seed, cursor)`.
    pub fn run_cursor(&self) -> u64 {
        self.runs
    }

    /// Repositions the run cursor so the next `factorize*` call draws the
    /// seed stream of run `cursor`.
    pub fn set_run_cursor(&mut self, cursor: u64) {
        self.runs = cursor;
    }
}

impl Factorizer for Sram2dEngine {
    fn factorize_query(
        &mut self,
        codebooks: &[Codebook],
        query: &BipolarVector,
        truth: Option<&[usize]>,
    ) -> FactorizationOutcome {
        let run_seed = derive_seed(self.seed, self.runs);
        self.runs += 1;
        let mut kernels = DigitalKernels::new(codebooks);
        let outcome =
            ResonatorLoop::new(self.config).run(&mut kernels, codebooks, query, truth, run_seed);
        let schedule = IterationSchedule::compute(&ScheduleConfig::paper(self.spec.factors, 1));
        let cycles = schedule.cycles * outcome.iterations as u64;
        let mut energy = kernels.ledger;
        energy.add(
            EnergyComponent::Control,
            cycles as f64 * ComponentLibrary::heterogeneous().e_control_cycle_j(TechNode::N16),
        );
        self.last_stats = Some(RunStats {
            iterations: outcome.iterations,
            cycles,
            latency_s: cycles as f64 / (BASE_FREQUENCY_MHZ * 1e6),
            energy,
            tier_switches: 0,
            adc_conversions: 0,
            degenerate_events: outcome.degenerate_events,
            buffer_peak_bits: 0,
        });
        outcome
    }
}

/// The monolithic hybrid (RRAM + SRAM, all 40 nm) 2D engine: H3DFact's
/// analog datapath with 2D cost parameters.
pub struct Hybrid2dEngine {
    inner: H3dFact,
}

impl Hybrid2dEngine {
    /// Creates the engine.
    pub fn new(cfg: H3dFactConfig, seed: u64) -> Self {
        Self {
            inner: H3dFact::with_variant(cfg, DesignVariant::Hybrid2d, seed),
        }
    }

    /// Statistics of the most recent run.
    pub fn last_run_stats(&self) -> Option<&RunStats> {
        self.inner.last_run_stats()
    }

    /// How many `factorize*` calls this engine has issued; per-run seeds
    /// derive from `(engine seed, cursor)`.
    pub fn run_cursor(&self) -> u64 {
        self.inner.run_cursor()
    }

    /// Repositions the run cursor so the next `factorize*` call draws the
    /// seed stream of run `cursor`.
    pub fn set_run_cursor(&mut self, cursor: u64) {
        self.inner.set_run_cursor(cursor);
    }
}

impl Factorizer for Hybrid2dEngine {
    fn factorize_query(
        &mut self,
        codebooks: &[Codebook],
        query: &BipolarVector,
        truth: Option<&[usize]>,
    ) -> FactorizationOutcome {
        self.inner.factorize_query(codebooks, query, truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng::rng_from_seed;
    use hdc::FactorizationProblem;

    #[test]
    fn sram2d_solves_small_problem_deterministically() {
        let spec = ProblemSpec::new(3, 8, 512);
        let p = FactorizationProblem::random(spec, &mut rng_from_seed(400));
        let mut a = Sram2dEngine::new(spec, 200, 1);
        let mut b = Sram2dEngine::new(spec, 200, 1);
        let oa = a.factorize(&p);
        let ob = b.factorize(&p);
        assert!(oa.solved);
        assert_eq!(oa.iterations, ob.iterations, "deterministic engine");
        let stats = a.last_run_stats().unwrap();
        assert!(stats.energy.get(EnergyComponent::SimilarityMvm) > 0.0);
        assert_eq!(stats.adc_conversions, 0, "digital design has no ADCs");
    }

    #[test]
    fn hybrid2d_solves_and_reports() {
        let spec = ProblemSpec::new(3, 8, 512);
        let p = FactorizationProblem::random(spec, &mut rng_from_seed(401));
        let mut eng = Hybrid2dEngine::new(H3dFactConfig::default_for(spec), 2);
        let out = eng.factorize(&p);
        assert!(out.solved);
        assert!(eng.last_run_stats().unwrap().adc_conversions > 0);
    }

    #[test]
    fn digital_energy_per_mac_exceeds_analog() {
        // The premise behind the hybrid designs: digital MACs cost more.
        let spec = ProblemSpec::new(3, 8, 512);
        let p = FactorizationProblem::random(spec, &mut rng_from_seed(402));
        let mut sram = Sram2dEngine::new(spec, 200, 3);
        let _ = sram.factorize(&p);
        let sram_stats = sram.last_run_stats().unwrap();
        let sram_mvm_per_iter = (sram_stats.energy.get(EnergyComponent::SimilarityMvm)
            + sram_stats.energy.get(EnergyComponent::ProjectionMvm))
            / sram_stats.iterations as f64;

        let mut h3d = H3dFact::new(H3dFactConfig::default_for(spec), 3);
        let _ = h3d.factorize(&p);
        let h3d_stats = h3d.last_run_stats().unwrap();
        let h3d_mvm_per_iter = (h3d_stats.energy.get(EnergyComponent::SimilarityMvm)
            + h3d_stats.energy.get(EnergyComponent::ProjectionMvm))
            / h3d_stats.iterations as f64;
        assert!(
            sram_mvm_per_iter > h3d_mvm_per_iter,
            "digital {sram_mvm_per_iter} vs analog {h3d_mvm_per_iter}"
        );
    }
}
