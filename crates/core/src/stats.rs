//! Per-run hardware statistics.

use serde::{Deserialize, Serialize};

use cim::energy::EnergyLedger;

/// Hardware-level statistics of one factorization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Resonator iterations executed.
    pub iterations: usize,
    /// Total clock cycles (iterations × schedule).
    pub cycles: u64,
    /// Wall latency at the design clock, seconds.
    pub latency_s: f64,
    /// Energy broken down by component.
    pub energy: EnergyLedger,
    /// RRAM tier activation switches.
    pub tier_switches: u64,
    /// ADC conversions performed.
    pub adc_conversions: u64,
    /// Degenerate (all-zero activation) events.
    pub degenerate_events: usize,
    /// Peak SRAM buffer occupancy, bits.
    pub buffer_peak_bits: u64,
}

impl RunStats {
    /// Mean power over the run, watts.
    pub fn average_power_w(&self) -> f64 {
        if self.latency_s == 0.0 {
            0.0
        } else {
            self.energy.total() / self.latency_s
        }
    }

    /// Energy per iteration, joules.
    pub fn energy_per_iteration_j(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.energy.total() / self.iterations as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim::energy::EnergyComponent;

    #[test]
    fn derived_metrics() {
        let mut energy = EnergyLedger::new();
        energy.add(EnergyComponent::Adc, 2e-9);
        let s = RunStats {
            iterations: 10,
            cycles: 1000,
            latency_s: 1e-5,
            energy,
            tier_switches: 20,
            adc_conversions: 100,
            degenerate_events: 0,
            buffer_peak_bits: 1024,
        };
        assert!((s.average_power_w() - 2e-4).abs() < 1e-12);
        assert!((s.energy_per_iteration_j() - 2e-10).abs() < 1e-20);
    }

    #[test]
    fn zero_run_is_safe() {
        let s = RunStats {
            iterations: 0,
            cycles: 0,
            latency_s: 0.0,
            energy: EnergyLedger::new(),
            tier_switches: 0,
            adc_conversions: 0,
            degenerate_events: 0,
            buffer_peak_bits: 0,
        };
        assert_eq!(s.average_power_w(), 0.0);
        assert_eq!(s.energy_per_iteration_j(), 0.0);
    }
}
