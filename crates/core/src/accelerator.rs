//! The simulated H3DFact engine: resonator iteration through crossbars,
//! ADCs, the XNOR unit, and the three-tier scheduler.
//!
//! [`AnalogKernels`] implements `resonator::ResonatorKernels` on top of the
//! device models: similarity runs on the tier-3 crossbars (noisy analog
//! currents → rectifying sense path → per-column SAR ADC), projection on
//! the tier-2 crossbars, unbinding on the tier-1 XNOR bank. The
//! [`arch3d::mapping::TierScheduler`] enforces the single-active-RRAM-tier
//! constraint on *every* kernel call — a scheduling bug becomes a panic,
//! not a silently wrong number — and every operation deposits energy into
//! a component ledger.

use arch3d::design::{DesignVariant, BASE_FREQUENCY_MHZ, NATIVE_PATH_LOAD_F};
use arch3d::mapping::{KernelPhase, TierRole, TierScheduler};
use arch3d::neurosim::ComponentLibrary;
use arch3d::schedule::{IterationSchedule, ScheduleConfig};
use arch3d::tsv::TsvSpec;
use cim::adc::{AdcConfig, SarAdc};
use cim::crossbar::TiledCrossbar;
use cim::energy::{EnergyComponent, EnergyLedger};
use cim::power::PowerMode;
use cim::sram::SramBuffer;
use cim::tech::TechNode;
use cim::xnor::XnorUnit;
use hdc::rng::derive_seed;
use hdc::{BipolarVector, Codebook};
use resonator::engine::{FactorizationOutcome, Factorizer, ResonatorKernels, ResonatorLoop};

use crate::config::H3dFactConfig;
use crate::stats::RunStats;

/// Hardware kernels over programmed crossbars (shared by the H3D and the
/// hybrid-2D engines; they differ in cost nodes and clocking, not in
/// functional behavior).
pub struct AnalogKernels {
    cfg: H3dFactConfig,
    /// Actual programmed shape (may be narrower than `cfg.spec` when a
    /// caller searches reduced codebooks, e.g. the explain-away decoder).
    programmed_dim: usize,
    programmed_cols: usize,
    variant: DesignVariant,
    sim_tier: Vec<TiledCrossbar>,
    proj_tier: Vec<TiledCrossbar>,
    adc: SarAdc,
    xnor: XnorUnit,
    scheduler: TierScheduler,
    buffer: SramBuffer,
    ledger: EnergyLedger,
    lib: ComponentLibrary,
    adc_conversions: u64,
    buffer_peak_bits: u64,
    /// Bits sitting in the buffer from a similarity whose projection was
    /// skipped (degenerate activation under a keep/re-draw policy); they
    /// are discarded on the next similarity.
    pending_bits: u64,
    /// Reused pre-ADC current buffer (`M` entries): one scratch allocation
    /// per programmed kernel set instead of one per factor per iteration.
    mvm_scratch: Vec<f64>,
}

impl AnalogKernels {
    /// Programs the codebooks into both RRAM tiers.
    pub fn program(
        cfg: &H3dFactConfig,
        variant: DesignVariant,
        codebooks: &[Codebook],
        seed: u64,
    ) -> Self {
        cfg.validate();
        assert_eq!(codebooks.len(), cfg.spec.factors, "codebook count");
        let programmed_dim = codebooks[0].dim();
        let programmed_cols = codebooks[0].len();
        let lib = variant.library();
        let mut ledger = EnergyLedger::new();
        let program_one = |f: usize, tier: u64| {
            TiledCrossbar::program(
                &codebooks[f],
                cfg.subarray_rows,
                cfg.noise,
                cfg.fidelity,
                derive_seed(seed, tier * 1000 + f as u64),
            )
            .with_ir_drop(cfg.ir_drop)
        };
        let sim_tier: Vec<_> = (0..cfg.spec.factors).map(|f| program_one(f, 3)).collect();
        let proj_tier: Vec<_> = (0..cfg.spec.factors).map(|f| program_one(f, 2)).collect();
        // Programming energy: every differential pair takes two pulses.
        let pulses: u64 = sim_tier
            .iter()
            .chain(&proj_tier)
            .map(|xb| xb.stats().programs)
            .sum();
        ledger.add(
            EnergyComponent::RramProgram,
            pulses as f64 * sim_tier[0].device_program_energy_j(),
        );
        let adc = SarAdc::ideal(AdcConfig {
            bits: cfg.adc_bits,
            full_scale: cfg.adc_full_scale(),
            offset_sigma: 0.0,
            gain_sigma: 0.0,
        });
        Self {
            cfg: *cfg,
            programmed_dim,
            programmed_cols,
            variant,
            sim_tier,
            proj_tier,
            adc,
            xnor: XnorUnit::new(),
            scheduler: TierScheduler::new(),
            buffer: SramBuffer::new(65_536, variant.digital_node()),
            ledger,
            lib,
            adc_conversions: 0,
            buffer_peak_bits: 0,
            pending_bits: 0,
            mvm_scratch: vec![0.0f64; programmed_cols],
        }
    }

    fn periph(&self) -> TechNode {
        self.variant.periphery_node()
    }

    fn digital(&self) -> TechNode {
        self.variant.digital_node()
    }

    fn tsv_energy(&mut self, switches: u64) {
        if self.variant == DesignVariant::H3dThreeTier && switches > 0 {
            self.ledger.add(
                EnergyComponent::Interconnect,
                switches as f64 * TsvSpec::paper().switch_energy_j(TechNode::N40.vdd()),
            );
        }
    }

    /// Activates the requested RRAM tier, updating crossbar power modes.
    fn switch_to(&mut self, role: TierRole) {
        if self.scheduler.active() == Some(role) {
            return;
        }
        self.scheduler.activate(role);
        let (on, off): (&mut Vec<TiledCrossbar>, &mut Vec<TiledCrossbar>) = match role {
            TierRole::RramSimilarity => (&mut self.sim_tier, &mut self.proj_tier),
            TierRole::RramProjection => (&mut self.proj_tier, &mut self.sim_tier),
            TierRole::Digital => unreachable!("digital tier is always on"),
        };
        for xb in on.iter_mut() {
            xb.set_power_mode(PowerMode::Active);
        }
        for xb in off.iter_mut() {
            xb.set_power_mode(PowerMode::Shutdown);
        }
    }

    /// Accumulated energy ledger (shared with the engine at run end).
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// The tier scheduler (switch counts).
    pub fn scheduler(&self) -> &TierScheduler {
        &self.scheduler
    }

    /// ADC conversions so far.
    pub fn adc_conversions(&self) -> u64 {
        self.adc_conversions
    }

    /// Peak buffer occupancy so far, bits.
    pub fn buffer_peak_bits(&self) -> u64 {
        self.buffer_peak_bits
    }
}

impl ResonatorKernels for AnalogKernels {
    fn dim(&self) -> usize {
        self.programmed_dim
    }

    fn factors(&self) -> usize {
        self.cfg.spec.factors
    }

    fn codebook_size(&self) -> usize {
        self.programmed_cols
    }

    fn unbind_into(
        &mut self,
        product: &BipolarVector,
        others: &[&BipolarVector],
        out: &mut BipolarVector,
    ) {
        self.scheduler
            .run_phase(KernelPhase::Unbind)
            .expect("digital tier is always on");
        self.xnor.unbind_all_into(product, others, out);
        self.ledger.add(
            EnergyComponent::Unbind,
            others.len() as f64 * product.dim() as f64 * self.lib.e_xnor_gate_j(self.digital()),
        );
    }

    fn similarity_weights_into(&mut self, factor: usize, query: &BipolarVector, out: &mut [f64]) {
        let d = self.programmed_dim as f64;
        let m = self.programmed_cols as f64;
        self.switch_to(TierRole::RramSimilarity);
        self.scheduler
            .run_phase(KernelPhase::Similarity)
            .expect("similarity tier active");
        self.sim_tier[factor]
            .try_mvm_bipolar_into(query, &mut self.mvm_scratch)
            .expect("similarity tier active for MVM");
        self.ledger.add(
            EnergyComponent::SimilarityMvm,
            d * m * self.lib.e_mac_rram_j(),
        );
        self.ledger.add(
            EnergyComponent::Control,
            d * self.lib.e_drive_row_j(self.periph()),
        );
        // Word lines in + analog column currents out through the TSVs.
        self.tsv_energy((query.dim() + self.mvm_scratch.len()) as u64);

        // Rectifying sense path (VTGT-referenced, positive currents only)
        // feeding the per-column SAR ADCs.
        self.scheduler
            .run_phase(KernelPhase::AdcConvert)
            .expect("digital tier is always on");
        for (w, &c) in out.iter_mut().zip(&self.mvm_scratch) {
            *w = self.adc.convert(c.max(0.0));
        }
        self.adc_conversions += out.len() as u64;
        self.ledger.add(
            EnergyComponent::Adc,
            m * self.lib.e_adc_j(self.cfg.adc_bits, self.periph()),
        );

        // Quantized similarities wait in the tier-1 SRAM until the
        // projection tier takes over.
        self.scheduler
            .run_phase(KernelPhase::Buffer)
            .expect("digital tier is always on");
        if self.pending_bits > 0 {
            // The previous factor's projection was skipped (degenerate
            // activation); its stale record is discarded.
            self.buffer.pop(self.pending_bits);
            self.pending_bits = 0;
        }
        let bits = self.programmed_cols as u64 * self.cfg.adc_bits as u64;
        self.buffer.push(bits).expect("buffer sized for one factor");
        self.pending_bits = bits;
        self.buffer_peak_bits = self.buffer_peak_bits.max(self.buffer.used_bits());
        self.ledger.add(
            EnergyComponent::SramBuffer,
            bits as f64 * self.buffer.access_energy_per_bit_j(),
        );
    }

    fn project_into(&mut self, factor: usize, weights: &[f64], out: &mut [f64]) {
        let d = self.programmed_dim as f64;
        let m = self.programmed_cols as f64;
        // Drain the buffered similarities, then flip tiers.
        let bits = self
            .pending_bits
            .min(self.programmed_cols as u64 * self.cfg.adc_bits as u64);
        self.buffer.pop(bits);
        self.pending_bits = 0;
        self.ledger.add(
            EnergyComponent::SramBuffer,
            bits as f64 * self.buffer.access_energy_per_bit_j(),
        );
        self.switch_to(TierRole::RramProjection);
        self.scheduler
            .run_phase(KernelPhase::Projection)
            .expect("projection tier active");
        self.proj_tier[factor]
            .try_mvm_weighted_into(weights, out)
            .expect("projection tier active for MVM");
        self.ledger.add(
            EnergyComponent::ProjectionMvm,
            d * m * self.lib.e_mac_rram_j(),
        );
        self.ledger.add(
            EnergyComponent::Control,
            m * self.lib.e_drive_row_j(self.periph()),
        );
        self.ledger.add(
            EnergyComponent::Activation,
            d * self.lib.e_sense_j(self.periph()),
        );
        // Digital codes in, sign lines out.
        self.tsv_energy(bits + out.len() as u64);
        self.scheduler
            .run_phase(KernelPhase::Writeback)
            .expect("digital tier is always on");
    }
}

/// The simulated H3DFact accelerator.
pub struct H3dFact {
    cfg: H3dFactConfig,
    variant: DesignVariant,
    seed: u64,
    runs: u64,
    last_stats: Option<RunStats>,
}

impl H3dFact {
    /// Creates the engine (three-tier H3D variant).
    pub fn new(cfg: H3dFactConfig, seed: u64) -> Self {
        cfg.validate();
        Self {
            cfg,
            variant: DesignVariant::H3dThreeTier,
            seed,
            runs: 0,
            last_stats: None,
        }
    }

    /// Creates the engine for a different design variant (used by the
    /// hybrid-2D baseline, which shares the analog datapath).
    pub fn with_variant(cfg: H3dFactConfig, variant: DesignVariant, seed: u64) -> Self {
        assert_ne!(
            variant,
            DesignVariant::Sram2d,
            "the SRAM 2D baseline uses digital kernels (`Sram2dEngine`)"
        );
        cfg.validate();
        Self {
            cfg,
            variant,
            seed,
            runs: 0,
            last_stats: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &H3dFactConfig {
        &self.cfg
    }

    /// Design clock frequency, MHz.
    pub fn frequency_mhz(&self) -> f64 {
        match self.variant {
            DesignVariant::H3dThreeTier => {
                BASE_FREQUENCY_MHZ * TsvSpec::paper().frequency_derate(NATIVE_PATH_LOAD_F)
            }
            _ => BASE_FREQUENCY_MHZ,
        }
    }

    /// Statistics of the most recent run.
    pub fn last_run_stats(&self) -> Option<&RunStats> {
        self.last_stats.as_ref()
    }

    /// How many `factorize*` item solves this engine has issued; per-run
    /// seeds derive from `(engine seed, cursor)`.
    pub fn run_cursor(&self) -> u64 {
        self.runs
    }

    /// Repositions the run cursor so the next `factorize*` call draws the
    /// seed stream of run `cursor` (deterministic parallel executors give
    /// each item the cursor it would have had sequentially).
    pub fn set_run_cursor(&mut self, cursor: u64) {
        self.runs = cursor;
    }

    /// Aggregates per-item [`RunStats`] (solved at consecutive run cursors)
    /// into the batch-level report of the SRAM-buffered batch schedule and
    /// records it as this engine's last run. This is the single definition
    /// of the batch roll-up: [`H3dFact::factorize_batch`] uses it after
    /// solving sequentially, and the session-level parallel executor uses
    /// it after solving the same items across worker engines.
    ///
    /// # Panics
    ///
    /// Panics if `per_item` is empty.
    pub fn install_batch_stats(&mut self, per_item: &[RunStats]) {
        assert!(!per_item.is_empty(), "batch must be non-empty");
        let mut energy = EnergyLedger::new();
        let mut tier_switches = 0u64;
        let mut adc_conversions = 0u64;
        let mut degenerate_events = 0usize;
        let mut buffer_peak_bits = 0u64;
        let mut total_iters = 0usize;
        for stats in per_item {
            energy.merge(&stats.energy);
            tier_switches += stats.tier_switches;
            adc_conversions += stats.adc_conversions;
            degenerate_events += stats.degenerate_events;
            buffer_peak_bits = buffer_peak_bits.max(stats.buffer_peak_bits);
            total_iters += stats.iterations;
        }
        // Batch-level cycles/latency from the amortized schedule.
        let schedule = IterationSchedule::compute(&ScheduleConfig::paper(
            self.cfg.spec.factors,
            per_item.len(),
        ));
        let cycles = schedule.cycles * (total_iters as u64 / per_item.len() as u64).max(1);
        let freq_hz = self.frequency_mhz() * 1e6;
        self.last_stats = Some(RunStats {
            iterations: total_iters,
            cycles,
            latency_s: cycles as f64 / freq_hz,
            energy,
            tier_switches,
            adc_conversions,
            degenerate_events,
            buffer_peak_bits: buffer_peak_bits.max(schedule.buffer_peak_bits),
        });
    }

    /// Factorizes a batch of queries over shared codebooks with the
    /// SRAM-buffered batch schedule (Sec. IV-A): the per-item dynamics
    /// are identical to sequential `factorize_query` calls, cycles and
    /// latency come from the amortized batch-`B` pipeline, and the
    /// recorded stats aggregate the whole batch (energy is the exact sum
    /// of the per-item ledgers).
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or shapes disagree.
    pub fn factorize_batch(
        &mut self,
        codebooks: &[Codebook],
        items: &[resonator::batch::BatchItem],
    ) -> resonator::batch::BatchOutcome {
        assert!(!items.is_empty(), "batch must be non-empty");
        let mut per_item: Vec<RunStats> = Vec::with_capacity(items.len());
        let mut outcomes: Vec<FactorizationOutcome> = Vec::with_capacity(items.len());
        for item in items {
            let o = self.factorize_query(codebooks, &item.query, item.truth.as_deref());
            if let Some(stats) = &self.last_stats {
                per_item.push(stats.clone());
            }
            outcomes.push(o);
        }
        self.install_batch_stats(&per_item);
        resonator::batch::BatchOutcome::from_outcomes(outcomes)
    }
}

impl Factorizer for H3dFact {
    fn factorize_query(
        &mut self,
        codebooks: &[Codebook],
        query: &BipolarVector,
        truth: Option<&[usize]>,
    ) -> FactorizationOutcome {
        let run_seed = derive_seed(self.seed, self.runs);
        self.runs += 1;
        let mut kernels = AnalogKernels::program(&self.cfg, self.variant, codebooks, run_seed);
        let outcome = ResonatorLoop::new(self.cfg.loop_config).run(
            &mut kernels,
            codebooks,
            query,
            truth,
            derive_seed(run_seed, 0xACC),
        );

        // Latency/cycles from the batch schedule; control energy follows.
        let schedule = IterationSchedule::compute(&ScheduleConfig::paper(
            self.cfg.spec.factors,
            self.cfg.batch,
        ));
        let cycles = schedule.cycles * outcome.iterations as u64;
        let mut energy = kernels.ledger().clone();
        energy.add(
            EnergyComponent::Control,
            cycles as f64 * kernels.lib.e_control_cycle_j(self.variant.digital_node()),
        );
        let latency_s = cycles as f64 / (self.frequency_mhz() * 1e6);
        self.last_stats = Some(RunStats {
            iterations: outcome.iterations,
            cycles,
            latency_s,
            energy,
            tier_switches: kernels.scheduler().switches(),
            adc_conversions: kernels.adc_conversions(),
            degenerate_events: outcome.degenerate_events,
            buffer_peak_bits: kernels.buffer_peak_bits(),
        });
        outcome
    }
}

// Small accessor used by programming-energy accounting.
impl TiledCrossbarExt for TiledCrossbar {}

/// Extension giving the tiled crossbar access to its device programming
/// energy (kept here to avoid widening the `cim` API surface).
trait TiledCrossbarExt {
    /// Energy of one programming pulse, joules.
    fn device_program_energy_j(&self) -> f64 {
        cim::rram::RramDeviceParams::default().program_energy_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng::rng_from_seed;
    use hdc::{FactorizationProblem, ProblemSpec};

    fn problem(f: usize, m: usize, d: usize, seed: u64) -> FactorizationProblem {
        FactorizationProblem::random(ProblemSpec::new(f, m, d), &mut rng_from_seed(seed))
    }

    #[test]
    fn h3dfact_solves_small_problem() {
        let p = problem(3, 8, 512, 200);
        let mut eng = H3dFact::new(H3dFactConfig::default_for(p.spec()), 1);
        let out = eng.factorize(&p);
        assert!(out.solved, "H3DFact failed a small problem");
        let stats = eng.last_run_stats().unwrap();
        assert!(stats.energy.total() > 0.0);
        assert!(stats.latency_s > 0.0);
        assert!(stats.adc_conversions > 0);
    }

    #[test]
    fn tier_switches_happen_every_iteration() {
        let p = problem(3, 8, 512, 201);
        let mut eng = H3dFact::new(H3dFactConfig::default_for(p.spec()), 2);
        let out = eng.factorize(&p);
        let stats = eng.last_run_stats().unwrap();
        // Each factor update flips similarity → projection (and back on
        // the next factor): at least 2 switches per iteration.
        assert!(
            stats.tier_switches >= 2 * out.iterations as u64,
            "switches {} vs iterations {}",
            stats.tier_switches,
            out.iterations
        );
    }

    #[test]
    fn energy_ledger_has_all_major_components() {
        let p = problem(3, 8, 512, 202);
        let mut eng = H3dFact::new(H3dFactConfig::default_for(p.spec()), 3);
        let _ = eng.factorize(&p);
        let e = &eng.last_run_stats().unwrap().energy;
        for c in [
            EnergyComponent::SimilarityMvm,
            EnergyComponent::ProjectionMvm,
            EnergyComponent::Adc,
            EnergyComponent::Unbind,
            EnergyComponent::SramBuffer,
            EnergyComponent::Interconnect,
            EnergyComponent::RramProgram,
            EnergyComponent::Control,
        ] {
            assert!(e.get(c) > 0.0, "missing energy component {c}");
        }
    }

    #[test]
    fn hybrid_variant_has_no_tsv_energy_and_full_clock() {
        let p = problem(3, 8, 512, 203);
        let cfg = H3dFactConfig::default_for(p.spec());
        let mut hybrid = H3dFact::with_variant(cfg, DesignVariant::Hybrid2d, 4);
        let _ = hybrid.factorize(&p);
        let stats = hybrid.last_run_stats().unwrap();
        assert_eq!(stats.energy.get(EnergyComponent::Interconnect), 0.0);
        assert_eq!(hybrid.frequency_mhz(), 200.0);
        let h3d = H3dFact::new(cfg, 4);
        assert!(h3d.frequency_mhz() < 190.0);
    }

    #[test]
    fn hardware_matches_software_model_statistically() {
        // The device-accurate engine and the algorithm-level stochastic
        // model should have comparable solve rates on a moderate problem.
        let spec = ProblemSpec::new(3, 16, 512);
        let mut hw_solved = 0i32;
        let mut sw_solved = 0i32;
        for t in 0..10u64 {
            let p = FactorizationProblem::random(spec, &mut rng_from_seed(300 + t));
            let mut hw = H3dFact::new(H3dFactConfig::default_for(spec).with_max_iters(500), t);
            if hw.factorize(&p).solved {
                hw_solved += 1;
            }
            let mut sw = resonator::StochasticResonator::paper_default(spec, 500, t);
            if sw.factorize(&p).solved {
                sw_solved += 1;
            }
        }
        assert!(hw_solved >= 8, "hardware engine solved only {hw_solved}/10");
        assert!((hw_solved - sw_solved).abs() <= 2);
    }

    #[test]
    fn explain_away_works_on_hardware_engine() {
        use resonator::superposed::{explain_away, ExplainAwayConfig};
        let spec = ProblemSpec::new(3, 8, 512);
        let mut rng = rng_from_seed(206);
        let books: Vec<hdc::Codebook> = (0..3)
            .map(|_| hdc::Codebook::random(8, 512, &mut rng))
            .collect();
        let idx_a = vec![1usize, 2, 3];
        let idx_b = vec![4usize, 5, 6];
        let compose = |idx: &[usize]| {
            hdc::bind_all(
                &idx.iter()
                    .zip(&books)
                    .map(|(&i, cb)| cb.vector(i).clone())
                    .collect::<Vec<_>>(),
            )
        };
        let bundle = hdc::bundle(&[compose(&idx_a), compose(&idx_b)], hdc::TieBreak::Parity);
        let mut engine = H3dFact::new(H3dFactConfig::default_for(spec).with_max_iters(800), 11);
        let out = explain_away(&mut engine, &books, &bundle, &ExplainAwayConfig::default());
        assert!(
            out.matches(&[idx_a, idx_b]),
            "hardware explain-away decoded {:?}",
            out.objects
        );
    }

    #[test]
    fn batch_runs_share_codebooks_and_aggregate() {
        let spec = ProblemSpec::new(3, 8, 256);
        let mut rng = rng_from_seed(205);
        let books: Vec<hdc::Codebook> = (0..3)
            .map(|_| hdc::Codebook::random(8, 256, &mut rng))
            .collect();
        let (items, _) = resonator::batch::random_batch(&books, 6, 77);
        let mut eng = H3dFact::new(H3dFactConfig::default_for(spec).with_max_iters(800), 9);
        let out = eng.factorize_batch(&books, &items);
        assert_eq!(out.len(), 6);
        assert!(out.accuracy() >= 0.8, "batch accuracy {}", out.accuracy());
        let stats = eng.last_run_stats().unwrap();
        // The batch schedule buffers several elements in tier-1 SRAM.
        assert!(stats.buffer_peak_bits >= 6 * 256 * 4 / 2);
        assert!(stats.latency_s > 0.0);
    }

    #[test]
    fn adc8_config_runs() {
        let p = problem(3, 8, 512, 204);
        let cfg = H3dFactConfig::default_for(p.spec()).with_adc_bits(8);
        let mut eng = H3dFact::new(cfg, 5);
        let out = eng.factorize(&p);
        assert!(out.solved);
    }
}
