//! Error types shared across the substrate.

use std::error::Error;
use std::fmt;

/// Two operands had different hypervector dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimensionMismatch {
    left: usize,
    right: usize,
}

impl DimensionMismatch {
    /// Creates a mismatch record from the two observed dimensions.
    pub fn new(left: usize, right: usize) -> Self {
        Self { left, right }
    }

    /// Dimension of the left-hand operand.
    pub fn left(&self) -> usize {
        self.left
    }

    /// Dimension of the right-hand operand.
    pub fn right(&self) -> usize {
        self.right
    }
}

impl fmt::Display for DimensionMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hypervector dimension mismatch: {} vs {}",
            self.left, self.right
        )
    }
}

impl Error for DimensionMismatch {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_both_dims() {
        let e = DimensionMismatch::new(64, 128);
        let msg = e.to_string();
        assert!(msg.contains("64") && msg.contains("128"));
        assert_eq!(e.left(), 64);
        assert_eq!(e.right(), 128);
    }
}
