//! Permutation-based sequence encoding.
//!
//! The third primitive of the paper's Sec. II-A: the permutation `ρ`
//! "changes the ordering of vector elements to capture the sequence of
//! the feature". A sequence `(a, b, c)` encodes as
//! `ρ²(a) ⊙ ρ¹(b) ⊙ ρ⁰(c)` — position becomes a structural role, so the
//! same item at different positions is quasi-orthogonal to itself, and a
//! resonator can factor sequence products back into (item, position)
//! pairs just like any other bound structure.

use crate::bipolar::BipolarVector;
use crate::codebook::Codebook;

/// Encodes a sequence of items as a single product hypervector:
/// item `i` (0-based from the sequence start) is permuted by
/// `len − 1 − i` steps and all permuted items are bound together.
///
/// # Panics
///
/// Panics if `items` is empty or dimensions disagree.
pub fn encode_sequence(items: &[&BipolarVector]) -> BipolarVector {
    assert!(!items.is_empty(), "sequence must be non-empty");
    let n = items.len();
    let mut acc = items[0].permuted_n(n - 1);
    for (i, item) in items.iter().enumerate().skip(1) {
        acc = acc.bind(&item.permuted_n(n - 1 - i));
    }
    acc
}

/// Decodes position `pos` of an `len`-long sequence product by unbinding
/// all *known* other items and inverse-permuting, then cleaning up in the
/// item codebook. Returns the best-match index.
///
/// # Panics
///
/// Panics if arguments are inconsistent.
pub fn decode_position(
    sequence: &BipolarVector,
    known: &[(usize, &BipolarVector)],
    pos: usize,
    len: usize,
    items: &Codebook,
) -> usize {
    assert!(pos < len, "position out of range");
    let mut residue = sequence.clone();
    for &(p, item) in known {
        assert!(p < len && p != pos, "bad known position");
        residue = residue.bind(&item.permuted_n(len - 1 - p));
    }
    let unpermuted = residue.inverse_permuted_n(len - 1 - pos);
    items.cleanup(&unpermuted).index
}

impl BipolarVector {
    /// `ρ^n`: permutes `n` single steps (convenience over
    /// [`BipolarVector::permuted`] with explicit step semantics for
    /// sequence encoding).
    pub fn permuted_n(&self, n: usize) -> BipolarVector {
        self.permuted(n)
    }

    /// Inverse of [`BipolarVector::permuted_n`].
    pub fn inverse_permuted_n(&self, n: usize) -> BipolarVector {
        self.inverse_permuted(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn sequence_roundtrip_with_known_others() {
        let mut rng = rng_from_seed(700);
        let items = Codebook::random(16, 1024, &mut rng);
        let idx = [3usize, 7, 11];
        let seq = encode_sequence(&[items.vector(3), items.vector(7), items.vector(11)]);
        // Decode each position given the other two.
        for pos in 0..3 {
            let known: Vec<(usize, &BipolarVector)> = (0..3)
                .filter(|&p| p != pos)
                .map(|p| (p, items.vector(idx[p])))
                .collect();
            assert_eq!(decode_position(&seq, &known, pos, 3, &items), idx[pos]);
        }
    }

    #[test]
    fn order_matters() {
        let mut rng = rng_from_seed(701);
        let a = BipolarVector::random(2048, &mut rng);
        let b = BipolarVector::random(2048, &mut rng);
        let ab = encode_sequence(&[&a, &b]);
        let ba = encode_sequence(&[&b, &a]);
        assert!(ab.cosine(&ba).abs() < 0.1, "order must change the code");
    }

    #[test]
    fn repeated_item_is_position_distinct() {
        let mut rng = rng_from_seed(702);
        let a = BipolarVector::random(2048, &mut rng);
        let b = BipolarVector::random(2048, &mut rng);
        // (a, a, b): the two a's occupy different roles.
        let seq = encode_sequence(&[&a, &a, &b]);
        let items = Codebook::from_vectors(vec![a.clone(), b.clone()]);
        let known: Vec<(usize, &BipolarVector)> = vec![(1, &a), (2, &b)];
        assert_eq!(decode_position(&seq, &known, 0, 3, &items), 0);
    }

    #[test]
    fn singleton_sequence_is_identity() {
        let mut rng = rng_from_seed(703);
        let a = BipolarVector::random(256, &mut rng);
        assert_eq!(encode_sequence(&[&a]), a);
    }
}
