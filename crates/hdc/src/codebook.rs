//! Codebooks of random item vectors and the similarity/projection/cleanup
//! operations the resonator network iterates over.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::bipolar::BipolarVector;
use crate::ops::{bundle, TieBreak};
use crate::packed::PackedCodebook;

/// Result of a cleanup (nearest-codevector) query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CleanupHit {
    /// Index of the best-matching codevector.
    pub index: usize,
    /// Raw dot product with the best match, in `[-D, D]`.
    pub dot: i64,
    /// Normalized similarity `dot / D`.
    pub cosine: f64,
}

/// An `M × D` codebook: `M` random bipolar item vectors of dimension `D`.
///
/// One codebook represents one perceptual attribute (shape, color, …); the
/// columns of the paper's matrices `X, C, V, H` are its rows here.
///
/// # Example
///
/// ```
/// use hdc::{Codebook, rng::rng_from_seed};
/// let mut rng = rng_from_seed(42);
/// let cb = Codebook::random(16, 1024, &mut rng);
/// let hit = cb.cleanup(cb.vector(5));
/// assert_eq!(hit.index, 5);
/// assert_eq!(hit.dot, 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Codebook {
    dim: usize,
    vectors: Vec<BipolarVector>,
    /// Contiguous packed mirror of `vectors`; all MVM-shaped queries
    /// (similarities, projection, cleanup) route through it. Derived
    /// state: when real serde is re-enabled (the vendored derives are
    /// no-ops today), this field must be skipped on the wire and rebuilt
    /// from `vectors` during deserialization so the mirrors can never
    /// disagree.
    packed: PackedCodebook,
}

impl Codebook {
    /// Generates a codebook of `m` random item vectors of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `dim == 0`.
    pub fn random<R: Rng + ?Sized>(m: usize, dim: usize, rng: &mut R) -> Self {
        assert!(m > 0, "codebook size must be positive");
        let vectors: Vec<BipolarVector> = (0..m).map(|_| BipolarVector::random(dim, rng)).collect();
        let packed = PackedCodebook::from_vectors(&vectors);
        Self {
            dim,
            vectors,
            packed,
        }
    }

    /// Builds a codebook from existing vectors.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is empty or dimensions disagree.
    pub fn from_vectors(vectors: Vec<BipolarVector>) -> Self {
        assert!(!vectors.is_empty(), "codebook must be non-empty");
        let dim = vectors[0].dim();
        assert!(
            vectors.iter().all(|v| v.dim() == dim),
            "codebook vectors must share one dimension"
        );
        let packed = PackedCodebook::from_vectors(&vectors);
        Self {
            dim,
            vectors,
            packed,
        }
    }

    /// Borrows the contiguous packed mirror of this codebook (the matrix
    /// kernels behind [`Codebook::similarities`] and
    /// [`Codebook::project`]).
    pub fn packed(&self) -> &PackedCodebook {
        &self.packed
    }

    /// Drops the packed mirror's lane-major half, keeping row-major signs
    /// only — the codebook registry's cold-tier (hot→cold demotion) step.
    /// All operations stay available and value-identical (see
    /// [`PackedCodebook::drop_lane_mirror`]).
    pub fn drop_lane_mirror(&mut self) {
        self.packed.drop_lane_mirror();
    }

    /// Rebuilds the packed mirror's lane-major half from the row-major
    /// signs (no-op when present) — the registry's cold→hot promotion
    /// step. See [`PackedCodebook::materialize_lane_mirror`].
    pub fn materialize_lane_mirror(&mut self) {
        self.packed.materialize_lane_mirror();
    }

    /// True when the packed lane-major mirror is materialized.
    pub fn has_lane_mirror(&self) -> bool {
        self.packed.has_lane_mirror()
    }

    /// Heap bytes resident in the packed mirrors (row-major words plus
    /// the lane-major mirror when materialized). The per-vector
    /// [`Codebook::vectors`] storage is not counted — it is shared
    /// algebra state, not tiered kernel state.
    pub fn packed_bytes(&self) -> usize {
        self.packed.row_bytes() + self.packed.lane_mirror_bytes()
    }

    /// Number of item vectors `M`.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Always false: codebooks are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Hypervector dimension `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrows the `i`-th item vector.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn vector(&self, i: usize) -> &BipolarVector {
        &self.vectors[i]
    }

    /// Borrows all item vectors.
    pub fn vectors(&self) -> &[BipolarVector] {
        &self.vectors
    }

    /// Iterates over the item vectors.
    pub fn iter(&self) -> std::slice::Iter<'_, BipolarVector> {
        self.vectors.iter()
    }

    /// Similarity step of the resonator: `a = Xᵀ q`, the vector of dot
    /// products between the query and every codevector. `a[j] ∈ [-D, D]`.
    /// Routed through the packed matrix kernel; use
    /// [`Codebook::similarities_into`] to reuse an output buffer.
    pub fn similarities(&self, query: &BipolarVector) -> Vec<i64> {
        let mut out = vec![0i64; self.vectors.len()];
        self.packed.similarities_i64_into(query, &mut out);
        out
    }

    /// Allocation-free similarity MVM as `f64` (values are exact integers):
    /// writes the `M` dot products into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()` or the query dimension differs.
    pub fn similarities_into(&self, query: &BipolarVector, out: &mut [f64]) {
        self.packed.similarities_into(query, out);
    }

    /// Projection step of the resonator: `sign(X a)` — superposes the
    /// codevectors weighted by (possibly noisy / quantized) similarities and
    /// re-binarizes. Routed through the packed matrix kernel.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != self.len()`.
    pub fn project(&self, weights: &[f64]) -> BipolarVector {
        let mut sums = vec![0.0f64; self.dim];
        self.packed.weighted_sums_into(weights, &mut sums);
        BipolarVector::from_reals_sign(&sums)
    }

    /// Unweighted superposition of all codevectors; the standard resonator
    /// initial estimate (every candidate in superposition).
    pub fn superposition(&self) -> BipolarVector {
        bundle(&self.vectors, TieBreak::Parity)
    }

    /// Nearest codevector to `query` by dot product.
    pub fn cleanup(&self, query: &BipolarVector) -> CleanupHit {
        let (index, dot) = (0..self.vectors.len())
            .map(|i| (i, self.packed.dot_row(i, query)))
            .max_by_key(|&(_, d)| d)
            .expect("codebook is non-empty");
        CleanupHit {
            index,
            dot,
            cosine: dot as f64 / self.dim as f64,
        }
    }

    /// Nearest codevector by **absolute** dot product.
    ///
    /// Factorization has a global sign symmetry: negating an even number of
    /// factor estimates leaves the composed product unchanged, so a
    /// resonator may converge onto `−x_i` for some factors. The item
    /// *index* is still unambiguous — it is the codevector with the largest
    /// `|dot|` — which is how the engines decode estimates. The returned
    /// `dot`/`cosine` keep their sign.
    pub fn cleanup_abs(&self, query: &BipolarVector) -> CleanupHit {
        let (index, dot) = (0..self.vectors.len())
            .map(|i| (i, self.packed.dot_row(i, query)))
            .max_by_key(|&(_, d)| d.abs())
            .expect("codebook is non-empty");
        CleanupHit {
            index,
            dot,
            cosine: dot as f64 / self.dim as f64,
        }
    }

    /// Largest absolute pairwise cosine between distinct codevectors: a
    /// measure of quasi-orthogonality (≈ `O(1/sqrt(D))` for random books).
    pub fn max_cross_coherence(&self) -> f64 {
        let mut max = 0.0f64;
        for i in 0..self.vectors.len() {
            for j in (i + 1)..self.vectors.len() {
                max = max.max(self.vectors[i].cosine(&self.vectors[j]).abs());
            }
        }
        max
    }
}

impl<'a> IntoIterator for &'a Codebook {
    type Item = &'a BipolarVector;
    type IntoIter = std::slice::Iter<'a, BipolarVector>;

    fn into_iter(self) -> Self::IntoIter {
        self.vectors.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn cleanup_finds_exact_member() {
        let mut rng = rng_from_seed(20);
        let cb = Codebook::random(32, 512, &mut rng);
        for i in [0usize, 7, 31] {
            let hit = cb.cleanup(cb.vector(i));
            assert_eq!(hit.index, i);
            assert_eq!(hit.dot, 512);
            assert!((hit.cosine - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cleanup_tolerates_noise() {
        let mut rng = rng_from_seed(21);
        let cb = Codebook::random(64, 2048, &mut rng);
        let noisy = cb.vector(9).with_flip_noise(0.2, &mut rng);
        assert_eq!(cb.cleanup(&noisy).index, 9);
    }

    #[test]
    fn similarities_match_individual_dots() {
        let mut rng = rng_from_seed(22);
        let cb = Codebook::random(8, 256, &mut rng);
        let q = BipolarVector::random(256, &mut rng);
        let sims = cb.similarities(&q);
        for (j, s) in sims.iter().enumerate() {
            assert_eq!(*s, cb.vector(j).dot(&q));
        }
    }

    #[test]
    fn project_one_hot_recovers_codevector() {
        let mut rng = rng_from_seed(23);
        let cb = Codebook::random(16, 512, &mut rng);
        let mut w = vec![0.0; 16];
        w[4] = 1.0;
        assert_eq!(cb.project(&w), *cb.vector(4));
    }

    #[test]
    fn superposition_is_similar_to_all_members() {
        let mut rng = rng_from_seed(24);
        let cb = Codebook::random(4, 4096, &mut rng);
        let sup = cb.superposition();
        for v in &cb {
            assert!(sup.cosine(v) > 0.2);
        }
    }

    #[test]
    fn coherence_is_small_for_random_books() {
        let mut rng = rng_from_seed(25);
        let cb = Codebook::random(16, 4096, &mut rng);
        assert!(cb.max_cross_coherence() < 8.0 / (4096f64).sqrt());
    }

    #[test]
    fn from_vectors_roundtrip() {
        let mut rng = rng_from_seed(26);
        let vs: Vec<_> = (0..3)
            .map(|_| BipolarVector::random(128, &mut rng))
            .collect();
        let cb = Codebook::from_vectors(vs.clone());
        assert_eq!(cb.len(), 3);
        assert_eq!(cb.dim(), 128);
        assert_eq!(cb.vectors(), vs.as_slice());
    }

    #[test]
    #[should_panic(expected = "share one dimension")]
    fn from_vectors_rejects_mixed_dims() {
        let _ = Codebook::from_vectors(vec![BipolarVector::ones(64), BipolarVector::ones(65)]);
    }
}
