//! Dense bipolar hypervectors, bit-packed 64 elements per word.
//!
//! A [`BipolarVector`] stores `D` elements of `{-1, +1}`; a set bit encodes
//! `+1` and a cleared bit encodes `-1`. All operations keep the padding bits
//! of the last word cleared so that popcount-based arithmetic stays exact.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::DimensionMismatch;

/// Number of elements packed into one storage word.
const WORD_BITS: usize = 64;

/// A dense bipolar hypervector `x ∈ {-1,+1}^D`.
///
/// The vector is immutable in spirit: operations return new vectors. Mutating
/// accessors ([`BipolarVector::set`], [`BipolarVector::flip`]) exist for
/// noise-injection code paths in the hardware models.
///
/// # Example
///
/// ```
/// use hdc::BipolarVector;
///
/// let a = BipolarVector::from_signs(&[1, -1, 1, 1]);
/// let b = BipolarVector::from_signs(&[1, 1, -1, 1]);
/// let bound = a.bind(&b);
/// assert_eq!(bound.to_signs(), vec![1, -1, -1, 1]);
/// // Binding is its own inverse: a ⊙ b ⊙ b = a.
/// assert_eq!(bound.bind(&b), a);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BipolarVector {
    dim: usize,
    words: Vec<u64>,
}

impl BipolarVector {
    /// Creates the all `+1` vector (the binding identity) of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn ones(dim: usize) -> Self {
        assert!(dim > 0, "hypervector dimension must be positive");
        let mut v = Self {
            dim,
            words: vec![u64::MAX; dim.div_ceil(WORD_BITS)],
        };
        v.mask_tail();
        v
    }

    /// Creates the all `-1` vector of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn neg_ones(dim: usize) -> Self {
        assert!(dim > 0, "hypervector dimension must be positive");
        Self {
            dim,
            words: vec![0u64; dim.div_ceil(WORD_BITS)],
        }
    }

    /// Samples a uniformly random bipolar vector.
    ///
    /// Random *item vectors* drawn this way are quasi-orthogonal in high
    /// dimension: `E[a·b] = 0`, `std(a·b) = sqrt(D)`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn random<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> Self {
        assert!(dim > 0, "hypervector dimension must be positive");
        let mut words: Vec<u64> = (0..dim.div_ceil(WORD_BITS)).map(|_| rng.gen()).collect();
        let tail = dim % WORD_BITS;
        if tail != 0 {
            *words.last_mut().expect("at least one word") &= (1u64 << tail) - 1;
        }
        Self { dim, words }
    }

    /// Builds a vector from explicit signs. Any positive value maps to `+1`,
    /// any non-positive value to `-1`.
    ///
    /// # Panics
    ///
    /// Panics if `signs` is empty.
    #[inline]
    pub fn from_signs(signs: &[i8]) -> Self {
        assert!(!signs.is_empty(), "sign slice must be non-empty");
        let mut words = Vec::with_capacity(signs.len().div_ceil(WORD_BITS));
        for chunk in signs.chunks(WORD_BITS) {
            let mut word = 0u64;
            for (b, &s) in chunk.iter().enumerate() {
                word |= ((s > 0) as u64) << b;
            }
            words.push(word);
        }
        Self {
            dim: signs.len(),
            words,
        }
    }

    /// Builds a vector by taking the sign of each real value; zeros map to
    /// alternating signs by index parity so that thresholding stays unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[inline]
    pub fn from_reals_sign(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "value slice must be non-empty");
        let mut v = Self {
            dim: values.len(),
            words: vec![0u64; values.len().div_ceil(WORD_BITS)],
        };
        v.assign_signs_of_reals(values);
        v
    }

    /// In-place [`BipolarVector::from_reals_sign`]: overwrites every element
    /// with the sign of the corresponding real value (zeros break ties by
    /// index parity). Word-walk: builds each storage word in a register and
    /// stores it once.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != dim`.
    #[inline]
    pub fn assign_signs_of_reals(&mut self, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.dim,
            "sign assignment length {} != dim {}",
            values.len(),
            self.dim
        );
        for (wi, chunk) in values.chunks(WORD_BITS).enumerate() {
            let base = wi * WORD_BITS;
            let mut word = 0u64;
            for (b, &x) in chunk.iter().enumerate() {
                let positive = x > 0.0 || (x == 0.0 && (base + b).is_multiple_of(2));
                word |= (positive as u64) << b;
            }
            self.words[wi] = word;
        }
    }

    /// Overwrites `self` with the contents of `other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[inline]
    pub fn copy_from(&mut self, other: &Self) {
        assert_eq!(
            self.dim, other.dim,
            "dimension mismatch in copy_from: {} vs {}",
            self.dim, other.dim
        );
        self.words.copy_from_slice(&other.words);
    }

    /// In-place [`BipolarVector::bind`]: `self ← self ⊙ other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[inline]
    pub fn bind_assign(&mut self, other: &Self) {
        assert_eq!(
            self.dim, other.dim,
            "dimension mismatch in bind_assign: {} vs {}",
            self.dim, other.dim
        );
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a = !(*a ^ b);
        }
        self.mask_tail();
    }

    /// Overwrites `self` (of dimension `d`) with bits
    /// `[start, start + d)` of `src` — the row-slice extraction used when a
    /// logical crossbar folds a long vector over physical subarrays. The
    /// word-aligned case (`start % 64 == 0`) is a straight word copy.
    ///
    /// # Panics
    ///
    /// Panics if `start + dim` exceeds `src.dim`.
    pub fn copy_bit_range_from(&mut self, src: &Self, start: usize) {
        assert!(
            start + self.dim <= src.dim,
            "bit range [{start}, {}) out of source dim {}",
            start + self.dim,
            src.dim
        );
        if start.is_multiple_of(WORD_BITS) {
            let w0 = start / WORD_BITS;
            let n = self.words.len();
            self.words.copy_from_slice(&src.words[w0..w0 + n]);
            self.mask_tail();
            return;
        }
        for i in 0..self.dim {
            self.set(i, src.sign(start + i));
        }
    }

    /// The dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrows the packed words (tail bits beyond `dim` are always zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Returns the element at `index` as `+1` or `-1`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim`.
    pub fn sign(&self, index: usize) -> i8 {
        assert!(index < self.dim, "index {index} out of range {}", self.dim);
        if self.words[index / WORD_BITS] >> (index % WORD_BITS) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Sets the element at `index` to `+1` (`sign > 0`) or `-1`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim`.
    pub fn set(&mut self, index: usize, sign: i8) {
        assert!(index < self.dim, "index {index} out of range {}", self.dim);
        let bit = 1u64 << (index % WORD_BITS);
        if sign > 0 {
            self.words[index / WORD_BITS] |= bit;
        } else {
            self.words[index / WORD_BITS] &= !bit;
        }
    }

    /// Flips the element at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim`.
    pub fn flip(&mut self, index: usize) {
        assert!(index < self.dim, "index {index} out of range {}", self.dim);
        self.words[index / WORD_BITS] ^= 1u64 << (index % WORD_BITS);
    }

    /// Unpacks to a `Vec` of `+1`/`-1` signs. Word-walk: loads each storage
    /// word once and shifts bits out of a register.
    #[inline]
    pub fn to_signs(&self) -> Vec<i8> {
        let mut out = Vec::with_capacity(self.dim);
        for (wi, &word) in self.words.iter().enumerate() {
            let limit = WORD_BITS.min(self.dim - wi * WORD_BITS);
            for b in 0..limit {
                out.push(if word >> b & 1 == 1 { 1 } else { -1 });
            }
        }
        out
    }

    /// Element-wise multiplication (VSA *binding*, and also *unbinding*
    /// because every bipolar vector is its own multiplicative inverse).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ; use [`BipolarVector::try_bind`] for a
    /// fallible variant.
    pub fn bind(&self, other: &Self) -> Self {
        self.try_bind(other).expect("dimension mismatch in bind")
    }

    /// Fallible [`BipolarVector::bind`].
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatch`] when the operand dimensions differ.
    pub fn try_bind(&self, other: &Self) -> Result<Self, DimensionMismatch> {
        if self.dim != other.dim {
            return Err(DimensionMismatch::new(self.dim, other.dim));
        }
        // Bipolar multiply = XNOR on the bit encoding.
        let mut words: Vec<u64> = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| !(a ^ b))
            .collect();
        let tail = self.dim % WORD_BITS;
        if tail != 0 {
            *words.last_mut().expect("at least one word") &= (1u64 << tail) - 1;
        }
        Ok(Self {
            dim: self.dim,
            words,
        })
    }

    /// Dot product `Σ_i a_i · b_i ∈ [-D, D]`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn dot(&self, other: &Self) -> i64 {
        assert_eq!(
            self.dim, other.dim,
            "dimension mismatch in dot: {} vs {}",
            self.dim, other.dim
        );
        let disagree: u32 = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        self.dim as i64 - 2 * disagree as i64
    }

    /// Cosine similarity `a·b / D ∈ [-1, 1]` (all bipolar vectors have norm
    /// `sqrt(D)`).
    pub fn cosine(&self, other: &Self) -> f64 {
        self.dot(other) as f64 / self.dim as f64
    }

    /// Hamming distance (number of disagreeing elements).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn hamming(&self, other: &Self) -> usize {
        assert_eq!(
            self.dim, other.dim,
            "dimension mismatch in hamming: {} vs {}",
            self.dim, other.dim
        );
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Element-wise negation.
    pub fn negated(&self) -> Self {
        let mut words: Vec<u64> = self.words.iter().map(|w| !w).collect();
        let tail = self.dim % WORD_BITS;
        if tail != 0 {
            *words.last_mut().expect("at least one word") &= (1u64 << tail) - 1;
        }
        Self {
            dim: self.dim,
            words,
        }
    }

    /// Cyclic permutation `ρ^k`: element `i` of the result is element
    /// `(i + k) mod D` of `self`. `k = 0` is the identity.
    pub fn permuted(&self, k: usize) -> Self {
        let k = k % self.dim;
        if k == 0 {
            return self.clone();
        }
        let mut out = Self::neg_ones(self.dim);
        for i in 0..self.dim {
            if self.sign((i + k) % self.dim) > 0 {
                out.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
            }
        }
        out
    }

    /// Inverse of [`BipolarVector::permuted`]: `x.permuted(k).inverse_permuted(k) == x`.
    pub fn inverse_permuted(&self, k: usize) -> Self {
        let k = k % self.dim;
        self.permuted(self.dim - k)
    }

    /// Flips each element independently with probability `p`, modeling a
    /// binary symmetric noise channel (used by the perception frontend and
    /// fault-injection tests).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn with_flip_noise<R: Rng + ?Sized>(&self, p: f64, rng: &mut R) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "flip probability must be in [0,1]"
        );
        let mut out = self.clone();
        if p == 0.0 {
            return out;
        }
        for i in 0..self.dim {
            if rng.gen::<f64>() < p {
                out.flip(i);
            }
        }
        out
    }

    /// Number of `+1` elements.
    pub fn count_positive(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn mask_tail(&mut self) {
        let tail = self.dim % WORD_BITS;
        if tail != 0 {
            *self.words.last_mut().expect("at least one word") &= (1u64 << tail) - 1;
        }
    }
}

impl fmt::Debug for BipolarVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: String = (0..self.dim.min(16))
            .map(|i| if self.sign(i) > 0 { '+' } else { '-' })
            .collect();
        write!(
            f,
            "BipolarVector(dim={}, [{preview}{}])",
            self.dim,
            if self.dim > 16 { "…" } else { "" }
        )
    }
}

impl fmt::Display for BipolarVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn ones_and_neg_ones_have_expected_signs() {
        let p = BipolarVector::ones(70);
        let n = BipolarVector::neg_ones(70);
        assert!((0..70).all(|i| p.sign(i) == 1));
        assert!((0..70).all(|i| n.sign(i) == -1));
        assert_eq!(p.dot(&p), 70);
        assert_eq!(p.dot(&n), -70);
    }

    #[test]
    fn from_signs_roundtrip() {
        let signs = vec![1i8, -1, -1, 1, 1, -1, 1];
        let v = BipolarVector::from_signs(&signs);
        assert_eq!(v.to_signs(), signs);
    }

    #[test]
    fn bind_is_xnor_and_self_inverse() {
        let mut rng = rng_from_seed(1);
        let a = BipolarVector::random(513, &mut rng);
        let b = BipolarVector::random(513, &mut rng);
        let c = a.bind(&b);
        for i in 0..513 {
            assert_eq!(c.sign(i), a.sign(i) * b.sign(i));
        }
        assert_eq!(c.bind(&b), a);
        assert_eq!(c.bind(&a), b);
    }

    #[test]
    fn bind_identity_is_all_ones() {
        let mut rng = rng_from_seed(2);
        let a = BipolarVector::random(100, &mut rng);
        let id = BipolarVector::ones(100);
        assert_eq!(a.bind(&id), a);
    }

    #[test]
    fn try_bind_rejects_dimension_mismatch() {
        let a = BipolarVector::ones(64);
        let b = BipolarVector::ones(65);
        assert!(a.try_bind(&b).is_err());
    }

    #[test]
    fn dot_matches_naive() {
        let mut rng = rng_from_seed(3);
        let a = BipolarVector::random(200, &mut rng);
        let b = BipolarVector::random(200, &mut rng);
        let naive: i64 = (0..200).map(|i| a.sign(i) as i64 * b.sign(i) as i64).sum();
        assert_eq!(a.dot(&b), naive);
        assert_eq!(a.dot(&a), 200);
    }

    #[test]
    fn random_vectors_are_quasi_orthogonal() {
        let mut rng = rng_from_seed(4);
        let d = 4096;
        let a = BipolarVector::random(d, &mut rng);
        let b = BipolarVector::random(d, &mut rng);
        // |cos| should be well below 6/sqrt(D) ≈ 0.094 with overwhelming
        // probability.
        assert!(a.cosine(&b).abs() < 6.0 / (d as f64).sqrt());
    }

    #[test]
    fn permutation_roundtrip_and_shift() {
        let mut rng = rng_from_seed(5);
        let a = BipolarVector::random(130, &mut rng);
        let p = a.permuted(7);
        for i in 0..130 {
            assert_eq!(p.sign(i), a.sign((i + 7) % 130));
        }
        assert_eq!(p.inverse_permuted(7), a);
        assert_eq!(a.permuted(0), a);
        assert_eq!(a.permuted(130), a);
    }

    #[test]
    fn negation_flips_every_sign() {
        let mut rng = rng_from_seed(6);
        let a = BipolarVector::random(99, &mut rng);
        let n = a.negated();
        assert_eq!(a.dot(&n), -99);
        assert_eq!(n.negated(), a);
    }

    #[test]
    fn flip_noise_zero_and_one() {
        let mut rng = rng_from_seed(7);
        let a = BipolarVector::random(256, &mut rng);
        assert_eq!(a.with_flip_noise(0.0, &mut rng), a);
        assert_eq!(a.with_flip_noise(1.0, &mut rng), a.negated());
    }

    #[test]
    fn flip_noise_rate_is_approximate() {
        let mut rng = rng_from_seed(8);
        let a = BipolarVector::random(8192, &mut rng);
        let noisy = a.with_flip_noise(0.1, &mut rng);
        let flips = a.hamming(&noisy) as f64 / 8192.0;
        assert!((flips - 0.1).abs() < 0.02, "flip rate {flips}");
    }

    #[test]
    fn from_reals_sign_thresholds() {
        let v = BipolarVector::from_reals_sign(&[0.5, -0.5, 0.0, 0.0]);
        assert_eq!(v.sign(0), 1);
        assert_eq!(v.sign(1), -1);
        // Ties broken by parity: index 2 positive, index 3 negative.
        assert_eq!(v.sign(2), 1);
        assert_eq!(v.sign(3), -1);
    }

    #[test]
    fn tail_bits_stay_clear() {
        let mut rng = rng_from_seed(9);
        // Dim deliberately not a multiple of 64.
        let a = BipolarVector::random(100, &mut rng);
        let b = BipolarVector::random(100, &mut rng);
        for v in [a.bind(&b), a.negated(), a.permuted(13)] {
            let tail_mask = !((1u64 << (100 % 64)) - 1);
            assert_eq!(v.words().last().unwrap() & tail_mask, 0);
        }
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_panics() {
        let _ = BipolarVector::ones(0);
    }

    #[test]
    fn in_place_ops_match_allocating_ops() {
        let mut rng = rng_from_seed(40);
        let a = BipolarVector::random(197, &mut rng);
        let b = BipolarVector::random(197, &mut rng);
        let mut scratch = BipolarVector::neg_ones(197);
        scratch.copy_from(&a);
        assert_eq!(scratch, a);
        scratch.bind_assign(&b);
        assert_eq!(scratch, a.bind(&b));
        let tail_mask = !((1u64 << (197 % 64)) - 1);
        assert_eq!(scratch.words().last().unwrap() & tail_mask, 0);
    }

    #[test]
    fn assign_signs_of_reals_matches_constructor() {
        let mut rng = rng_from_seed(41);
        let values: Vec<f64> = (0..300)
            .map(|i| {
                if i % 7 == 0 {
                    0.0
                } else {
                    rng.gen::<f64>() - 0.5
                }
            })
            .collect();
        let fresh = BipolarVector::from_reals_sign(&values);
        let mut reused = BipolarVector::random(300, &mut rng);
        reused.assign_signs_of_reals(&values);
        assert_eq!(reused, fresh);
    }

    #[test]
    fn copy_bit_range_aligned_and_unaligned() {
        let mut rng = rng_from_seed(42);
        let src = BipolarVector::random(512, &mut rng);
        let mut aligned = BipolarVector::neg_ones(128);
        aligned.copy_bit_range_from(&src, 256);
        for i in 0..128 {
            assert_eq!(aligned.sign(i), src.sign(256 + i));
        }
        let mut unaligned = BipolarVector::neg_ones(100);
        unaligned.copy_bit_range_from(&src, 37);
        for i in 0..100 {
            assert_eq!(unaligned.sign(i), src.sign(37 + i));
        }
    }
}
