//! Runtime-dispatched SIMD kernels for the packed-codebook hot path.
//!
//! The popcount kernels in [`crate::packed`] used to pick their reduction
//! at **compile time** (`cfg!(target_feature = "avx512vpopcntdq")`), so a
//! portable build (`RUSTFLAGS=""`) never saw a vector unit even on a host
//! that has one — `u64::count_ones` lowers to a ~5-op nibble emulation on
//! the x86-64 baseline target. This module moves the choice to **startup**:
//! CPU features are detected once with `is_x86_feature_detected!`, a
//! [`KernelTable`] of plain function pointers is cached in a `OnceLock`,
//! and every kernel call dispatches through it. Portable builds get the
//! explicit-SIMD path at runtime; `target-cpu=native` builds lose nothing.
//!
//! # Dispatch arms
//!
//! | arm | requires | similarity reduction |
//! |---|---|---|
//! | [`SimdArm::Scalar`] | nothing | portable `count_ones` tiles (the pre-dispatch code, autovectorized at best) |
//! | [`SimdArm::Avx2Csa`] | `avx2`, `popcnt` | explicit AVX2 Harley–Seal carry-save tree, hardware-`popcnt` drains |
//! | [`SimdArm::Avx512Popcnt`] | `avx512f`, `avx512vpopcntdq`, `popcnt` | explicit per-word `vpopcntq` tile |
//!
//! The best supported arm is chosen automatically; the `H3DFACT_SIMD`
//! environment variable (`scalar` / `csa` / `vpopcnt`, read once at first
//! dispatch) forces an arm for CI and benchmarking. Forcing an arm the
//! host cannot run falls back to auto-detection and is recorded in
//! [`Detection::forced_unsupported`] — it never selects an illegal arm.
//!
//! # Bit-identity contract
//!
//! Every arm computes **exact integer** popcount reductions and
//! **element-wise identical** floating-point accumulations, so all arms
//! produce bit-for-bit identical outputs for every kernel — pinned by the
//! in-crate unit tests below, the property suite in `tests/properties.rs`
//! (which forces each supported arm against the naive reference), and the
//! bench harness asserts. Tier promotion, thread count, and host CPU can
//! therefore never change a result, only its latency.
//!
//! # Safety
//!
//! This is the only module in the crate allowed `unsafe` (the crate-level
//! lint is `deny(unsafe_code)` with a targeted allow in `lib.rs`). The
//! unsafe surface is exactly: `#[target_feature]`-gated intrinsic bodies
//! plus the aligned-width loads inside them. Each body is reachable only
//! through its safe wrapper, each wrapper asserts the slice bounds the
//! pointer arithmetic relies on, and each wrapper is only ever published
//! through a [`KernelTable`] whose construction verified the CPU features
//! at runtime ([`SimdArm::supported`]).

use std::sync::OnceLock;

/// Words reduced per Harley–Seal carry-save-adder block: 15 CSA steps
/// compress 16 XORed words into five carry-tier words
/// (`ones`/`twos`/`fours`/`eights`/`sixteens`), so the hot loop issues
/// five `count_ones` per block instead of sixteen — a ~3× reduction in
/// popcount traffic. Rows shorter than one block (`D < 1024`) reduce
/// through the per-word tail instead, which is why
/// [`crate::packed::PackedCodebook::batch_uses_csa`] is recorded in bench
/// provenance.
pub const CSA_BLOCK_WORDS: usize = 16;

/// Row lanes per strip of the batched bit-GEMM: 8 × `u64` = one 512-bit
/// vector (or two 256-bit halves on AVX2).
pub(crate) const STRIP_LANES: usize = 8;

/// Query columns advanced together by the per-word popcount tile.
pub(crate) const TILE_COLS: usize = 4;

/// True when the *build target* counts bits in hardware vector units
/// (AVX-512 `VPOPCNTDQ` enabled at compile time, e.g. by
/// `target-cpu=native` on recent x86 servers). Only the [`SimdArm::Scalar`]
/// arm consults this: with native vector popcount its portable per-word
/// tile is already optimal, without it the portable Harley–Seal tree wins.
/// The explicit arms carry their own feature proofs.
const NATIVE_VECTOR_POPCOUNT: bool = cfg!(target_feature = "avx512vpopcntdq");

/// One runtime-selectable kernel implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdArm {
    /// Portable fallback: the pre-dispatch `count_ones` kernels, exactly
    /// as compiled for the build target (autovectorized under
    /// `target-cpu=native`, nibble-emulated popcounts on the baseline).
    Scalar,
    /// Explicit AVX2 Harley–Seal carry-save-adder tree over 256-bit
    /// lanes with hardware-`popcnt` tier drains.
    Avx2Csa,
    /// Explicit AVX-512 per-word `vpopcntq` tile (one vector popcount
    /// per eight row-words).
    Avx512Popcnt,
}

impl SimdArm {
    /// Every arm, best first — the auto-detection preference order.
    pub const ALL: [SimdArm; 3] = [SimdArm::Avx512Popcnt, SimdArm::Avx2Csa, SimdArm::Scalar];

    /// Stable lowercase name (used in bench provenance and accepted by
    /// the `H3DFACT_SIMD` override).
    pub fn name(self) -> &'static str {
        match self {
            SimdArm::Scalar => "scalar",
            SimdArm::Avx2Csa => "csa",
            SimdArm::Avx512Popcnt => "vpopcnt",
        }
    }

    /// Parses an override spelling (`H3DFACT_SIMD`); aliases accepted.
    pub fn parse(s: &str) -> Option<SimdArm> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" | "portable" => Some(SimdArm::Scalar),
            "csa" | "avx2" | "avx2-csa" | "harley-seal" => Some(SimdArm::Avx2Csa),
            "vpopcnt" | "avx512" | "avx512-vpopcnt" | "vpopcntdq" => Some(SimdArm::Avx512Popcnt),
            _ => None,
        }
    }

    /// True when this host can execute the arm (checked with
    /// `is_x86_feature_detected!`; non-x86 hosts support only
    /// [`SimdArm::Scalar`]).
    pub fn supported(self) -> bool {
        match self {
            SimdArm::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            SimdArm::Avx2Csa => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("popcnt")
            }
            #[cfg(target_arch = "x86_64")]
            SimdArm::Avx512Popcnt => {
                std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
                    && std::arch::is_x86_feature_detected!("popcnt")
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

impl std::fmt::Display for SimdArm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How an arm reduces the batched similarity bit-GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reduction {
    /// One (vector) popcount per strip word — optimal when popcounts are
    /// single hardware ops.
    PerWordTile,
    /// Harley–Seal carry-save tree — optimal when each popcount costs a
    /// multi-op emulation (or the CSA steps fuse to `vpternlogq`).
    CsaTree,
}

/// Signature of the one-query 8-row strip reduction:
/// `(lane_words, m, w, j0, q) -> counts[8]` where lane `l` reduces
/// `Σ_i popcount(lane_words[i·m + j0 + l] ^ q[i])`.
pub type Strip8Fn = fn(&[u64], usize, usize, usize, &[u64]) -> [u64; STRIP_LANES];

/// Signature of the 4-query-column strip tile (each strip load amortized
/// across the four columns).
pub type Strip8x4Fn =
    fn(&[u64], usize, usize, usize, &[&[u64]; TILE_COLS]) -> [[u64; STRIP_LANES]; TILE_COLS];

/// The dispatched kernel entry points of one arm. All function pointers
/// are plain safe `fn`s (wrappers asserting bounds around the gated
/// intrinsic bodies); a table for an arm the host cannot run is never
/// handed out ([`table`] returns `None`).
pub struct KernelTable {
    /// Which arm this table implements.
    pub arm: SimdArm,
    /// The batched similarity reduction strategy of this arm.
    pub reduction: Reduction,
    /// Number of disagreeing bit positions between two equal-length
    /// packed rows (the XOR-popcount behind every dot product).
    pub disagreement: fn(&[u64], &[u64]) -> u64,
    /// XOR-popcounts of one 8-row lane-major strip against one query.
    pub strip8: Strip8Fn,
    /// The 4-query-column per-word popcount tile over one 8-row strip.
    pub strip8x4: Strip8x4Fn,
    /// Dense projection accumulate: `out[i] += wj · bit_i(words)` for
    /// every unpacked bit, element-wise identical to the scalar
    /// reference (`out.len() ≤ 64·words.len()`; trailing bits ignored).
    pub dense_accum: fn(&[u64], f64, &mut [f64]),
}

impl std::fmt::Debug for KernelTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelTable")
            .field("arm", &self.arm)
            .field("reduction", &self.reduction)
            .finish()
    }
}

/// What startup detection saw and chose — recorded in bench provenance so
/// numbers from different hosts (or forced-arm CI runs) stay comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Detection {
    /// The arm every undirected kernel call dispatches to.
    pub arm: SimdArm,
    /// The arm `H3DFACT_SIMD` asked for, when set and parsable.
    pub forced: Option<SimdArm>,
    /// True when `H3DFACT_SIMD` named an arm this host cannot run (the
    /// choice fell back to auto-detection).
    pub forced_unsupported: bool,
    /// Hardware scalar popcount detected.
    pub popcnt: bool,
    /// AVX2 detected.
    pub avx2: bool,
    /// AVX-512 foundation detected.
    pub avx512f: bool,
    /// AVX-512 `VPOPCNTDQ` detected.
    pub avx512vpopcntdq: bool,
}

/// The startup detection result (computed once, then cached).
pub fn detection() -> Detection {
    static DETECTION: OnceLock<Detection> = OnceLock::new();
    *DETECTION.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        let (popcnt, avx2, avx512f, avx512vpopcntdq) = (
            std::arch::is_x86_feature_detected!("popcnt"),
            std::arch::is_x86_feature_detected!("avx2"),
            std::arch::is_x86_feature_detected!("avx512f"),
            std::arch::is_x86_feature_detected!("avx512vpopcntdq"),
        );
        #[cfg(not(target_arch = "x86_64"))]
        let (popcnt, avx2, avx512f, avx512vpopcntdq) = (false, false, false, false);
        let forced = std::env::var("H3DFACT_SIMD")
            .ok()
            .and_then(|v| SimdArm::parse(&v));
        let auto = SimdArm::ALL
            .into_iter()
            .find(|a| a.supported())
            .unwrap_or(SimdArm::Scalar);
        let (arm, forced_unsupported) = match forced {
            Some(f) if f.supported() => (f, false),
            Some(_) => (auto, true),
            None => (auto, false),
        };
        Detection {
            arm,
            forced,
            forced_unsupported,
            popcnt,
            avx2,
            avx512f,
            avx512vpopcntdq,
        }
    })
}

/// The kernel table every undirected call dispatches through (the arm
/// chosen by [`detection`]).
#[inline]
pub fn active() -> &'static KernelTable {
    static ACTIVE: OnceLock<&'static KernelTable> = OnceLock::new();
    ACTIVE.get_or_init(|| table(detection().arm).expect("detected arm is supported"))
}

/// The kernel table of a specific arm, or `None` when this host cannot
/// execute it. Tests and the bench harness use this to force each arm
/// against the scalar reference.
pub fn table(arm: SimdArm) -> Option<&'static KernelTable> {
    if !arm.supported() {
        return None;
    }
    Some(match arm {
        SimdArm::Scalar => &SCALAR_TABLE,
        #[cfg(target_arch = "x86_64")]
        SimdArm::Avx2Csa => &AVX2_TABLE,
        #[cfg(target_arch = "x86_64")]
        SimdArm::Avx512Popcnt => &AVX512_TABLE,
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("non-scalar arms are never supported off x86_64"),
    })
}

/// Validates the bounds every strip kernel's pointer walk relies on:
/// `q` covers `w` words and the last strip load
/// (`(w−1)·m + j0 + 8`) stays inside `lane_words`.
#[inline]
fn check_strip(lane_words: &[u64], m: usize, w: usize, j0: usize, q: &[u64]) {
    assert!(q.len() >= w, "query words underrun the strip walk");
    assert!(
        w == 0 || (w - 1) * m + j0 + STRIP_LANES <= lane_words.len(),
        "lane strip underrun"
    );
}

// ─── Scalar arm (the portable reference) ────────────────────────────────

static SCALAR_TABLE: KernelTable = KernelTable {
    arm: SimdArm::Scalar,
    reduction: if NATIVE_VECTOR_POPCOUNT {
        Reduction::PerWordTile
    } else {
        Reduction::CsaTree
    },
    disagreement: disagreement_scalar,
    strip8: strip8_scalar,
    strip8x4: strip8x4_scalar,
    dense_accum: dense_accum_scalar,
};

/// Number of disagreeing elements between two packed bit patterns — the
/// portable reference every other arm is pinned against.
pub(crate) fn disagreement_scalar(row: &[u64], query: &[u64]) -> u64 {
    let mut chunks_r = row.chunks_exact(4);
    let mut chunks_q = query.chunks_exact(4);
    let (mut c0, mut c1, mut c2, mut c3) = (0u64, 0u64, 0u64, 0u64);
    for (r, q) in (&mut chunks_r).zip(&mut chunks_q) {
        c0 += (r[0] ^ q[0]).count_ones() as u64;
        c1 += (r[1] ^ q[1]).count_ones() as u64;
        c2 += (r[2] ^ q[2]).count_ones() as u64;
        c3 += (r[3] ^ q[3]).count_ones() as u64;
    }
    for (r, q) in chunks_r.remainder().iter().zip(chunks_q.remainder()) {
        c0 += (r ^ q).count_ones() as u64;
    }
    c0 + c1 + c2 + c3
}

/// Scalar strip reduction. For the scalar arm the per-word tile and the
/// CSA tree are both portable code; the tree is dispatched when the
/// target's `count_ones` is an emulation (see [`NATIVE_VECTOR_POPCOUNT`]).
fn strip8_scalar(
    lane_words: &[u64],
    m: usize,
    w: usize,
    j0: usize,
    q: &[u64],
) -> [u64; STRIP_LANES] {
    check_strip(lane_words, m, w, j0, q);
    if NATIVE_VECTOR_POPCOUNT || w < CSA_BLOCK_WORDS {
        strip_counts_cols::<STRIP_LANES, 1>(lane_words, m, w, j0, &[q])[0]
    } else {
        strip_counts_csa::<STRIP_LANES>(lane_words, m, w, j0, q)
    }
}

fn strip8x4_scalar(
    lane_words: &[u64],
    m: usize,
    w: usize,
    j0: usize,
    qs: &[&[u64]; TILE_COLS],
) -> [[u64; STRIP_LANES]; TILE_COLS] {
    for q in qs {
        check_strip(lane_words, m, w, j0, q);
    }
    strip_counts_cols::<STRIP_LANES, TILE_COLS>(lane_words, m, w, j0, qs)
}

/// The scalar dense projection accumulate — **byte-for-byte** the loop
/// the pre-dispatch kernels ran, so golden outputs cannot move.
fn dense_accum_scalar(words: &[u64], wj: f64, out: &mut [f64]) {
    let full = out.len() / 64;
    for (wi, &word) in words.iter().enumerate().take(full) {
        let chunk = &mut out[wi * 64..(wi + 1) * 64];
        for (b, o) in chunk.iter_mut().enumerate() {
            *o += wj * ((word >> b) & 1) as f64;
        }
    }
    if full * 64 < out.len() {
        let word = words[full];
        for (b, o) in out[full * 64..].iter_mut().enumerate() {
            *o += wj * ((word >> b) & 1) as f64;
        }
    }
}

/// XOR-popcounts of one `L`-row lane-major strip against `C` query
/// columns with per-word popcounts: the proven auto-vectorizing tile
/// (one vector load of the strip per word position, shared by all `C`
/// column accumulators).
#[inline(always)]
fn strip_counts_cols<const L: usize, const C: usize>(
    lane_words: &[u64],
    m: usize,
    w: usize,
    j0: usize,
    qs: &[&[u64]; C],
) -> [[u64; L]; C] {
    let mut counts = [[0u64; L]; C];
    // Exact-length reslices let the optimizer prove `q[i]` in bounds for
    // the whole walk (the per-word checks otherwise dominate small-D
    // strips).
    let qs: [&[u64]; C] = std::array::from_fn(|k| &qs[k][..w]);
    for i in 0..w {
        let lanes: &[u64; L] = lane_words[i * m + j0..][..L]
            .try_into()
            .expect("lane strip underrun");
        for (col, q) in counts.iter_mut().zip(qs) {
            let qw = q[i];
            for (c, &rw) in col.iter_mut().zip(lanes) {
                *c += (rw ^ qw).count_ones() as u64;
            }
        }
    }
    counts
}

/// XOR-popcounts of one `L`-row lane-major strip against a single query
/// column, reduced through the portable Harley–Seal CSA tree: per
/// [`CSA_BLOCK_WORDS`]-word block, 15 carry-save adds compress the
/// sixteen XORed words into five carry-tier words, so five `count_ones`
/// per lane replace sixteen. Words past the last full block fall back to
/// per-word popcounts. All `L` lanes advance in lockstep in SSA form so
/// the tree vectorizes as `L`-wide SIMD under `target-cpu=native`.
#[inline(always)]
fn strip_counts_csa<const L: usize>(
    lane_words: &[u64],
    m: usize,
    w: usize,
    j0: usize,
    q: &[u64],
) -> [u64; L] {
    let zero = [0u64; L];
    let mut counts = [0u64; L];
    let blocks = w / CSA_BLOCK_WORDS;
    for blk in 0..blocks {
        let i0 = blk * CSA_BLOCK_WORDS;
        let ld = |k: usize| -> [u64; L] {
            let lanes: &[u64; L] = lane_words[(i0 + k) * m + j0..][..L]
                .try_into()
                .expect("lane strip underrun");
            let qw = q[i0 + k];
            let mut d = [0u64; L];
            for l in 0..L {
                d[l] = lanes[l] ^ qw;
            }
            d
        };
        let (t_a, o1) = csa_lanes(zero, ld(0), ld(1));
        let (t_b, o2) = csa_lanes(o1, ld(2), ld(3));
        let (f_a, tw1) = csa_lanes(zero, t_a, t_b);
        let (t_c, o3) = csa_lanes(o2, ld(4), ld(5));
        let (t_d, o4) = csa_lanes(o3, ld(6), ld(7));
        let (f_b, tw2) = csa_lanes(tw1, t_c, t_d);
        let (e_a, f1) = csa_lanes(zero, f_a, f_b);
        let (t_e, o5) = csa_lanes(o4, ld(8), ld(9));
        let (t_f, o6) = csa_lanes(o5, ld(10), ld(11));
        let (f_c, tw3) = csa_lanes(tw2, t_e, t_f);
        let (t_g, o7) = csa_lanes(o6, ld(12), ld(13));
        let (t_h, o8) = csa_lanes(o7, ld(14), ld(15));
        let (f_d, tw4) = csa_lanes(tw3, t_g, t_h);
        let (e_b, f2) = csa_lanes(f1, f_c, f_d);
        let (s, e1) = csa_lanes(zero, e_a, e_b);
        for l in 0..L {
            counts[l] += 16 * s[l].count_ones() as u64
                + 8 * e1[l].count_ones() as u64
                + 4 * f2[l].count_ones() as u64
                + 2 * tw4[l].count_ones() as u64
                + o8[l].count_ones() as u64;
        }
    }
    for i in blocks * CSA_BLOCK_WORDS..w {
        let lanes: &[u64; L] = lane_words[i * m + j0..][..L]
            .try_into()
            .expect("lane strip underrun");
        let qw = q[i];
        for (c, &rw) in counts.iter_mut().zip(lanes) {
            *c += (rw ^ qw).count_ones() as u64;
        }
    }
    counts
}

/// One carry-save-adder step over `L` independent lanes: compresses
/// three addends (`c` carried in, `a`, `b`) into `(carry, sum)` per
/// lane. The by-value SSA form is what LLVM's SLP vectorizer reliably
/// turns into `L`-wide SIMD; on AVX-512 hosts each boolean form lowers
/// to `vpternlogq`.
#[inline(always)]
fn csa_lanes<const L: usize>(c: [u64; L], a: [u64; L], b: [u64; L]) -> ([u64; L], [u64; L]) {
    let mut carry = [0u64; L];
    let mut sum = [0u64; L];
    for l in 0..L {
        // Written as two *independent* three-input booleans (no shared
        // subexpression): parity and majority each lower to one
        // `vpternlogq` on AVX-512, where the factored
        // `(a&b) | ((a^b)&c)` form costs three instructions because the
        // shared `a^b` blocks the second fusion.
        sum[l] = a[l] ^ b[l] ^ c[l];
        carry[l] = (a[l] & b[l]) | (a[l] & c[l]) | (b[l] & c[l]);
    }
    (carry, sum)
}

// ─── AVX2 arm: Harley–Seal CSA tree over 256-bit lanes ──────────────────

#[cfg(target_arch = "x86_64")]
static AVX2_TABLE: KernelTable = KernelTable {
    arm: SimdArm::Avx2Csa,
    reduction: Reduction::CsaTree,
    disagreement: avx2::disagreement,
    strip8: avx2::strip8,
    strip8x4: avx2::strip8x4,
    dense_accum: avx2::dense_accum,
};

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! Safe wrappers + `#[target_feature(enable = "avx2,popcnt")]` bodies.
    //! Every wrapper is only published through [`super::AVX2_TABLE`],
    //! which [`super::table`] hands out after verifying the features at
    //! runtime.

    use super::{check_strip, CSA_BLOCK_WORDS, STRIP_LANES, TILE_COLS};
    use std::arch::x86_64::*;

    pub(super) fn disagreement(row: &[u64], query: &[u64]) -> u64 {
        // SAFETY: AVX2_TABLE is only reachable when avx2+popcnt were
        // detected at runtime.
        unsafe { disagreement_impl(row, query) }
    }

    pub(super) fn strip8(
        lane_words: &[u64],
        m: usize,
        w: usize,
        j0: usize,
        q: &[u64],
    ) -> [u64; STRIP_LANES] {
        check_strip(lane_words, m, w, j0, q);
        // SAFETY: features verified at table construction; bounds by
        // check_strip.
        unsafe { strip8_impl(lane_words, m, w, j0, q) }
    }

    pub(super) fn strip8x4(
        lane_words: &[u64],
        m: usize,
        w: usize,
        j0: usize,
        qs: &[&[u64]; TILE_COLS],
    ) -> [[u64; STRIP_LANES]; TILE_COLS] {
        // The AVX2 arm reduces through the CSA tree per column (no
        // vector popcount to amortize a shared strip load against).
        std::array::from_fn(|k| strip8(lane_words, m, w, j0, qs[k]))
    }

    pub(super) fn dense_accum(words: &[u64], wj: f64, out: &mut [f64]) {
        // SAFETY: features verified at table construction.
        unsafe { dense_accum_impl(words, wj, out) }
    }

    /// Sums the four `u64` lanes of `v` by hardware popcount.
    #[inline(always)]
    unsafe fn popcnt_lanes(v: __m256i) -> u64 {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, v);
        lanes.iter().map(|&l| l.count_ones() as u64).sum()
    }

    /// Drains a carry-tier word into the four per-lane accumulators with
    /// the tier's weight (the CSA tree keeps lanes independent, so the
    /// per-row split survives the whole reduction).
    #[inline(always)]
    unsafe fn drain_lanes(acc: &mut [u64; 4], v: __m256i, weight: u64) {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, v);
        for (a, &l) in acc.iter_mut().zip(&lanes) {
            *a += weight * l.count_ones() as u64;
        }
    }

    /// One CSA step on 256-bit lanes (see [`super::csa_lanes`]).
    #[inline(always)]
    unsafe fn csa(c: __m256i, a: __m256i, b: __m256i) -> (__m256i, __m256i) {
        let sum = _mm256_xor_si256(_mm256_xor_si256(a, b), c);
        let carry = _mm256_or_si256(
            _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
            _mm256_and_si256(b, c),
        );
        (carry, sum)
    }

    /// Row-vs-query disagreement: XOR four words at a time in a 256-bit
    /// lane, drain with hardware popcount (the `popcnt` feature makes
    /// the scalar `count_ones` drains single instructions even in
    /// portable builds).
    #[target_feature(enable = "avx2,popcnt")]
    unsafe fn disagreement_impl(row: &[u64], query: &[u64]) -> u64 {
        let n = row.len().min(query.len());
        let mut total = 0u64;
        let mut i = 0;
        while i + 4 <= n {
            let r = _mm256_loadu_si256(row.as_ptr().add(i) as *const __m256i);
            let q = _mm256_loadu_si256(query.as_ptr().add(i) as *const __m256i);
            total += popcnt_lanes(_mm256_xor_si256(r, q));
            i += 4;
        }
        while i < n {
            total += (row[i] ^ query[i]).count_ones() as u64;
            i += 1;
        }
        total
    }

    /// The Harley–Seal strip reduction: two 256-bit halves of the 8-lane
    /// strip advance through the 15-step CSA tree per 16-word block,
    /// draining five popcounts per half per block; sub-block tails count
    /// per word with hardware popcount.
    #[target_feature(enable = "avx2,popcnt")]
    unsafe fn strip8_impl(
        lane_words: &[u64],
        m: usize,
        w: usize,
        j0: usize,
        q: &[u64],
    ) -> [u64; STRIP_LANES] {
        let mut counts = [0u64; STRIP_LANES];
        let blocks = w / CSA_BLOCK_WORDS;
        for half in 0..2 {
            let base = j0 + 4 * half;
            let mut acc = [0u64; 4];
            let zero = _mm256_setzero_si256();
            // Each carry-tier word keeps its four u64 lanes independent,
            // so weighted per-lane drains preserve the per-row split the
            // strip contract requires.
            for blk in 0..blocks {
                let i0 = blk * CSA_BLOCK_WORDS;
                let ld = |k: usize| -> __m256i {
                    let p = lane_words.as_ptr().add((i0 + k) * m + base) as *const __m256i;
                    _mm256_xor_si256(_mm256_loadu_si256(p), _mm256_set1_epi64x(q[i0 + k] as i64))
                };
                let (t_a, o1) = csa(zero, ld(0), ld(1));
                let (t_b, o2) = csa(o1, ld(2), ld(3));
                let (f_a, tw1) = csa(zero, t_a, t_b);
                let (t_c, o3) = csa(o2, ld(4), ld(5));
                let (t_d, o4) = csa(o3, ld(6), ld(7));
                let (f_b, tw2) = csa(tw1, t_c, t_d);
                let (e_a, f1) = csa(zero, f_a, f_b);
                let (t_e, o5) = csa(o4, ld(8), ld(9));
                let (t_f, o6) = csa(o5, ld(10), ld(11));
                let (f_c, tw3) = csa(tw2, t_e, t_f);
                let (t_g, o7) = csa(o6, ld(12), ld(13));
                let (t_h, o8) = csa(o7, ld(14), ld(15));
                let (f_d, tw4) = csa(tw3, t_g, t_h);
                let (e_b, f2) = csa(f1, f_c, f_d);
                let (s, e1) = csa(zero, e_a, e_b);
                drain_lanes(&mut acc, s, 16);
                drain_lanes(&mut acc, e1, 8);
                drain_lanes(&mut acc, f2, 4);
                drain_lanes(&mut acc, tw4, 2);
                drain_lanes(&mut acc, o8, 1);
            }
            for (i, &qi) in q.iter().enumerate().take(w).skip(blocks * CSA_BLOCK_WORDS) {
                let p = lane_words.as_ptr().add(i * m + base) as *const __m256i;
                let x = _mm256_xor_si256(_mm256_loadu_si256(p), _mm256_set1_epi64x(qi as i64));
                drain_lanes(&mut acc, x, 1);
            }
            counts[4 * half..4 * half + 4].copy_from_slice(&acc);
        }
        counts
    }

    /// Bit-unpack dense projection accumulate on 256-bit lanes: per
    /// word, sixteen 4-lane groups test their selector bits and add the
    /// broadcast weight under the mask — element-wise identical to the
    /// scalar reference (adding a masked `wj` vs `wj·1`, and nothing vs
    /// `wj·0`, produce the same bits for every finite weight).
    #[target_feature(enable = "avx2,popcnt")]
    unsafe fn dense_accum_impl(words: &[u64], wj: f64, out: &mut [f64]) {
        let wv = _mm256_set1_pd(wj);
        let full = out.len() / 64;
        for (wi, &word) in words.iter().enumerate().take(full) {
            let bw = _mm256_set1_epi64x(word as i64);
            let op = out.as_mut_ptr().add(wi * 64);
            for g in 0..16 {
                let b0 = 4 * g;
                let sel = _mm256_set_epi64x(
                    1i64 << (b0 + 3),
                    1i64 << (b0 + 2),
                    1i64 << (b0 + 1),
                    1i64 << b0,
                );
                let hit = _mm256_cmpeq_epi64(_mm256_and_si256(bw, sel), sel);
                let add = _mm256_and_pd(_mm256_castsi256_pd(hit), wv);
                let p = op.add(b0);
                _mm256_storeu_pd(p, _mm256_add_pd(_mm256_loadu_pd(p), add));
            }
        }
        if full * 64 < out.len() {
            let word = words[full];
            for (b, o) in out[full * 64..].iter_mut().enumerate() {
                *o += wj * ((word >> b) & 1) as f64;
            }
        }
    }
}

// ─── AVX-512 arm: per-word vpopcntq tile ────────────────────────────────

#[cfg(target_arch = "x86_64")]
static AVX512_TABLE: KernelTable = KernelTable {
    arm: SimdArm::Avx512Popcnt,
    reduction: Reduction::PerWordTile,
    disagreement: avx512::disagreement,
    strip8: avx512::strip8,
    strip8x4: avx512::strip8x4,
    dense_accum: avx512::dense_accum,
};

#[cfg(target_arch = "x86_64")]
mod avx512 {
    //! Safe wrappers + `#[target_feature(enable = "avx512f,avx512vpopcntdq,popcnt")]`
    //! bodies, published only through [`super::AVX512_TABLE`].

    use super::{check_strip, STRIP_LANES, TILE_COLS};
    use std::arch::x86_64::*;

    pub(super) fn disagreement(row: &[u64], query: &[u64]) -> u64 {
        // SAFETY: features verified at table construction.
        unsafe { disagreement_impl(row, query) }
    }

    pub(super) fn strip8(
        lane_words: &[u64],
        m: usize,
        w: usize,
        j0: usize,
        q: &[u64],
    ) -> [u64; STRIP_LANES] {
        check_strip(lane_words, m, w, j0, q);
        // SAFETY: features verified at table construction; bounds by
        // check_strip.
        unsafe { strip8_impl(lane_words, m, w, j0, q) }
    }

    pub(super) fn strip8x4(
        lane_words: &[u64],
        m: usize,
        w: usize,
        j0: usize,
        qs: &[&[u64]; TILE_COLS],
    ) -> [[u64; STRIP_LANES]; TILE_COLS] {
        for q in qs {
            check_strip(lane_words, m, w, j0, q);
        }
        // SAFETY: features verified at table construction; bounds by
        // check_strip.
        unsafe { strip8x4_impl(lane_words, m, w, j0, qs) }
    }

    pub(super) fn dense_accum(words: &[u64], wj: f64, out: &mut [f64]) {
        // SAFETY: features verified at table construction.
        unsafe { dense_accum_impl(words, wj, out) }
    }

    #[inline(always)]
    unsafe fn store8(v: __m512i) -> [u64; 8] {
        let mut lanes = [0u64; 8];
        _mm512_storeu_si512(lanes.as_mut_ptr() as *mut __m512i, v);
        lanes
    }

    /// Row-vs-query disagreement: one `vpopcntq` per eight words.
    #[target_feature(enable = "avx512f,avx512vpopcntdq,popcnt")]
    unsafe fn disagreement_impl(row: &[u64], query: &[u64]) -> u64 {
        let n = row.len().min(query.len());
        let mut acc = _mm512_setzero_si512();
        let mut i = 0;
        while i + 8 <= n {
            let r = _mm512_loadu_si512(row.as_ptr().add(i) as *const __m512i);
            let q = _mm512_loadu_si512(query.as_ptr().add(i) as *const __m512i);
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_xor_si512(r, q)));
            i += 8;
        }
        let mut total: u64 = store8(acc).iter().sum();
        while i < n {
            total += (row[i] ^ query[i]).count_ones() as u64;
            i += 1;
        }
        total
    }

    /// The per-word popcount tile: the whole 8-lane strip is one zmm
    /// register; each word position costs one load, one xor, one
    /// `vpopcntq`, one add.
    #[target_feature(enable = "avx512f,avx512vpopcntdq,popcnt")]
    unsafe fn strip8_impl(
        lane_words: &[u64],
        m: usize,
        w: usize,
        j0: usize,
        q: &[u64],
    ) -> [u64; STRIP_LANES] {
        let mut acc = _mm512_setzero_si512();
        for (i, &qi) in q.iter().enumerate().take(w) {
            let lanes = _mm512_loadu_si512(lane_words.as_ptr().add(i * m + j0) as *const __m512i);
            let x = _mm512_xor_si512(lanes, _mm512_set1_epi64(qi as i64));
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
        }
        store8(acc)
    }

    /// Four query columns share every strip load — the cache-blocked
    /// bit-GEMM tile with explicit vector popcounts.
    #[target_feature(enable = "avx512f,avx512vpopcntdq,popcnt")]
    unsafe fn strip8x4_impl(
        lane_words: &[u64],
        m: usize,
        w: usize,
        j0: usize,
        qs: &[&[u64]; TILE_COLS],
    ) -> [[u64; STRIP_LANES]; TILE_COLS] {
        let mut acc = [_mm512_setzero_si512(); TILE_COLS];
        for i in 0..w {
            let lanes = _mm512_loadu_si512(lane_words.as_ptr().add(i * m + j0) as *const __m512i);
            for (a, q) in acc.iter_mut().zip(qs) {
                let x = _mm512_xor_si512(lanes, _mm512_set1_epi64(q[i] as i64));
                *a = _mm512_add_epi64(*a, _mm512_popcnt_epi64(x));
            }
        }
        let mut out = [[0u64; STRIP_LANES]; TILE_COLS];
        for (o, a) in out.iter_mut().zip(acc) {
            *o = store8(a);
        }
        out
    }

    /// Bit-unpack dense projection accumulate on 512-bit lanes: per
    /// word, eight 8-lane groups turn their selector-bit tests into a
    /// mask register and add the broadcast weight under it.
    #[target_feature(enable = "avx512f,avx512vpopcntdq,popcnt")]
    unsafe fn dense_accum_impl(words: &[u64], wj: f64, out: &mut [f64]) {
        let wv = _mm512_set1_pd(wj);
        let full = out.len() / 64;
        for (wi, &word) in words.iter().enumerate().take(full) {
            let bw = _mm512_set1_epi64(word as i64);
            let op = out.as_mut_ptr().add(wi * 64);
            for g in 0..8 {
                let b0 = 8 * g;
                let sel = _mm512_set_epi64(
                    1i64 << (b0 + 7),
                    1i64 << (b0 + 6),
                    1i64 << (b0 + 5),
                    1i64 << (b0 + 4),
                    1i64 << (b0 + 3),
                    1i64 << (b0 + 2),
                    1i64 << (b0 + 1),
                    1i64 << b0,
                );
                let hit = _mm512_test_epi64_mask(bw, sel);
                let p = op.add(b0);
                let cur = _mm512_loadu_pd(p);
                _mm512_storeu_pd(p, _mm512_mask_add_pd(cur, hit, cur, wv));
            }
        }
        if full * 64 < out.len() {
            let word = words[full];
            for (b, o) in out[full * 64..].iter_mut().enumerate() {
                *o += wj * ((word >> b) & 1) as f64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use rand::Rng;

    /// Every arm the host can run (always includes Scalar).
    fn supported_arms() -> Vec<&'static KernelTable> {
        SimdArm::ALL
            .into_iter()
            .filter(|a| a.supported())
            .map(|a| table(a).expect("supported arm has a table"))
            .collect()
    }

    #[test]
    fn detection_is_coherent() {
        let det = detection();
        assert!(det.arm.supported(), "chosen arm must be executable");
        assert!(SimdArm::Scalar.supported());
        let act = active();
        assert_eq!(act.arm, det.arm);
        // Forcing semantics: a parsable override either is the chosen
        // arm or was unsupported and recorded as such.
        if let Some(f) = det.forced {
            assert!(det.arm == f || det.forced_unsupported);
        }
    }

    #[test]
    fn arm_names_round_trip_through_parse() {
        for arm in SimdArm::ALL {
            assert_eq!(SimdArm::parse(arm.name()), Some(arm), "{arm}");
        }
        assert_eq!(SimdArm::parse("AVX2"), Some(SimdArm::Avx2Csa));
        assert_eq!(SimdArm::parse(" vpopcntdq "), Some(SimdArm::Avx512Popcnt));
        assert_eq!(SimdArm::parse("mmx"), None);
    }

    #[test]
    fn every_arm_disagreement_matches_naive() {
        let mut rng = rng_from_seed(90);
        for n in [0usize, 1, 3, 4, 7, 8, 16, 31, 129] {
            let row: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
            let q: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
            let naive: u64 = row
                .iter()
                .zip(&q)
                .map(|(r, x)| (r ^ x).count_ones() as u64)
                .sum();
            for k in supported_arms() {
                assert_eq!((k.disagreement)(&row, &q), naive, "{} n={n}", k.arm);
            }
        }
    }

    #[test]
    fn every_arm_strip8_matches_naive_popcount() {
        // Full CSA blocks, multi-block rows, and ragged sub-block tails,
        // with the strip at a non-zero lane offset.
        let mut rng = rng_from_seed(91);
        for w in [1usize, 7, 16, 19, 32, 48] {
            for (m, j0) in [(8usize, 0usize), (24, 8)] {
                let lane_words: Vec<u64> = (0..w * m).map(|_| rng.gen()).collect();
                let q: Vec<u64> = (0..w).map(|_| rng.gen()).collect();
                let naive = |l: usize| -> u64 {
                    (0..w)
                        .map(|i| (lane_words[i * m + j0 + l] ^ q[i]).count_ones() as u64)
                        .sum()
                };
                for k in supported_arms() {
                    let counts = (k.strip8)(&lane_words, m, w, j0, &q);
                    for (l, &c) in counts.iter().enumerate() {
                        assert_eq!(c, naive(l), "{} w={w} m={m} j0={j0} lane {l}", k.arm);
                    }
                }
            }
        }
    }

    #[test]
    fn every_arm_strip8x4_matches_naive_popcount() {
        let mut rng = rng_from_seed(92);
        for w in [5usize, 16, 21, 37] {
            let m = 8;
            let lane_words: Vec<u64> = (0..w * m).map(|_| rng.gen()).collect();
            let qs_owned: Vec<Vec<u64>> = (0..TILE_COLS)
                .map(|_| (0..w).map(|_| rng.gen()).collect())
                .collect();
            let qs: [&[u64]; TILE_COLS] = std::array::from_fn(|k| qs_owned[k].as_slice());
            for k in supported_arms() {
                let counts = (k.strip8x4)(&lane_words, m, w, 0, &qs);
                for (c, q) in counts.iter().zip(&qs_owned) {
                    for (l, &cnt) in c.iter().enumerate() {
                        let naive: u64 = (0..w)
                            .map(|i| (lane_words[i * m + l] ^ q[i]).count_ones() as u64)
                            .sum();
                        assert_eq!(cnt, naive, "{} w={w} lane {l}", k.arm);
                    }
                }
            }
        }
    }

    #[test]
    fn every_arm_dense_accum_matches_scalar_bitwise() {
        // Ragged output lengths (sub-word tails) and negative / fractional
        // weights; accumulators pre-seeded so masked adds must preserve
        // existing bits exactly.
        let mut rng = rng_from_seed(93);
        for out_len in [1usize, 63, 64, 65, 130, 512, 523] {
            let words: Vec<u64> = (0..out_len.div_ceil(64)).map(|_| rng.gen()).collect();
            let seed: Vec<f64> = (0..out_len).map(|i| (i as f64) * 0.25 - 3.0).collect();
            for wj in [1.0f64, -2.5, 0.125, 1e-3] {
                let mut reference = seed.clone();
                dense_accum_scalar(&words, wj, &mut reference);
                for k in supported_arms() {
                    let mut out = seed.clone();
                    (k.dense_accum)(&words, wj, &mut out);
                    for (i, (x, y)) in out.iter().zip(&reference).enumerate() {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "{} out_len={out_len} wj={wj} elt {i}",
                            k.arm
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn scalar_csa_tree_matches_naive_popcount() {
        // The portable Harley–Seal tree is only dispatched on targets
        // without native vector popcount — pin it against the naive
        // reduction on every build regardless.
        let mut rng = rng_from_seed(94);
        for w in [16usize, 32, 48, 19, 7] {
            let m = 8;
            let lane_words: Vec<u64> = (0..w * m).map(|_| rng.gen()).collect();
            let q: Vec<u64> = (0..w).map(|_| rng.gen()).collect();
            let counts = strip_counts_csa::<8>(&lane_words, m, w, 0, &q);
            for l in 0..m {
                let naive: u64 = (0..w)
                    .map(|i| (lane_words[i * m + l] ^ q[i]).count_ones() as u64)
                    .sum();
                assert_eq!(counts[l], naive, "w={w} lane {l}");
            }
        }
    }

    #[test]
    fn scalar_column_tile_matches_naive_popcount() {
        let mut rng = rng_from_seed(95);
        let (m, w) = (8usize, 21usize);
        let lane_words: Vec<u64> = (0..w * m).map(|_| rng.gen()).collect();
        let qs_owned: Vec<Vec<u64>> = (0..4)
            .map(|_| (0..w).map(|_| rng.gen()).collect())
            .collect();
        let qs: [&[u64]; 4] = std::array::from_fn(|k| qs_owned[k].as_slice());
        let counts = strip_counts_cols::<8, 4>(&lane_words, m, w, 0, &qs);
        for (k, q) in qs_owned.iter().enumerate() {
            for l in 0..m {
                let naive: u64 = (0..w)
                    .map(|i| (lane_words[i * m + l] ^ q[i]).count_ones() as u64)
                    .sum();
                assert_eq!(counts[k][l], naive, "col {k} lane {l}");
            }
        }
    }
}
