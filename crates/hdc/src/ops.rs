//! Free functions over sets of hypervectors: multi-way binding and bundling.

use crate::bipolar::BipolarVector;

/// Tie-breaking policy for [`bundle`] when the number of inputs is even and
/// an element sums to exactly zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// Break ties by element-index parity (deterministic, unbiased in
    /// aggregate). This is the default.
    #[default]
    Parity,
    /// Resolve ties toward `+1`.
    Positive,
    /// Resolve ties toward `-1`.
    Negative,
}

/// Binds (element-wise multiplies) all vectors in the slice.
///
/// An empty slice has no well-defined dimension, so at least one vector is
/// required. A single vector binds to itself-identity (returns a clone).
///
/// # Panics
///
/// Panics if `vectors` is empty or dimensions disagree.
///
/// # Example
///
/// ```
/// use hdc::{bind_all, BipolarVector, rng::rng_from_seed};
/// let mut rng = rng_from_seed(0);
/// let xs: Vec<_> = (0..3).map(|_| BipolarVector::random(256, &mut rng)).collect();
/// let product = bind_all(&xs);
/// // Unbinding two of the three factors recovers the third.
/// assert_eq!(product.bind(&xs[0]).bind(&xs[1]), xs[2]);
/// ```
pub fn bind_all(vectors: &[BipolarVector]) -> BipolarVector {
    assert!(!vectors.is_empty(), "bind_all needs at least one vector");
    let mut acc = vectors[0].clone();
    for v in &vectors[1..] {
        acc = acc.bind(v);
    }
    acc
}

/// Bundles (majority-superposes) all vectors in the slice: each output
/// element is the sign of the element-wise sum, with ties resolved per
/// `tie_break`.
///
/// # Panics
///
/// Panics if `vectors` is empty or dimensions disagree.
pub fn bundle(vectors: &[BipolarVector], tie_break: TieBreak) -> BipolarVector {
    assert!(!vectors.is_empty(), "bundle needs at least one vector");
    let dim = vectors[0].dim();
    let mut sums = vec![0i32; dim];
    for v in vectors {
        assert_eq!(v.dim(), dim, "bundle dimension mismatch");
        for (i, s) in sums.iter_mut().enumerate() {
            *s += v.sign(i) as i32;
        }
    }
    let mut out = BipolarVector::neg_ones(dim);
    for (i, &s) in sums.iter().enumerate() {
        let positive = match s.cmp(&0) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => match tie_break {
                TieBreak::Parity => i % 2 == 0,
                TieBreak::Positive => true,
                TieBreak::Negative => false,
            },
        };
        if positive {
            out.set(i, 1);
        }
    }
    out
}

/// Computes the pre-sign projection sums `Σ_j w_j · x_j` per element.
///
/// This is the analog quantity on the bit lines of the projection crossbar
/// before re-binarization; [`weighted_bundle`] is its signed counterpart.
/// Allocates the output; [`weighted_sums_into`] is the scratch-reusing
/// variant the resonator hot path calls.
///
/// # Panics
///
/// Panics if lengths disagree or `vectors` is empty.
pub fn weighted_sums(vectors: &[BipolarVector], weights: &[f64]) -> Vec<f64> {
    assert!(
        !vectors.is_empty(),
        "weighted_sums needs at least one vector"
    );
    let mut sums = vec![0.0f64; vectors[0].dim()];
    weighted_sums_into(vectors, weights, &mut sums);
    sums
}

/// Allocation-free [`weighted_sums`]: writes the `D` pre-sign projection
/// sums into `out`.
///
/// Zero-weight vectors are skipped; active vectors contribute `+w` on set
/// bits only and the signed sum is recovered as `2·acc − Σ w` per element
/// (the same kernel shape as
/// [`crate::packed::PackedCodebook::weighted_sums_into`]).
///
/// # Panics
///
/// Panics if lengths disagree, `vectors` is empty, or `out.len()` is not
/// the common dimension.
pub fn weighted_sums_into(vectors: &[BipolarVector], weights: &[f64], out: &mut [f64]) {
    assert!(
        !vectors.is_empty(),
        "weighted_sums needs at least one vector"
    );
    assert_eq!(
        vectors.len(),
        weights.len(),
        "weighted_sums: {} vectors vs {} weights",
        vectors.len(),
        weights.len()
    );
    let dim = vectors[0].dim();
    assert_eq!(out.len(), dim, "weighted_sums output length mismatch");
    out.fill(0.0);
    let mut total = 0.0f64;
    for (v, &w) in vectors.iter().zip(weights) {
        assert_eq!(v.dim(), dim, "weighted_sums dimension mismatch");
        total += w;
        if w == 0.0 {
            continue;
        }
        crate::packed::accumulate_set_bits(v.words(), w, out);
    }
    for o in out.iter_mut() {
        *o = 2.0 * *o - total;
    }
}

/// Bundles with per-vector integer weights (e.g. similarity scores), taking
/// the sign of `Σ_j w_j · x_j` per element.
///
/// This is exactly the *projection* step `sign(X·a)` of the resonator
/// network when `w` holds the (possibly noisy, quantized) similarities.
///
/// # Panics
///
/// Panics if lengths disagree or `vectors` is empty.
pub fn weighted_bundle(vectors: &[BipolarVector], weights: &[f64]) -> BipolarVector {
    BipolarVector::from_reals_sign(&weighted_sums(vectors, weights))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn bind_all_single_is_identity() {
        let mut rng = rng_from_seed(10);
        let a = BipolarVector::random(128, &mut rng);
        assert_eq!(bind_all(std::slice::from_ref(&a)), a);
    }

    #[test]
    fn bind_all_matches_pairwise() {
        let mut rng = rng_from_seed(11);
        let xs: Vec<_> = (0..4)
            .map(|_| BipolarVector::random(128, &mut rng))
            .collect();
        let expect = xs[0].bind(&xs[1]).bind(&xs[2]).bind(&xs[3]);
        assert_eq!(bind_all(&xs), expect);
    }

    #[test]
    fn bundle_majority_of_three() {
        let a = BipolarVector::from_signs(&[1, 1, -1, -1]);
        let b = BipolarVector::from_signs(&[1, -1, 1, -1]);
        let c = BipolarVector::from_signs(&[1, -1, -1, 1]);
        let m = bundle(&[a, b, c], TieBreak::Parity);
        assert_eq!(m.to_signs(), vec![1, -1, -1, -1]);
    }

    #[test]
    fn bundle_tie_breaks() {
        let a = BipolarVector::from_signs(&[1, -1]);
        let b = BipolarVector::from_signs(&[-1, 1]);
        let pos = bundle(&[a.clone(), b.clone()], TieBreak::Positive);
        let neg = bundle(&[a.clone(), b.clone()], TieBreak::Negative);
        let par = bundle(&[a, b], TieBreak::Parity);
        assert_eq!(pos.to_signs(), vec![1, 1]);
        assert_eq!(neg.to_signs(), vec![-1, -1]);
        assert_eq!(par.to_signs(), vec![1, -1]);
    }

    #[test]
    fn bundle_preserves_similarity_to_members() {
        let mut rng = rng_from_seed(12);
        let xs: Vec<_> = (0..5)
            .map(|_| BipolarVector::random(2048, &mut rng))
            .collect();
        let m = bundle(&xs, TieBreak::Parity);
        let outsider = BipolarVector::random(2048, &mut rng);
        for x in &xs {
            assert!(m.cosine(x) > 0.2, "member similarity too low");
        }
        assert!(m.cosine(&outsider).abs() < 0.1);
    }

    #[test]
    fn weighted_bundle_dominant_weight_wins() {
        let mut rng = rng_from_seed(13);
        let xs: Vec<_> = (0..3)
            .map(|_| BipolarVector::random(512, &mut rng))
            .collect();
        let w = [10.0, 0.1, 0.1];
        let out = weighted_bundle(&xs, &w);
        assert!(out.cosine(&xs[0]) > 0.9);
    }

    #[test]
    fn weighted_bundle_zero_weights_skip() {
        let mut rng = rng_from_seed(14);
        let xs: Vec<_> = (0..2)
            .map(|_| BipolarVector::random(256, &mut rng))
            .collect();
        let out = weighted_bundle(&xs, &[0.0, 1.0]);
        assert_eq!(out, xs[1]);
    }

    #[test]
    #[should_panic(expected = "at least one vector")]
    fn bundle_empty_panics() {
        let _ = bundle(&[], TieBreak::Parity);
    }
}
