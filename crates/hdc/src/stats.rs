//! Small statistics toolkit shared by the device and algorithm crates.
//!
//! The offline dependency set has no `rand_distr`, so Gaussian and
//! log-normal sampling are implemented here (Box–Muller transform), along
//! with summary-statistics helpers used by the experiment harnesses.

use rand::Rng;

/// Draws one standard-normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws `N(mean, sigma²)`.
pub fn normal<R: Rng + ?Sized>(mean: f64, sigma: f64, rng: &mut R) -> f64 {
    mean + sigma * standard_normal(rng)
}

/// Draws a log-normal sample whose *underlying* normal has the given mean
/// and sigma (i.e. `exp(N(mu, sigma²))`). Used for RRAM conductance
/// programming variability, which is well described as log-normal
/// (Yu et al., IEEE TED 2012).
pub fn log_normal<R: Rng + ?Sized>(mu: f64, sigma: f64, rng: &mut R) -> f64 {
    normal(mu, sigma, rng).exp()
}

/// Running mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample standard deviation (0 with fewer than 2 samples).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

/// Wilson score interval half-width for a binomial proportion at ~95 %
/// confidence; used when reporting factorization accuracies over trials.
pub fn wilson_half_width(successes: u64, trials: u64) -> f64 {
    if trials == 0 {
        return 0.0;
    }
    let z = 1.96f64;
    let n = trials as f64;
    let p = successes as f64 / n;
    z * (p * (1.0 - p) / n + z * z / (4.0 * n * n)).sqrt() / (1.0 + z * z / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn normal_moments() {
        let mut rng = rng_from_seed(40);
        let s: Summary = (0..20_000).map(|_| normal(3.0, 2.0, &mut rng)).collect();
        assert!((s.mean() - 3.0).abs() < 0.06, "mean {}", s.mean());
        assert!((s.std_dev() - 2.0).abs() < 0.06, "std {}", s.std_dev());
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = rng_from_seed(41);
        assert!((0..1000).all(|_| log_normal(0.0, 0.5, &mut rng) > 0.0));
    }

    #[test]
    fn log_normal_median() {
        let mut rng = rng_from_seed(42);
        let mut xs: Vec<f64> = (0..9_999).map(|_| log_normal(1.0, 0.7, &mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        // Median of exp(N(mu, s^2)) is exp(mu) = e.
        assert!((median - 1.0f64.exp()).abs() < 0.15, "median {median}");
    }

    #[test]
    fn summary_tracks_min_max_count() {
        let s: Summary = [1.0, 5.0, 3.0].into_iter().collect();
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn wilson_shrinks_with_trials() {
        let w10 = wilson_half_width(9, 10);
        let w1000 = wilson_half_width(900, 1000);
        assert!(w1000 < w10);
        assert_eq!(wilson_half_width(0, 0), 0.0);
    }
}
