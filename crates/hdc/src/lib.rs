//! Holographic hyperdimensional vector substrate.
//!
//! This crate implements the vector-symbolic-architecture (VSA) primitives
//! that the H3DFact paper (DATE 2024) builds on: dense bipolar hypervectors
//! `x ∈ {-1,+1}^D`, the binding/bundling/permutation algebra, codebooks of
//! random item vectors, and the composition of *product vectors* whose
//! factorization is the workload accelerated by H3DFact.
//!
//! # Representation
//!
//! Bipolar elements are bit-packed: a set bit encodes `+1`, a cleared bit
//! encodes `-1`. Binding (element-wise multiplication) becomes XNOR, and the
//! dot product between two vectors reduces to popcounts, which is what the
//! in-memory hardware model in the `cim` crate exploits as well.
//!
//! # Example
//!
//! ```
//! use hdc::{Codebook, rng::rng_from_seed};
//!
//! let mut rng = rng_from_seed(7);
//! let shape = Codebook::random(8, 1024, &mut rng);
//! let color = Codebook::random(8, 1024, &mut rng);
//!
//! // Compose an object vector: s = shape_3 ⊙ color_5
//! let s = shape.vector(3).bind(color.vector(5));
//!
//! // Unbind with the correct color recovers something similar to shape_3.
//! let recovered = s.bind(color.vector(5));
//! assert_eq!(shape.cleanup(&recovered).index, 3);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bipolar;
pub mod codebook;
// The one module allowed `unsafe`: `#[target_feature]`-gated SIMD kernel
// bodies behind bounds-asserting safe wrappers (see its module docs for
// the safety argument). Everything else in the crate stays forbidden.
#[allow(unsafe_code)]
pub mod dispatch;
pub mod error;
pub mod ops;
pub mod packed;
pub mod problem;
pub mod rng;
pub mod sequence;
pub mod stats;

pub use bipolar::BipolarVector;
pub use codebook::{CleanupHit, Codebook};
pub use dispatch::{Detection, SimdArm, CSA_BLOCK_WORDS};
pub use error::DimensionMismatch;
pub use ops::{bind_all, bundle, TieBreak};
pub use packed::{PackedBatch, PackedCodebook, SPARSE_DENSE_CROSSOVER};
pub use problem::{FactorizationProblem, ProblemSpec};
pub use sequence::{decode_position, encode_sequence};
