//! Deterministic random-number plumbing.
//!
//! Every stochastic component in the reproduction takes an explicit seed so
//! that experiments are bit-for-bit reproducible. Independent streams are
//! derived from a master seed with [`derive_seed`] (SplitMix64 finalizer),
//! which keeps parallel trials decorrelated without sharing RNG state.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a seeded [`StdRng`].
///
/// # Example
///
/// ```
/// use hdc::rng::rng_from_seed;
/// use rand::Rng;
/// let mut a = rng_from_seed(1);
/// let mut b = rng_from_seed(1);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent stream seed from `(master, stream)` using the
/// SplitMix64 finalizer — adjacent streams produce uncorrelated seeds.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Convenience: an [`StdRng`] for stream `stream` of master seed `master`.
pub fn stream_rng(master: u64, stream: u64) -> StdRng {
    rng_from_seed(derive_seed(master, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(99);
        let mut b = rng_from_seed(99);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn derived_streams_differ() {
        let s0 = derive_seed(7, 0);
        let s1 = derive_seed(7, 1);
        let s2 = derive_seed(8, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
    }

    #[test]
    fn stream_rng_is_deterministic() {
        let mut a = stream_rng(5, 3);
        let mut b = stream_rng(5, 3);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
