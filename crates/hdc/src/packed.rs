//! Packed codebook matrix kernels: the cache-friendly hot path behind the
//! resonator's two MVMs.
//!
//! A [`crate::Codebook`] stores its item vectors as separate
//! [`BipolarVector`]s — convenient for the algebra, but every similarity
//! MVM then chases `M` separate heap allocations. [`PackedCodebook`] lays
//! all `M` codevectors' `u64` words out **row-major in one contiguous
//! buffer**, so the similarity MVM (`a = Xᵀ q`) streams memory linearly and
//! the projection MVM (`r = X a`) walks set bits of each row exactly once.
//!
//! # Kernel contract
//!
//! All kernels write into caller-provided output slices and allocate
//! nothing. Callers own the scratch:
//!
//! - [`PackedCodebook::similarities_into`] / `similarities_i64_into` —
//!   `out.len() == len()` (`M` dot products).
//! - [`PackedCodebook::weighted_sums_into`] — `out.len() == dim()` (`D`
//!   pre-sign projection sums).
//!
//! # Blocking
//!
//! The similarity MVM processes rows in lane-major blocks of eight
//! ([`LANE_BLOCK`]): each query word is broadcast against one contiguous
//! load of eight rows' words, and the eight partial counts accumulate in
//! independent SIMD lanes with no horizontal reduction inside the loop.
//! The projection MVM skips zero-weight rows entirely (the common case
//! after the sparsifying ADC activation), iterating only the set bits of
//! active rows when few are active and falling back to a branchless dense
//! unpack otherwise, recovering the signed sum as `2·(Σ_{set} w) − Σ w`
//! per element.

use serde::{Deserialize, Serialize};

use crate::bipolar::BipolarVector;

/// Number of elements packed into one storage word.
const WORD_BITS: usize = 64;

/// How many codevector rows share one SIMD accumulation block in the
/// lane-major similarity kernel.
const LANE_BLOCK: usize = 8;

/// All `M` codevectors of one codebook in contiguous word buffers, with
/// allocation-free popcount MVM kernels.
///
/// Two mirrors of the same bits are kept:
///
/// - **row-major** (`words[j·W .. (j+1)·W]` is row `j`) — used by
///   [`PackedCodebook::row`], per-row dots, and the projection kernel;
/// - **lane-major** (`lane_words[i·M + j]` is word `i` of row `j`) — used
///   by the similarity MVM so that eight consecutive rows' partial counts
///   accumulate in independent SIMD lanes with a single contiguous load
///   per word position and no horizontal reductions inside the loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedCodebook {
    len: usize,
    dim: usize,
    words_per_row: usize,
    words: Vec<u64>,
    lane_words: Vec<u64>,
}

impl PackedCodebook {
    /// Packs `vectors` (all of one dimension) into the contiguous layouts.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is empty or dimensions disagree.
    pub fn from_vectors(vectors: &[BipolarVector]) -> Self {
        assert!(!vectors.is_empty(), "packed codebook must be non-empty");
        let dim = vectors[0].dim();
        let words_per_row = dim.div_ceil(WORD_BITS);
        let m = vectors.len();
        let mut words = Vec::with_capacity(m * words_per_row);
        for v in vectors {
            assert_eq!(v.dim(), dim, "packed codebook vectors must share dim");
            words.extend_from_slice(v.words());
        }
        let mut lane_words = vec![0u64; m * words_per_row];
        for (j, v) in vectors.iter().enumerate() {
            for (i, &w) in v.words().iter().enumerate() {
                lane_words[i * m + j] = w;
            }
        }
        Self {
            len: m,
            dim,
            words_per_row,
            words,
            lane_words,
        }
    }

    /// Number of rows (codevectors) `M`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false: packed codebooks are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Hypervector dimension `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Words per packed row (`ceil(D / 64)`).
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Borrows the packed words of row `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= len()`.
    #[inline]
    pub fn row(&self, j: usize) -> &[u64] {
        &self.words[j * self.words_per_row..(j + 1) * self.words_per_row]
    }

    /// Dot product of row `j` with `query` (exact, via XOR-popcount).
    ///
    /// # Panics
    ///
    /// Panics if `j >= len()` or the query dimension differs.
    #[inline]
    pub fn dot_row(&self, j: usize, query: &BipolarVector) -> i64 {
        assert_eq!(query.dim(), self.dim, "query dimension mismatch");
        self.dim as i64 - 2 * disagreement(self.row(j), query.words()) as i64
    }

    /// Similarity MVM `a = Xᵀ q` into `out` as `f64` (values are exact
    /// integers in `[-D, D]`).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != len()` or the query dimension differs.
    pub fn similarities_into(&self, query: &BipolarVector, out: &mut [f64]) {
        assert_eq!(out.len(), self.len, "similarity output length mismatch");
        assert_eq!(query.dim(), self.dim, "query dimension mismatch");
        let q = query.words();
        let d = self.dim as i64;
        let m = self.len;
        let mut j = 0;
        // Lane-major blocks: each pass keeps LANE_BLOCK row counters in
        // independent lanes; every word position contributes one
        // contiguous LANE_BLOCK-wide load XOR'd against the broadcast
        // query word — no horizontal reduction until the block finishes.
        while j + LANE_BLOCK <= m {
            let mut counts = [0u64; LANE_BLOCK];
            for (i, &qi) in q.iter().enumerate() {
                let lanes = &self.lane_words[i * m + j..i * m + j + LANE_BLOCK];
                for (c, &rw) in counts.iter_mut().zip(lanes) {
                    *c += (rw ^ qi).count_ones() as u64;
                }
            }
            for (o, &c) in out[j..j + LANE_BLOCK].iter_mut().zip(&counts) {
                *o = (d - 2 * c as i64) as f64;
            }
            j += LANE_BLOCK;
        }
        while j < m {
            out[j] = (d - 2 * disagreement(self.row(j), q) as i64) as f64;
            j += 1;
        }
    }

    /// Similarity MVM `a = Xᵀ q` into `out` as `i64`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != len()` or the query dimension differs.
    pub fn similarities_i64_into(&self, query: &BipolarVector, out: &mut [i64]) {
        assert_eq!(out.len(), self.len, "similarity output length mismatch");
        assert_eq!(query.dim(), self.dim, "query dimension mismatch");
        let q = query.words();
        let d = self.dim as i64;
        for (j, o) in out.iter_mut().enumerate() {
            *o = d - 2 * disagreement(self.row(j), q) as i64;
        }
    }

    /// Projection MVM `r = X a` into `out`: `out[i] = Σ_j w_j · x_{j,i}`.
    ///
    /// Zero-weight rows are skipped (free sparsity after the quantizing
    /// activation); active rows contribute `+w` on set bits only and the
    /// signed sum is recovered as `2·acc − Σ w` per element.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != dim()` or `weights.len() != len()`.
    pub fn weighted_sums_into(&self, weights: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), self.dim, "projection output length mismatch");
        assert_eq!(weights.len(), self.len, "weight count mismatch");
        out.fill(0.0);
        let active = weights.iter().filter(|&&w| w != 0.0).count();
        let mut total = 0.0f64;
        if 8 * active <= self.len {
            // Sparse regime (typical after the quantizing activation):
            // iterate only the set bits of the few active rows.
            for (j, &wj) in weights.iter().enumerate() {
                total += wj;
                if wj == 0.0 {
                    continue;
                }
                accumulate_set_bits(self.row(j), wj, out);
            }
        } else {
            // Dense regime: branchless bit unpack per word — the select
            // compiles to SIMD masks/blends, unlike the data-dependent
            // set-bit walk.
            for (j, &wj) in weights.iter().enumerate() {
                total += wj;
                if wj == 0.0 {
                    continue;
                }
                let row = self.row(j);
                let full = self.dim / WORD_BITS;
                for (wi, &word) in row.iter().enumerate().take(full) {
                    let chunk = &mut out[wi * WORD_BITS..(wi + 1) * WORD_BITS];
                    for (b, o) in chunk.iter_mut().enumerate() {
                        *o += wj * ((word >> b) & 1) as f64;
                    }
                }
                if full < row.len() {
                    let word = row[full];
                    for (b, o) in out[full * WORD_BITS..].iter_mut().enumerate() {
                        *o += wj * ((word >> b) & 1) as f64;
                    }
                }
            }
        }
        for o in out.iter_mut() {
            *o = 2.0 * *o - total;
        }
    }
}

/// Adds `w` to `out[i]` for every set bit `i` of `words` — the per-row
/// accumulate step of the sparse projection kernel, shared with
/// [`crate::ops::weighted_sums_into`]. Bits in the padding tail of the
/// last word (positions at or beyond `out.len()`) are ignored, so a
/// corrupted tail can never index out of bounds.
#[inline]
pub(crate) fn accumulate_set_bits(words: &[u64], w: f64, out: &mut [f64]) {
    let tail = out.len() % WORD_BITS;
    let last = words.len() - 1;
    for (wi, &word) in words.iter().enumerate() {
        let base = wi * WORD_BITS;
        let mut bits = if tail != 0 && wi == last {
            word & ((1u64 << tail) - 1)
        } else {
            word
        };
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            out[base + b] += w;
            bits &= bits - 1;
        }
    }
}

/// Number of disagreeing elements between two packed bit patterns.
#[inline]
fn disagreement(row: &[u64], query: &[u64]) -> u32 {
    let mut chunks_r = row.chunks_exact(4);
    let mut chunks_q = query.chunks_exact(4);
    let (mut c0, mut c1, mut c2, mut c3) = (0u32, 0u32, 0u32, 0u32);
    for (r, q) in (&mut chunks_r).zip(&mut chunks_q) {
        c0 += (r[0] ^ q[0]).count_ones();
        c1 += (r[1] ^ q[1]).count_ones();
        c2 += (r[2] ^ q[2]).count_ones();
        c3 += (r[3] ^ q[3]).count_ones();
    }
    for (r, q) in chunks_r.remainder().iter().zip(chunks_q.remainder()) {
        c0 += (r ^ q).count_ones();
    }
    c0 + c1 + c2 + c3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    fn vectors(m: usize, d: usize, seed: u64) -> Vec<BipolarVector> {
        let mut rng = rng_from_seed(seed);
        (0..m).map(|_| BipolarVector::random(d, &mut rng)).collect()
    }

    #[test]
    fn similarities_match_naive_dots() {
        for (m, d) in [(1, 64), (5, 100), (8, 256), (13, 1000)] {
            let vs = vectors(m, d, 31);
            let packed = PackedCodebook::from_vectors(&vs);
            let q = BipolarVector::random(d, &mut rng_from_seed(32));
            let mut out = vec![0.0; m];
            packed.similarities_into(&q, &mut out);
            let mut out_i = vec![0i64; m];
            packed.similarities_i64_into(&q, &mut out_i);
            for (j, v) in vs.iter().enumerate() {
                assert_eq!(out[j], v.dot(&q) as f64, "m={m} d={d} row {j}");
                assert_eq!(out_i[j], v.dot(&q), "m={m} d={d} row {j}");
                assert_eq!(packed.dot_row(j, &q), v.dot(&q));
            }
        }
    }

    #[test]
    fn weighted_sums_match_reference() {
        let (m, d) = (9, 130);
        let vs = vectors(m, d, 33);
        let packed = PackedCodebook::from_vectors(&vs);
        let weights: Vec<f64> = (0..m).map(|j| (j as f64) - 3.0).collect();
        let mut out = vec![0.0; d];
        packed.weighted_sums_into(&weights, &mut out);
        for (i, &o) in out.iter().enumerate() {
            let expect: f64 = vs
                .iter()
                .zip(&weights)
                .map(|(v, &w)| w * v.sign(i) as f64)
                .sum();
            assert!((o - expect).abs() < 1e-9, "element {i}");
        }
    }

    #[test]
    fn weighted_sums_skip_zero_rows_exactly() {
        let vs = vectors(3, 256, 34);
        let packed = PackedCodebook::from_vectors(&vs);
        let mut out = vec![0.0; 256];
        packed.weighted_sums_into(&[0.0, 1.0, 0.0], &mut out);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, vs[1].sign(i) as f64);
        }
    }

    #[test]
    fn layout_is_contiguous_row_major() {
        let vs = vectors(4, 200, 35);
        let packed = PackedCodebook::from_vectors(&vs);
        assert_eq!(packed.len(), 4);
        assert_eq!(packed.dim(), 200);
        assert_eq!(packed.words_per_row(), 4);
        for (j, v) in vs.iter().enumerate() {
            assert_eq!(packed.row(j), v.words());
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_rejected() {
        let _ = PackedCodebook::from_vectors(&[]);
    }
}
