//! Packed codebook matrix kernels: the cache-friendly hot path behind the
//! resonator's two MVMs.
//!
//! A [`crate::Codebook`] stores its item vectors as separate
//! [`BipolarVector`]s — convenient for the algebra, but every similarity
//! MVM then chases `M` separate heap allocations. [`PackedCodebook`] lays
//! all `M` codevectors' `u64` words out **row-major in one contiguous
//! buffer**, so the similarity MVM (`a = Xᵀ q`) streams memory linearly and
//! the projection MVM (`r = X a`) walks set bits of each row exactly once.
//!
//! # Kernel contract
//!
//! All kernels write into caller-provided output slices and allocate
//! nothing. Callers own the scratch:
//!
//! - [`PackedCodebook::similarities_into`] / `similarities_i64_into` —
//!   `out.len() == len()` (`M` dot products).
//! - [`PackedCodebook::weighted_sums_into`] — `out.len() == dim()` (`D`
//!   pre-sign projection sums).
//! - [`PackedCodebook::similarities_batch_into`] /
//!   [`PackedCodebook::weighted_sums_batch_into`] — the matrix–matrix
//!   forms over a [`PackedBatch`] of `B` queries, **value-identical** to
//!   `B` calls of the per-query kernels (exact integers / identical
//!   floating-point evaluation order per query).
//!
//! # Blocking
//!
//! The similarity MVM processes rows in lane-major blocks of eight
//! ([`LANE_BLOCK`]): each query word is broadcast against one contiguous
//! load of eight rows' words, and the eight partial counts accumulate in
//! independent SIMD lanes with no horizontal reduction inside the loop.
//! The projection MVM skips zero-weight rows entirely (the common case
//! after the sparsifying ADC activation), iterating only the set bits of
//! active rows when few are active and falling back to a branchless dense
//! unpack otherwise, recovering the signed sum as `2·(Σ_{set} w) − Σ w`
//! per element.
//!
//! The batched similarity MVM is a cache-blocked bit-GEMM: the codebook is
//! tiled into [`LANE_BLOCK`]-row strips, each strip is streamed once and
//! reused across all `B` query columns while it is hot in L1, and the
//! per-(row, query) popcounts are reduced through a Harley–Seal
//! carry-save-adder tree ([`CSA_BLOCK_WORDS`] words per block, one
//! `count_ones` per reduced word instead of one per input word).

use serde::{Deserialize, Serialize};

use crate::bipolar::BipolarVector;

/// Number of elements packed into one storage word.
const WORD_BITS: usize = 64;

/// How many codevector rows share one SIMD accumulation block in the
/// lane-major similarity kernel.
const LANE_BLOCK: usize = 8;

/// Words reduced per Harley–Seal carry-save-adder block in the batched
/// similarity bit-GEMM: 15 CSA steps compress 16 XORed words into five
/// carry-tier words (`ones`/`twos`/`fours`/`eights`/`sixteens`), so the
/// hot loop issues one `count_ones` per block plus four at drain time —
/// a ~3× reduction in popcount traffic, and the CSA tier words live in
/// registers and vectorize freely. Rows shorter than one block
/// (`D < 1024`) fall back to the plain per-word popcount tail, which is
/// why [`PackedCodebook::batch_uses_csa`] is recorded in bench
/// provenance.
pub const CSA_BLOCK_WORDS: usize = 16;

/// Row lanes per strip of the batched bit-GEMM: one 512-bit vector of
/// `u64` lanes, so each carry-save step is a single (or pair of)
/// `vpternlogq` and each block drain a single `vpopcntq` under
/// `target-cpu=native` on AVX-512 hosts, while AVX2 splits every step in
/// two 256-bit halves.
const GEMM_LANES: usize = 8;

/// Query columns advanced together by the popcount bit-GEMM tile: four
/// column accumulators plus the shared lane strip stay comfortably in
/// vector registers, and each strip load is amortized over the four
/// columns.
const GEMM_COLS: usize = 4;

/// Codebook footprint (lane-mirror bytes) above which the batched
/// similarity kernel switches from single-column to
/// [`GEMM_COLS`]-column tiles. Measured on the bench host
/// (`target-cpu=native`, AVX-512): while the codebook is L1/L2-resident
/// (≤ 64 KiB) the per-query walk is compute-bound and the wider tile's
/// extra broadcasts cost ~1.3×, but once per-query re-streaming spills
/// past L2 the four-column tile cuts codebook traffic 4× and measures
/// 1.8–2.2× faster (M = 256–1024, D = 4096–8192, B = 8). 96 KiB sits
/// between the last resident shape (64 KiB, parity) and the first
/// streaming one (128 KiB, 1.8×).
const GEMM_STREAM_BYTES: usize = 96 * 1024;

/// True when the build target counts bits in hardware vector units
/// (AVX-512 `VPOPCNTDQ`, enabled by `target-cpu=native` on recent x86
/// servers). With native vector popcount, the per-word popcount tile is
/// the fastest reduction — one `vpopcntq` per eight row-words cannot be
/// beaten by any adder tree. Without it, `count_ones` lowers to a ~5-op
/// nibble-shuffle emulation per word, and the Harley–Seal CSA tree (which
/// replaces sixteen popcounts with five per block) wins — so the batched
/// kernel picks its reduction at compile time and the bench provenance
/// records which path ran.
const NATIVE_VECTOR_POPCOUNT: bool = cfg!(target_feature = "avx512vpopcntdq");

/// Sparse/dense crossover of the projection kernel, as the maximum
/// active-row fraction (`active · CROSSOVER ≤ M`) still served by the
/// set-bit walk.
///
/// Measured on the 1-core bench host (see `bench_kernels`'s
/// `projection_regime_sweep`, M = 256, D = 1024, `target-cpu=native`):
/// the set-bit walk costs ~`D/2` data-dependent scalar adds per active
/// row, the branchless unpack ~`D` SIMD-friendly multiply-adds per
/// active row but with no branch misses, and the two curves cross
/// between 1/16 and 1/4 active fraction depending on host
/// vectorization. 1/8 sits at the crossing's midpoint and is never more
/// than ~15 % off either side's optimum, so the kernel switches to the
/// dense unpack once more than `M / 8` rows are active. Exposed (with
/// [`PackedCodebook::sparse_projection_regime`]) so the bench harness
/// can sweep densities against the constant rather than hard-coding its
/// own copy.
pub const SPARSE_DENSE_CROSSOVER: usize = 8;

/// All `M` codevectors of one codebook in contiguous word buffers, with
/// allocation-free popcount MVM kernels.
///
/// Up to two mirrors of the same bits are kept:
///
/// - **row-major** (`words[j·W .. (j+1)·W]` is row `j`) — always present;
///   used by [`PackedCodebook::row`], per-row dots, and the projection
///   kernel;
/// - **lane-major** (`lane_words[i·M + j]` is word `i` of row `j`) — used
///   by the similarity MVM so that eight consecutive rows' partial counts
///   accumulate in independent SIMD lanes with a single contiguous load
///   per word position and no horizontal reductions inside the loop.
///
/// The lane-major mirror is **optional**: [`Self::from_vectors`] builds
/// both mirrors, [`Self::from_vectors_row_major`] only the row-major
/// one, and [`Self::drop_lane_mirror`] /
/// [`Self::materialize_lane_mirror`] move between the two states (the
/// codebook registry's cold and hot tiers). Every kernel is
/// **value-identical** in either state — all similarity outputs are
/// exact integers in `[-D, D]` with a unique `f64` representation, so
/// the per-row fallback taken when the mirror is absent produces the
/// same bits as the lane-major walk, just without its locality.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedCodebook {
    len: usize,
    dim: usize,
    words_per_row: usize,
    words: Vec<u64>,
    lane_words: Vec<u64>,
}

impl PackedCodebook {
    /// Packs `vectors` (all of one dimension) into both contiguous
    /// layouts (row-major + lane-major).
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is empty or dimensions disagree.
    pub fn from_vectors(vectors: &[BipolarVector]) -> Self {
        let mut packed = Self::from_vectors_row_major(vectors);
        packed.materialize_lane_mirror();
        packed
    }

    /// Packs `vectors` row-major only, leaving the lane-major mirror
    /// unmaterialized — the cold-tier representation of the codebook
    /// registry. Every kernel stays available and value-identical; the
    /// similarity paths take the per-row walk until
    /// [`Self::materialize_lane_mirror`] builds the mirror.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is empty or dimensions disagree.
    pub fn from_vectors_row_major(vectors: &[BipolarVector]) -> Self {
        assert!(!vectors.is_empty(), "packed codebook must be non-empty");
        let dim = vectors[0].dim();
        let words_per_row = dim.div_ceil(WORD_BITS);
        let m = vectors.len();
        let mut words = Vec::with_capacity(m * words_per_row);
        for v in vectors {
            assert_eq!(v.dim(), dim, "packed codebook vectors must share dim");
            words.extend_from_slice(v.words());
        }
        Self {
            len: m,
            dim,
            words_per_row,
            words,
            lane_words: Vec::new(),
        }
    }

    /// Builds the lane-major mirror from the row-major words (no-op when
    /// already present). This is the hot-tier promotion step of the
    /// codebook registry; kernel outputs are bit-identical before and
    /// after.
    pub fn materialize_lane_mirror(&mut self) {
        if !self.lane_words.is_empty() {
            return;
        }
        let m = self.len;
        let mut lane_words = vec![0u64; m * self.words_per_row];
        for j in 0..m {
            for (i, &w) in self.row(j).iter().enumerate() {
                lane_words[i * m + j] = w;
            }
        }
        self.lane_words = lane_words;
    }

    /// Drops the lane-major mirror, keeping only the row-major words —
    /// the hot→cold demotion step of the codebook registry. Kernel
    /// outputs are bit-identical before and after; the similarity paths
    /// fall back to the per-row walk until the mirror is rebuilt.
    pub fn drop_lane_mirror(&mut self) {
        self.lane_words = Vec::new();
    }

    /// True when the lane-major mirror is materialized.
    pub fn has_lane_mirror(&self) -> bool {
        !self.lane_words.is_empty()
    }

    /// Bytes held by the row-major words (always resident).
    pub fn row_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// Bytes currently held by the lane-major mirror (0 when absent;
    /// equal to [`Self::row_bytes`] when materialized).
    pub fn lane_mirror_bytes(&self) -> usize {
        self.lane_words.len() * std::mem::size_of::<u64>()
    }

    /// Number of rows (codevectors) `M`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false: packed codebooks are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Hypervector dimension `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Words per packed row (`ceil(D / 64)`).
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Borrows the packed words of row `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= len()`.
    #[inline]
    pub fn row(&self, j: usize) -> &[u64] {
        &self.words[j * self.words_per_row..(j + 1) * self.words_per_row]
    }

    /// Dot product of row `j` with `query` (exact, via XOR-popcount).
    ///
    /// # Panics
    ///
    /// Panics if `j >= len()` or the query dimension differs.
    #[inline]
    pub fn dot_row(&self, j: usize, query: &BipolarVector) -> i64 {
        assert_eq!(query.dim(), self.dim, "query dimension mismatch");
        self.dim as i64 - 2 * disagreement(self.row(j), query.words()) as i64
    }

    /// Similarity MVM `a = Xᵀ q` into `out` as `f64` (values are exact
    /// integers in `[-D, D]`).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != len()` or the query dimension differs.
    pub fn similarities_into(&self, query: &BipolarVector, out: &mut [f64]) {
        assert_eq!(out.len(), self.len, "similarity output length mismatch");
        assert_eq!(query.dim(), self.dim, "query dimension mismatch");
        self.similarities_words_into(query.words(), out);
    }

    /// The per-query similarity kernel over raw packed words — shared by
    /// [`PackedCodebook::similarities_into`] and the batched kernel's
    /// cache-resident regime so the two can never diverge in value or
    /// code path.
    fn similarities_words_into(&self, q: &[u64], out: &mut [f64]) {
        let d = self.dim as i64;
        let m = self.len;
        if self.lane_words.is_empty() {
            // Cold (row-major-only) codebooks: the per-row walk over the
            // same packed bits. Every similarity is the same exact
            // integer either way, so this fallback is bit-identical to
            // the lane-major path — it only trades the blocked locality.
            for (j, o) in out.iter_mut().enumerate() {
                *o = (d - 2 * disagreement(self.row(j), q) as i64) as f64;
            }
            return;
        }
        let mut j = 0;
        // Lane-major blocks: each pass keeps LANE_BLOCK row counters in
        // independent lanes; every word position contributes one
        // contiguous LANE_BLOCK-wide load XOR'd against the broadcast
        // query word — no horizontal reduction until the block finishes.
        while j + LANE_BLOCK <= m {
            let mut counts = [0u64; LANE_BLOCK];
            for (i, &qi) in q.iter().enumerate() {
                let lanes = &self.lane_words[i * m + j..i * m + j + LANE_BLOCK];
                for (c, &rw) in counts.iter_mut().zip(lanes) {
                    *c += (rw ^ qi).count_ones() as u64;
                }
            }
            for (o, &c) in out[j..j + LANE_BLOCK].iter_mut().zip(&counts) {
                *o = (d - 2 * c as i64) as f64;
            }
            j += LANE_BLOCK;
        }
        while j < m {
            out[j] = (d - 2 * disagreement(self.row(j), q) as i64) as f64;
            j += 1;
        }
    }

    /// Similarity MVM `a = Xᵀ q` into `out` as `i64`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != len()` or the query dimension differs.
    pub fn similarities_i64_into(&self, query: &BipolarVector, out: &mut [i64]) {
        assert_eq!(out.len(), self.len, "similarity output length mismatch");
        assert_eq!(query.dim(), self.dim, "query dimension mismatch");
        let q = query.words();
        let d = self.dim as i64;
        for (j, o) in out.iter_mut().enumerate() {
            *o = d - 2 * disagreement(self.row(j), q) as i64;
        }
    }

    /// Projection MVM `r = X a` into `out`: `out[i] = Σ_j w_j · x_{j,i}`.
    ///
    /// Zero-weight rows are skipped (free sparsity after the quantizing
    /// activation); active rows contribute `+w` on set bits only and the
    /// signed sum is recovered as `2·acc − Σ w` per element.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != dim()` or `weights.len() != len()`.
    pub fn weighted_sums_into(&self, weights: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), self.dim, "projection output length mismatch");
        assert_eq!(weights.len(), self.len, "weight count mismatch");
        out.fill(0.0);
        let active = weights.iter().filter(|&&w| w != 0.0).count();
        let mut total = 0.0f64;
        if Self::sparse_projection_regime(active, self.len) {
            // Sparse regime (typical after the quantizing activation):
            // iterate only the set bits of the few active rows.
            for (j, &wj) in weights.iter().enumerate() {
                total += wj;
                if wj == 0.0 {
                    continue;
                }
                accumulate_set_bits(self.row(j), wj, out);
            }
        } else {
            // Dense regime: branchless bit unpack per word — the select
            // compiles to SIMD masks/blends, unlike the data-dependent
            // set-bit walk.
            for (j, &wj) in weights.iter().enumerate() {
                total += wj;
                if wj == 0.0 {
                    continue;
                }
                let row = self.row(j);
                let full = self.dim / WORD_BITS;
                for (wi, &word) in row.iter().enumerate().take(full) {
                    let chunk = &mut out[wi * WORD_BITS..(wi + 1) * WORD_BITS];
                    for (b, o) in chunk.iter_mut().enumerate() {
                        *o += wj * ((word >> b) & 1) as f64;
                    }
                }
                if full < row.len() {
                    let word = row[full];
                    for (b, o) in out[full * WORD_BITS..].iter_mut().enumerate() {
                        *o += wj * ((word >> b) & 1) as f64;
                    }
                }
            }
        }
        for o in out.iter_mut() {
            *o = 2.0 * *o - total;
        }
    }

    /// True when `active` non-zero weights over `rows` codebook rows are
    /// served by the sparse set-bit walk rather than the dense branchless
    /// unpack (see [`SPARSE_DENSE_CROSSOVER`] for the measurement behind
    /// the constant). This is the single regime decision shared by
    /// [`PackedCodebook::weighted_sums_into`] and
    /// [`PackedCodebook::weighted_sums_batch_into`], exposed so the bench
    /// harness can sweep densities against it.
    #[inline]
    pub fn sparse_projection_regime(active: usize, rows: usize) -> bool {
        active * SPARSE_DENSE_CROSSOVER <= rows
    }

    /// True when the batched similarity kernel reduces this codebook
    /// through the Harley–Seal CSA tree: the build target lacks native
    /// vector popcount (see [`PackedCodebook::similarities_batch_into`])
    /// and the rows span at least one [`CSA_BLOCK_WORDS`] block
    /// (`D ≥ 1024`). On native-popcount hosts, and for shorter rows, the
    /// per-word popcount tile runs instead. Recorded in bench provenance
    /// so cross-host numbers are comparable.
    pub fn batch_uses_csa(&self) -> bool {
        !NATIVE_VECTOR_POPCOUNT && self.words_per_row >= CSA_BLOCK_WORDS
    }

    /// True when this codebook's lane mirror (materialized or not — the
    /// mirror has exactly the row-major footprint) exceeds the
    /// cache-residency threshold ([`GEMM_STREAM_BYTES`]), putting the
    /// batched similarity kernel in its wide-tile streaming regime. The
    /// codebook registry uses the same predicate to decide which members
    /// are worth a hot-tier lane mirror at all.
    pub fn batch_streams_codebook(&self) -> bool {
        self.words.len() * std::mem::size_of::<u64>() > GEMM_STREAM_BYTES
    }

    /// Batched similarity MVM `A = Xᵀ Q`: the dot products of every
    /// codebook row with every query of `batch`, written query-major into
    /// `out` (`out[b·M + j]` is row `j` against query `b`, an exact
    /// integer in `[-D, D]`) — **value-identical** to `batch.len()` calls
    /// of [`PackedCodebook::similarities_into`].
    ///
    /// This is the cache-blocked bit-GEMM: the lane-major mirror is tiled
    /// into [`LANE_BLOCK`]-row strips, each strip streamed once and
    /// reused across all `B` query columns while hot in L1 (the per-query
    /// path re-streams the whole codebook per query), and each
    /// (strip, query) pair reduces through the Harley–Seal carry-save
    /// tree ([`CSA_BLOCK_WORDS`] words per block, one `count_ones` per
    /// reduced word). Rows past the last full strip fall back to the
    /// scalar path.
    ///
    /// # Panics
    ///
    /// Panics if `batch.dim() != dim()` or
    /// `out.len() != batch.len() * len()`.
    pub fn similarities_batch_into(&self, batch: &PackedBatch, out: &mut [f64]) {
        assert_eq!(batch.dim(), self.dim, "batch dimension mismatch");
        let m = self.len;
        let w = self.words_per_row;
        let bn = batch.len();
        assert_eq!(out.len(), bn * m, "batch similarity output length mismatch");
        let d = self.dim as f64;
        // `out` accumulates exact integer disagreement counts as `f64`
        // (all partial sums stay far below 2^53) and is finalized to
        // `D − 2·count` at the end — bit-identical to the per-query
        // kernel's `(d − 2·c) as f64` since every value is an integer
        // with one `f64` representation.
        let use_csa = self.batch_uses_csa();
        if self.lane_words.is_empty() || (!use_csa && !self.batch_streams_codebook()) {
            // Cache-resident regime on native-popcount targets — or a
            // cold (row-major-only) codebook whose lane mirror the
            // strip kernels would need: the batch is exactly `B`
            // per-query passes — same code path as the per-query entry
            // point, bit-identical by construction.
            for b in 0..bn {
                self.similarities_words_into(batch.query_words(b), &mut out[b * m..(b + 1) * m]);
            }
            return;
        }
        out.fill(0.0);
        let mut j = 0;
        while j + GEMM_LANES <= m {
            if use_csa {
                // Emulated-popcount targets: one Harley–Seal CSA tree
                // per query column (five `count_ones` per block of 16
                // words instead of sixteen).
                for b in 0..bn {
                    let counts = strip_counts_csa::<GEMM_LANES>(
                        &self.lane_words,
                        m,
                        w,
                        j,
                        batch.query_words(b),
                    );
                    for (l, &c) in counts.iter().enumerate() {
                        out[b * m + j + l] += c as f64;
                    }
                }
            } else {
                // Streaming codebooks on native-popcount targets: advance
                // GEMM_COLS query columns per pass so each strip load —
                // and the whole codebook pass — amortizes across the
                // tile.
                let mut b = 0;
                while b + GEMM_COLS <= bn {
                    let qs: [&[u64]; GEMM_COLS] = std::array::from_fn(|k| batch.query_words(b + k));
                    let counts =
                        strip_counts_cols::<GEMM_LANES, GEMM_COLS>(&self.lane_words, m, w, j, &qs);
                    for (k, col) in counts.iter().enumerate() {
                        for (l, &c) in col.iter().enumerate() {
                            out[(b + k) * m + j + l] += c as f64;
                        }
                    }
                    b += GEMM_COLS;
                }
                while b < bn {
                    let qs = [batch.query_words(b)];
                    let counts = strip_counts_cols::<GEMM_LANES, 1>(&self.lane_words, m, w, j, &qs);
                    for (l, &c) in counts[0].iter().enumerate() {
                        out[b * m + j + l] += c as f64;
                    }
                    b += 1;
                }
            }
            j += GEMM_LANES;
        }
        // Rows past the last full strip: scalar row-major path.
        while j < m {
            let row = self.row(j);
            for b in 0..bn {
                out[b * m + j] = disagreement(row, batch.query_words(b)) as f64;
            }
            j += 1;
        }
        for o in out.iter_mut() {
            *o = d - 2.0 * *o;
        }
    }

    /// Batched projection MVM: for each query `b`,
    /// `out[b·D + i] = Σ_j weights[b·M + j] · x_{j,i}` — **bit-identical**
    /// (same per-query regime choice, same per-element accumulation
    /// order) to `B` calls of [`PackedCodebook::weighted_sums_into`].
    ///
    /// `weights` is query-major `B × M`, `out` query-major `B × D`, with
    /// `B` inferred from `weights.len() / len()`. Sparse-regime queries
    /// run the per-query set-bit walk (they touch few rows by
    /// definition); dense-regime queries are grouped row-outer so each
    /// codebook row is streamed once per group instead of once per query.
    /// Unlike the per-query kernels this entry point allocates `O(B)`
    /// regime flags (never anything proportional to `M·D`).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` is not a positive multiple of `len()` or
    /// `out.len()` is not the matching multiple of `dim()`.
    pub fn weighted_sums_batch_into(&self, weights: &[f64], out: &mut [f64]) {
        let m = self.len;
        let d = self.dim;
        assert!(
            !weights.is_empty() && weights.len().is_multiple_of(m),
            "batch weight count {} not a positive multiple of rows {m}",
            weights.len()
        );
        let bn = weights.len() / m;
        assert_eq!(out.len(), bn * d, "batch projection output length mismatch");
        out.fill(0.0);
        let dense: Vec<bool> = (0..bn)
            .map(|b| {
                let active = weights[b * m..(b + 1) * m]
                    .iter()
                    .filter(|&&w| w != 0.0)
                    .count();
                !Self::sparse_projection_regime(active, m)
            })
            .collect();
        for (b, _) in dense.iter().enumerate().filter(|&(_, &dns)| !dns) {
            let ob = &mut out[b * d..(b + 1) * d];
            for (j, &wj) in weights[b * m..(b + 1) * m].iter().enumerate() {
                if wj == 0.0 {
                    continue;
                }
                accumulate_set_bits(self.row(j), wj, ob);
            }
        }
        if dense.iter().any(|&dns| dns) {
            let full = d / WORD_BITS;
            for j in 0..m {
                let row = self.row(j);
                for (b, _) in dense.iter().enumerate().filter(|&(_, &dns)| dns) {
                    let wj = weights[b * m + j];
                    if wj == 0.0 {
                        continue;
                    }
                    let ob = &mut out[b * d..(b + 1) * d];
                    for (wi, &word) in row.iter().enumerate().take(full) {
                        let chunk = &mut ob[wi * WORD_BITS..(wi + 1) * WORD_BITS];
                        for (bit, o) in chunk.iter_mut().enumerate() {
                            *o += wj * ((word >> bit) & 1) as f64;
                        }
                    }
                    if full < row.len() {
                        let word = row[full];
                        for (bit, o) in ob[full * WORD_BITS..].iter_mut().enumerate() {
                            *o += wj * ((word >> bit) & 1) as f64;
                        }
                    }
                }
            }
        }
        for b in 0..bn {
            let total: f64 = weights[b * m..(b + 1) * m].iter().sum();
            for o in out[b * d..(b + 1) * d].iter_mut() {
                *o = 2.0 * *o - total;
            }
        }
    }
}

/// XOR-popcounts of one `L`-row lane-major strip against `C` query
/// columns with per-word popcounts: the proven auto-vectorizing tile
/// (one vector load of the strip per word position, shared by all `C`
/// column accumulators). This is the fast reduction on targets with
/// native vector popcount.
#[inline(always)]
fn strip_counts_cols<const L: usize, const C: usize>(
    lane_words: &[u64],
    m: usize,
    w: usize,
    j0: usize,
    qs: &[&[u64]; C],
) -> [[u64; L]; C] {
    let mut counts = [[0u64; L]; C];
    // Exact-length reslices let the optimizer prove `q[i]` in bounds for
    // the whole walk (the per-word checks otherwise dominate small-D
    // strips).
    let qs: [&[u64]; C] = std::array::from_fn(|k| &qs[k][..w]);
    for i in 0..w {
        let lanes: &[u64; L] = lane_words[i * m + j0..][..L]
            .try_into()
            .expect("lane strip underrun");
        for (col, q) in counts.iter_mut().zip(qs) {
            let qw = q[i];
            for (c, &rw) in col.iter_mut().zip(lanes) {
                *c += (rw ^ qw).count_ones() as u64;
            }
        }
    }
    counts
}

/// XOR-popcounts of one `L`-row lane-major strip against a single query
/// column, reduced through the Harley–Seal CSA tree: per
/// [`CSA_BLOCK_WORDS`]-word block, 15 carry-save adds compress the
/// sixteen XORed words into five carry-tier words, so five `count_ones`
/// per lane replace sixteen — the winning reduction on targets whose
/// `count_ones` is a multi-op emulation. Words past the last full block
/// fall back to per-word popcounts. All `L` lanes advance in lockstep in
/// SSA form so the tree vectorizes as `L`-wide SIMD.
#[inline(always)]
fn strip_counts_csa<const L: usize>(
    lane_words: &[u64],
    m: usize,
    w: usize,
    j0: usize,
    q: &[u64],
) -> [u64; L] {
    let zero = [0u64; L];
    let mut counts = [0u64; L];
    let blocks = w / CSA_BLOCK_WORDS;
    for blk in 0..blocks {
        let i0 = blk * CSA_BLOCK_WORDS;
        let ld = |k: usize| -> [u64; L] {
            let lanes: &[u64; L] = lane_words[(i0 + k) * m + j0..][..L]
                .try_into()
                .expect("lane strip underrun");
            let qw = q[i0 + k];
            let mut d = [0u64; L];
            for l in 0..L {
                d[l] = lanes[l] ^ qw;
            }
            d
        };
        let (t_a, o1) = csa_lanes(zero, ld(0), ld(1));
        let (t_b, o2) = csa_lanes(o1, ld(2), ld(3));
        let (f_a, tw1) = csa_lanes(zero, t_a, t_b);
        let (t_c, o3) = csa_lanes(o2, ld(4), ld(5));
        let (t_d, o4) = csa_lanes(o3, ld(6), ld(7));
        let (f_b, tw2) = csa_lanes(tw1, t_c, t_d);
        let (e_a, f1) = csa_lanes(zero, f_a, f_b);
        let (t_e, o5) = csa_lanes(o4, ld(8), ld(9));
        let (t_f, o6) = csa_lanes(o5, ld(10), ld(11));
        let (f_c, tw3) = csa_lanes(tw2, t_e, t_f);
        let (t_g, o7) = csa_lanes(o6, ld(12), ld(13));
        let (t_h, o8) = csa_lanes(o7, ld(14), ld(15));
        let (f_d, tw4) = csa_lanes(tw3, t_g, t_h);
        let (e_b, f2) = csa_lanes(f1, f_c, f_d);
        let (s, e1) = csa_lanes(zero, e_a, e_b);
        for l in 0..L {
            counts[l] += 16 * s[l].count_ones() as u64
                + 8 * e1[l].count_ones() as u64
                + 4 * f2[l].count_ones() as u64
                + 2 * tw4[l].count_ones() as u64
                + o8[l].count_ones() as u64;
        }
    }
    for i in blocks * CSA_BLOCK_WORDS..w {
        let lanes: &[u64; L] = lane_words[i * m + j0..][..L]
            .try_into()
            .expect("lane strip underrun");
        let qw = q[i];
        for (c, &rw) in counts.iter_mut().zip(lanes) {
            *c += (rw ^ qw).count_ones() as u64;
        }
    }
    counts
}

/// One carry-save-adder step over `L` independent lanes: compresses
/// three addends (`c` carried in, `a`, `b`) into `(carry, sum)` per
/// lane. The by-value SSA form is what LLVM's SLP vectorizer reliably
/// turns into `L`-wide SIMD; on AVX-512 hosts each boolean form lowers
/// to `vpternlogq`.
#[inline(always)]
fn csa_lanes<const L: usize>(c: [u64; L], a: [u64; L], b: [u64; L]) -> ([u64; L], [u64; L]) {
    let mut carry = [0u64; L];
    let mut sum = [0u64; L];
    for l in 0..L {
        // Written as two *independent* three-input booleans (no shared
        // subexpression): parity and majority each lower to one
        // `vpternlogq` on AVX-512, where the factored
        // `(a&b) | ((a^b)&c)` form costs three instructions because the
        // shared `a^b` blocks the second fusion.
        sum[l] = a[l] ^ b[l] ^ c[l];
        carry[l] = (a[l] & b[l]) | (a[l] & c[l]) | (b[l] & c[l]);
    }
    (carry, sum)
}

/// `B` packed queries in one contiguous buffer: the right-hand side of
/// the batched bit-GEMM [`PackedCodebook::similarities_batch_into`].
///
/// Storage is query-major (`qwords[b · W + i]` is word `i` of query
/// `b`): every reduction tile streams one query column's words
/// sequentially while the *codebook* supplies the lane-major strips, so
/// a lane-major batch mirror would have no reader — the batch itself is
/// tiny (`B × W` words) and stays cache-hot in any layout.
///
/// The batch is built once with a capacity and refilled allocation-free
/// ([`PackedBatch::clear`] + [`PackedBatch::push`]) — the lockstep
/// resonator repacks the active problems' queries every iteration, and
/// retiring a problem never moves another problem's words within an
/// iteration.
///
/// No `PartialEq`: a refilled batch may carry stale words past `len`,
/// so derived equality would distinguish logically identical batches.
#[derive(Debug, Clone)]
pub struct PackedBatch {
    capacity: usize,
    len: usize,
    dim: usize,
    words_per_query: usize,
    qwords: Vec<u64>,
}

impl PackedBatch {
    /// An empty batch able to hold `capacity` queries of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `dim == 0`.
    pub fn with_capacity(capacity: usize, dim: usize) -> Self {
        assert!(capacity > 0, "batch capacity must be positive");
        assert!(dim > 0, "batch dimension must be positive");
        let words_per_query = dim.div_ceil(WORD_BITS);
        Self {
            capacity,
            len: 0,
            dim,
            words_per_query,
            qwords: vec![0u64; capacity * words_per_query],
        }
    }

    /// Packs `queries` into a batch sized exactly to them.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty or dimensions disagree.
    pub fn from_queries(queries: &[BipolarVector]) -> Self {
        assert!(!queries.is_empty(), "packed batch must be non-empty");
        let mut batch = Self::with_capacity(queries.len(), queries[0].dim());
        for q in queries {
            batch.push(q);
        }
        batch
    }

    /// Appends one query's words into the next column.
    ///
    /// # Panics
    ///
    /// Panics if the batch is full or the query dimension differs.
    #[inline]
    pub fn push(&mut self, query: &BipolarVector) {
        assert!(self.len < self.capacity, "packed batch is full");
        assert_eq!(query.dim(), self.dim, "batch query dimension mismatch");
        self.qwords[self.len * self.words_per_query..(self.len + 1) * self.words_per_query]
            .copy_from_slice(query.words());
        self.len += 1;
    }

    /// Empties the batch for refill; capacity and dimension are kept.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Queries currently packed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no query is packed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum queries the batch can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Query dimension `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Words per packed query (`ceil(D / 64)`).
    pub fn words_per_query(&self) -> usize {
        self.words_per_query
    }

    /// Word `i` of query `b` (padding bits beyond `dim` are zero).
    ///
    /// # Panics
    ///
    /// Panics if `i >= words_per_query()` or `b` indexes past the
    /// buffer.
    #[inline]
    pub fn word(&self, i: usize, b: usize) -> u64 {
        assert!(i < self.words_per_query, "word index out of range");
        self.qwords[b * self.words_per_query + i]
    }

    /// The contiguous packed words of query `b` (padding bits beyond
    /// `dim` are zero).
    ///
    /// # Panics
    ///
    /// Panics if `b >= capacity()`.
    #[inline]
    pub fn query_words(&self, b: usize) -> &[u64] {
        &self.qwords[b * self.words_per_query..(b + 1) * self.words_per_query]
    }
}

/// Adds `w` to `out[i]` for every set bit `i` of `words` — the per-row
/// accumulate step of the sparse projection kernel, shared with
/// [`crate::ops::weighted_sums_into`]. Bits in the padding tail of the
/// last word (positions at or beyond `out.len()`) are ignored, so a
/// corrupted tail can never index out of bounds.
#[inline]
pub(crate) fn accumulate_set_bits(words: &[u64], w: f64, out: &mut [f64]) {
    let tail = out.len() % WORD_BITS;
    let last = words.len() - 1;
    for (wi, &word) in words.iter().enumerate() {
        let base = wi * WORD_BITS;
        let mut bits = if tail != 0 && wi == last {
            word & ((1u64 << tail) - 1)
        } else {
            word
        };
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            out[base + b] += w;
            bits &= bits - 1;
        }
    }
}

/// Number of disagreeing elements between two packed bit patterns.
#[inline]
fn disagreement(row: &[u64], query: &[u64]) -> u32 {
    let mut chunks_r = row.chunks_exact(4);
    let mut chunks_q = query.chunks_exact(4);
    let (mut c0, mut c1, mut c2, mut c3) = (0u32, 0u32, 0u32, 0u32);
    for (r, q) in (&mut chunks_r).zip(&mut chunks_q) {
        c0 += (r[0] ^ q[0]).count_ones();
        c1 += (r[1] ^ q[1]).count_ones();
        c2 += (r[2] ^ q[2]).count_ones();
        c3 += (r[3] ^ q[3]).count_ones();
    }
    for (r, q) in chunks_r.remainder().iter().zip(chunks_q.remainder()) {
        c0 += (r ^ q).count_ones();
    }
    c0 + c1 + c2 + c3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use rand::Rng;

    fn vectors(m: usize, d: usize, seed: u64) -> Vec<BipolarVector> {
        let mut rng = rng_from_seed(seed);
        (0..m).map(|_| BipolarVector::random(d, &mut rng)).collect()
    }

    #[test]
    fn similarities_match_naive_dots() {
        for (m, d) in [(1, 64), (5, 100), (8, 256), (13, 1000)] {
            let vs = vectors(m, d, 31);
            let packed = PackedCodebook::from_vectors(&vs);
            let q = BipolarVector::random(d, &mut rng_from_seed(32));
            let mut out = vec![0.0; m];
            packed.similarities_into(&q, &mut out);
            let mut out_i = vec![0i64; m];
            packed.similarities_i64_into(&q, &mut out_i);
            for (j, v) in vs.iter().enumerate() {
                assert_eq!(out[j], v.dot(&q) as f64, "m={m} d={d} row {j}");
                assert_eq!(out_i[j], v.dot(&q), "m={m} d={d} row {j}");
                assert_eq!(packed.dot_row(j, &q), v.dot(&q));
            }
        }
    }

    #[test]
    fn weighted_sums_match_reference() {
        let (m, d) = (9, 130);
        let vs = vectors(m, d, 33);
        let packed = PackedCodebook::from_vectors(&vs);
        let weights: Vec<f64> = (0..m).map(|j| (j as f64) - 3.0).collect();
        let mut out = vec![0.0; d];
        packed.weighted_sums_into(&weights, &mut out);
        for (i, &o) in out.iter().enumerate() {
            let expect: f64 = vs
                .iter()
                .zip(&weights)
                .map(|(v, &w)| w * v.sign(i) as f64)
                .sum();
            assert!((o - expect).abs() < 1e-9, "element {i}");
        }
    }

    #[test]
    fn weighted_sums_skip_zero_rows_exactly() {
        let vs = vectors(3, 256, 34);
        let packed = PackedCodebook::from_vectors(&vs);
        let mut out = vec![0.0; 256];
        packed.weighted_sums_into(&[0.0, 1.0, 0.0], &mut out);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, vs[1].sign(i) as f64);
        }
    }

    #[test]
    fn layout_is_contiguous_row_major() {
        let vs = vectors(4, 200, 35);
        let packed = PackedCodebook::from_vectors(&vs);
        assert_eq!(packed.len(), 4);
        assert_eq!(packed.dim(), 200);
        assert_eq!(packed.words_per_row(), 4);
        for (j, v) in vs.iter().enumerate() {
            assert_eq!(packed.row(j), v.words());
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_rejected() {
        let _ = PackedCodebook::from_vectors(&[]);
    }

    #[test]
    fn batched_similarities_match_per_query_bitwise() {
        // Shapes straddling every kernel boundary: D < 64, ragged tails,
        // exactly one CSA block, multi-block, row-tile tails, B = 1.
        // Shapes straddling every dispatch regime: cache-resident,
        // streaming (lane mirror > GEMM_STREAM_BYTES), and CSA-eligible
        // row lengths.
        for (m, d, b) in [
            (1, 48, 1),
            (5, 100, 3),
            (8, 1024, 4),
            (13, 1000, 7),
            (16, 1090, 2),
            (24, 2048, 5),
            (512, 2048, 3),
        ] {
            let vs = vectors(m, d, 60);
            let packed = PackedCodebook::from_vectors(&vs);
            let mut rng = rng_from_seed(61);
            let queries: Vec<BipolarVector> =
                (0..b).map(|_| BipolarVector::random(d, &mut rng)).collect();
            let batch = PackedBatch::from_queries(&queries);
            let mut batched = vec![0.0f64; b * m];
            packed.similarities_batch_into(&batch, &mut batched);
            let mut single = vec![0.0f64; m];
            for (bi, q) in queries.iter().enumerate() {
                packed.similarities_into(q, &mut single);
                for j in 0..m {
                    assert_eq!(
                        batched[bi * m + j].to_bits(),
                        single[j].to_bits(),
                        "m={m} d={d} b={bi}/{b} row {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn row_major_only_kernels_match_full_mirrors_bitwise() {
        // The cold-tier representation must be kernel-for-kernel
        // value-identical: per-query and batched similarities over the
        // same shapes as the batched-dispatch test (cache-resident,
        // CSA-eligible, and streaming regimes included).
        for (m, d, b) in [(1, 48, 1), (8, 256, 4), (24, 2048, 5), (512, 2048, 3)] {
            let vs = vectors(m, d, 70);
            let full = PackedCodebook::from_vectors(&vs);
            let cold = PackedCodebook::from_vectors_row_major(&vs);
            assert!(full.has_lane_mirror());
            assert!(!cold.has_lane_mirror());
            assert_eq!(cold.lane_mirror_bytes(), 0);
            assert_eq!(full.lane_mirror_bytes(), full.row_bytes());
            let mut rng = rng_from_seed(71);
            let queries: Vec<BipolarVector> =
                (0..b).map(|_| BipolarVector::random(d, &mut rng)).collect();
            let batch = PackedBatch::from_queries(&queries);
            let (mut a, mut c) = (vec![0.0f64; m], vec![0.0f64; m]);
            for q in &queries {
                full.similarities_into(q, &mut a);
                cold.similarities_into(q, &mut c);
                for j in 0..m {
                    assert_eq!(a[j].to_bits(), c[j].to_bits(), "m={m} d={d} row {j}");
                }
            }
            let (mut ba, mut bc) = (vec![0.0f64; b * m], vec![0.0f64; b * m]);
            full.similarities_batch_into(&batch, &mut ba);
            cold.similarities_batch_into(&batch, &mut bc);
            for (i, (x, y)) in ba.iter().zip(&bc).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "m={m} d={d} batched slot {i}");
            }
        }
    }

    #[test]
    fn lane_mirror_round_trips_exactly() {
        let vs = vectors(13, 1000, 72);
        let full = PackedCodebook::from_vectors(&vs);
        let mut cycled = full.clone();
        cycled.drop_lane_mirror();
        assert!(!cycled.has_lane_mirror());
        assert_ne!(cycled, full, "mirror presence is part of derived equality");
        cycled.materialize_lane_mirror();
        assert_eq!(cycled, full, "drop + rematerialize must be lossless");
        // Re-materializing a hot codebook is a no-op.
        cycled.materialize_lane_mirror();
        assert_eq!(cycled, full);
    }

    #[test]
    fn streaming_threshold_is_mirror_state_independent() {
        // 512×2048 is decisively past GEMM_STREAM_BYTES; 8×256 decisively
        // under. The predicate must not change with mirror presence (it
        // feeds both the kernel dispatch and the registry's hot-tier
        // policy).
        for (m, d, expect) in [(512usize, 2048usize, true), (8, 256, false)] {
            let vs = vectors(m, d, 73);
            let full = PackedCodebook::from_vectors(&vs);
            let cold = PackedCodebook::from_vectors_row_major(&vs);
            assert_eq!(full.batch_streams_codebook(), expect, "m={m} d={d}");
            assert_eq!(cold.batch_streams_codebook(), expect, "m={m} d={d}");
        }
    }

    #[test]
    fn batched_weighted_sums_match_per_query_bitwise() {
        // Mixed regimes inside one batch: query 0 sparse (one active row),
        // query 1 dense (all rows active), query 2 all-zero weights.
        let (m, d) = (24, 523);
        let vs = vectors(m, d, 62);
        let packed = PackedCodebook::from_vectors(&vs);
        let mut weights = vec![0.0f64; 3 * m];
        weights[5] = 2.5;
        for j in 0..m {
            weights[m + j] = (j as f64) - 7.0;
        }
        let mut batched = vec![0.0f64; 3 * d];
        packed.weighted_sums_batch_into(&weights, &mut batched);
        let mut single = vec![0.0f64; d];
        for b in 0..3 {
            packed.weighted_sums_into(&weights[b * m..(b + 1) * m], &mut single);
            for i in 0..d {
                assert_eq!(
                    batched[b * d + i].to_bits(),
                    single[i].to_bits(),
                    "query {b} element {i}"
                );
            }
        }
    }

    #[test]
    fn packed_batch_refills_without_moving_lanes() {
        let mut rng = rng_from_seed(63);
        let qs: Vec<BipolarVector> = (0..4)
            .map(|_| BipolarVector::random(130, &mut rng))
            .collect();
        let mut batch = PackedBatch::with_capacity(4, 130);
        batch.push(&qs[0]);
        batch.push(&qs[1]);
        assert_eq!(batch.len(), 2);
        batch.clear();
        assert!(batch.is_empty());
        batch.push(&qs[2]);
        batch.push(&qs[3]);
        for (i, &w) in qs[2].words().iter().enumerate() {
            assert_eq!(batch.word(i, 0), w);
        }
        for (i, &w) in qs[3].words().iter().enumerate() {
            assert_eq!(batch.word(i, 1), w);
        }
        assert_eq!(batch.capacity(), 4);
        assert_eq!(batch.words_per_query(), 3);
    }

    #[test]
    fn regime_decision_matches_legacy_threshold() {
        // The measured constant must reproduce the pre-constant behavior
        // (`8 · active <= M`) so existing golden outputs cannot move.
        for m in [1usize, 8, 64, 256] {
            for active in 0..=m {
                assert_eq!(
                    PackedCodebook::sparse_projection_regime(active, m),
                    8 * active <= m,
                    "active={active} m={m}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "full")]
    fn batch_overflow_rejected() {
        let mut batch = PackedBatch::with_capacity(1, 64);
        let q = BipolarVector::ones(64);
        batch.push(&q);
        batch.push(&q);
    }

    #[test]
    fn csa_strip_reduction_matches_naive_popcount() {
        // The Harley–Seal tree is dispatched only on targets without
        // native vector popcount, so pin it directly against the naive
        // reduction on every build: full blocks, multi-block rows, and
        // ragged sub-block tails.
        let mut rng = rng_from_seed(64);
        for w in [16usize, 32, 48, 19, 7] {
            let m = 8;
            let lane_words: Vec<u64> = (0..w * m).map(|_| rng.gen()).collect();
            let q: Vec<u64> = (0..w).map(|_| rng.gen()).collect();
            let counts = strip_counts_csa::<8>(&lane_words, m, w, 0, &q);
            for l in 0..m {
                let naive: u64 = (0..w)
                    .map(|i| (lane_words[i * m + l] ^ q[i]).count_ones() as u64)
                    .sum();
                assert_eq!(counts[l], naive, "w={w} lane {l}");
            }
        }
    }

    #[test]
    fn column_tile_reduction_matches_naive_popcount() {
        let mut rng = rng_from_seed(65);
        let (m, w) = (8usize, 21usize);
        let lane_words: Vec<u64> = (0..w * m).map(|_| rng.gen()).collect();
        let qs_owned: Vec<Vec<u64>> = (0..4)
            .map(|_| (0..w).map(|_| rng.gen()).collect())
            .collect();
        let qs: [&[u64]; 4] = [&qs_owned[0], &qs_owned[1], &qs_owned[2], &qs_owned[3]];
        let counts = strip_counts_cols::<8, 4>(&lane_words, m, w, 0, &qs);
        for (k, q) in qs_owned.iter().enumerate() {
            for l in 0..m {
                let naive: u64 = (0..w)
                    .map(|i| (lane_words[i * m + l] ^ q[i]).count_ones() as u64)
                    .sum();
                assert_eq!(counts[k][l], naive, "col {k} lane {l}");
            }
        }
    }
}
