//! Packed codebook matrix kernels: the cache-friendly hot path behind the
//! resonator's two MVMs.
//!
//! A [`crate::Codebook`] stores its item vectors as separate
//! [`BipolarVector`]s — convenient for the algebra, but every similarity
//! MVM then chases `M` separate heap allocations. [`PackedCodebook`] lays
//! all `M` codevectors' `u64` words out **row-major in one contiguous
//! buffer**, so the similarity MVM (`a = Xᵀ q`) streams memory linearly and
//! the projection MVM (`r = X a`) walks set bits of each row exactly once.
//!
//! # Kernel contract
//!
//! All kernels write into caller-provided output slices and allocate
//! nothing. Callers own the scratch:
//!
//! - [`PackedCodebook::similarities_into`] / `similarities_i64_into` —
//!   `out.len() == len()` (`M` dot products).
//! - [`PackedCodebook::weighted_sums_into`] — `out.len() == dim()` (`D`
//!   pre-sign projection sums).
//! - [`PackedCodebook::similarities_batch_into`] /
//!   [`PackedCodebook::weighted_sums_batch_into`] — the matrix–matrix
//!   forms over a [`PackedBatch`] of `B` queries, **value-identical** to
//!   `B` calls of the per-query kernels (exact integers / identical
//!   floating-point evaluation order per query).
//!
//! # Blocking
//!
//! The similarity MVM processes rows in lane-major blocks of eight
//! ([`LANE_BLOCK`]): each query word is broadcast against one contiguous
//! load of eight rows' words, and the eight partial counts accumulate in
//! independent SIMD lanes with no horizontal reduction inside the loop.
//! The projection MVM skips zero-weight rows entirely (the common case
//! after the sparsifying ADC activation), iterating only the set bits of
//! active rows when few are active and falling back to a branchless dense
//! unpack otherwise, recovering the signed sum as `2·(Σ_{set} w) − Σ w`
//! per element.
//!
//! The batched similarity MVM is a cache-blocked bit-GEMM: the codebook is
//! tiled into [`LANE_BLOCK`]-row strips, each strip is streamed once and
//! reused across all `B` query columns while it is hot in L1, and the
//! per-(row, query) popcount reduction is supplied by the runtime kernel
//! table of [`crate::dispatch`] — explicit AVX-512 `vpopcntq` tiles or an
//! AVX2 Harley–Seal carry-save tree when the host has them, the portable
//! scalar tile/tree otherwise. Every arm is exact-integer and
//! bit-identical (see the dispatch module docs for the contract), so the
//! selection affects latency only. The `*_forced` kernel variants pin a
//! specific [`SimdArm`] for tests and benches.

use serde::{Deserialize, Serialize};

use crate::bipolar::BipolarVector;
use crate::dispatch::{self, KernelTable, Reduction, SimdArm, STRIP_LANES, TILE_COLS};

pub use crate::dispatch::CSA_BLOCK_WORDS;

/// Number of elements packed into one storage word.
const WORD_BITS: usize = 64;

/// How many codevector rows share one SIMD accumulation block in the
/// lane-major similarity kernel (one dispatch-table strip).
const LANE_BLOCK: usize = STRIP_LANES;

/// Words per projection cache block: the dense batched projection tiles
/// its output in [`PROJ_BLOCK_WORDS`]`·64` elements (16 words → 1024
/// `f64` slots → 8 KiB) so the output block stays L1-resident across the
/// whole row sweep instead of re-streaming a `D`-sized accumulator per
/// row — the projection-side analogue of the similarity bit-GEMM's strip
/// blocking. Per-element accumulation order (ascending `j`) is unchanged
/// by the tiling, so outputs stay bit-identical.
const PROJ_BLOCK_WORDS: usize = 16;

/// Codebook footprint (lane-mirror bytes) above which the batched
/// similarity kernel switches from single-column to
/// [`GEMM_COLS`]-column tiles. Measured on the bench host
/// (`target-cpu=native`, AVX-512): while the codebook is L1/L2-resident
/// (≤ 64 KiB) the per-query walk is compute-bound and the wider tile's
/// extra broadcasts cost ~1.3×, but once per-query re-streaming spills
/// past L2 the four-column tile cuts codebook traffic 4× and measures
/// 1.8–2.2× faster (M = 256–1024, D = 4096–8192, B = 8). 96 KiB sits
/// between the last resident shape (64 KiB, parity) and the first
/// streaming one (128 KiB, 1.8×).
const GEMM_STREAM_BYTES: usize = 96 * 1024;

/// Sparse/dense crossover of the projection kernel, as the maximum
/// active-row fraction (`active · CROSSOVER ≤ M`) still served by the
/// set-bit walk.
///
/// Measured on the 1-core bench host (see `bench_kernels`'s
/// `projection_regime_sweep`, M = 256, D = 1024, `target-cpu=native`):
/// the set-bit walk costs ~`D/2` data-dependent scalar adds per active
/// row, the branchless unpack ~`D` SIMD-friendly multiply-adds per
/// active row but with no branch misses, and the two curves cross
/// between 1/16 and 1/4 active fraction depending on host
/// vectorization. 1/8 sits at the crossing's midpoint and is never more
/// than ~15 % off either side's optimum, so the kernel switches to the
/// dense unpack once more than `M / 8` rows are active. Exposed (with
/// [`PackedCodebook::sparse_projection_regime`]) so the bench harness
/// can sweep densities against the constant rather than hard-coding its
/// own copy.
pub const SPARSE_DENSE_CROSSOVER: usize = 8;

/// All `M` codevectors of one codebook in contiguous word buffers, with
/// allocation-free popcount MVM kernels.
///
/// Up to two mirrors of the same bits are kept:
///
/// - **row-major** (`words[j·W .. (j+1)·W]` is row `j`) — always present;
///   used by [`PackedCodebook::row`], per-row dots, and the projection
///   kernel;
/// - **lane-major** (`lane_words[i·M + j]` is word `i` of row `j`) — used
///   by the similarity MVM so that eight consecutive rows' partial counts
///   accumulate in independent SIMD lanes with a single contiguous load
///   per word position and no horizontal reductions inside the loop.
///
/// The lane-major mirror is **optional**: [`Self::from_vectors`] builds
/// both mirrors, [`Self::from_vectors_row_major`] only the row-major
/// one, and [`Self::drop_lane_mirror`] /
/// [`Self::materialize_lane_mirror`] move between the two states (the
/// codebook registry's cold and hot tiers). Every kernel is
/// **value-identical** in either state — all similarity outputs are
/// exact integers in `[-D, D]` with a unique `f64` representation, so
/// the per-row fallback taken when the mirror is absent produces the
/// same bits as the lane-major walk, just without its locality.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedCodebook {
    len: usize,
    dim: usize,
    words_per_row: usize,
    words: Vec<u64>,
    lane_words: Vec<u64>,
}

impl PackedCodebook {
    /// Packs `vectors` (all of one dimension) into both contiguous
    /// layouts (row-major + lane-major).
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is empty or dimensions disagree.
    pub fn from_vectors(vectors: &[BipolarVector]) -> Self {
        let mut packed = Self::from_vectors_row_major(vectors);
        packed.materialize_lane_mirror();
        packed
    }

    /// Packs `vectors` row-major only, leaving the lane-major mirror
    /// unmaterialized — the cold-tier representation of the codebook
    /// registry. Every kernel stays available and value-identical; the
    /// similarity paths take the per-row walk until
    /// [`Self::materialize_lane_mirror`] builds the mirror.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is empty or dimensions disagree.
    pub fn from_vectors_row_major(vectors: &[BipolarVector]) -> Self {
        assert!(!vectors.is_empty(), "packed codebook must be non-empty");
        let dim = vectors[0].dim();
        let words_per_row = dim.div_ceil(WORD_BITS);
        let m = vectors.len();
        let mut words = Vec::with_capacity(m * words_per_row);
        for v in vectors {
            assert_eq!(v.dim(), dim, "packed codebook vectors must share dim");
            words.extend_from_slice(v.words());
        }
        Self {
            len: m,
            dim,
            words_per_row,
            words,
            lane_words: Vec::new(),
        }
    }

    /// Builds the lane-major mirror from the row-major words (no-op when
    /// already present). This is the hot-tier promotion step of the
    /// codebook registry; kernel outputs are bit-identical before and
    /// after.
    pub fn materialize_lane_mirror(&mut self) {
        if !self.lane_words.is_empty() {
            return;
        }
        let m = self.len;
        let mut lane_words = vec![0u64; m * self.words_per_row];
        for j in 0..m {
            for (i, &w) in self.row(j).iter().enumerate() {
                lane_words[i * m + j] = w;
            }
        }
        self.lane_words = lane_words;
    }

    /// Drops the lane-major mirror, keeping only the row-major words —
    /// the hot→cold demotion step of the codebook registry. Kernel
    /// outputs are bit-identical before and after; the similarity paths
    /// fall back to the per-row walk until the mirror is rebuilt.
    pub fn drop_lane_mirror(&mut self) {
        self.lane_words = Vec::new();
    }

    /// True when the lane-major mirror is materialized.
    pub fn has_lane_mirror(&self) -> bool {
        !self.lane_words.is_empty()
    }

    /// Bytes held by the row-major words (always resident).
    pub fn row_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// Bytes currently held by the lane-major mirror (0 when absent;
    /// equal to [`Self::row_bytes`] when materialized).
    pub fn lane_mirror_bytes(&self) -> usize {
        self.lane_words.len() * std::mem::size_of::<u64>()
    }

    /// Number of rows (codevectors) `M`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false: packed codebooks are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Hypervector dimension `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Words per packed row (`ceil(D / 64)`).
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Borrows the packed words of row `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= len()`.
    #[inline]
    pub fn row(&self, j: usize) -> &[u64] {
        &self.words[j * self.words_per_row..(j + 1) * self.words_per_row]
    }

    /// Dot product of row `j` with `query` (exact, via XOR-popcount).
    ///
    /// # Panics
    ///
    /// Panics if `j >= len()` or the query dimension differs.
    #[inline]
    pub fn dot_row(&self, j: usize, query: &BipolarVector) -> i64 {
        assert_eq!(query.dim(), self.dim, "query dimension mismatch");
        let k = dispatch::active();
        self.dim as i64 - 2 * (k.disagreement)(self.row(j), query.words()) as i64
    }

    /// Similarity MVM `a = Xᵀ q` into `out` as `f64` (values are exact
    /// integers in `[-D, D]`).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != len()` or the query dimension differs.
    pub fn similarities_into(&self, query: &BipolarVector, out: &mut [f64]) {
        assert_eq!(out.len(), self.len, "similarity output length mismatch");
        assert_eq!(query.dim(), self.dim, "query dimension mismatch");
        self.similarities_words_into(query.words(), out, dispatch::active());
    }

    /// [`PackedCodebook::similarities_into`] pinned to one dispatch arm —
    /// the per-arm bit-identity probe used by tests and the bench
    /// harness.
    ///
    /// # Panics
    ///
    /// Panics if this host cannot execute `arm` (callers filter with
    /// [`SimdArm::supported`]), plus the usual shape panics.
    pub fn similarities_into_forced(&self, query: &BipolarVector, out: &mut [f64], arm: SimdArm) {
        assert_eq!(out.len(), self.len, "similarity output length mismatch");
        assert_eq!(query.dim(), self.dim, "query dimension mismatch");
        self.similarities_words_into(query.words(), out, forced_table(arm));
    }

    /// The per-query similarity kernel over raw packed words — shared by
    /// [`PackedCodebook::similarities_into`] and the batched kernel's
    /// cache-resident regime so the two can never diverge in value or
    /// code path.
    fn similarities_words_into(&self, q: &[u64], out: &mut [f64], k: &KernelTable) {
        let d = self.dim as i64;
        let m = self.len;
        if self.lane_words.is_empty() {
            // Cold (row-major-only) codebooks: the per-row walk over the
            // same packed bits. Every similarity is the same exact
            // integer either way, so this fallback is bit-identical to
            // the lane-major path — it only trades the blocked locality.
            for (j, o) in out.iter_mut().enumerate() {
                *o = (d - 2 * (k.disagreement)(self.row(j), q) as i64) as f64;
            }
            return;
        }
        let mut j = 0;
        // Lane-major blocks: each pass keeps LANE_BLOCK row counters in
        // independent lanes; every word position contributes one
        // contiguous LANE_BLOCK-wide load XOR'd against the broadcast
        // query word — no horizontal reduction until the block finishes.
        while j + LANE_BLOCK <= m {
            let counts = (k.strip8)(&self.lane_words, m, q.len(), j, q);
            for (o, &c) in out[j..j + LANE_BLOCK].iter_mut().zip(&counts) {
                *o = (d - 2 * c as i64) as f64;
            }
            j += LANE_BLOCK;
        }
        while j < m {
            out[j] = (d - 2 * (k.disagreement)(self.row(j), q) as i64) as f64;
            j += 1;
        }
    }

    /// Similarity MVM `a = Xᵀ q` into `out` as `i64`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != len()` or the query dimension differs.
    pub fn similarities_i64_into(&self, query: &BipolarVector, out: &mut [i64]) {
        assert_eq!(out.len(), self.len, "similarity output length mismatch");
        assert_eq!(query.dim(), self.dim, "query dimension mismatch");
        let k = dispatch::active();
        let q = query.words();
        let d = self.dim as i64;
        for (j, o) in out.iter_mut().enumerate() {
            *o = d - 2 * (k.disagreement)(self.row(j), q) as i64;
        }
    }

    /// Projection MVM `r = X a` into `out`: `out[i] = Σ_j w_j · x_{j,i}`.
    ///
    /// Zero-weight rows are skipped (free sparsity after the quantizing
    /// activation); active rows contribute `+w` on set bits only and the
    /// signed sum is recovered as `2·acc − Σ w` per element.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != dim()` or `weights.len() != len()`.
    pub fn weighted_sums_into(&self, weights: &[f64], out: &mut [f64]) {
        self.weighted_sums_into_k(weights, out, dispatch::active());
    }

    /// [`PackedCodebook::weighted_sums_into`] pinned to one dispatch arm
    /// (see [`PackedCodebook::similarities_into_forced`]).
    ///
    /// # Panics
    ///
    /// Panics if this host cannot execute `arm`, plus the usual shape
    /// panics.
    pub fn weighted_sums_into_forced(&self, weights: &[f64], out: &mut [f64], arm: SimdArm) {
        self.weighted_sums_into_k(weights, out, forced_table(arm));
    }

    fn weighted_sums_into_k(&self, weights: &[f64], out: &mut [f64], k: &KernelTable) {
        assert_eq!(out.len(), self.dim, "projection output length mismatch");
        assert_eq!(weights.len(), self.len, "weight count mismatch");
        out.fill(0.0);
        let active = weights.iter().filter(|&&w| w != 0.0).count();
        let mut total = 0.0f64;
        if Self::sparse_projection_regime(active, self.len) {
            // Sparse regime (typical after the quantizing activation):
            // iterate only the set bits of the few active rows — no
            // dispatched variant exists (or could win): the walk is
            // data-dependent scalar pointer chasing by design.
            for (j, &wj) in weights.iter().enumerate() {
                total += wj;
                if wj == 0.0 {
                    continue;
                }
                accumulate_set_bits(self.row(j), wj, out);
            }
        } else {
            // Dense regime: the dispatched bit-unpack accumulate —
            // masked SIMD adds on the explicit arms, the branchless
            // select on the scalar arm. Every arm accumulates
            // element-wise identically (adding a masked `wj` vs `wj·1`,
            // nothing vs `wj·0`), so the arm choice cannot move outputs.
            for (j, &wj) in weights.iter().enumerate() {
                total += wj;
                if wj == 0.0 {
                    continue;
                }
                (k.dense_accum)(self.row(j), wj, out);
            }
        }
        for o in out.iter_mut() {
            *o = 2.0 * *o - total;
        }
    }

    /// True when `active` non-zero weights over `rows` codebook rows are
    /// served by the sparse set-bit walk rather than the dense branchless
    /// unpack (see [`SPARSE_DENSE_CROSSOVER`] for the measurement behind
    /// the constant). This is the single regime decision shared by
    /// [`PackedCodebook::weighted_sums_into`] and
    /// [`PackedCodebook::weighted_sums_batch_into`], exposed so the bench
    /// harness can sweep densities against it.
    #[inline]
    pub fn sparse_projection_regime(active: usize, rows: usize) -> bool {
        active * SPARSE_DENSE_CROSSOVER <= rows
    }

    /// True when the batched similarity kernel reduces this codebook
    /// through a Harley–Seal CSA tree: the **runtime-selected** dispatch
    /// arm reduces by carry-save tree (scalar arm without native vector
    /// popcount, or the explicit AVX2 arm — see [`crate::dispatch`]) and
    /// the rows span at least one [`CSA_BLOCK_WORDS`] block (`D ≥ 1024`).
    /// On vector-popcount arms, and for shorter rows, the per-word
    /// popcount tile runs instead. Recorded in bench provenance so
    /// cross-host numbers are comparable.
    pub fn batch_uses_csa(&self) -> bool {
        dispatch::active().reduction == Reduction::CsaTree && self.words_per_row >= CSA_BLOCK_WORDS
    }

    /// True when this codebook's lane mirror (materialized or not — the
    /// mirror has exactly the row-major footprint) exceeds the
    /// cache-residency threshold ([`GEMM_STREAM_BYTES`]), putting the
    /// batched similarity kernel in its wide-tile streaming regime. The
    /// codebook registry uses the same predicate to decide which members
    /// are worth a hot-tier lane mirror at all.
    pub fn batch_streams_codebook(&self) -> bool {
        self.words.len() * std::mem::size_of::<u64>() > GEMM_STREAM_BYTES
    }

    /// Batched similarity MVM `A = Xᵀ Q`: the dot products of every
    /// codebook row with every query of `batch`, written query-major into
    /// `out` (`out[b·M + j]` is row `j` against query `b`, an exact
    /// integer in `[-D, D]`) — **value-identical** to `batch.len()` calls
    /// of [`PackedCodebook::similarities_into`].
    ///
    /// This is the cache-blocked bit-GEMM: the lane-major mirror is tiled
    /// into [`LANE_BLOCK`]-row strips, each strip streamed once and
    /// reused across all `B` query columns while hot in L1 (the per-query
    /// path re-streams the whole codebook per query), and each
    /// (strip, query) pair reduces through the runtime-dispatched strip
    /// kernel — vector-popcount tile or Harley–Seal carry-save tree per
    /// the selected arm (see [`crate::dispatch`]). Rows past the last
    /// full strip fall back to the per-row path.
    ///
    /// # Panics
    ///
    /// Panics if `batch.dim() != dim()` or
    /// `out.len() != batch.len() * len()`.
    pub fn similarities_batch_into(&self, batch: &PackedBatch, out: &mut [f64]) {
        self.similarities_batch_into_k(batch, out, dispatch::active());
    }

    /// [`PackedCodebook::similarities_batch_into`] pinned to one dispatch
    /// arm (see [`PackedCodebook::similarities_into_forced`]).
    ///
    /// # Panics
    ///
    /// Panics if this host cannot execute `arm`, plus the usual shape
    /// panics.
    pub fn similarities_batch_into_forced(
        &self,
        batch: &PackedBatch,
        out: &mut [f64],
        arm: SimdArm,
    ) {
        self.similarities_batch_into_k(batch, out, forced_table(arm));
    }

    fn similarities_batch_into_k(&self, batch: &PackedBatch, out: &mut [f64], k: &KernelTable) {
        assert_eq!(batch.dim(), self.dim, "batch dimension mismatch");
        let m = self.len;
        let w = self.words_per_row;
        let bn = batch.len();
        assert_eq!(out.len(), bn * m, "batch similarity output length mismatch");
        let d = self.dim as f64;
        // `out` accumulates exact integer disagreement counts as `f64`
        // (all partial sums stay far below 2^53) and is finalized to
        // `D − 2·count` at the end — bit-identical to the per-query
        // kernel's `(d − 2·c) as f64` since every value is an integer
        // with one `f64` representation.
        let use_csa = k.reduction == Reduction::CsaTree && w >= CSA_BLOCK_WORDS;
        if self.lane_words.is_empty() || (!use_csa && !self.batch_streams_codebook()) {
            // Cache-resident regime on vector-popcount arms — or a
            // cold (row-major-only) codebook whose lane mirror the
            // strip kernels would need: the batch is exactly `B`
            // per-query passes — same code path as the per-query entry
            // point, bit-identical by construction.
            for b in 0..bn {
                self.similarities_words_into(batch.query_words(b), &mut out[b * m..(b + 1) * m], k);
            }
            return;
        }
        out.fill(0.0);
        let mut j = 0;
        while j + LANE_BLOCK <= m {
            if use_csa {
                // CSA-tree arms: one Harley–Seal tree per query column
                // (five popcounts per block of 16 words instead of
                // sixteen).
                for b in 0..bn {
                    let counts = (k.strip8)(&self.lane_words, m, w, j, batch.query_words(b));
                    for (l, &c) in counts.iter().enumerate() {
                        out[b * m + j + l] += c as f64;
                    }
                }
            } else {
                // Streaming codebooks on vector-popcount arms: advance
                // TILE_COLS query columns per pass so each strip load —
                // and the whole codebook pass — amortizes across the
                // tile.
                let mut b = 0;
                while b + TILE_COLS <= bn {
                    let qs: [&[u64]; TILE_COLS] = std::array::from_fn(|c| batch.query_words(b + c));
                    let counts = (k.strip8x4)(&self.lane_words, m, w, j, &qs);
                    for (c, col) in counts.iter().enumerate() {
                        for (l, &cnt) in col.iter().enumerate() {
                            out[(b + c) * m + j + l] += cnt as f64;
                        }
                    }
                    b += TILE_COLS;
                }
                while b < bn {
                    let counts = (k.strip8)(&self.lane_words, m, w, j, batch.query_words(b));
                    for (l, &c) in counts.iter().enumerate() {
                        out[b * m + j + l] += c as f64;
                    }
                    b += 1;
                }
            }
            j += LANE_BLOCK;
        }
        // Rows past the last full strip: per-row row-major path.
        while j < m {
            let row = self.row(j);
            for b in 0..bn {
                out[b * m + j] = (k.disagreement)(row, batch.query_words(b)) as f64;
            }
            j += 1;
        }
        for o in out.iter_mut() {
            *o = d - 2.0 * *o;
        }
    }

    /// Batched projection MVM: for each query `b`,
    /// `out[b·D + i] = Σ_j weights[b·M + j] · x_{j,i}` — **bit-identical**
    /// (same per-query regime choice, same per-element accumulation
    /// order) to `B` calls of [`PackedCodebook::weighted_sums_into`].
    ///
    /// `weights` is query-major `B × M`, `out` query-major `B × D`, with
    /// `B` inferred from `weights.len() / len()`. Sparse-regime queries
    /// run the per-query set-bit walk (they touch few rows by
    /// definition); dense-regime queries run the cache-blocked dispatched
    /// bit-GEMM: the output is tiled into [`PROJ_BLOCK_WORDS`]-word
    /// blocks (8 KiB of `f64` per query) and, per block, every active
    /// row's word slice feeds the dispatched dense-accumulate — so the
    /// output block stays L1-resident across the whole `M`-row sweep and
    /// each row contributes one short contiguous load per block instead
    /// of a `D`-wide accumulator walk. Per-element accumulation order
    /// (ascending `j`) is unchanged by the tiling, keeping outputs
    /// bit-identical to the per-query kernel. Unlike the per-query
    /// kernels this entry point allocates `O(B)` regime flags (never
    /// anything proportional to `M·D`).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` is not a positive multiple of `len()` or
    /// `out.len()` is not the matching multiple of `dim()`.
    pub fn weighted_sums_batch_into(&self, weights: &[f64], out: &mut [f64]) {
        self.weighted_sums_batch_into_k(weights, out, dispatch::active());
    }

    /// [`PackedCodebook::weighted_sums_batch_into`] pinned to one
    /// dispatch arm (see [`PackedCodebook::similarities_into_forced`]).
    ///
    /// # Panics
    ///
    /// Panics if this host cannot execute `arm`, plus the usual shape
    /// panics.
    pub fn weighted_sums_batch_into_forced(&self, weights: &[f64], out: &mut [f64], arm: SimdArm) {
        self.weighted_sums_batch_into_k(weights, out, forced_table(arm));
    }

    fn weighted_sums_batch_into_k(&self, weights: &[f64], out: &mut [f64], k: &KernelTable) {
        let m = self.len;
        let d = self.dim;
        assert!(
            !weights.is_empty() && weights.len().is_multiple_of(m),
            "batch weight count {} not a positive multiple of rows {m}",
            weights.len()
        );
        let bn = weights.len() / m;
        assert_eq!(out.len(), bn * d, "batch projection output length mismatch");
        out.fill(0.0);
        let dense: Vec<bool> = (0..bn)
            .map(|b| {
                let active = weights[b * m..(b + 1) * m]
                    .iter()
                    .filter(|&&w| w != 0.0)
                    .count();
                !Self::sparse_projection_regime(active, m)
            })
            .collect();
        for (b, _) in dense.iter().enumerate().filter(|&(_, &dns)| !dns) {
            let ob = &mut out[b * d..(b + 1) * d];
            for (j, &wj) in weights[b * m..(b + 1) * m].iter().enumerate() {
                if wj == 0.0 {
                    continue;
                }
                accumulate_set_bits(self.row(j), wj, ob);
            }
        }
        if dense.iter().any(|&dns| dns) {
            let w = self.words_per_row;
            // Dim-blocked dispatched bit-GEMM: block outer so each 8 KiB
            // output tile is revisited by every row while L1-hot; `j`
            // stays the innermost *ordering* per element, so each
            // out-element sees the same addition sequence as the
            // per-query kernel.
            let mut w0 = 0;
            while w0 < w {
                let w1 = (w0 + PROJ_BLOCK_WORDS).min(w);
                let e0 = w0 * WORD_BITS;
                let e1 = (w1 * WORD_BITS).min(d);
                for j in 0..m {
                    let row_blk = &self.row(j)[w0..w1];
                    for (b, _) in dense.iter().enumerate().filter(|&(_, &dns)| dns) {
                        let wj = weights[b * m + j];
                        if wj == 0.0 {
                            continue;
                        }
                        (k.dense_accum)(row_blk, wj, &mut out[b * d + e0..b * d + e1]);
                    }
                }
                w0 = w1;
            }
        }
        for b in 0..bn {
            let total: f64 = weights[b * m..(b + 1) * m].iter().sum();
            for o in out[b * d..(b + 1) * d].iter_mut() {
                *o = 2.0 * *o - total;
            }
        }
    }
}

/// Resolves the kernel table of a caller-pinned arm, panicking with a
/// actionable message when the host cannot run it (the `*_forced`
/// variants' contract; callers filter with [`SimdArm::supported`]).
fn forced_table(arm: SimdArm) -> &'static KernelTable {
    dispatch::table(arm)
        .unwrap_or_else(|| panic!("dispatch arm `{arm}` is not supported on this host"))
}

/// `B` packed queries in one contiguous buffer: the right-hand side of
/// the batched bit-GEMM [`PackedCodebook::similarities_batch_into`].
///
/// Storage is query-major (`qwords[b · W + i]` is word `i` of query
/// `b`): every reduction tile streams one query column's words
/// sequentially while the *codebook* supplies the lane-major strips, so
/// a lane-major batch mirror would have no reader — the batch itself is
/// tiny (`B × W` words) and stays cache-hot in any layout.
///
/// The batch is built once with a capacity and refilled allocation-free
/// ([`PackedBatch::clear`] + [`PackedBatch::push`]) — the lockstep
/// resonator repacks the active problems' queries every iteration, and
/// retiring a problem never moves another problem's words within an
/// iteration.
///
/// No `PartialEq`: a refilled batch may carry stale words past `len`,
/// so derived equality would distinguish logically identical batches.
#[derive(Debug, Clone)]
pub struct PackedBatch {
    capacity: usize,
    len: usize,
    dim: usize,
    words_per_query: usize,
    qwords: Vec<u64>,
}

impl PackedBatch {
    /// An empty batch able to hold `capacity` queries of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `dim == 0`.
    pub fn with_capacity(capacity: usize, dim: usize) -> Self {
        assert!(capacity > 0, "batch capacity must be positive");
        assert!(dim > 0, "batch dimension must be positive");
        let words_per_query = dim.div_ceil(WORD_BITS);
        Self {
            capacity,
            len: 0,
            dim,
            words_per_query,
            qwords: vec![0u64; capacity * words_per_query],
        }
    }

    /// Packs `queries` into a batch sized exactly to them.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty or dimensions disagree.
    pub fn from_queries(queries: &[BipolarVector]) -> Self {
        assert!(!queries.is_empty(), "packed batch must be non-empty");
        let mut batch = Self::with_capacity(queries.len(), queries[0].dim());
        for q in queries {
            batch.push(q);
        }
        batch
    }

    /// Appends one query's words into the next column.
    ///
    /// # Panics
    ///
    /// Panics if the batch is full or the query dimension differs.
    #[inline]
    pub fn push(&mut self, query: &BipolarVector) {
        assert!(self.len < self.capacity, "packed batch is full");
        assert_eq!(query.dim(), self.dim, "batch query dimension mismatch");
        self.qwords[self.len * self.words_per_query..(self.len + 1) * self.words_per_query]
            .copy_from_slice(query.words());
        self.len += 1;
    }

    /// Empties the batch for refill; capacity and dimension are kept.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Queries currently packed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no query is packed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum queries the batch can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Query dimension `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Words per packed query (`ceil(D / 64)`).
    pub fn words_per_query(&self) -> usize {
        self.words_per_query
    }

    /// Word `i` of query `b` (padding bits beyond `dim` are zero).
    ///
    /// # Panics
    ///
    /// Panics if `i >= words_per_query()` or `b` indexes past the
    /// buffer.
    #[inline]
    pub fn word(&self, i: usize, b: usize) -> u64 {
        assert!(i < self.words_per_query, "word index out of range");
        self.qwords[b * self.words_per_query + i]
    }

    /// The contiguous packed words of query `b` (padding bits beyond
    /// `dim` are zero).
    ///
    /// # Panics
    ///
    /// Panics if `b >= capacity()`.
    #[inline]
    pub fn query_words(&self, b: usize) -> &[u64] {
        &self.qwords[b * self.words_per_query..(b + 1) * self.words_per_query]
    }
}

/// Adds `w` to `out[i]` for every set bit `i` of `words` — the per-row
/// accumulate step of the sparse projection kernel, shared with
/// [`crate::ops::weighted_sums_into`]. Bits in the padding tail of the
/// last word (positions at or beyond `out.len()`) are ignored, so a
/// corrupted tail can never index out of bounds.
#[inline]
pub(crate) fn accumulate_set_bits(words: &[u64], w: f64, out: &mut [f64]) {
    let tail = out.len() % WORD_BITS;
    let last = words.len() - 1;
    for (wi, &word) in words.iter().enumerate() {
        let base = wi * WORD_BITS;
        let mut bits = if tail != 0 && wi == last {
            word & ((1u64 << tail) - 1)
        } else {
            word
        };
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            out[base + b] += w;
            bits &= bits - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    fn vectors(m: usize, d: usize, seed: u64) -> Vec<BipolarVector> {
        let mut rng = rng_from_seed(seed);
        (0..m).map(|_| BipolarVector::random(d, &mut rng)).collect()
    }

    #[test]
    fn similarities_match_naive_dots() {
        for (m, d) in [(1, 64), (5, 100), (8, 256), (13, 1000)] {
            let vs = vectors(m, d, 31);
            let packed = PackedCodebook::from_vectors(&vs);
            let q = BipolarVector::random(d, &mut rng_from_seed(32));
            let mut out = vec![0.0; m];
            packed.similarities_into(&q, &mut out);
            let mut out_i = vec![0i64; m];
            packed.similarities_i64_into(&q, &mut out_i);
            for (j, v) in vs.iter().enumerate() {
                assert_eq!(out[j], v.dot(&q) as f64, "m={m} d={d} row {j}");
                assert_eq!(out_i[j], v.dot(&q), "m={m} d={d} row {j}");
                assert_eq!(packed.dot_row(j, &q), v.dot(&q));
            }
        }
    }

    #[test]
    fn weighted_sums_match_reference() {
        let (m, d) = (9, 130);
        let vs = vectors(m, d, 33);
        let packed = PackedCodebook::from_vectors(&vs);
        let weights: Vec<f64> = (0..m).map(|j| (j as f64) - 3.0).collect();
        let mut out = vec![0.0; d];
        packed.weighted_sums_into(&weights, &mut out);
        for (i, &o) in out.iter().enumerate() {
            let expect: f64 = vs
                .iter()
                .zip(&weights)
                .map(|(v, &w)| w * v.sign(i) as f64)
                .sum();
            assert!((o - expect).abs() < 1e-9, "element {i}");
        }
    }

    #[test]
    fn weighted_sums_skip_zero_rows_exactly() {
        let vs = vectors(3, 256, 34);
        let packed = PackedCodebook::from_vectors(&vs);
        let mut out = vec![0.0; 256];
        packed.weighted_sums_into(&[0.0, 1.0, 0.0], &mut out);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, vs[1].sign(i) as f64);
        }
    }

    #[test]
    fn layout_is_contiguous_row_major() {
        let vs = vectors(4, 200, 35);
        let packed = PackedCodebook::from_vectors(&vs);
        assert_eq!(packed.len(), 4);
        assert_eq!(packed.dim(), 200);
        assert_eq!(packed.words_per_row(), 4);
        for (j, v) in vs.iter().enumerate() {
            assert_eq!(packed.row(j), v.words());
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_rejected() {
        let _ = PackedCodebook::from_vectors(&[]);
    }

    #[test]
    fn batched_similarities_match_per_query_bitwise() {
        // Shapes straddling every kernel boundary: D < 64, ragged tails,
        // exactly one CSA block, multi-block, row-tile tails, B = 1.
        // Shapes straddling every dispatch regime: cache-resident,
        // streaming (lane mirror > GEMM_STREAM_BYTES), and CSA-eligible
        // row lengths.
        for (m, d, b) in [
            (1, 48, 1),
            (5, 100, 3),
            (8, 1024, 4),
            (13, 1000, 7),
            (16, 1090, 2),
            (24, 2048, 5),
            (512, 2048, 3),
        ] {
            let vs = vectors(m, d, 60);
            let packed = PackedCodebook::from_vectors(&vs);
            let mut rng = rng_from_seed(61);
            let queries: Vec<BipolarVector> =
                (0..b).map(|_| BipolarVector::random(d, &mut rng)).collect();
            let batch = PackedBatch::from_queries(&queries);
            let mut batched = vec![0.0f64; b * m];
            packed.similarities_batch_into(&batch, &mut batched);
            let mut single = vec![0.0f64; m];
            for (bi, q) in queries.iter().enumerate() {
                packed.similarities_into(q, &mut single);
                for j in 0..m {
                    assert_eq!(
                        batched[bi * m + j].to_bits(),
                        single[j].to_bits(),
                        "m={m} d={d} b={bi}/{b} row {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn row_major_only_kernels_match_full_mirrors_bitwise() {
        // The cold-tier representation must be kernel-for-kernel
        // value-identical: per-query and batched similarities over the
        // same shapes as the batched-dispatch test (cache-resident,
        // CSA-eligible, and streaming regimes included).
        for (m, d, b) in [(1, 48, 1), (8, 256, 4), (24, 2048, 5), (512, 2048, 3)] {
            let vs = vectors(m, d, 70);
            let full = PackedCodebook::from_vectors(&vs);
            let cold = PackedCodebook::from_vectors_row_major(&vs);
            assert!(full.has_lane_mirror());
            assert!(!cold.has_lane_mirror());
            assert_eq!(cold.lane_mirror_bytes(), 0);
            assert_eq!(full.lane_mirror_bytes(), full.row_bytes());
            let mut rng = rng_from_seed(71);
            let queries: Vec<BipolarVector> =
                (0..b).map(|_| BipolarVector::random(d, &mut rng)).collect();
            let batch = PackedBatch::from_queries(&queries);
            let (mut a, mut c) = (vec![0.0f64; m], vec![0.0f64; m]);
            for q in &queries {
                full.similarities_into(q, &mut a);
                cold.similarities_into(q, &mut c);
                for j in 0..m {
                    assert_eq!(a[j].to_bits(), c[j].to_bits(), "m={m} d={d} row {j}");
                }
            }
            let (mut ba, mut bc) = (vec![0.0f64; b * m], vec![0.0f64; b * m]);
            full.similarities_batch_into(&batch, &mut ba);
            cold.similarities_batch_into(&batch, &mut bc);
            for (i, (x, y)) in ba.iter().zip(&bc).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "m={m} d={d} batched slot {i}");
            }
        }
    }

    #[test]
    fn lane_mirror_round_trips_exactly() {
        let vs = vectors(13, 1000, 72);
        let full = PackedCodebook::from_vectors(&vs);
        let mut cycled = full.clone();
        cycled.drop_lane_mirror();
        assert!(!cycled.has_lane_mirror());
        assert_ne!(cycled, full, "mirror presence is part of derived equality");
        cycled.materialize_lane_mirror();
        assert_eq!(cycled, full, "drop + rematerialize must be lossless");
        // Re-materializing a hot codebook is a no-op.
        cycled.materialize_lane_mirror();
        assert_eq!(cycled, full);
    }

    #[test]
    fn streaming_threshold_is_mirror_state_independent() {
        // 512×2048 is decisively past GEMM_STREAM_BYTES; 8×256 decisively
        // under. The predicate must not change with mirror presence (it
        // feeds both the kernel dispatch and the registry's hot-tier
        // policy).
        for (m, d, expect) in [(512usize, 2048usize, true), (8, 256, false)] {
            let vs = vectors(m, d, 73);
            let full = PackedCodebook::from_vectors(&vs);
            let cold = PackedCodebook::from_vectors_row_major(&vs);
            assert_eq!(full.batch_streams_codebook(), expect, "m={m} d={d}");
            assert_eq!(cold.batch_streams_codebook(), expect, "m={m} d={d}");
        }
    }

    #[test]
    fn batched_weighted_sums_match_per_query_bitwise() {
        // Mixed regimes inside one batch: query 0 sparse (one active row),
        // query 1 dense (all rows active), query 2 all-zero weights.
        let (m, d) = (24, 523);
        let vs = vectors(m, d, 62);
        let packed = PackedCodebook::from_vectors(&vs);
        let mut weights = vec![0.0f64; 3 * m];
        weights[5] = 2.5;
        for j in 0..m {
            weights[m + j] = (j as f64) - 7.0;
        }
        let mut batched = vec![0.0f64; 3 * d];
        packed.weighted_sums_batch_into(&weights, &mut batched);
        let mut single = vec![0.0f64; d];
        for b in 0..3 {
            packed.weighted_sums_into(&weights[b * m..(b + 1) * m], &mut single);
            for i in 0..d {
                assert_eq!(
                    batched[b * d + i].to_bits(),
                    single[i].to_bits(),
                    "query {b} element {i}"
                );
            }
        }
    }

    #[test]
    fn packed_batch_refills_without_moving_lanes() {
        let mut rng = rng_from_seed(63);
        let qs: Vec<BipolarVector> = (0..4)
            .map(|_| BipolarVector::random(130, &mut rng))
            .collect();
        let mut batch = PackedBatch::with_capacity(4, 130);
        batch.push(&qs[0]);
        batch.push(&qs[1]);
        assert_eq!(batch.len(), 2);
        batch.clear();
        assert!(batch.is_empty());
        batch.push(&qs[2]);
        batch.push(&qs[3]);
        for (i, &w) in qs[2].words().iter().enumerate() {
            assert_eq!(batch.word(i, 0), w);
        }
        for (i, &w) in qs[3].words().iter().enumerate() {
            assert_eq!(batch.word(i, 1), w);
        }
        assert_eq!(batch.capacity(), 4);
        assert_eq!(batch.words_per_query(), 3);
    }

    #[test]
    fn regime_decision_matches_legacy_threshold() {
        // The measured constant must reproduce the pre-constant behavior
        // (`8 · active <= M`) so existing golden outputs cannot move.
        for m in [1usize, 8, 64, 256] {
            for active in 0..=m {
                assert_eq!(
                    PackedCodebook::sparse_projection_regime(active, m),
                    8 * active <= m,
                    "active={active} m={m}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "full")]
    fn batch_overflow_rejected() {
        let mut batch = PackedBatch::with_capacity(1, 64);
        let q = BipolarVector::ones(64);
        batch.push(&q);
        batch.push(&q);
    }

    #[test]
    fn forced_arms_match_scalar_bitwise_across_kernels() {
        // Every host-supported dispatch arm must reproduce the scalar
        // arm bit-for-bit on all four public kernels, over shapes
        // straddling every regime boundary (D < 64, ragged tails, CSA
        // blocks, streaming, B = 1). The per-strip kernels themselves
        // are pinned against the naive reference in `dispatch::tests`;
        // this covers the full kernel plumbing per arm.
        for (m, d, b) in [
            (1, 48, 1),
            (5, 100, 3),
            (13, 1000, 7),
            (24, 2048, 5),
            (512, 2048, 3),
        ] {
            let vs = vectors(m, d, 80);
            let packed = PackedCodebook::from_vectors(&vs);
            let mut rng = rng_from_seed(81);
            let queries: Vec<BipolarVector> =
                (0..b).map(|_| BipolarVector::random(d, &mut rng)).collect();
            let batch = PackedBatch::from_queries(&queries);
            let mut weights = vec![0.0f64; b * m];
            for (i, w) in weights.iter_mut().enumerate() {
                *w = ((i % 7) as f64) - 3.0;
            }
            let mut sim_ref = vec![0.0f64; b * m];
            packed.similarities_batch_into_forced(&batch, &mut sim_ref, SimdArm::Scalar);
            let mut proj_ref = vec![0.0f64; b * d];
            packed.weighted_sums_batch_into_forced(&weights, &mut proj_ref, SimdArm::Scalar);
            for arm in SimdArm::ALL {
                if !arm.supported() {
                    continue;
                }
                let mut sim = vec![0.0f64; b * m];
                packed.similarities_batch_into_forced(&batch, &mut sim, arm);
                for (i, (x, y)) in sim.iter().zip(&sim_ref).enumerate() {
                    assert_eq!(x.to_bits(), y.to_bits(), "{arm} sim m={m} d={d} slot {i}");
                }
                let mut single = vec![0.0f64; m];
                for (bi, q) in queries.iter().enumerate() {
                    packed.similarities_into_forced(q, &mut single, arm);
                    for j in 0..m {
                        assert_eq!(
                            single[j].to_bits(),
                            sim_ref[bi * m + j].to_bits(),
                            "{arm} per-query m={m} d={d} b={bi} row {j}"
                        );
                    }
                }
                let mut proj = vec![0.0f64; b * d];
                packed.weighted_sums_batch_into_forced(&weights, &mut proj, arm);
                for (i, (x, y)) in proj.iter().zip(&proj_ref).enumerate() {
                    assert_eq!(x.to_bits(), y.to_bits(), "{arm} proj m={m} d={d} slot {i}");
                }
                let mut ps = vec![0.0f64; d];
                for bi in 0..b {
                    packed.weighted_sums_into_forced(&weights[bi * m..(bi + 1) * m], &mut ps, arm);
                    for i in 0..d {
                        assert_eq!(
                            ps[i].to_bits(),
                            proj_ref[bi * d + i].to_bits(),
                            "{arm} per-query proj b={bi} elt {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn forcing_an_unsupported_arm_panics() {
        let arm = SimdArm::ALL
            .into_iter()
            .find(|a| !a.supported())
            .unwrap_or_else(|| panic!("all arms supported — simulate: not supported on this host"));
        let vs = vectors(2, 64, 82);
        let packed = PackedCodebook::from_vectors(&vs);
        let q = BipolarVector::random(64, &mut rng_from_seed(83));
        let mut out = vec![0.0; 2];
        packed.similarities_into_forced(&q, &mut out, arm);
    }
}
