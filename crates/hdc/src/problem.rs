//! Factorization problem instances: compose a product vector from one item
//! per codebook; the factorizer must recover the item indices.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::bipolar::BipolarVector;
use crate::codebook::Codebook;
use crate::ops::bind_all;

/// Shape of a factorization problem: `F` attributes, each with an `M`-sized
/// codebook of `D`-dimensional item vectors. The paper's Table II calls the
/// codebook size "D"; we use `codebook_size` (`M`) and keep `dim` for the
/// hypervector dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProblemSpec {
    /// Number of factors (attributes) `F`.
    pub factors: usize,
    /// Codebook size `M` (items per attribute).
    pub codebook_size: usize,
    /// Hypervector dimension `D`.
    pub dim: usize,
}

impl ProblemSpec {
    /// Creates a spec, validating all parameters are positive.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(factors: usize, codebook_size: usize, dim: usize) -> Self {
        assert!(factors > 0, "need at least one factor");
        assert!(codebook_size > 0, "codebook size must be positive");
        assert!(dim > 0, "dimension must be positive");
        Self {
            factors,
            codebook_size,
            dim,
        }
    }

    /// Size of the combinatorial search space, `M^F`, saturating at
    /// `u128::MAX`.
    pub fn search_space(&self) -> u128 {
        (0..self.factors).fold(1u128, |acc, _| {
            acc.saturating_mul(self.codebook_size as u128)
        })
    }
}

/// A concrete factorization problem: codebooks, ground-truth indices, and
/// the composed product vector `s = x₁ ⊙ x₂ ⊙ … ⊙ x_F`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactorizationProblem {
    spec: ProblemSpec,
    codebooks: Vec<Codebook>,
    true_indices: Vec<usize>,
    product: BipolarVector,
}

impl FactorizationProblem {
    /// Generates a random problem: random codebooks, random ground truth.
    pub fn random<R: Rng + ?Sized>(spec: ProblemSpec, rng: &mut R) -> Self {
        let codebooks: Vec<Codebook> = (0..spec.factors)
            .map(|_| Codebook::random(spec.codebook_size, spec.dim, rng))
            .collect();
        let true_indices: Vec<usize> = (0..spec.factors)
            .map(|_| rng.gen_range(0..spec.codebook_size))
            .collect();
        Self::compose(spec, codebooks, true_indices)
    }

    /// Generates a random problem over *shared* codebooks (the codebooks are
    /// fixed hardware contents in H3DFact; only the query changes).
    pub fn with_codebooks<R: Rng + ?Sized>(codebooks: &[Codebook], rng: &mut R) -> Self {
        assert!(!codebooks.is_empty(), "need at least one codebook");
        let dim = codebooks[0].dim();
        let m = codebooks[0].len();
        assert!(
            codebooks.iter().all(|c| c.dim() == dim && c.len() == m),
            "codebooks must share shape"
        );
        let spec = ProblemSpec::new(codebooks.len(), m, dim);
        let true_indices: Vec<usize> = (0..spec.factors)
            .map(|_| rng.gen_range(0..spec.codebook_size))
            .collect();
        Self::compose(spec, codebooks.to_vec(), true_indices)
    }

    /// Builds a problem from explicit parts, composing the product vector.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent or an index is out of range.
    pub fn compose(spec: ProblemSpec, codebooks: Vec<Codebook>, true_indices: Vec<usize>) -> Self {
        assert_eq!(codebooks.len(), spec.factors, "codebook count != factors");
        assert_eq!(true_indices.len(), spec.factors, "index count != factors");
        for (cb, &idx) in codebooks.iter().zip(&true_indices) {
            assert_eq!(cb.dim(), spec.dim, "codebook dim mismatch");
            assert_eq!(cb.len(), spec.codebook_size, "codebook size mismatch");
            assert!(idx < cb.len(), "true index out of range");
        }
        let selected: Vec<BipolarVector> = codebooks
            .iter()
            .zip(&true_indices)
            .map(|(cb, &i)| cb.vector(i).clone())
            .collect();
        let product = bind_all(&selected);
        Self {
            spec,
            codebooks,
            true_indices,
            product,
        }
    }

    /// Problem shape.
    pub fn spec(&self) -> ProblemSpec {
        self.spec
    }

    /// The attribute codebooks.
    pub fn codebooks(&self) -> &[Codebook] {
        &self.codebooks
    }

    /// Ground-truth item index per factor.
    pub fn true_indices(&self) -> &[usize] {
        &self.true_indices
    }

    /// The composed product (object) vector `s`.
    pub fn product(&self) -> &BipolarVector {
        &self.product
    }

    /// The product vector passed through a binary symmetric channel with
    /// flip probability `p` — models the approximate product produced by a
    /// neural perception frontend.
    pub fn noisy_product<R: Rng + ?Sized>(&self, p: f64, rng: &mut R) -> BipolarVector {
        self.product.with_flip_noise(p, rng)
    }

    /// Checks a candidate solution for exact recovery of every factor.
    pub fn is_solved_by(&self, indices: &[usize]) -> bool {
        indices == self.true_indices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn spec_search_space() {
        assert_eq!(ProblemSpec::new(3, 16, 128).search_space(), 16u128.pow(3));
        assert_eq!(ProblemSpec::new(4, 512, 128).search_space(), 512u128.pow(4));
    }

    #[test]
    fn product_unbinds_to_truth() {
        let mut rng = rng_from_seed(30);
        let p = FactorizationProblem::random(ProblemSpec::new(3, 8, 512), &mut rng);
        // Unbind factors 1 and 2 from the product: must equal factor 0's vector.
        let partial = p
            .product()
            .bind(p.codebooks()[1].vector(p.true_indices()[1]))
            .bind(p.codebooks()[2].vector(p.true_indices()[2]));
        assert_eq!(&partial, p.codebooks()[0].vector(p.true_indices()[0]));
        assert!(p.is_solved_by(p.true_indices()));
    }

    #[test]
    fn with_codebooks_shares_books() {
        let mut rng = rng_from_seed(31);
        let books: Vec<Codebook> = (0..3).map(|_| Codebook::random(8, 256, &mut rng)).collect();
        let p1 = FactorizationProblem::with_codebooks(&books, &mut rng);
        let p2 = FactorizationProblem::with_codebooks(&books, &mut rng);
        assert_eq!(p1.codebooks(), p2.codebooks());
    }

    #[test]
    fn noisy_product_degrades_similarity() {
        let mut rng = rng_from_seed(32);
        let p = FactorizationProblem::random(ProblemSpec::new(2, 4, 4096), &mut rng);
        let noisy = p.noisy_product(0.25, &mut rng);
        let cos = p.product().cosine(&noisy);
        // E[cos] = 1 - 2p = 0.5.
        assert!((cos - 0.5).abs() < 0.1, "cos {cos}");
    }

    #[test]
    #[should_panic(expected = "true index out of range")]
    fn compose_rejects_bad_index() {
        let mut rng = rng_from_seed(33);
        let books = vec![Codebook::random(4, 64, &mut rng)];
        let _ = FactorizationProblem::compose(ProblemSpec::new(1, 4, 64), books, vec![9]);
    }
}
