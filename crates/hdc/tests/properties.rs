//! Property-based tests for the VSA algebra invariants.

use hdc::rng::rng_from_seed;
use hdc::{bind_all, bundle, BipolarVector, Codebook, TieBreak};
use proptest::prelude::*;

fn arb_dim() -> impl Strategy<Value = usize> {
    prop_oneof![1usize..=4, 60usize..=68, 120usize..=130, Just(256)]
}

fn arb_vector(dim: usize) -> impl Strategy<Value = BipolarVector> {
    proptest::collection::vec(prop_oneof![Just(1i8), Just(-1i8)], dim)
        .prop_map(|signs| BipolarVector::from_signs(&signs))
}

proptest! {
    #[test]
    fn bind_commutes(dim in arb_dim(), seed in 0u64..1000) {
        let mut rng = rng_from_seed(seed);
        let a = BipolarVector::random(dim, &mut rng);
        let b = BipolarVector::random(dim, &mut rng);
        prop_assert_eq!(a.bind(&b), b.bind(&a));
    }

    #[test]
    fn bind_associates(dim in arb_dim(), seed in 0u64..1000) {
        let mut rng = rng_from_seed(seed);
        let a = BipolarVector::random(dim, &mut rng);
        let b = BipolarVector::random(dim, &mut rng);
        let c = BipolarVector::random(dim, &mut rng);
        prop_assert_eq!(a.bind(&b).bind(&c), a.bind(&b.bind(&c)));
    }

    #[test]
    fn bind_self_is_identity_vector(dim in arb_dim(), seed in 0u64..1000) {
        let mut rng = rng_from_seed(seed);
        let a = BipolarVector::random(dim, &mut rng);
        prop_assert_eq!(a.bind(&a), BipolarVector::ones(dim));
    }

    #[test]
    fn unbind_recovers_factor(dim in arb_dim(), seed in 0u64..1000) {
        let mut rng = rng_from_seed(seed);
        let xs: Vec<_> = (0..3).map(|_| BipolarVector::random(dim, &mut rng)).collect();
        let product = bind_all(&xs);
        prop_assert_eq!(product.bind(&xs[1]).bind(&xs[2]), xs[0].clone());
    }

    #[test]
    fn dot_is_symmetric_and_bounded(v in arb_dim().prop_flat_map(|d| (arb_vector(d), arb_vector(d)))) {
        let (a, b) = v;
        prop_assert_eq!(a.dot(&b), b.dot(&a));
        prop_assert!(a.dot(&b).abs() <= a.dim() as i64);
        // Parity: dot ≡ dim (mod 2).
        prop_assert_eq!((a.dot(&b) - a.dim() as i64) % 2, 0);
    }

    #[test]
    fn dot_hamming_relation(v in arb_dim().prop_flat_map(|d| (arb_vector(d), arb_vector(d)))) {
        let (a, b) = v;
        prop_assert_eq!(a.dot(&b), a.dim() as i64 - 2 * a.hamming(&b) as i64);
    }

    #[test]
    fn binding_preserves_dot(dim in arb_dim(), seed in 0u64..1000) {
        // Binding by a common vector is an isometry of the dot product.
        let mut rng = rng_from_seed(seed);
        let a = BipolarVector::random(dim, &mut rng);
        let b = BipolarVector::random(dim, &mut rng);
        let k = BipolarVector::random(dim, &mut rng);
        prop_assert_eq!(a.bind(&k).dot(&b.bind(&k)), a.dot(&b));
    }

    #[test]
    fn permutation_is_bijective(dim in arb_dim(), k in 0usize..512, seed in 0u64..1000) {
        let mut rng = rng_from_seed(seed);
        let a = BipolarVector::random(dim, &mut rng);
        prop_assert_eq!(a.permuted(k).inverse_permuted(k), a.clone());
        // Permutation preserves the number of +1 elements.
        prop_assert_eq!(a.permuted(k).count_positive(), a.count_positive());
    }

    #[test]
    fn permutation_distributes_over_bind(dim in arb_dim(), k in 0usize..64, seed in 0u64..1000) {
        let mut rng = rng_from_seed(seed);
        let a = BipolarVector::random(dim, &mut rng);
        let b = BipolarVector::random(dim, &mut rng);
        prop_assert_eq!(a.bind(&b).permuted(k), a.permuted(k).bind(&b.permuted(k)));
    }

    #[test]
    fn bundle_of_identical_is_identity(dim in arb_dim(), seed in 0u64..1000, n in 1usize..5) {
        let mut rng = rng_from_seed(seed);
        let a = BipolarVector::random(dim, &mut rng);
        let copies = vec![a.clone(); n];
        prop_assert_eq!(bundle(&copies, TieBreak::Parity), a);
    }

    #[test]
    fn cleanup_of_member_is_exact(m in 2usize..12, seed in 0u64..500) {
        let mut rng = rng_from_seed(seed);
        let cb = Codebook::random(m, 256, &mut rng);
        for i in 0..m {
            prop_assert_eq!(cb.cleanup(cb.vector(i)).index, i);
        }
    }

    #[test]
    fn signs_roundtrip(v in arb_dim().prop_flat_map(arb_vector)) {
        prop_assert_eq!(BipolarVector::from_signs(&v.to_signs()), v);
    }

    #[test]
    fn reals_sign_roundtrip_through_words(v in arb_dim().prop_flat_map(arb_vector)) {
        // to_signs → reals → from_reals_sign reproduces the vector exactly
        // (all values non-zero, so no parity tie-breaking is involved),
        // covering the word-walk encoder/decoder pair including tails with
        // dim not a multiple of 64.
        let reals: Vec<f64> = v.to_signs().iter().map(|&s| s as f64).collect();
        prop_assert_eq!(BipolarVector::from_reals_sign(&reals), v.clone());
        let mut reused = BipolarVector::ones(v.dim());
        reused.assign_signs_of_reals(&reals);
        prop_assert_eq!(reused, v);
    }

    #[test]
    fn packed_similarity_mvm_equals_naive_dot_loop(
        m in 1usize..24,
        dim in arb_dim(),
        seed in 0u64..500,
    ) {
        // The packed popcount MVM must agree with one-vector-at-a-time
        // dots for every shape, including non-multiple-of-64 dimension
        // tails and row counts that defeat the lane-block fast path.
        let mut rng = rng_from_seed(seed);
        let cb = Codebook::random(m, dim, &mut rng);
        let q = BipolarVector::random(dim, &mut rng);
        let naive: Vec<i64> = cb.vectors().iter().map(|v| v.dot(&q)).collect();
        prop_assert_eq!(cb.similarities(&q), naive.clone());
        let mut out = vec![0.0f64; m];
        cb.similarities_into(&q, &mut out);
        for (j, &n) in naive.iter().enumerate() {
            prop_assert_eq!(out[j], n as f64);
            prop_assert_eq!(cb.packed().dot_row(j, &q), n);
        }
    }

    #[test]
    fn packed_projection_matches_sign_loop(
        m in 1usize..12,
        dim in arb_dim(),
        seed in 0u64..500,
    ) {
        let mut rng = rng_from_seed(seed);
        let cb = Codebook::random(m, dim, &mut rng);
        // Integer weights keep both accumulation orders exact in f64.
        let weights: Vec<f64> = (0..m).map(|j| (j % 5) as f64 - 2.0).collect();
        let mut sums = vec![0.0f64; dim];
        cb.packed().weighted_sums_into(&weights, &mut sums);
        for (i, &s) in sums.iter().enumerate() {
            let expect: f64 = cb
                .vectors()
                .iter()
                .zip(&weights)
                .map(|(v, &w)| w * v.sign(i) as f64)
                .sum();
            prop_assert_eq!(s, expect);
        }
    }
}
