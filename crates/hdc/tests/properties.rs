//! Property-based tests for the VSA algebra invariants.

use hdc::rng::rng_from_seed;
use hdc::{bind_all, bundle, BipolarVector, Codebook, TieBreak};
use proptest::prelude::*;

fn arb_dim() -> impl Strategy<Value = usize> {
    prop_oneof![1usize..=4, 60usize..=68, 120usize..=130, Just(256)]
}

fn arb_vector(dim: usize) -> impl Strategy<Value = BipolarVector> {
    proptest::collection::vec(prop_oneof![Just(1i8), Just(-1i8)], dim)
        .prop_map(|signs| BipolarVector::from_signs(&signs))
}

proptest! {
    #[test]
    fn bind_commutes(dim in arb_dim(), seed in 0u64..1000) {
        let mut rng = rng_from_seed(seed);
        let a = BipolarVector::random(dim, &mut rng);
        let b = BipolarVector::random(dim, &mut rng);
        prop_assert_eq!(a.bind(&b), b.bind(&a));
    }

    #[test]
    fn bind_associates(dim in arb_dim(), seed in 0u64..1000) {
        let mut rng = rng_from_seed(seed);
        let a = BipolarVector::random(dim, &mut rng);
        let b = BipolarVector::random(dim, &mut rng);
        let c = BipolarVector::random(dim, &mut rng);
        prop_assert_eq!(a.bind(&b).bind(&c), a.bind(&b.bind(&c)));
    }

    #[test]
    fn bind_self_is_identity_vector(dim in arb_dim(), seed in 0u64..1000) {
        let mut rng = rng_from_seed(seed);
        let a = BipolarVector::random(dim, &mut rng);
        prop_assert_eq!(a.bind(&a), BipolarVector::ones(dim));
    }

    #[test]
    fn unbind_recovers_factor(dim in arb_dim(), seed in 0u64..1000) {
        let mut rng = rng_from_seed(seed);
        let xs: Vec<_> = (0..3).map(|_| BipolarVector::random(dim, &mut rng)).collect();
        let product = bind_all(&xs);
        prop_assert_eq!(product.bind(&xs[1]).bind(&xs[2]), xs[0].clone());
    }

    #[test]
    fn dot_is_symmetric_and_bounded(v in arb_dim().prop_flat_map(|d| (arb_vector(d), arb_vector(d)))) {
        let (a, b) = v;
        prop_assert_eq!(a.dot(&b), b.dot(&a));
        prop_assert!(a.dot(&b).abs() <= a.dim() as i64);
        // Parity: dot ≡ dim (mod 2).
        prop_assert_eq!((a.dot(&b) - a.dim() as i64) % 2, 0);
    }

    #[test]
    fn dot_hamming_relation(v in arb_dim().prop_flat_map(|d| (arb_vector(d), arb_vector(d)))) {
        let (a, b) = v;
        prop_assert_eq!(a.dot(&b), a.dim() as i64 - 2 * a.hamming(&b) as i64);
    }

    #[test]
    fn binding_preserves_dot(dim in arb_dim(), seed in 0u64..1000) {
        // Binding by a common vector is an isometry of the dot product.
        let mut rng = rng_from_seed(seed);
        let a = BipolarVector::random(dim, &mut rng);
        let b = BipolarVector::random(dim, &mut rng);
        let k = BipolarVector::random(dim, &mut rng);
        prop_assert_eq!(a.bind(&k).dot(&b.bind(&k)), a.dot(&b));
    }

    #[test]
    fn permutation_is_bijective(dim in arb_dim(), k in 0usize..512, seed in 0u64..1000) {
        let mut rng = rng_from_seed(seed);
        let a = BipolarVector::random(dim, &mut rng);
        prop_assert_eq!(a.permuted(k).inverse_permuted(k), a.clone());
        // Permutation preserves the number of +1 elements.
        prop_assert_eq!(a.permuted(k).count_positive(), a.count_positive());
    }

    #[test]
    fn permutation_distributes_over_bind(dim in arb_dim(), k in 0usize..64, seed in 0u64..1000) {
        let mut rng = rng_from_seed(seed);
        let a = BipolarVector::random(dim, &mut rng);
        let b = BipolarVector::random(dim, &mut rng);
        prop_assert_eq!(a.bind(&b).permuted(k), a.permuted(k).bind(&b.permuted(k)));
    }

    #[test]
    fn bundle_of_identical_is_identity(dim in arb_dim(), seed in 0u64..1000, n in 1usize..5) {
        let mut rng = rng_from_seed(seed);
        let a = BipolarVector::random(dim, &mut rng);
        let copies = vec![a.clone(); n];
        prop_assert_eq!(bundle(&copies, TieBreak::Parity), a);
    }

    #[test]
    fn cleanup_of_member_is_exact(m in 2usize..12, seed in 0u64..500) {
        let mut rng = rng_from_seed(seed);
        let cb = Codebook::random(m, 256, &mut rng);
        for i in 0..m {
            prop_assert_eq!(cb.cleanup(cb.vector(i)).index, i);
        }
    }

    #[test]
    fn signs_roundtrip(v in arb_dim().prop_flat_map(arb_vector)) {
        prop_assert_eq!(BipolarVector::from_signs(&v.to_signs()), v);
    }

    #[test]
    fn reals_sign_roundtrip_through_words(v in arb_dim().prop_flat_map(arb_vector)) {
        // to_signs → reals → from_reals_sign reproduces the vector exactly
        // (all values non-zero, so no parity tie-breaking is involved),
        // covering the word-walk encoder/decoder pair including tails with
        // dim not a multiple of 64.
        let reals: Vec<f64> = v.to_signs().iter().map(|&s| s as f64).collect();
        prop_assert_eq!(BipolarVector::from_reals_sign(&reals), v.clone());
        let mut reused = BipolarVector::ones(v.dim());
        reused.assign_signs_of_reals(&reals);
        prop_assert_eq!(reused, v);
    }

    #[test]
    fn packed_similarity_mvm_equals_naive_dot_loop(
        m in 1usize..24,
        dim in arb_dim(),
        seed in 0u64..500,
    ) {
        // The packed popcount MVM must agree with one-vector-at-a-time
        // dots for every shape, including non-multiple-of-64 dimension
        // tails and row counts that defeat the lane-block fast path.
        let mut rng = rng_from_seed(seed);
        let cb = Codebook::random(m, dim, &mut rng);
        let q = BipolarVector::random(dim, &mut rng);
        let naive: Vec<i64> = cb.vectors().iter().map(|v| v.dot(&q)).collect();
        prop_assert_eq!(cb.similarities(&q), naive.clone());
        let mut out = vec![0.0f64; m];
        cb.similarities_into(&q, &mut out);
        for (j, &n) in naive.iter().enumerate() {
            prop_assert_eq!(out[j], n as f64);
            prop_assert_eq!(cb.packed().dot_row(j, &q), n);
        }
    }

    #[test]
    fn packed_projection_matches_sign_loop(
        m in 1usize..12,
        dim in arb_dim(),
        seed in 0u64..500,
    ) {
        let mut rng = rng_from_seed(seed);
        let cb = Codebook::random(m, dim, &mut rng);
        // Integer weights keep both accumulation orders exact in f64.
        let weights: Vec<f64> = (0..m).map(|j| (j % 5) as f64 - 2.0).collect();
        let mut sums = vec![0.0f64; dim];
        cb.packed().weighted_sums_into(&weights, &mut sums);
        for (i, &s) in sums.iter().enumerate() {
            let expect: f64 = cb
                .vectors()
                .iter()
                .zip(&weights)
                .map(|(v, &w)| w * v.sign(i) as f64)
                .sum();
            prop_assert_eq!(s, expect);
        }
    }

    #[test]
    fn packed_projection_regimes_agree_at_edge_dimensions(
        m in 9usize..24,
        dim in arb_dim(),
        seed in 0u64..500,
        dense in prop_oneof![Just(false), Just(true)],
    ) {
        // The projection kernel picks its regime from the active-row
        // count: one active row of m ≥ 9 takes the sparse set-bit walk,
        // all-active takes the branchless dense unpack. Both must equal
        // the naive sign loop at every dimension shape — D < 64, ragged
        // tails, and exact multiples alike — and so must the unpacked
        // `ops::weighted_sums_into` twin.
        let mut rng = rng_from_seed(seed);
        let cb = Codebook::random(m, dim, &mut rng);
        let weights: Vec<f64> = if dense {
            (0..m).map(|j| (j % 7) as f64 - 3.0).collect()
        } else {
            let mut w = vec![0.0; m];
            w[m / 2] = 2.0;
            w
        };
        let active = weights.iter().filter(|&&w| w != 0.0).count();
        // Verify the strategy actually exercises the intended regime.
        prop_assert_eq!(8 * active <= m, !dense);
        let mut packed_out = vec![0.0f64; dim];
        cb.packed().weighted_sums_into(&weights, &mut packed_out);
        let mut unpacked_out = vec![0.0f64; dim];
        hdc::ops::weighted_sums_into(cb.vectors(), &weights, &mut unpacked_out);
        for i in 0..dim {
            let expect: f64 = cb
                .vectors()
                .iter()
                .zip(&weights)
                .map(|(v, &w)| w * v.sign(i) as f64)
                .sum();
            prop_assert_eq!(packed_out[i], expect, "packed regime dense={} element {}", dense, i);
            prop_assert_eq!(unpacked_out[i], expect, "unpacked regime dense={} element {}", dense, i);
        }
    }

    #[test]
    fn single_row_packed_codebook_matches_naive(
        dim in arb_dim(),
        seed in 0u64..500,
        w in -4i8..=4,
    ) {
        // M = 1 defeats the lane-block similarity fast path entirely and
        // makes every projection dense (8·active > 1): the degenerate
        // codebook a service shard sees for a one-item attribute.
        let mut rng = rng_from_seed(seed);
        let cb = Codebook::random(1, dim, &mut rng);
        let q = BipolarVector::random(dim, &mut rng);
        let mut sims = vec![0.0f64; 1];
        cb.similarities_into(&q, &mut sims);
        prop_assert_eq!(sims[0], cb.vector(0).dot(&q) as f64);
        let mut sums = vec![0.0f64; dim];
        cb.packed().weighted_sums_into(&[w as f64], &mut sums);
        for (i, &s) in sums.iter().enumerate() {
            prop_assert_eq!(s, w as f64 * cb.vector(0).sign(i) as f64);
        }
    }

    #[test]
    fn copy_bit_range_roundtrips_at_ragged_boundaries(
        src_dim in 65usize..200,
        start_word in 0usize..2,
        ragged in 0usize..64,
        seed in 0u64..500,
    ) {
        // Extracting [start, start+d) must reproduce the source bits for
        // word-aligned starts (the fast word-copy path) and ragged starts
        // (the per-bit path) alike, with the destination's padding tail
        // kept masked so algebra on the slice stays exact.
        let mut rng = rng_from_seed(seed);
        let src = BipolarVector::random(src_dim, &mut rng);
        let start = (start_word * 64 + ragged).min(src_dim - 1);
        let d = src_dim - start;
        for slice_dim in [1usize, d / 2, d].into_iter().filter(|&n| n > 0) {
            let mut dst = BipolarVector::ones(slice_dim);
            dst.copy_bit_range_from(&src, start);
            for i in 0..slice_dim {
                prop_assert_eq!(
                    dst.sign(i),
                    src.sign(start + i),
                    "start {} slice_dim {} bit {}",
                    start,
                    slice_dim,
                    i
                );
            }
            // Tail discipline: the extracted slice must behave as a
            // first-class vector (binding with itself yields identity,
            // which fails if padding bits leak).
            prop_assert_eq!(dst.bind(&dst), BipolarVector::ones(slice_dim));
        }
        // The full-range aligned copy is an exact clone.
        let mut whole = BipolarVector::ones(src_dim);
        whole.copy_bit_range_from(&src, 0);
        prop_assert_eq!(whole, src);
    }

    #[test]
    fn batched_similarities_are_bit_identical_to_per_query(
        m in prop_oneof![1usize..=3, 7usize..=9, 15usize..=17, Just(33)],
        dim in prop_oneof![1usize..=4, 60usize..=68, 1000usize..=1030, Just(1024), Just(2048)],
        b in prop_oneof![Just(1usize), 2usize..=5, Just(8), Just(17)],
        seed in 0u64..500,
    ) {
        // The batched bit-GEMM must agree with the per-query packed
        // kernel bit for bit over every ragged shape: D < 64,
        // non-multiple-of-64 tails, partial row strips, B = 1, and
        // B = 17 (a ragged column-tile tail).
        let mut rng = rng_from_seed(seed);
        let book = Codebook::random(m, dim, &mut rng);
        let queries: Vec<BipolarVector> =
            (0..b).map(|_| BipolarVector::random(dim, &mut rng)).collect();
        let batch = hdc::PackedBatch::from_queries(&queries);
        let mut batched = vec![0.0f64; b * m];
        book.packed().similarities_batch_into(&batch, &mut batched);
        let mut single = vec![0.0f64; m];
        for (bi, q) in queries.iter().enumerate() {
            book.packed().similarities_into(q, &mut single);
            for j in 0..m {
                prop_assert_eq!(
                    batched[bi * m + j].to_bits(),
                    single[j].to_bits(),
                    "m {} dim {} query {} row {}",
                    m, dim, bi, j
                );
            }
        }
    }

    #[test]
    fn batched_weighted_sums_are_bit_identical_to_per_query(
        m in prop_oneof![1usize..=3, 8usize..=10, Just(24)],
        dim in prop_oneof![1usize..=4, 62usize..=66, 120usize..=130],
        b in prop_oneof![Just(1usize), 2usize..=4, Just(17)],
        seed in 0u64..500,
    ) {
        // Batched projection must match per-query projection bit for bit
        // with mixed regimes inside one batch: per query, weights are
        // drawn all-zero, sparse (one active row), or dense.
        let mut rng = rng_from_seed(seed);
        let book = Codebook::random(m, dim, &mut rng);
        let mut weights = vec![0.0f64; b * m];
        for (bi, chunk) in weights.chunks_mut(m).enumerate() {
            match bi % 3 {
                0 => {}
                1 => chunk[bi % m] = 1.5 - (bi % 4) as f64,
                _ => {
                    for (j, w) in chunk.iter_mut().enumerate() {
                        *w = (j as f64) - (m as f64) / 2.0;
                    }
                }
            }
        }
        let mut batched = vec![0.0f64; b * dim];
        book.packed().weighted_sums_batch_into(&weights, &mut batched);
        let mut single = vec![0.0f64; dim];
        for bi in 0..b {
            book.packed().weighted_sums_into(&weights[bi * m..(bi + 1) * m], &mut single);
            for i in 0..dim {
                prop_assert_eq!(
                    batched[bi * dim + i].to_bits(),
                    single[i].to_bits(),
                    "m {} dim {} query {} element {}",
                    m, dim, bi, i
                );
            }
        }
    }

    #[test]
    fn every_dispatch_arm_is_bit_identical_to_naive_reference(
        m in prop_oneof![1usize..=3, 7usize..=9, Just(16), Just(33)],
        dim in prop_oneof![1usize..=4, 60usize..=68, 1000usize..=1030, Just(1024), Just(2048)],
        b in prop_oneof![Just(1usize), 2usize..=5, Just(17)],
        seed in 0u64..500,
    ) {
        // The runtime-dispatch contract: every arm this host can execute
        // (forced scalar / AVX2 CSA / AVX-512 vector-popcount) must
        // reproduce the naive i64 dot loop exactly, and match the other
        // arms bit for bit, over ragged shapes — D < 64, non-word tails,
        // partial strips, B = 1 and B = 17. Unsupported arms are skipped
        // (their identity is CI-enforced on hosts that have them).
        let mut rng = rng_from_seed(seed);
        let book = Codebook::random(m, dim, &mut rng);
        let queries: Vec<BipolarVector> =
            (0..b).map(|_| BipolarVector::random(dim, &mut rng)).collect();
        let batch = hdc::PackedBatch::from_queries(&queries);
        let mut weights = vec![0.0f64; b * m];
        for (i, w) in weights.iter_mut().enumerate() {
            *w = ((i % 5) as f64) - 2.0;
        }
        for arm in hdc::SimdArm::ALL {
            if !arm.supported() {
                continue;
            }
            let mut sims = vec![0.0f64; b * m];
            book.packed().similarities_batch_into_forced(&batch, &mut sims, arm);
            for (bi, q) in queries.iter().enumerate() {
                for j in 0..m {
                    let naive: i64 = book
                        .vector(j)
                        .to_signs()
                        .iter()
                        .zip(q.to_signs())
                        .map(|(&x, y)| (x as i64) * (y as i64))
                        .sum();
                    prop_assert_eq!(
                        sims[bi * m + j],
                        naive as f64,
                        "arm {} m {} dim {} query {} row {}",
                        arm, m, dim, bi, j
                    );
                }
            }
            let mut proj = vec![0.0f64; b * dim];
            book.packed().weighted_sums_batch_into_forced(&weights, &mut proj, arm);
            let mut proj_scalar = vec![0.0f64; b * dim];
            book.packed().weighted_sums_batch_into_forced(
                &weights,
                &mut proj_scalar,
                hdc::SimdArm::Scalar,
            );
            for (i, (x, y)) in proj.iter().zip(&proj_scalar).enumerate() {
                prop_assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "arm {} proj m {} dim {} slot {}",
                    arm, m, dim, i
                );
            }
        }
    }
}
