//! **Table III — hardware resource & performance comparison** of the three
//! iso-capacity designs, with the accuracy column measured by running the
//! actual engines.
//!
//! Paper row targets: SRAM-2D 0.114 mm² / 200 MHz / 1.52 TOPS /
//! 13.3 TOPS/mm² / 50.1 TOPS/W / 95.8 %; Hybrid-2D 0.544 mm² / 2.8
//! TOPS/mm² / 60.6 TOPS/W / 99.3 %; H3D 0.091 mm² / 185 MHz / 15.5
//! TOPS/mm² / 60.6 TOPS/W / 99.3 %. Absolute TOPS differ from the paper
//! (different cycle-model calibration, recorded in EXPERIMENTS.md); the
//! ratios are the claim under test.

use arch3d::design::{build_report, DesignVariant};
use h3dfact_bench::env;
use h3dfact_core::{H3dFactConfig, Hybrid2dEngine, Sram2dEngine};
use hdc::{FactorizationProblem, ProblemSpec};
use resonator::engine::Factorizer;

/// Accuracy of an engine on the reference workload: a capacity-edge cell
/// (F=3, M=48 at D=256) where the deterministic design visibly pays for
/// its limit cycles, mirroring the paper's 95.8 % vs 99.3 % column.
fn measure_accuracy(mk: impl Fn(u64) -> Box<dyn Factorizer>, trials: usize) -> f64 {
    let spec = ProblemSpec::new(3, 48, 256);
    let mut solved = 0;
    for t in 0..trials {
        let p = FactorizationProblem::random(spec, &mut hdc::rng::rng_from_seed(9_000 + t as u64));
        let mut engine = mk(t as u64);
        if engine.factorize(&p).solved {
            solved += 1;
        }
    }
    100.0 * solved as f64 / trials as f64
}

fn main() {
    let trials = env::trials(30);
    let budget = 6_000;
    let spec = ProblemSpec::new(3, 48, 256);

    let mut rows = Vec::new();
    for variant in [
        DesignVariant::Sram2d,
        DesignVariant::Hybrid2d,
        DesignVariant::H3dThreeTier,
    ] {
        let mut report = build_report(variant);
        let acc = match variant {
            DesignVariant::Sram2d => {
                measure_accuracy(|s| Box::new(Sram2dEngine::new(spec, budget, s)), trials)
            }
            DesignVariant::Hybrid2d => measure_accuracy(
                |s| {
                    Box::new(Hybrid2dEngine::new(
                        H3dFactConfig::default_for(spec).with_max_iters(budget),
                        s,
                    ))
                },
                trials,
            ),
            DesignVariant::H3dThreeTier => measure_accuracy(
                |s| {
                    Box::new(h3dfact_core::H3dFact::new(
                        H3dFactConfig::default_for(spec).with_max_iters(budget),
                        s,
                    ))
                },
                trials,
            ),
        };
        report.accuracy_pct = Some(acc);
        rows.push(report);
    }

    println!("=== Table III: hardware performance evaluation ===");
    println!(
        "(accuracy measured on F=3, M=48, D=256, {trials} trials; paper reference in brackets)"
    );
    println!();
    println!(
        "{:<12} {:>10} {:>10} {:>9} {:>11} {:>13} {:>12} {:>8} {:>7} {:>12}",
        "design",
        "area mm2",
        "footprint",
        "MHz",
        "TOPS",
        "TOPS/mm2",
        "TOPS/W",
        "ADCs",
        "TSVs",
        "accuracy %"
    );
    for r in &rows {
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>9.0} {:>11.2} {:>13.1} {:>12.1} {:>8} {:>7} {:>6.1} [{:>4.1}]",
            r.variant.to_string(),
            r.total_area_mm2,
            r.footprint_mm2,
            r.frequency_mhz,
            r.throughput_tops,
            r.compute_density_tops_mm2,
            r.energy_eff_tops_w,
            r.adc_count,
            r.tsv_count,
            r.accuracy_pct.unwrap_or(f64::NAN),
            r.variant.paper_reference_accuracy_pct(),
        );
    }

    let sram = &rows[0];
    let hybrid = &rows[1];
    let h3d = &rows[2];
    println!("\n=== headline ratios (paper claims) ===");
    println!(
        "silicon saving vs hybrid 2D : {:>5.2}x   [paper: 5.97x]",
        h3d.area_saving_vs(hybrid)
    );
    println!(
        "silicon saving vs SRAM 2D   : {:>5.2}x   [paper: 1.25x]",
        h3d.area_saving_vs(sram)
    );
    println!(
        "compute density vs hybrid 2D: {:>5.2}x   [paper: 5.5x]",
        h3d.density_ratio(hybrid)
    );
    println!(
        "energy efficiency vs SRAM 2D: {:>5.2}x   [paper: 1.2x]",
        h3d.efficiency_ratio(sram)
    );
    println!(
        "accuracy gap vs deterministic SRAM 2D: {:>+5.1} pp   [paper: +3.5 pp]",
        h3d.accuracy_pct.unwrap_or(0.0) - sram.accuracy_pct.unwrap_or(0.0)
    );

    println!("\n=== per-tier area breakdown (H3D) ===");
    for (name, area) in &h3d.tier_areas {
        println!("  {name:<38} {area:>7.4} mm2");
    }

    println!("\n=== per-iteration energy breakdown (H3D model) ===");
    print!("{}", h3d.energy_ledger);

    // Batching ablation (the SRAM-buffer argument of Sec. IV-A).
    println!("=== batching ablation: buffered vs unbuffered tier switching ===");
    for batch in [1usize, 8, 32, 100] {
        let s = arch3d::schedule::IterationSchedule::compute(
            &arch3d::schedule::ScheduleConfig::paper(4, batch),
        );
        println!(
            "  batch {batch:>3}: {:>7} cycles buffered vs {:>7} unbuffered ({:>4.2}x), switches {:>3} vs {:>3}, buffer peak {:>6} b",
            s.cycles,
            s.cycles_unbuffered,
            s.cycles_unbuffered as f64 / s.cycles as f64,
            s.tier_switches,
            s.tier_switches_unbuffered,
            s.buffer_peak_bits
        );
    }
}
