//! **Sec. V-B — comparison with the PCM in-memory factorizer** ([15],
//! Langenegger et al., Nat. Nanotech. 2023) at iso-silicon-area.
//!
//! Paper claims: 1.78× throughput and 1.48× energy efficiency for H3DFact,
//! from 3D stacking (no package-level inter-die traffic) and higher
//! compute density.

use h3dfact::session::{BackendKind, Session};
use h3dfact_core::pcm::{pcm_reference_report_with, PcmComparison, PcmLinkModel};
use hdc::ProblemSpec;

fn main() {
    let c = PcmComparison::paper_default();
    println!("=== Sec. V-B: H3DFact vs PCM 2D in-memory factorizer (iso-area) ===\n");
    println!("{:<28} {:>12} {:>12}", "", "H3DFact", "PCM 2-die");
    println!(
        "{:<28} {:>12.3} {:>12.3}",
        "silicon area (mm^2)", c.h3d.total_area_mm2, c.pcm.total_area_mm2
    );
    println!(
        "{:<28} {:>12.0} {:>12.0}",
        "clock (MHz)", c.h3d.frequency_mhz, c.pcm.frequency_mhz
    );
    println!(
        "{:<28} {:>12} {:>12}",
        "cycles / iteration", c.h3d.cycles_per_iter, c.pcm.cycles_per_iter
    );
    println!(
        "{:<28} {:>12.2} {:>12.2}",
        "throughput (TOPS)", c.h3d.throughput_tops, c.pcm.throughput_tops
    );
    println!(
        "{:<28} {:>12.1} {:>12.1}",
        "energy eff. (TOPS/W)", c.h3d.energy_eff_tops_w, c.pcm.energy_eff_tops_w
    );
    println!(
        "\nthroughput ratio : {:>5.2}x   [paper: 1.78x]",
        c.throughput_ratio()
    );
    println!(
        "efficiency ratio : {:>5.2}x   [paper: 1.48x]",
        c.efficiency_ratio()
    );

    println!("\n=== sensitivity: package-link cost of the 2-die system ===");
    println!(
        "{:<26} {:>12} {:>14}",
        "link model", "H3D tput x", "H3D eff x"
    );
    for (label, cycles, pj) in [
        ("optimistic (10 cyc, 0.3pJ)", 10u64, 0.3e-12),
        ("default   (30 cyc, 0.9pJ)", 30, 0.9e-12),
        ("pessimistic (60 cyc, 2pJ)", 60, 2.0e-12),
    ] {
        let pcm = pcm_reference_report_with(PcmLinkModel {
            inter_die_cycles: cycles,
            energy_per_bit_j: pj,
        });
        println!(
            "{:<26} {:>11.2}x {:>13.2}x",
            label,
            c.h3d.throughput_tops / pcm.throughput_tops,
            c.h3d.energy_eff_tops_w / pcm.energy_eff_tops_w
        );
    }

    // Functional cross-check: both systems as runnable backends on the
    // same workload — the iteration dynamics match (both stochastic), so
    // the measured per-problem cost gap is pure integration cost.
    println!("\n=== measured run: pcm-2die vs h3dfact-3d backends (same workload) ===");
    let spec = ProblemSpec::new(3, 16, 256);
    println!(
        "{:<14} {:>5} {:>12} {:>14}",
        "backend", "acc", "energy/prob", "latency/prob"
    );
    for kind in [BackendKind::Pcm, BackendKind::H3dFact] {
        let report = Session::builder()
            .spec(spec)
            .backend(kind)
            .seed(0x9C3)
            .max_iters(3_000)
            .build()
            .run(8);
        println!(
            "{:<14} {:>4.0}% {:>9.2} nJ {:>11.2} us",
            report.backend,
            100.0 * report.accuracy(),
            report.energy_per_problem_j().unwrap() * 1e9,
            report.latency_per_problem_s().unwrap() * 1e6,
        );
    }
}
