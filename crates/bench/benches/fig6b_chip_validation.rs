//! **Fig. 6b — RRAM test-chip validation**: factorization accuracy vs
//! iteration with the chip-calibrated noise statistics and per-cell
//! (highest-fidelity) device simulation, on the perception-scale workload.
//!
//! Paper: with noise parameters extracted from the 40 nm test chips and
//! the readout threshold (`VTGT`) adjusted accordingly, the factorizer
//! reaches >96 % accuracy "at one-shot" and 99 % after ~25 iterations.
//! Interpretation note (recorded in EXPERIMENTS.md): we read "one-shot" as
//! a single factorization run without restarts; the curve below reports
//! accuracy as a function of the iteration budget of that single run.

use cim::crossbar::Fidelity;
use cim::noise::NoiseSpec;
use h3dfact_bench::env;
use h3dfact_core::{H3dFact, H3dFactConfig};
use hdc::{FactorizationProblem, ProblemSpec};
use resonator::engine::Factorizer;
use resonator::metrics::{accuracy_curve, iterations_to_accuracy};

fn main() {
    // Perception-scale problem (RAVEN attribute codebooks are ≤10 wide).
    let spec = ProblemSpec::new(4, 10, 256);
    let trials = env::trials(40);
    let budget = 2_000;

    println!("=== Fig. 6b: chip-noise-validated factorization accuracy ===");
    println!("noise: chip-calibrated 40 nm statistics, per-cell fidelity");
    println!("problem: F=4, M=10, D=256; {trials} trials\n");

    let mut traces: Vec<Vec<bool>> = Vec::with_capacity(trials);
    let mut one_shot_hits = 0usize;
    for t in 0..trials as u64 {
        let p = FactorizationProblem::random(spec, &mut hdc::rng::rng_from_seed(6_600 + t));
        let mut cfg = H3dFactConfig::default_for(spec)
            .with_noise(NoiseSpec::chip_40nm())
            .with_max_iters(budget);
        cfg.fidelity = Fidelity::Cell;
        // Sec. V-D: the readout threshold (VTGT) is adjusted for the
        // workload; 2σ per LSB converges fastest at this codebook size.
        cfg.lsb_sigmas = 2.0;
        cfg.loop_config.record_trajectory = true;
        let mut engine = H3dFact::new(cfg, t);
        let out = engine.factorize(&p);
        if out.solved {
            one_shot_hits += 1;
        }
        traces.push(out.correct_at);
    }
    let curve = accuracy_curve(&traces, budget);

    println!("  iter | accuracy");
    for &t in &[1usize, 5, 10, 25, 50, 100, 250, 500, 1000, 2000] {
        if t <= budget {
            println!("  {t:>4} |  {:>5.1} %", 100.0 * curve[t - 1]);
        }
    }
    let t99 = iterations_to_accuracy(&curve, 0.99);
    println!(
        "\nsingle-run (no restart) success within budget: {:.1} %  [paper one-shot: >96 %]",
        100.0 * one_shot_hits as f64 / trials as f64
    );
    println!(
        "iterations to 99 %: {}  [paper: ~25]",
        t99.map(|v| v.to_string())
            .unwrap_or_else(|| "> budget".into())
    );

    // Stress: noise well beyond the chip statistics should eventually hurt
    // (the usable stochasticity window).
    println!("\n=== noise-window stress (accuracy at budget, scaled chip noise) ===");
    for scale in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let mut solved = 0usize;
        let n = trials.min(20);
        for t in 0..n as u64 {
            let p = FactorizationProblem::random(spec, &mut hdc::rng::rng_from_seed(6_600 + t));
            let mut cfg = H3dFactConfig::default_for(spec)
                .with_noise(NoiseSpec::chip_40nm_scaled(scale))
                .with_max_iters(budget);
            cfg.lsb_sigmas = 2.0;
            let mut engine = H3dFact::new(cfg, 31 + t);
            if engine.factorize(&p).solved {
                solved += 1;
            }
        }
        println!("  noise x{scale:<3}: {solved:>2}/{n} solved");
    }
}
